//! The unified error surface of the graphgen facade.
//!
//! Every fallible public operation — parsing the DSL, running the relational
//! engine, converting between representations — reports through one
//! [`Error`] type, with [`Error::kind`] as the stable, match-friendly
//! classifier and `From` impls from each substrate error so `?` composes
//! across layers.

use graphgen_common::CodecError;
use graphgen_dedup::DedupError;
use graphgen_dsl::{Diagnostic, ParseError};
use graphgen_graph::RepKind;
use graphgen_reldb::DbError;
use std::fmt;

/// Why a representation conversion is impossible (§3.4's transparent
/// conversion surface, [`crate::GraphHandle::convert`]).
///
/// The paper's DEDUP-1/DEDUP-2 constructions only apply to restricted
/// shapes of the condensed graph (§5); instead of a silent `None`, every
/// infeasible request explains exactly which restriction failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ConvertError {
    /// The target needs a **single-layer** condensed source, but this graph
    /// has two or more virtual layers. Flatten first
    /// (`ConvertOptions::flatten`, or `graphgen_dedup::flatten_to_single_layer`).
    MultiLayer,
    /// DEDUP-2 needs a **symmetric** source: every virtual node's source
    /// set must equal its target set (the shape co-occurrence extraction
    /// produces). This graph has an asymmetric virtual node.
    Asymmetric,
    /// The target needs a condensed core (C-DUP, DEDUP-1, or BITMAP
    /// source), but this representation does not retain one.
    NotCondensed {
        /// The representation the conversion started from.
        from: RepKind,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::MultiLayer => write!(
                f,
                "conversion requires a single-layer condensed source, but the graph \
                 has multiple virtual layers (enable ConvertOptions::flatten or run \
                 flatten_to_single_layer first)"
            ),
            ConvertError::Asymmetric => write!(
                f,
                "DEDUP-2 requires a symmetric single-layer source (every virtual \
                 node's sources must equal its targets)"
            ),
            ConvertError::NotCondensed { from } => write!(
                f,
                "conversion requires a condensed core, but the {from} representation \
                 does not retain one"
            ),
        }
    }
}

impl std::error::Error for ConvertError {}

impl From<DedupError> for ConvertError {
    fn from(e: DedupError) -> Self {
        match e {
            DedupError::MultiLayer => ConvertError::MultiLayer,
            DedupError::Asymmetric => ConvertError::Asymmetric,
        }
    }
}

/// Why an incremental patch ([`crate::GraphHandle::apply_delta`]) failed.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum PatchError {
    /// The handle was not extracted with `GraphGenConfig::incremental`, so
    /// no maintenance state exists to propagate deltas through.
    NotIncremental,
    /// The delta contradicts the maintained state (e.g. it deletes rows the
    /// base table never held, or the handle's representation was swapped
    /// behind the state's back). The handle should be considered stale:
    /// re-extract instead of applying further deltas.
    Inconsistent(String),
}

impl fmt::Display for PatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchError::NotIncremental => write!(
                f,
                "handle has no incremental state; extract with \
                 GraphGenConfig::builder().incremental(true) to enable apply_delta"
            ),
            PatchError::Inconsistent(msg) => {
                write!(f, "delta is inconsistent with the maintained state: {msg}")
            }
        }
    }
}

impl std::error::Error for PatchError {}

/// Stable classification of an [`Error`], independent of payload details.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ErrorKind {
    /// DSL parse or semantic-validation failure.
    Dsl,
    /// Static analysis rejected the program before extraction started.
    Check,
    /// Relational engine failure (unknown table/column, arity mismatch, …).
    Db,
    /// Infeasible representation conversion.
    Convert,
    /// Incremental delta application failure.
    Patch,
    /// Corrupt or incompatible binary snapshot input.
    Snapshot,
}

/// The single error type of the facade: everything the pipeline can raise.
#[derive(Debug)]
pub enum Error {
    /// DSL parse/validation failure.
    Dsl(ParseError),
    /// Static analysis rejected the program before any extraction work:
    /// every error-severity [`Diagnostic`] the checker found, in source
    /// order (warnings are filtered out — they never block extraction).
    Check(Vec<Diagnostic>),
    /// Relational engine failure.
    Db(DbError),
    /// Infeasible representation conversion.
    Convert(ConvertError),
    /// Incremental delta application failure.
    Patch(PatchError),
    /// Corrupt or incompatible binary snapshot input
    /// (`GraphHandle::from_snapshot_bytes`).
    Snapshot(CodecError),
}

impl Error {
    /// The stable classification of this error.
    pub fn kind(&self) -> ErrorKind {
        match self {
            Error::Dsl(_) => ErrorKind::Dsl,
            Error::Check(_) => ErrorKind::Check,
            Error::Db(_) => ErrorKind::Db,
            Error::Convert(_) => ErrorKind::Convert,
            Error::Patch(_) => ErrorKind::Patch,
            Error::Snapshot(_) => ErrorKind::Snapshot,
        }
    }

    /// The conversion failure reason, if this is a conversion error.
    pub fn as_convert(&self) -> Option<ConvertError> {
        match self {
            Error::Convert(e) => Some(*e),
            _ => None,
        }
    }

    /// The patch failure reason, if this is a patch error.
    pub fn as_patch(&self) -> Option<&PatchError> {
        match self {
            Error::Patch(e) => Some(e),
            _ => None,
        }
    }

    /// The checker diagnostics, if static analysis rejected the program.
    pub fn as_check(&self) -> Option<&[Diagnostic]> {
        match self {
            Error::Check(diags) => Some(diags),
            _ => None,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Dsl(e) => write!(f, "{e}"),
            Error::Check(diags) => {
                // One line per diagnostic, coded, suitable for protocol
                // front ends and logs.
                write!(f, "check failed: ")?;
                for (i, d) in diags.iter().enumerate() {
                    if i > 0 {
                        write!(f, "; ")?;
                    }
                    write!(f, "{}", d.one_line())?;
                }
                Ok(())
            }
            Error::Db(e) => write!(f, "{e}"),
            Error::Convert(e) => write!(f, "{e}"),
            Error::Patch(e) => write!(f, "{e}"),
            Error::Snapshot(e) => write!(f, "snapshot: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Dsl(e) => Some(e),
            Error::Check(_) => None,
            Error::Db(e) => Some(e),
            Error::Convert(e) => Some(e),
            Error::Patch(e) => Some(e),
            Error::Snapshot(e) => Some(e),
        }
    }
}

impl From<PatchError> for Error {
    fn from(e: PatchError) -> Self {
        Error::Patch(e)
    }
}

impl From<ParseError> for Error {
    fn from(e: ParseError) -> Self {
        Error::Dsl(e)
    }
}

impl From<DbError> for Error {
    fn from(e: DbError) -> Self {
        Error::Db(e)
    }
}

impl From<ConvertError> for Error {
    fn from(e: ConvertError) -> Self {
        Error::Convert(e)
    }
}

impl From<DedupError> for Error {
    fn from(e: DedupError) -> Self {
        Error::Convert(e.into())
    }
}

impl From<CodecError> for Error {
    fn from(e: CodecError) -> Self {
        Error::Snapshot(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_are_stable() {
        let e: Error = ConvertError::MultiLayer.into();
        assert_eq!(e.kind(), ErrorKind::Convert);
        assert_eq!(e.as_convert(), Some(ConvertError::MultiLayer));
        let e: Error = DbError::UnknownTable("x".into()).into();
        assert_eq!(e.kind(), ErrorKind::Db);
        assert_eq!(e.as_convert(), None);
    }

    #[test]
    fn check_errors_render_one_line_per_diagnostic() {
        use graphgen_dsl::{Code, Span};
        let e = Error::Check(vec![
            Diagnostic::new(
                Code::UnknownRelation,
                Span::new(19, 3, 2, 5),
                "unknown relation `X`",
            ),
            Diagnostic::new(Code::ArityMismatch, Span::new(30, 3, 3, 1), "wrong arity"),
        ]);
        assert_eq!(e.kind(), ErrorKind::Check);
        assert_eq!(e.as_check().map(<[_]>::len), Some(2));
        let s = e.to_string();
        assert!(
            s.starts_with("check failed: E001 unknown-relation at 2:5:"),
            "{s}"
        );
        assert!(s.contains("; E003 arity-mismatch at 3:1:"), "{s}");
        assert!(!s.contains('\n'), "protocol front ends need one line: {s}");
    }

    #[test]
    fn patch_errors_classify_and_display() {
        let e: Error = PatchError::NotIncremental.into();
        assert_eq!(e.kind(), ErrorKind::Patch);
        assert_eq!(e.as_patch(), Some(&PatchError::NotIncremental));
        assert!(e.to_string().contains("incremental"));
        let e: Error = PatchError::Inconsistent("x".into()).into();
        assert!(e.to_string().contains("inconsistent"));
        assert_eq!(e.as_convert(), None);
    }

    #[test]
    fn dedup_errors_map_to_convert_reasons() {
        assert_eq!(
            ConvertError::from(DedupError::MultiLayer),
            ConvertError::MultiLayer
        );
        assert_eq!(
            ConvertError::from(DedupError::Asymmetric),
            ConvertError::Asymmetric
        );
    }

    #[test]
    fn display_explains_the_restriction() {
        assert!(ConvertError::MultiLayer
            .to_string()
            .contains("single-layer"));
        assert!(ConvertError::Asymmetric.to_string().contains("symmetric"));
        assert!(ConvertError::NotCondensed { from: RepKind::Exp }
            .to_string()
            .contains("EXP"));
    }
}
