//! Source spans: every token the lexer produces carries one, the parser
//! threads them into the AST, and every [`crate::diag::Diagnostic`] points
//! back at the offending source text through one.

use std::fmt;

/// A half-open byte range into the source text, with the 1-based line and
/// column of its first byte precomputed by the lexer (columns count bytes,
/// which is exact for the ASCII surface syntax of the DSL).
///
/// `Span::default()` is the *synthetic* span (all zeros): it marks AST
/// nodes built programmatically rather than parsed, and renders without a
/// source excerpt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first byte.
    pub offset: usize,
    /// Length in bytes (0 = a point, e.g. end of input).
    pub len: usize,
    /// 1-based line of the first byte (0 = synthetic).
    pub line: u32,
    /// 1-based byte column of the first byte (0 = synthetic).
    pub col: u32,
}

impl Span {
    /// A span covering `len` bytes at `offset`, located at `line:col`.
    pub fn new(offset: usize, len: usize, line: u32, col: u32) -> Self {
        Self {
            offset,
            len,
            line,
            col,
        }
    }

    /// True for the all-zero synthetic span of programmatically built AST
    /// nodes.
    pub fn is_synthetic(&self) -> bool {
        self.line == 0
    }

    /// The span from the start of `self` to the end of `other` (same line
    /// metadata as `self`). Used to widen a token span over a whole
    /// construct.
    pub fn to(&self, other: Span) -> Span {
        let end = (other.offset + other.len).max(self.offset + self.len);
        Span {
            offset: self.offset,
            len: end - self.offset,
            line: self.line,
            col: self.col,
        }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_synthetic() {
            write!(f, "<synthetic>")
        } else {
            write!(f, "{}:{}", self.line, self.col)
        }
    }
}

/// Compute the span of the end of input (a zero-length point just past the
/// last byte), for "unexpected end of input" diagnostics.
pub fn eof_span(text: &str) -> Span {
    let mut line = 1u32;
    let mut line_start = 0usize;
    for (i, b) in text.bytes().enumerate() {
        if b == b'\n' {
            line += 1;
            line_start = i + 1;
        }
    }
    Span::new(text.len(), 0, line, (text.len() - line_start) as u32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_synthetic() {
        assert_eq!(Span::new(4, 3, 2, 1).to_string(), "2:1");
        assert_eq!(Span::default().to_string(), "<synthetic>");
        assert!(Span::default().is_synthetic());
        assert!(!Span::new(0, 1, 1, 1).is_synthetic());
    }

    #[test]
    fn widening() {
        let a = Span::new(2, 3, 1, 3);
        let b = Span::new(8, 2, 1, 9);
        let w = a.to(b);
        assert_eq!((w.offset, w.len), (2, 8));
        assert_eq!((w.line, w.col), (1, 3));
    }

    #[test]
    fn eof() {
        let s = eof_span("ab\ncd");
        assert_eq!((s.offset, s.len, s.line, s.col), (5, 0, 2, 3));
        let s = eof_span("");
        assert_eq!((s.offset, s.line, s.col), (0, 1, 1));
    }
}
