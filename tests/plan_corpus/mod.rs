//! Shared corpus for the plan-analysis tests: every shipped
//! `examples/queries/*.ggd` program paired with a small, seeded
//! `graphgen_datagen` database of the matching shape. Everything here is
//! deterministic (SplitMix64 with fixed seeds), so tests — and the
//! EXPLAIN goldens — see identical statistics on every run.

use graphgen::common::SplitMix64;
use graphgen::datagen::{
    dblp_like, imdb_like, tpch_like, univ, DblpConfig, ImdbConfig, TpchConfig, UnivConfig,
};
use graphgen::reldb::{Column, Database, Schema, Table, Value};
use std::path::Path;

/// The source of `examples/queries/<stem>.ggd`.
pub fn query_source(stem: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let rel = format!("examples/queries/{stem}.ggd");
    std::fs::read_to_string(root.join(&rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// DBLP variant whose `AuthorPub` carries the publication year
/// (`examples/queries/dblp_temporal.ggd`). No datagen generator ships
/// this shape, so the corpus builds one: ~2 authors per publication,
/// years uniform over 2000..2005 — enough spread that the year filters
/// have real (0.2) selectivity.
fn dblp_temporal_db(seed: u64) -> Database {
    let mut rng = SplitMix64::new(seed);
    let authors = 200i64;
    let publications = 400i64;
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 0..authors {
        author
            .push_row(vec![Value::int(a), Value::str(format!("author_{a}"))])
            .expect("schema");
    }
    let mut ap = Table::new(Schema::new(vec![
        Column::int("aid"),
        Column::int("pid"),
        Column::int("year"),
    ]));
    for p in 0..publications {
        let year = 2000 + rng.next_below(5) as i64;
        let k = 1 + rng.next_below(3); // 1..=3 authors, mean 2
        for _ in 0..k {
            let a = rng.next_below(authors as u64) as i64;
            ap.push_row(vec![Value::int(a), Value::int(p), Value::int(year)])
                .expect("schema");
        }
    }
    let mut db = Database::new();
    db.register("Author", author).expect("fresh db");
    db.register("AuthorPub", ap).expect("fresh db");
    db
}

/// One `(query stem, database)` pair per shipped `.ggd` file — the same
/// list `tests/docs_queries_check.rs` locks against the on-disk corpus.
pub fn corpus() -> Vec<(&'static str, Database)> {
    vec![
        (
            "dblp_coauthors",
            dblp_like(DblpConfig {
                authors: 300,
                publications: 500,
                avg_authors_per_pub: 2.0,
                seed: 42,
            }),
        ),
        ("dblp_temporal", dblp_temporal_db(43)),
        (
            "imdb_coactors",
            imdb_like(ImdbConfig {
                actors: 200,
                movies: 60,
                avg_cast: 10.0,
                seed: 44,
            }),
        ),
        (
            "tpch_copurchase",
            tpch_like(TpchConfig {
                customers: 150,
                orders: 400,
                parts: 80,
                avg_lineitems: 4.0,
                seed: 45,
            }),
        ),
        (
            "univ_coenrollment",
            univ(UnivConfig {
                students: 200,
                instructors: 10,
                courses: 20,
                avg_courses_per_student: 4.0,
                seed: 46,
            }),
        ),
        (
            "univ_bipartite",
            univ(UnivConfig {
                students: 200,
                instructors: 10,
                courses: 20,
                avg_courses_per_student: 4.0,
                seed: 46,
            }),
        ),
    ]
}
