//! The newline-delimited text protocol of `graphgen-serve`.
//!
//! One request per line, one response line per request:
//!
//! ```text
//! EXTRACT <name> <dsl…>      extract + register a graph (DSL on the same line)
//! CHECK <name> <dsl…>        statically check a program; registers nothing
//! EXPLAIN <name> <dsl…>      cost a program on live statistics; registers nothing
//! EXPLAIN <name>             re-cost a registered graph's frozen plan (drift)
//! NEIGHBORS <name> <key>     out-neighbor keys of a vertex
//! DEGREE <name> <key>        out-degree of a vertex
//! ANALYZE <name> <algo> [k=v …]   run an analysis on the published snapshot
//! ANALYZE STATUS             engine counters (computes/hits/warm starts/cache size)
//! ANALYZE STATUS <name> <algo> [k=v …]   newest cached result, never computes
//! APPLY <table> <±row …>     mutate a table: +1,2 inserts row (1,2); -1,2 deletes it
//! STATS [<name>]             per-graph version/vertices/edges (all graphs if no name)
//! COMPACT <name>             fold the graph's WAL into a fresh snapshot
//! METRICS                    full instrument registry, escaped exposition
//! TRACE [<n>]                drain up to n slow/failed ops from the trace ring
//! PING                       liveness probe
//! SHUTDOWN                   stop the server (responds, then closes)
//! ```
//!
//! `EXPLAIN` flattens the cost engine's multi-line plan tree onto one
//! response line with ` | ` separators (the renderings themselves are
//! golden-locked at the library layer). With a DSL it costs that program;
//! without one it re-costs the named graph's frozen extraction-time plan
//! against the live catalog and leads with `drift=<ratio>
//! stale_plan=<bool>` — the same numbers `STATS` reports per graph.
//!
//! `CHECK` answers `OK clean` or `OK errors=<n> warnings=<n> | <diag>;
//! <diag>…` with one coded, span-carrying diagnostic per `;`-separated
//! entry (`E001 unknown-relation at 1:15: …`). An `EXTRACT` the checker
//! rejects answers `ERR check failed: <diag>; …` with the same coded form,
//! and the bare `STATS` line reports service-wide per-code rejection
//! totals (`rejects=2 reject_codes=E001:1,E003:1`).
//!
//! `ANALYZE` algorithms: `degree`, `pagerank` (params `damping=`, `tol=`,
//! `iters=`), `components`, `triangles`, `clustering`. The response leads
//! with `version=<v> fresh=<bool>`: the graph version the result was
//! computed on and whether that is still the published version — a cached
//! entry for a superseded version stays readable, tagged `fresh=false`.
//! The computation runs on a background pool against a pinned snapshot;
//! other connections (readers *and* the writer) proceed meanwhile. The
//! leading `STATUS` keyword is reserved: a graph literally named `STATUS`
//! cannot be addressed by `ANALYZE` (use the library API for that).
//!
//! `METRICS` answers the whole instrument registry in Prometheus-style
//! text exposition. The canonical form is multi-line, which the one-line
//! protocol cannot carry verbatim, so the response is the **escaped
//! one-line form** of [`graphgen_common::metrics::escape_exposition`]
//! (`\` → `\\`, newline → `\n`, CR → `\r`); clients recover the canonical
//! text with `unescape_exposition`, and `graphgen-serve --metrics-dump`
//! prints it directly. `TRACE [<n>]` drains up to `n` events (all, when
//! omitted) from the slow-op ring, oldest first: `n=<k> | seq=… verb=…
//! detail=… ok=… total_ns=… phases=label:ns,…`. Every executed command is
//! timed and counted ([`crate::obs`]); slow or failed ones land in the
//! ring with their per-phase breakdown.
//!
//! Responses start with `OK` (payload follows on the same line) or `ERR
//! <message>`. Row cells are comma-separated values: `NULL`, an integer,
//! a double-quoted string (`"ann"`, `\"`/`\\`/`\n`/`\r` escapes; commas
//! inside quotes are cell content), or a bare string without
//! commas/quotes/spaces. Keys use the same value syntax. `APPLY` rows are
//! whitespace-separated, so string cells there cannot contain spaces — a
//! deliberate limitation of the line protocol (use the
//! [`crate::GraphService`] API directly for arbitrary strings).

use crate::analyze::{Algo, AnalyzeParams};
use crate::error::{ServeError, ServeResult};
use crate::service::{GraphService, TableMutation};
use graphgen_reldb::Value;

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `EXTRACT <name> <dsl…>`
    Extract {
        /// Graph name to register.
        name: String,
        /// The DSL program (rest of the line).
        dsl: String,
    },
    /// `CHECK <name> <dsl…>`
    Check {
        /// Graph name the program would be registered under (validated,
        /// never registered).
        name: String,
        /// The DSL program (rest of the line).
        dsl: String,
    },
    /// `EXPLAIN <name> [<dsl…>]`
    Explain {
        /// Graph name: the registration target when a DSL is given, the
        /// registered graph to re-cost when not.
        name: String,
        /// The DSL program to cost (rest of the line); `None` re-costs
        /// the registered graph's frozen plan.
        dsl: Option<String>,
    },
    /// `NEIGHBORS <name> <key>`
    Neighbors {
        /// Graph name.
        name: String,
        /// Vertex key.
        key: Value,
    },
    /// `DEGREE <name> <key>`
    Degree {
        /// Graph name.
        name: String,
        /// Vertex key.
        key: Value,
    },
    /// `ANALYZE <name> <algo> [k=v …]`
    Analyze {
        /// Graph name.
        name: String,
        /// Which analysis to run.
        algo: Algo,
        /// Algorithm parameters (defaults when omitted).
        params: AnalyzeParams,
    },
    /// `ANALYZE STATUS [<name> <algo> [k=v …]]`
    AnalyzeStatus {
        /// `None`: engine-wide counters. `Some`: the newest cached result
        /// for that key group (never computes).
        target: Option<(String, Algo, AnalyzeParams)>,
    },
    /// `APPLY <table> <±row …>`
    Apply {
        /// Target table.
        table: String,
        /// Rows to insert.
        inserts: Vec<Vec<Value>>,
        /// Rows to delete.
        deletes: Vec<Vec<Value>>,
    },
    /// `STATS [<name>]`
    Stats {
        /// Restrict to one graph.
        name: Option<String>,
    },
    /// `COMPACT <name>`
    Compact {
        /// Graph name.
        name: String,
    },
    /// `METRICS`
    Metrics,
    /// `TRACE [<n>]`
    Trace {
        /// Drain at most this many events (all buffered ones if `None`).
        n: Option<usize>,
    },
    /// `PING`
    Ping,
    /// `SHUTDOWN`
    Shutdown,
}

impl Command {
    /// The command's instrument label — the `verb` label of the
    /// `graphgen_request_ns` family (always one of [`crate::obs::VERBS`]).
    pub fn verb(&self) -> &'static str {
        match self {
            Command::Extract { .. } => "extract",
            Command::Check { .. } => "check",
            Command::Explain { .. } => "explain",
            Command::Neighbors { .. } => "neighbors",
            Command::Degree { .. } => "degree",
            Command::Analyze { .. } => "analyze",
            Command::AnalyzeStatus { .. } => "analyze_status",
            Command::Apply { .. } => "apply",
            Command::Stats { .. } => "stats",
            Command::Compact { .. } => "compact",
            Command::Metrics => "metrics",
            Command::Trace { .. } => "trace",
            Command::Ping => "ping",
            Command::Shutdown => "shutdown",
        }
    }

    /// Short operation detail for the slow-op trace: the graph or table
    /// the command addresses (empty for service-wide commands).
    fn detail(&self) -> String {
        match self {
            Command::Extract { name, .. }
            | Command::Check { name, .. }
            | Command::Explain { name, .. }
            | Command::Neighbors { name, .. }
            | Command::Degree { name, .. }
            | Command::Analyze { name, .. }
            | Command::Compact { name } => name.clone(),
            Command::AnalyzeStatus {
                target: Some((name, _, _)),
            } => name.clone(),
            Command::Apply { table, .. } => table.clone(),
            Command::Stats { name: Some(name) } => name.clone(),
            _ => String::new(),
        }
    }
}

fn protocol_err(msg: impl Into<String>) -> ServeError {
    ServeError::Protocol(msg.into())
}

/// Render one value in protocol syntax (inverse of [`parse_value`]).
pub fn format_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    // Literal line breaks would tear the one-line-per-
                    // response framing.
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    c => out.push(c),
                }
            }
            out.push('"');
            out
        }
    }
}

/// Parse one value: `NULL`, an integer, a double-quoted string, or a bare
/// token (taken as a string).
pub fn parse_value(tok: &str) -> ServeResult<Value> {
    if tok == "NULL" {
        return Ok(Value::Null);
    }
    if let Ok(i) = tok.parse::<i64>() {
        return Ok(Value::Int(i));
    }
    if let Some(rest) = tok.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(protocol_err(format!("unterminated string `{tok}`")));
        };
        let mut out = String::with_capacity(body.len());
        let mut chars = body.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                match chars.next() {
                    Some('"') => out.push('"'),
                    Some('\\') => out.push('\\'),
                    Some('n') => out.push('\n'),
                    Some('r') => out.push('\r'),
                    other => {
                        return Err(protocol_err(format!(
                            "bad escape `\\{}` in `{tok}`",
                            other.map(String::from).unwrap_or_default()
                        )))
                    }
                }
            } else {
                out.push(c);
            }
        }
        return Ok(Value::str(out));
    }
    Ok(Value::str(tok))
}

/// Split a row token into cells on commas, treating commas inside a
/// double-quoted cell as content (the splitter honours `\"`/`\\` escapes
/// so a quoted cell ends at its real closing quote) — a value rendered by
/// [`format_value`] always parses back.
fn parse_row(tok: &str) -> ServeResult<Vec<Value>> {
    let mut cells: Vec<String> = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = tok.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => {
                in_quotes = !in_quotes;
                current.push(c);
            }
            '\\' if in_quotes => {
                current.push(c);
                if let Some(escaped) = chars.next() {
                    current.push(escaped);
                }
            }
            ',' if !in_quotes => cells.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    cells.push(current);
    cells.iter().map(|cell| parse_value(cell)).collect()
}

/// Parse one request line. Empty lines and `#` comments yield `None`.
pub fn parse_command(line: &str) -> ServeResult<Option<Command>> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let (verb, rest) = match line.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (line, ""),
    };
    let one_arg = |what: &str| -> ServeResult<&str> {
        if rest.is_empty() || rest.contains(char::is_whitespace) {
            Err(protocol_err(format!("{verb} takes exactly one {what}")))
        } else {
            Ok(rest)
        }
    };
    let name_and_key = || -> ServeResult<(String, Value)> {
        let (name, key) = rest
            .split_once(char::is_whitespace)
            .ok_or_else(|| protocol_err(format!("{verb} <name> <key>")))?;
        Ok((name.to_string(), parse_value(key.trim())?))
    };
    match verb.to_ascii_uppercase().as_str() {
        "EXTRACT" => {
            let (name, dsl) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| protocol_err("EXTRACT <name> <dsl>"))?;
            Ok(Some(Command::Extract {
                name: name.to_string(),
                dsl: dsl.trim().to_string(),
            }))
        }
        "CHECK" => {
            let (name, dsl) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| protocol_err("CHECK <name> <dsl>"))?;
            Ok(Some(Command::Check {
                name: name.to_string(),
                dsl: dsl.trim().to_string(),
            }))
        }
        "EXPLAIN" => {
            if rest.is_empty() {
                return Err(protocol_err("EXPLAIN <name> [<dsl>]"));
            }
            let (name, dsl) = match rest.split_once(char::is_whitespace) {
                Some((name, dsl)) => (name, Some(dsl.trim().to_string())),
                None => (rest, None),
            };
            Ok(Some(Command::Explain {
                name: name.to_string(),
                dsl,
            }))
        }
        "NEIGHBORS" => {
            let (name, key) = name_and_key()?;
            Ok(Some(Command::Neighbors { name, key }))
        }
        "DEGREE" => {
            let (name, key) = name_and_key()?;
            Ok(Some(Command::Degree { name, key }))
        }
        "ANALYZE" => {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            let parse_target = |toks: &[&str]| -> ServeResult<(String, Algo, AnalyzeParams)> {
                let [name, algo_tok, param_toks @ ..] = toks else {
                    return Err(protocol_err("ANALYZE <name> <algo> [k=v …]"));
                };
                let algo = Algo::parse(algo_tok).ok_or_else(|| {
                    protocol_err(format!(
                        "unknown algorithm `{algo_tok}` \
                         (degree, pagerank, components, triangles, clustering)"
                    ))
                })?;
                if algo != Algo::Pagerank && !param_toks.is_empty() {
                    return Err(protocol_err(format!(
                        "{} takes no parameters",
                        algo.label()
                    )));
                }
                Ok((name.to_string(), algo, AnalyzeParams::parse(param_toks)?))
            };
            match toks.split_first() {
                Some((first, rest_toks)) if first.eq_ignore_ascii_case("STATUS") => {
                    let target = if rest_toks.is_empty() {
                        None
                    } else {
                        Some(parse_target(rest_toks)?)
                    };
                    Ok(Some(Command::AnalyzeStatus { target }))
                }
                _ => {
                    let (name, algo, params) = parse_target(&toks)?;
                    Ok(Some(Command::Analyze { name, algo, params }))
                }
            }
        }
        "APPLY" => {
            let (table, ops) = rest
                .split_once(char::is_whitespace)
                .ok_or_else(|| protocol_err("APPLY <table> <±row …>"))?;
            let mut inserts = Vec::new();
            let mut deletes = Vec::new();
            for op in ops.split_whitespace() {
                if let Some(row) = op.strip_prefix('+') {
                    inserts.push(parse_row(row)?);
                } else if let Some(row) = op.strip_prefix('-') {
                    deletes.push(parse_row(row)?);
                } else {
                    return Err(protocol_err(format!("row `{op}` must start with + or -")));
                }
            }
            if inserts.is_empty() && deletes.is_empty() {
                return Err(protocol_err("APPLY needs at least one ±row"));
            }
            Ok(Some(Command::Apply {
                table: table.to_string(),
                inserts,
                deletes,
            }))
        }
        "STATS" => Ok(Some(Command::Stats {
            name: if rest.is_empty() {
                None
            } else {
                Some(one_arg("graph name")?.to_string())
            },
        })),
        "COMPACT" => Ok(Some(Command::Compact {
            name: one_arg("graph name")?.to_string(),
        })),
        "METRICS" => {
            if rest.is_empty() {
                Ok(Some(Command::Metrics))
            } else {
                Err(protocol_err("METRICS takes no argument"))
            }
        }
        "TRACE" => Ok(Some(Command::Trace {
            n: if rest.is_empty() {
                None
            } else {
                Some(
                    one_arg("event count")?
                        .parse()
                        .map_err(|_| protocol_err(format!("bad event count `{rest}`")))?,
                )
            },
        })),
        "PING" => Ok(Some(Command::Ping)),
        "SHUTDOWN" => Ok(Some(Command::Shutdown)),
        other => Err(protocol_err(format!("unknown command `{other}`"))),
    }
}

/// Execute one command against a service and render the response line
/// (without the trailing newline). `Shutdown` responds `OK bye`; the
/// server loop is responsible for actually stopping.
///
/// Every execution is observed: the wall time lands in the per-verb
/// request histogram, the phase spans recorded on this thread (validate /
/// wal_append / patch / publish, scan / join / distinct / build_rep) are
/// folded into their phase families, and a slow or failed command is
/// captured in the trace ring with that breakdown.
pub fn execute(service: &GraphService, cmd: &Command) -> String {
    let t0 = std::time::Instant::now();
    let (result, phases) = graphgen_common::metrics::collect_phases(|| run(service, cmd));
    let ok = result.is_ok();
    let response = match result {
        Ok(payload) if payload.is_empty() => "OK".to_string(),
        Ok(payload) => format!("OK {payload}"),
        Err(e) => sanitize_line(&format!("ERR {e}")),
    };
    service.obs().record_op(
        cmd.verb(),
        cmd.detail(),
        ok,
        u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX),
        phases,
    );
    response
}

/// Flatten any line break a raw client token may have smuggled into an
/// error message — a response must stay one line (CR included: CRLF-framed
/// clients terminate on it).
pub(crate) fn sanitize_line(s: &str) -> String {
    s.replace(['\n', '\r'], " ")
}

fn run(service: &GraphService, cmd: &Command) -> ServeResult<String> {
    use graphgen_graph::GraphRep;
    match cmd {
        Command::Extract { name, dsl } => {
            let snap = service.extract(name, dsl)?;
            Ok(format!(
                "version={} vertices={} edges={}",
                snap.version(),
                snap.handle().num_vertices(),
                snap.handle().expanded_edge_count()
            ))
        }
        Command::Check { name, dsl } => {
            let report = service.check(name, dsl)?;
            if report.diagnostics.is_empty() {
                return Ok("clean".to_string());
            }
            let errors = report
                .diagnostics
                .iter()
                .filter(|d| d.severity == graphgen_dsl::Severity::Error)
                .count();
            let rendered: Vec<String> = report
                .diagnostics
                .iter()
                .map(graphgen_dsl::Diagnostic::one_line)
                .collect();
            Ok(sanitize_line(&format!(
                "errors={errors} warnings={} | {}",
                report.diagnostics.len() - errors,
                rendered.join("; ")
            )))
        }
        Command::Explain { name, dsl } => {
            let rendered = match dsl {
                Some(dsl) => service.explain_dsl(name, dsl)?,
                None => service.explain_graph(name)?,
            };
            // The plan tree is multi-line; the protocol is one line per
            // response. ` | ` separators keep it parseable.
            Ok(sanitize_line(
                &rendered
                    .trim_end_matches('\n')
                    .split('\n')
                    .map(str::trim)
                    .collect::<Vec<_>>()
                    .join(" | "),
            ))
        }
        Command::Neighbors { name, key } => {
            let snap = service.snapshot(name)?;
            let mut neighbors = snap
                .handle()
                .neighbors_by_key(key)
                .ok_or_else(|| protocol_err(format!("unknown key {}", format_value(key))))?;
            neighbors.sort();
            let rendered: Vec<String> = neighbors.into_iter().map(format_value).collect();
            Ok(format!(
                "version={} n={} {}",
                snap.version(),
                rendered.len(),
                rendered.join(" ")
            )
            .trim_end()
            .to_string())
        }
        Command::Degree { name, key } => {
            let snap = service.snapshot(name)?;
            let degree = snap
                .handle()
                .degree_by_key(key)
                .ok_or_else(|| protocol_err(format!("unknown key {}", format_value(key))))?;
            Ok(format!("version={} degree={degree}", snap.version()))
        }
        Command::Analyze { name, algo, params } => {
            let entry = service.analyze(name, *algo, params)?;
            let current = service.snapshot(name)?.version();
            Ok(sanitize_line(&entry.render(current)))
        }
        Command::AnalyzeStatus { target } => match target {
            None => {
                let c = service.analyze_counters();
                Ok(format!(
                    "analyzes={} hits={} warm_starts={} iterations_saved={} cached={}",
                    c.computes, c.hits, c.warm_starts, c.iterations_saved, c.cached
                ))
            }
            Some((name, algo, params)) => {
                let entry = service.analyze_cached(name, *algo, params)?;
                // The graph may have been dropped since: its cache is
                // forgotten with it, so reaching here implies it exists —
                // but stay defensive about the race.
                let current = service.snapshot(name).map(|s| s.version()).unwrap_or(0);
                Ok(sanitize_line(&entry.render(current)))
            }
        },
        Command::Apply {
            table,
            inserts,
            deletes,
        } => {
            let outcome = service.apply(&[TableMutation::new(
                table.clone(),
                inserts.clone(),
                deletes.clone(),
            )])?;
            let graphs: Vec<String> = outcome
                .graphs
                .iter()
                .map(|(name, version, _)| format!("{name}@{version}"))
                .collect();
            Ok(format!("rows={} {}", outcome.rows, graphs.join(" "))
                .trim_end()
                .to_string())
        }
        Command::Stats { name } => {
            let (stats, db_rows) = service.stats();
            let render = |s: &crate::service::GraphStats| {
                format!(
                    "{} version={} vertices={} edges={} rep={} wal_bytes={} \
                     drift={:.2} stale_plan={}",
                    s.name,
                    s.version,
                    s.vertices,
                    s.edges,
                    s.rep,
                    s.wal_bytes,
                    s.drift,
                    s.stale_plan
                )
            };
            match name {
                Some(name) => {
                    let s = stats
                        .iter()
                        .find(|s| &s.name == name)
                        .ok_or_else(|| ServeError::UnknownGraph(name.clone()))?;
                    Ok(render(s))
                }
                None => {
                    let rejects = service.check_reject_counts();
                    let total: u64 = rejects.iter().map(|(_, n)| n).sum();
                    let mut head =
                        format!("graphs={} db_rows={db_rows} rejects={total}", stats.len());
                    if total > 0 {
                        let by_code: Vec<String> = rejects
                            .iter()
                            .map(|(code, n)| format!("{code}:{n}"))
                            .collect();
                        head.push_str(&format!(" reject_codes={}", by_code.join(",")));
                    }
                    let c = service.analyze_counters();
                    head.push_str(&format!(
                        " analyzes={} analyze_hits={} warm_starts={} iterations_saved={}",
                        c.computes, c.hits, c.warm_starts, c.iterations_saved
                    ));
                    let mut parts = vec![head];
                    parts.extend(stats.iter().map(|s| format!("| {}", render(s))));
                    Ok(parts.join(" "))
                }
            }
        }
        Command::Compact { name } => {
            service.compact(name)?;
            Ok(String::new())
        }
        Command::Metrics => {
            // The canonical exposition is multi-line; the wire carries the
            // escaped one-line form (see the module docs). `--metrics-dump`
            // prints the canonical text without the protocol in between.
            Ok(graphgen_common::metrics::escape_exposition(
                &service.metrics_text(),
            ))
        }
        Command::Trace { n } => {
            let events = service.obs().trace().drain(*n);
            let mut out = format!("n={}", events.len());
            for event in &events {
                out.push_str(" | ");
                out.push_str(&event.render());
            }
            Ok(sanitize_line(&out))
        }
        Command::Ping => Ok("pong".to_string()),
        Command::Shutdown => Ok("bye".to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        for v in [
            Value::Null,
            Value::int(-42),
            Value::str("plain"),
            Value::str("with \"quotes\" and \\slash"),
            Value::str("спасибо"),
            Value::str("line\nbreak\rcarriage"),
        ] {
            let rendered = format_value(&v);
            // A rendered value must never tear the one-line framing.
            assert!(
                !rendered.contains('\n') && !rendered.contains('\r'),
                "{rendered:?}"
            );
            assert_eq!(parse_value(&rendered).unwrap(), v);
        }
        // Bare tokens parse as strings; integers as ints.
        assert_eq!(parse_value("7").unwrap(), Value::int(7));
        assert_eq!(parse_value("abc").unwrap(), Value::str("abc"));
        assert!(parse_value("\"unterminated").is_err());
        assert!(parse_value("\"bad\\escape\"").is_err());
    }

    #[test]
    fn error_messages_never_break_framing() {
        // A raw CR mid-token survives BufRead::lines and ends up echoed
        // inside the error message; the rendered line must stay one line.
        let err = parse_value("\"a\rb").unwrap_err();
        let line = sanitize_line(&format!("ERR {err}"));
        assert!(!line.contains('\n') && !line.contains('\r'), "{line:?}");
    }

    #[test]
    fn command_parsing() {
        assert_eq!(parse_command("").unwrap(), None);
        assert_eq!(parse_command("# comment").unwrap(), None);
        assert_eq!(parse_command("PING").unwrap(), Some(Command::Ping));
        assert_eq!(parse_command("shutdown").unwrap(), Some(Command::Shutdown));
        let cmd = parse_command("EXTRACT g Nodes(ID) :- T(ID).")
            .unwrap()
            .unwrap();
        assert_eq!(
            cmd,
            Command::Extract {
                name: "g".into(),
                dsl: "Nodes(ID) :- T(ID).".into()
            }
        );
        let cmd = parse_command("CHECK g Nodes(ID) :- T(ID).")
            .unwrap()
            .unwrap();
        assert_eq!(
            cmd,
            Command::Check {
                name: "g".into(),
                dsl: "Nodes(ID) :- T(ID).".into()
            }
        );
        // Rows are whitespace-separated, so string cells must not contain
        // spaces; commas inside quoted cells are content, not separators.
        let cmd = parse_command("APPLY T +1,2 -3,\"x,y\"").unwrap().unwrap();
        assert_eq!(
            cmd,
            Command::Apply {
                table: "T".into(),
                inserts: vec![vec![Value::int(1), Value::int(2)]],
                deletes: vec![vec![Value::int(3), Value::str("x,y")]],
            }
        );
        // A value the protocol itself renders always parses back as a row
        // cell (escaped quotes, backslashes, commas).
        let tricky = Value::str("a,\"b\\c\",d");
        let cmd = parse_command(&format!("APPLY T +7,{}", format_value(&tricky)))
            .unwrap()
            .unwrap();
        assert_eq!(
            cmd,
            Command::Apply {
                table: "T".into(),
                inserts: vec![vec![Value::int(7), tricky]],
                deletes: vec![],
            }
        );
        assert_eq!(
            parse_command("NEIGHBORS g 4").unwrap().unwrap(),
            Command::Neighbors {
                name: "g".into(),
                key: Value::int(4)
            }
        );
        assert_eq!(
            parse_command("STATS g").unwrap().unwrap(),
            Command::Stats {
                name: Some("g".into())
            }
        );
        assert_eq!(
            parse_command("EXPLAIN g").unwrap().unwrap(),
            Command::Explain {
                name: "g".into(),
                dsl: None
            }
        );
        assert_eq!(
            parse_command("EXPLAIN g Nodes(ID) :- T(ID).")
                .unwrap()
                .unwrap(),
            Command::Explain {
                name: "g".into(),
                dsl: Some("Nodes(ID) :- T(ID).".into())
            }
        );
        for bad in [
            "EXTRACT g",
            "CHECK g",
            "APPLY T",
            "APPLY T 1,2",
            "NOPE",
            "DEGREE g",
            "STATS a b",
            "EXPLAIN",
        ] {
            assert!(parse_command(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn analyze_parsing() {
        assert_eq!(
            parse_command("ANALYZE g degree").unwrap().unwrap(),
            Command::Analyze {
                name: "g".into(),
                algo: Algo::Degree,
                params: AnalyzeParams::default(),
            }
        );
        let cmd = parse_command("analyze g PageRank damping=0.9 iters=10")
            .unwrap()
            .unwrap();
        match cmd {
            Command::Analyze { name, algo, params } => {
                assert_eq!(name, "g");
                assert_eq!(algo, Algo::Pagerank);
                assert_eq!(params.damping, 0.9);
                assert_eq!(params.max_iterations, 10);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(
            parse_command("ANALYZE STATUS").unwrap().unwrap(),
            Command::AnalyzeStatus { target: None }
        );
        assert_eq!(
            parse_command("ANALYZE status g cc").unwrap().unwrap(),
            Command::AnalyzeStatus {
                target: Some(("g".into(), Algo::Components, AnalyzeParams::default()))
            }
        );
        for bad in [
            "ANALYZE",
            "ANALYZE g",
            "ANALYZE g nope",
            "ANALYZE g degree damping=0.9", // params only for pagerank
            "ANALYZE g pagerank damping=2",
            "ANALYZE STATUS g",
        ] {
            assert!(parse_command(bad).is_err(), "{bad}");
        }
    }

    #[test]
    fn analyze_verb_end_to_end() {
        use crate::service::tests::{fig1_db, Q1};
        let service = GraphService::in_memory(fig1_db());
        let run = |line: &str| execute(&service, &parse_command(line).unwrap().unwrap());
        run(&format!("EXTRACT g {Q1}"));
        let resp = run("ANALYZE g degree");
        assert!(
            resp.starts_with("OK version=1 fresh=true algo=degree path="),
            "{resp}"
        );
        assert!(resp.contains("warm=false"), "{resp}");
        assert!(resp.contains("n=5"), "{resp}");
        // Cached: second request is a hit, STATUS reads without computing.
        run("ANALYZE g degree");
        let resp = run("ANALYZE STATUS g degree");
        assert!(resp.starts_with("OK version=1 fresh=true"), "{resp}");
        let resp = run("ANALYZE STATUS");
        assert_eq!(
            resp,
            "OK analyzes=1 hits=1 warm_starts=0 iterations_saved=0 cached=1"
        );
        // A publish bumps the version; the old entry stays readable but
        // stale-tagged until a fresh ANALYZE lands.
        run("APPLY AuthorPub +2,3");
        let resp = run("ANALYZE STATUS g degree");
        assert!(resp.starts_with("OK version=1 fresh=false"), "{resp}");
        let resp = run("ANALYZE g pagerank");
        assert!(resp.contains("top="), "{resp}");
        // Bare STATS carries the engine counters.
        let resp = run("STATS");
        assert!(resp.contains("analyzes=2 analyze_hits=1"), "{resp}");
        // Errors are ERR lines.
        assert!(run("ANALYZE nope degree").starts_with("ERR unknown graph"));
        assert!(run("ANALYZE STATUS g triangles").starts_with("ERR analyze: no cached"));
    }

    /// The EXPLAIN verb at both arities: costing a program on live
    /// statistics, and re-costing a registered graph's frozen plan.
    #[test]
    fn explain_verb() {
        use crate::service::tests::{fig1_db, Q1};
        let service = GraphService::in_memory(fig1_db());
        let run = |line: &str| execute(&service, &parse_command(line).unwrap().unwrap());
        // Ad-hoc program: one line, plan tree flattened with ` | `.
        let resp = run(&format!("EXPLAIN pre {Q1}"));
        assert!(
            resp.starts_with("OK chain 1: AuthorPub ⋈ AuthorPub | plan: cost="),
            "{resp}"
        );
        assert!(resp.contains("fingerprint="), "{resp}");
        assert!(!resp.contains('\n'), "{resp}");
        // Nothing was registered by the cost-only verb.
        assert!(run("EXPLAIN pre").starts_with("ERR unknown graph"));
        // Registered graph: drift verdict plus frozen-vs-live plans.
        run(&format!("EXTRACT g {Q1}"));
        let resp = run("EXPLAIN g");
        assert!(
            resp.starts_with("OK graph g: drift=1.00 stale_plan=false"),
            "{resp}"
        );
        assert!(resp.contains("frozen chain 1:"), "{resp}");
        assert!(resp.contains("live chain 1:"), "{resp}");
        // Bad names mirror EXTRACT validation.
        assert!(run("EXPLAIN bad..name PING").starts_with("ERR bad graph name"));
    }

    #[test]
    fn check_verb_and_rejection_counters() {
        use crate::service::tests::{fig1_db, Q1};
        let service = GraphService::in_memory(fig1_db());
        let run = |line: &str| execute(&service, &parse_command(line).unwrap().unwrap());
        // A clean program: OK, nothing registered.
        assert_eq!(run(&format!("CHECK pre {Q1}")), "OK clean");
        assert!(run("STATS pre").starts_with("ERR unknown graph"));
        // A broken program: coded one-line diagnostics, still an OK reply
        // (the *check* succeeded), and no rejection counted.
        let bad = "Nodes(ID, N) :- Writer(ID, N). \
                   Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).";
        let resp = run(&format!("CHECK pre {bad}"));
        assert!(
            resp.starts_with("OK errors=1 warnings=0 | E001 unknown-relation at 1:17"),
            "{resp}"
        );
        assert!(run("STATS").contains("rejects=0"), "{}", run("STATS"));
        // Name validation mirrors EXTRACT.
        assert!(run("CHECK bad..name PING").starts_with("ERR bad graph name"));
        // A rejected EXTRACT is a coded ERR line and bumps the counters.
        let resp = run(&format!("EXTRACT bad {bad}"));
        assert!(
            resp.starts_with("ERR check failed: E001 unknown-relation at 1:17"),
            "{resp}"
        );
        let resp = run("STATS");
        assert!(resp.contains("rejects=1 reject_codes=E001:1"), "{resp}");
        // Parse failures count under E000.
        assert!(run("EXTRACT bad Nodes(").starts_with("ERR"));
        let resp = run("STATS");
        assert!(
            resp.contains("rejects=2 reject_codes=E000:1,E001:1"),
            "{resp}"
        );
    }

    #[test]
    fn execute_against_service() {
        use crate::service::tests::{fig1_db, Q1};
        let service = GraphService::in_memory(fig1_db());
        let run = |line: &str| execute(&service, &parse_command(line).unwrap().unwrap());
        assert_eq!(run("PING"), "OK pong");
        let resp = run(&format!("EXTRACT g {Q1}"));
        assert!(resp.starts_with("OK version=1 vertices=5"), "{resp}");
        let resp = run("NEIGHBORS g 4");
        assert!(resp.starts_with("OK version=1 n=4"), "{resp}");
        assert_eq!(run("DEGREE g 4"), "OK version=1 degree=4");
        let resp = run("APPLY AuthorPub +2,3");
        assert!(resp.starts_with("OK rows=1 g@2"), "{resp}");
        let resp = run("NEIGHBORS g 2");
        assert!(resp.starts_with("OK version=2 n=4"), "{resp}");
        let resp = run("STATS g");
        assert!(resp.contains("version=2"), "{resp}");
        let resp = run("STATS");
        assert!(resp.contains("graphs=1"), "{resp}");
        // Errors come back as ERR lines, not broken connections.
        assert!(run("NEIGHBORS nope 1").starts_with("ERR unknown graph"));
        assert!(run("NEIGHBORS g 999").starts_with("ERR"));
        assert!(run("STATS nope").starts_with("ERR"));
    }
}
