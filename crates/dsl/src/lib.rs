//! `graphgen-dsl` — the Datalog-based graph extraction DSL (§3.2).
//!
//! A graph specification is a sequence of rules:
//!
//! ```text
//! Nodes(ID, Name) :- Author(ID, Name).
//! Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
//! ```
//!
//! `Nodes` declares the real nodes (first head attribute = unique id, the
//! rest become vertex properties); `Edges` declares the edge view (first two
//! head attributes = endpoint ids). Multiple `Nodes`/`Edges` statements
//! build heterogeneous graphs / unions. The subset implemented here matches
//! the paper's Case 1 (§3.3): **non-recursive**, **aggregation-free** rules
//! whose `Edges` bodies are acyclic conjunctive queries; bodies are
//! normalized into join *chains* `R1(ID1,a1), R2(a1,a2), …, Rn(a_{n-1},ID2)`
//! with constant selections allowed in any atom ([`mod@analyze`]).

pub mod analyze;
pub mod ast;
pub mod check;
pub mod cost;
pub mod diag;
pub mod lexer;
pub mod parser;
pub mod span;

pub use analyze::{analyze, ChainAtom, ConstFilter, EdgeChain, GraphSpec, NodesView};
pub use ast::{Atom, HeadKind, Program, Rule, Term};
pub use check::{
    check_program, check_source, CheckCatalog, CheckOptions, CheckReport, ColType, RelationInfo,
};
pub use cost::{estimate_chain, ChainCost, JoinEstimate, PlanFingerprint};
pub use diag::{render_all, Code, Diagnostic, Severity};
pub use parser::{parse, ParseError};
pub use span::Span;

/// Parse and analyze in one call: text in, validated extraction spec out.
///
/// Runs the full static analyzer ([`check_program`]) without a catalog;
/// the first error (with its span) becomes a [`ParseError::Semantic`].
pub fn compile(text: &str) -> Result<GraphSpec, ParseError> {
    let program = parse(text)?;
    let report = check_program(&program, None, &CheckOptions::default());
    if let Some(d) = report.first_error() {
        return Err(ParseError::Semantic(d.clone()));
    }
    Ok(report
        .spec
        .expect("check_program returns a spec when there are no errors"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_q1() {
        let spec = compile(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).",
        )
        .unwrap();
        assert_eq!(spec.nodes.len(), 1);
        assert_eq!(spec.edges.len(), 1);
        assert_eq!(spec.edges[0].steps.len(), 2);
    }

    #[test]
    fn compile_rejects_garbage() {
        assert!(compile("Nodes(").is_err());
        assert!(compile("Foo(X) :- Bar(X).").is_err());
    }
}
