//! `graphgen-check` — static analyzer for extraction DSL files.
//!
//! Validates `.ggd` query files against an optional `.ggs` schema
//! description, printing rustc-style caret diagnostics with stable codes.
//!
//! ```text
//! graphgen-check --schema dblp.ggs --deny-warnings queries/*.ggd
//! ```
//!
//! Exit codes: `0` all files clean, `1` diagnostics reported (errors, or
//! warnings under `--deny-warnings`), `2` usage or I/O failure.

use graphgen_dsl::{check_source, render_all, CheckCatalog, CheckOptions};
use std::process::ExitCode;

const USAGE: &str = "usage: graphgen-check [options] <file.ggd>...

options:
  --schema <file.ggs>   check against a schema description (enables
                        unknown-relation/arity/type/statistics checks)
  --lint <groups>       enable opt-in lint groups, comma separated:
                        conversion (W103), plan (W105), all
  --factor <f>          large-output factor for plan lints (default 2.0)
  --deny-warnings       exit 1 on warnings, not just errors
  -q, --quiet           suppress per-file OK lines
  -h, --help            show this help

exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage/io error";

struct Args {
    schema: Option<String>,
    opts: CheckOptions,
    deny_warnings: bool,
    quiet: bool,
    files: Vec<String>,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        schema: None,
        opts: CheckOptions::default(),
        deny_warnings: false,
        quiet: false,
        files: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schema" => {
                args.schema = Some(
                    it.next()
                        .ok_or("--schema needs a file argument")?
                        .to_string(),
                );
            }
            "--lint" => {
                let groups = it.next().ok_or("--lint needs a group list")?;
                for g in groups.split(',') {
                    args.opts.enable_lint(g.trim())?;
                }
            }
            "--factor" => {
                let f = it.next().ok_or("--factor needs a number")?;
                args.opts.large_output_factor =
                    f.parse().map_err(|e| format!("bad --factor `{f}`: {e}"))?;
            }
            "--deny-warnings" => args.deny_warnings = true,
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => args.files.push(file.to_string()),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".into());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let catalog = match &args.schema {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match CheckCatalog::parse(&text) {
                Ok(cat) => Some(cat),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: cannot read schema `{path}`: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut failed = false;
    for path in &args.files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let report = check_source(&source, catalog.as_ref(), &args.opts);
        match render_all(&report.diagnostics, &source, path) {
            Some(rendered) => {
                print!("{rendered}");
                failed |= report.has_errors() || (args.deny_warnings && report.has_warnings());
            }
            None => {
                if !args.quiet {
                    println!("{path}: OK");
                }
            }
        }
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
