//! Tokenizer for the extraction DSL. Every token carries a [`Span`] so
//! downstream diagnostics can point at the offending source text.

use crate::diag::{Code, Diagnostic};
use crate::span::Span;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Identifier (relation name or variable).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Single- or double-quoted string literal.
    Str(String),
    /// `_`
    Wildcard,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `:-`
    Turnstile,
    /// `.`
    Dot,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Int(v) => write!(f, "{v}"),
            Token::Str(s) => write!(f, "'{s}'"),
            Token::Wildcard => write!(f, "_"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Turnstile => write!(f, ":-"),
            Token::Dot => write!(f, "."),
        }
    }
}

/// Line/column bookkeeping while scanning left to right.
struct Cursor {
    line: u32,
    line_start: usize,
}

impl Cursor {
    fn span(&self, offset: usize, len: usize) -> Span {
        Span::new(
            offset,
            len,
            self.line,
            (offset - self.line_start) as u32 + 1,
        )
    }
}

/// Tokenize; returns `(token, span)` pairs or an `E000` diagnostic.
pub fn tokenize(text: &str) -> Result<Vec<(Token, Span)>, Diagnostic> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut cur = Cursor {
        line: 1,
        line_start: 0,
    };
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            '\n' => {
                i += 1;
                cur.line += 1;
                cur.line_start = i;
            }
            ' ' | '\t' | '\r' => i += 1,
            '%' | '#' => {
                // comment to end of line
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push((Token::LParen, cur.span(i, 1)));
                i += 1;
            }
            ')' => {
                tokens.push((Token::RParen, cur.span(i, 1)));
                i += 1;
            }
            ',' => {
                tokens.push((Token::Comma, cur.span(i, 1)));
                i += 1;
            }
            '.' => {
                tokens.push((Token::Dot, cur.span(i, 1)));
                i += 1;
            }
            ':' => {
                if bytes.get(i + 1) == Some(&b'-') {
                    tokens.push((Token::Turnstile, cur.span(i, 2)));
                    i += 2;
                } else {
                    return Err(
                        Diagnostic::new(Code::Syntax, cur.span(i, 1), "expected `:-`")
                            .with_help("rules are written `Head(...) :- Body(...), ... .`"),
                    );
                }
            }
            '\'' | '"' => {
                let quote = bytes[i];
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote && bytes[j] != b'\n' {
                    j += 1;
                }
                if j >= bytes.len() || bytes[j] != quote {
                    return Err(Diagnostic::new(
                        Code::Syntax,
                        cur.span(i, j - i),
                        "unterminated string literal",
                    )
                    .with_help(format!(
                        "add a closing `{}` before the end of the line",
                        quote as char
                    )));
                }
                tokens.push((
                    Token::Str(text[start..j].to_string()),
                    cur.span(i, j + 1 - i),
                ));
                i = j + 1;
            }
            '_' if !bytes
                .get(i + 1)
                .is_some_and(|b| b.is_ascii_alphanumeric() || *b == b'_') =>
            {
                tokens.push((Token::Wildcard, cur.span(i, 1)));
                i += 1;
            }
            c if c.is_ascii_digit() || c == '-' => {
                let start = i;
                i += 1;
                while i < bytes.len() && bytes[i].is_ascii_digit() {
                    i += 1;
                }
                let lit = &text[start..i];
                let v: i64 = lit.parse().map_err(|e| {
                    Diagnostic::new(
                        Code::Syntax,
                        cur.span(start, i - start),
                        format!("bad integer `{lit}`: {e}"),
                    )
                })?;
                tokens.push((Token::Int(v), cur.span(start, i - start)));
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                    i += 1;
                }
                tokens.push((
                    Token::Ident(text[start..i].to_string()),
                    cur.span(start, i - start),
                ));
            }
            other => {
                return Err(Diagnostic::new(
                    Code::Syntax,
                    cur.span(i, c.len_utf8()),
                    format!("unexpected character `{other}`"),
                ))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_q1() {
        let toks = tokenize("Edges(ID1, ID2) :- AP(ID1, P), AP(ID2, P).").unwrap();
        let kinds: Vec<&Token> = toks.iter().map(|(t, _)| t).collect();
        assert_eq!(kinds[0], &Token::Ident("Edges".into()));
        assert_eq!(kinds[1], &Token::LParen);
        assert!(kinds.contains(&&Token::Turnstile));
        assert_eq!(kinds.last().unwrap(), &&Token::Dot);
    }

    #[test]
    fn strings_ints_wildcards() {
        let toks = tokenize("R(_, 'abc', \"d,e\", -42, 7)").unwrap();
        let kinds: Vec<Token> = toks.into_iter().map(|(t, _)| t).collect();
        assert!(kinds.contains(&Token::Wildcard));
        assert!(kinds.contains(&Token::Str("abc".into())));
        assert!(kinds.contains(&Token::Str("d,e".into())));
        assert!(kinds.contains(&Token::Int(-42)));
        assert!(kinds.contains(&Token::Int(7)));
    }

    #[test]
    fn comments_are_skipped() {
        let toks = tokenize("% a comment\nR(X). # trailing\n").unwrap();
        assert_eq!(toks.len(), 5);
    }

    #[test]
    fn underscore_prefixed_ident_is_ident() {
        let toks = tokenize("_foo").unwrap();
        assert_eq!(toks[0].0, Token::Ident("_foo".into()));
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let toks = tokenize("Nodes(ID)\n  :- Author(ID).").unwrap();
        let (_, first) = &toks[0];
        assert_eq!(
            (first.line, first.col, first.offset, first.len),
            (1, 1, 0, 5)
        );
        let turnstile = toks
            .iter()
            .find(|(t, _)| *t == Token::Turnstile)
            .map(|(_, s)| *s)
            .unwrap();
        assert_eq!((turnstile.line, turnstile.col, turnstile.len), (2, 3, 2));
        let author = toks
            .iter()
            .find(|(t, _)| *t == Token::Ident("Author".into()))
            .map(|(_, s)| *s)
            .unwrap();
        assert_eq!((author.line, author.col, author.len), (2, 6, 6));
    }

    #[test]
    fn string_span_includes_quotes() {
        let toks = tokenize("R('ab')").unwrap();
        let (_, s) = &toks[2];
        assert_eq!((s.offset, s.len, s.col), (2, 4, 3));
    }

    #[test]
    fn errors_carry_spans() {
        let err = tokenize("R(x) : y").unwrap_err();
        assert_eq!(err.code.code(), "E000");
        assert_eq!((err.span.line, err.span.col), (1, 6));
        let err = tokenize("R(X).\n'unterminated").unwrap_err();
        assert_eq!((err.span.line, err.span.col), (2, 1));
        let err = tokenize("R(@)").unwrap_err();
        assert_eq!((err.span.line, err.span.col), (1, 3));
    }
}
