//! Heap-size accounting.
//!
//! The paper reports memory footprints for every representation (Table 3,
//! Table 4, Fig. 10 discussion). We reproduce those columns by having every
//! data structure report its estimated heap usage through this trait. This
//! is an *estimate* — it counts the payload bytes of owned heap allocations
//! (vector buffers, hash-table tables, boxed slices) using their capacities,
//! without allocator bookkeeping overhead.

/// Types that can estimate the heap bytes they own.
pub trait ByteSize {
    /// Estimated bytes of owned heap storage (excluding `size_of::<Self>()`).
    fn heap_bytes(&self) -> usize;

    /// Heap bytes plus the inline size of the value itself.
    fn total_bytes(&self) -> usize {
        self.heap_bytes() + std::mem::size_of_val(self)
    }
}

impl<T: ByteSize> ByteSize for Vec<T> {
    fn heap_bytes(&self) -> usize {
        self.capacity() * std::mem::size_of::<T>()
            + self.iter().map(ByteSize::heap_bytes).sum::<usize>()
    }
}

impl ByteSize for String {
    fn heap_bytes(&self) -> usize {
        self.capacity()
    }
}

/// Marker macro: implement `ByteSize` for plain-old-data types that own no
/// heap memory themselves.
macro_rules! impl_bytesize_pod {
    ($($ty:ty),* $(,)?) => {
        $(impl ByteSize for $ty {
            fn heap_bytes(&self) -> usize { 0 }
        })*
    };
}

impl_bytesize_pod!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64, bool, char);

impl<A: ByteSize, B: ByteSize> ByteSize for (A, B) {
    fn heap_bytes(&self) -> usize {
        self.0.heap_bytes() + self.1.heap_bytes()
    }
}

impl<T: ByteSize> ByteSize for Option<T> {
    fn heap_bytes(&self) -> usize {
        self.as_ref().map_or(0, ByteSize::heap_bytes)
    }
}

impl<T: ByteSize> ByteSize for Box<[T]> {
    fn heap_bytes(&self) -> usize {
        self.len() * std::mem::size_of::<T>() + self.iter().map(ByteSize::heap_bytes).sum::<usize>()
    }
}

impl<K, V, S> ByteSize for std::collections::HashMap<K, V, S>
where
    K: ByteSize,
    V: ByteSize,
{
    fn heap_bytes(&self) -> usize {
        // A hashbrown table stores (K, V) pairs plus one control byte per
        // slot; capacity() is the usable slot count.
        let slot = std::mem::size_of::<(K, V)>() + 1;
        self.capacity() * slot
            + self
                .iter()
                .map(|(k, v)| k.heap_bytes() + v.heap_bytes())
                .sum::<usize>()
    }
}

impl<K, S> ByteSize for std::collections::HashSet<K, S>
where
    K: ByteSize,
{
    fn heap_bytes(&self) -> usize {
        let slot = std::mem::size_of::<K>() + 1;
        self.capacity() * slot + self.iter().map(ByteSize::heap_bytes).sum::<usize>()
    }
}

impl ByteSize for crate::Bitmap {
    fn heap_bytes(&self) -> usize {
        crate::Bitmap::heap_bytes(self)
    }
}

/// Format a byte count as a human-readable string (e.g. `1.42 GB`).
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KB", "MB", "GB", "TB"];
    let mut value = bytes as f64;
    let mut unit = 0;
    while value >= 1024.0 && unit < UNITS.len() - 1 {
        value /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes} B")
    } else {
        format!("{value:.2} {}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vec_of_pod_counts_capacity() {
        let v: Vec<u32> = Vec::with_capacity(100);
        assert_eq!(v.heap_bytes(), 400);
    }

    #[test]
    fn nested_vec_counts_inner_buffers() {
        let v: Vec<Vec<u8>> = vec![Vec::with_capacity(10), Vec::with_capacity(20)];
        let expected = v.capacity() * std::mem::size_of::<Vec<u8>>() + 10 + 20;
        assert_eq!(v.heap_bytes(), expected);
    }

    #[test]
    fn string_counts_capacity() {
        let s = String::with_capacity(64);
        assert_eq!(s.heap_bytes(), 64);
    }

    #[test]
    fn human_bytes_formats() {
        assert_eq!(human_bytes(512), "512 B");
        assert_eq!(human_bytes(2048), "2.00 KB");
        assert_eq!(human_bytes(3 * 1024 * 1024), "3.00 MB");
    }

    #[test]
    fn option_and_tuple() {
        let some: Option<Vec<u8>> = Some(Vec::with_capacity(8));
        assert_eq!(some.heap_bytes(), 8);
        let none: Option<Vec<u8>> = None;
        assert_eq!(none.heap_bytes(), 0);
        let pair = (Vec::<u8>::with_capacity(4), 0u64);
        assert_eq!(pair.heap_bytes(), 4);
    }
}
