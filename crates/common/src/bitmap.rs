//! A compact, fixed-capacity bitmap.
//!
//! The BITMAP representations (§4.3, §5.1 of the paper) attach, to a virtual
//! node, one bitmap per interested real source node; bit `i` says whether the
//! traversal coming from that source should follow the virtual node's `i`-th
//! outgoing edge. Bitmaps are sized once (to the out-degree of the virtual
//! node) and then only read/set, so a plain `Box<[u64]>` is ideal.

/// A fixed-size bitmap over `len` bits, stored as 64-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bitmap {
    words: Box<[u64]>,
    len: usize,
}

impl Bitmap {
    /// Create a bitmap with `len` bits, all zero.
    pub fn zeros(len: usize) -> Self {
        Self {
            words: vec![0u64; len.div_ceil(64)].into_boxed_slice(),
            len,
        }
    }

    /// Create a bitmap with `len` bits, all one.
    pub fn ones(len: usize) -> Self {
        let mut bitmap = Self {
            words: vec![u64::MAX; len.div_ceil(64)].into_boxed_slice(),
            len,
        };
        bitmap.clear_tail();
        bitmap
    }

    /// Zero out the bits beyond `len` in the last word so that `count_ones`
    /// and equality behave.
    fn clear_tail(&mut self) {
        let tail_bits = self.len % 64;
        if tail_bits != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail_bits) - 1;
            }
        }
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bitmap has zero bits.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Read bit `i`. Panics if out of range (debug builds).
    #[inline]
    pub fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len, "bit index {i} out of range {}", self.len);
        (self.words[i / 64] >> (i % 64)) & 1 == 1
    }

    /// Set bit `i` to one.
    #[inline]
    pub fn set(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Set bit `i` to zero.
    #[inline]
    pub fn unset(&mut self, i: usize) {
        debug_assert!(i < self.len);
        self.words[i / 64] &= !(1u64 << (i % 64));
    }

    /// Number of set bits.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// True if no bit is set.
    pub fn all_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Iterate over the indices of set bits in ascending order.
    pub fn iter_ones(&self) -> IterOnes<'_> {
        IterOnes {
            words: &self.words,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// Heap bytes used by the word storage.
    pub fn heap_bytes(&self) -> usize {
        self.words.len() * std::mem::size_of::<u64>()
    }

    /// The raw 64-bit words backing the bitmap (tail bits beyond
    /// [`Bitmap::len`] are always zero). Used by the snapshot codec.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Rebuild a bitmap from raw words and a bit length (the inverse of
    /// [`Bitmap::words`]). `words` must hold exactly `len.div_ceil(64)`
    /// entries; tail bits beyond `len` are cleared.
    pub fn from_words(words: Vec<u64>, len: usize) -> Option<Self> {
        if words.len() != len.div_ceil(64) {
            return None;
        }
        let mut bitmap = Self {
            words: words.into_boxed_slice(),
            len,
        };
        bitmap.clear_tail();
        Some(bitmap)
    }
}

/// Iterator over set-bit indices of a [`Bitmap`].
pub struct IterOnes<'a> {
    words: &'a [u64],
    word_idx: usize,
    current: u64,
}

impl Iterator for IterOnes<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.words.len() {
                return None;
            }
            self.current = self.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * 64 + bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_ones() {
        let z = Bitmap::zeros(100);
        assert_eq!(z.count_ones(), 0);
        assert!(z.all_zero());
        let o = Bitmap::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(!o.all_zero());
        for i in 0..100 {
            assert!(!z.get(i));
            assert!(o.get(i));
        }
    }

    #[test]
    fn ones_clears_tail_bits() {
        // 65 bits spans two words; bits 65..128 of the second word must be 0
        // or count_ones over-reports.
        let o = Bitmap::ones(65);
        assert_eq!(o.count_ones(), 65);
    }

    #[test]
    fn set_unset_roundtrip() {
        let mut b = Bitmap::zeros(130);
        b.set(0);
        b.set(64);
        b.set(129);
        assert!(b.get(0) && b.get(64) && b.get(129));
        assert_eq!(b.count_ones(), 3);
        b.unset(64);
        assert!(!b.get(64));
        assert_eq!(b.count_ones(), 2);
    }

    #[test]
    fn iter_ones_matches_gets() {
        let mut b = Bitmap::zeros(200);
        let set_bits = [0usize, 1, 63, 64, 65, 127, 128, 199];
        for &i in &set_bits {
            b.set(i);
        }
        let collected: Vec<usize> = b.iter_ones().collect();
        assert_eq!(collected, set_bits);
    }

    #[test]
    fn empty_bitmap() {
        let b = Bitmap::zeros(0);
        assert!(b.is_empty());
        assert_eq!(b.iter_ones().count(), 0);
        assert!(b.all_zero());
    }
}
