//! Condensed-direct kernels: analytics *on the condensed structure itself*.
//!
//! The generic kernels in this crate go through `for_each_neighbor`, which
//! on condensed representations runs a DFS with a dedup hashset per vertex
//! — correct, but it pays the on-the-fly expansion cost every superstep.
//! This module exploits the structure instead: on a **single-layer** graph a
//! virtual node `V` stands for a clique (every real node pointing at `V`
//! logically reaches every real target of `V`), so per-vertex aggregates can
//! be computed by *weighting through the virtual node* — one precomputed
//! per-virtual sum replaces `|V|` neighbor visits.
//!
//! Two strategies, chosen by whether the structure can store duplicate
//! paths:
//!
//! * **aggregated** (DEDUP-1: at most one stored path per logical edge):
//!   `deg(u) = |direct(u)| + Σ_{V ∈ virt(u)} (alive(V) − [u ∈ out(V)])`, and
//!   the PageRank neighbor sum uses a per-iteration per-virtual sum `S(V)`
//!   the same way. `O(stored edges)` per pass, no hashing at all.
//! * **merged** (C-DUP / the BITMAP core, where two virtual nodes may share
//!   a pair): per vertex, gather the real targets of the direct list and of
//!   each virtual child into a reused scratch buffer, sort, dedup. Still no
//!   DFS bookkeeping and no expanded adjacency is ever materialized.
//!
//! Both also come with **seeded** entry points (PageRank from a previous
//! rank vector, components from previous labels) so a server can warm-start
//! after a small delta; [`pagerank_seeded`] is the representation-generic
//! fall-back that the multi-layer / EXP / DEDUP-2 paths share.

use crate::degree::degrees;
use crate::vertex_centric::{run_vertex_centric, VertexCentricConfig, VertexProgram};
use graphgen_graph::{Adj, CondensedGraph, GraphRep, RealId, VirtId};

/// Which condensed-direct strategy a dispatch picked (for reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CondensedPath {
    /// Virtual-node weighting on a duplicate-free single-layer structure.
    Aggregated,
    /// Sort-merge dedup over stored lists (duplicates possible).
    Merged,
    /// Generic traversal through `for_each_neighbor` (any representation).
    Traversal,
}

impl CondensedPath {
    /// Stable lower-case name (protocol rendering).
    pub fn label(self) -> &'static str {
        match self {
            CondensedPath::Aggregated => "aggregated",
            CondensedPath::Merged => "merged",
            CondensedPath::Traversal => "traversal",
        }
    }
}

/// Per-virtual-node count of *alive* real targets (the clique size a
/// virtual node currently stands for). Virtual→virtual targets are not
/// counted — callers require a single-layer structure.
pub fn virtual_alive_counts(g: &CondensedGraph) -> Vec<u32> {
    (0..g.num_virtual())
        .map(|v| {
            g.virt_out(VirtId(v as u32))
                .iter()
                .filter_map(|a| a.as_real())
                .filter(|r| g.is_alive(*r))
                .count() as u32
        })
        .collect()
}

#[inline]
fn member(g: &CondensedGraph, v: VirtId, u: RealId) -> bool {
    // Sorted lists put real targets first, so the real prefix is
    // binary-searchable with the packed representation.
    g.virt_out(v).binary_search(&Adj::real(u)).is_ok()
}

/// Run `f(u)` for every slot chunk-parallel, writing into `out`.
fn for_each_slot_into<T: Send, F: Fn(u32) -> T + Sync>(out: &mut [T], threads: usize, f: F) {
    let n = out.len();
    if n == 0 {
        return;
    }
    let chunk = n.div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        for (ci, slot) in out.chunks_mut(chunk).enumerate() {
            let f = &f;
            scope.spawn(move || {
                let base = (ci * chunk) as u32;
                for (j, s) in slot.iter_mut().enumerate() {
                    *s = f(base + j as u32);
                }
            });
        }
    });
}

/// Degrees by virtual-node weighting. Exact when the structure is
/// single-layer and stores at most one path per logical edge (DEDUP-1's
/// invariant): `deg(u)` sums the clique sizes of `u`'s virtual children
/// (minus `u` itself where it is a stored target) plus its live direct
/// targets. `O(stored edges + deg·log)` total, no per-vertex hashing, no
/// expansion. Dead vertices report 0.
pub fn degrees_dedup_free(g: &CondensedGraph, threads: usize) -> Vec<u32> {
    debug_assert!(g.is_single_layer(), "aggregated degrees need single layer");
    let alive_counts = virtual_alive_counts(g);
    let mut out = vec![0u32; g.num_real_slots()];
    for_each_slot_into(&mut out, threads, |u| {
        let u = RealId(u);
        if !g.is_alive(u) {
            return 0;
        }
        let mut deg = 0u32;
        for a in g.real_out(u) {
            if let Some(r) = a.as_real() {
                if r != u && g.is_alive(r) {
                    deg += 1;
                }
            } else if let Some(v) = a.as_virtual() {
                deg += alive_counts[v.0 as usize] - u32::from(member(g, v, u));
            }
        }
        deg
    });
    out
}

/// Gather the distinct live real targets of `u` (excluding `u`) into
/// `scratch` by sort-merge over the stored lists. Single-layer only; exact
/// even when duplicate paths exist (C-DUP).
fn merged_targets(g: &CondensedGraph, u: RealId, scratch: &mut Vec<u32>) {
    scratch.clear();
    for a in g.real_out(u) {
        if let Some(r) = a.as_real() {
            scratch.push(r.0);
        } else if let Some(v) = a.as_virtual() {
            scratch.extend(
                g.virt_out(v)
                    .iter()
                    .filter_map(|b| b.as_real())
                    .map(|r| r.0),
            );
        }
    }
    scratch.sort_unstable();
    scratch.dedup();
    scratch.retain(|&r| r != u.0 && g.is_alive(RealId(r)));
}

/// Degrees by sort-merge dedup over the stored lists: exact on any
/// single-layer condensed structure, duplicates included (C-DUP and the
/// BITMAP core). Allocates only one scratch buffer per worker thread —
/// the expanded adjacency never exists in memory. Dead vertices report 0.
pub fn degrees_merged(g: &CondensedGraph, threads: usize) -> Vec<u32> {
    debug_assert!(g.is_single_layer(), "merged degrees need single layer");
    let n = g.num_real_slots();
    let mut out = vec![0u32; n];
    if n == 0 {
        return out;
    }
    let chunk = n.div_ceil(threads.max(1));
    std::thread::scope(|scope| {
        for (ci, slot) in out.chunks_mut(chunk).enumerate() {
            scope.spawn(move || {
                let mut scratch: Vec<u32> = Vec::new();
                let base = (ci * chunk) as u32;
                for (j, s) in slot.iter_mut().enumerate() {
                    let u = RealId(base + j as u32);
                    if !g.is_alive(u) {
                        continue;
                    }
                    merged_targets(g, u, &mut scratch);
                    *s = scratch.len() as u32;
                }
            });
        }
    });
    out
}

/// Parameters for the convergence-based (seedable) PageRank family.
#[derive(Debug, Clone, Copy)]
pub struct SeededPageRankConfig {
    /// Damping factor.
    pub damping: f64,
    /// Hard iteration cap.
    pub max_iterations: usize,
    /// Stop once the L∞ rank change of an iteration drops below this.
    /// Warm and cold starts then land within `tol·d/(1−d)` of each other.
    pub tol: f64,
    /// Worker threads.
    pub threads: usize,
}

impl Default for SeededPageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            max_iterations: 200,
            tol: 1e-12,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

/// A PageRank run: per-slot ranks (dead slots 0) and iterations executed.
#[derive(Debug, Clone)]
pub struct PageRankRun {
    /// Rank per real slot; live ranks sum to 1, dead slots hold 0.
    pub ranks: Vec<f64>,
    /// Power iterations executed before convergence (or the cap).
    pub iterations: usize,
}

/// Initial rank vector: the seed where provided (resized, dead slots
/// zeroed, renormalized to sum 1), uniform otherwise. The fixpoint is
/// unique, so any normalized seed converges to the same answer — a good
/// seed just gets there in fewer iterations.
fn initial_ranks<G: GraphRep>(g: &G, seed: Option<&[f64]>) -> Vec<f64> {
    let slots = g.num_real_slots();
    let n_live = g.num_vertices();
    let uniform = 1.0 / n_live as f64;
    let mut ranks: Vec<f64> = (0..slots as u32)
        .map(|u| {
            if !g.is_alive(RealId(u)) {
                return 0.0;
            }
            match seed.and_then(|s| s.get(u as usize)) {
                Some(&r) if r > 0.0 => r,
                _ => uniform,
            }
        })
        .collect();
    let sum: f64 = ranks.iter().sum();
    if sum > 0.0 && (sum - 1.0).abs() > 1e-15 {
        for r in &mut ranks {
            *r /= sum;
        }
    }
    ranks
}

/// A per-iteration neighbor-sum strategy for the shared power-iteration
/// driver below.
trait PrKernel: Sync {
    /// Called once per iteration before the parallel sweep (e.g. to
    /// refresh per-virtual aggregates from the new contributions).
    fn begin_iteration(&mut self, contrib: &[f64]);
    /// `Σ contrib[v]` over the distinct live logical neighbors of `u`.
    /// `scratch` is a per-worker reusable buffer.
    fn neighbor_sum(&self, u: RealId, contrib: &[f64], scratch: &mut Vec<u32>) -> f64;
}

fn power_iterate<G, K>(
    g: &G,
    degs: &[u32],
    kernel: &mut K,
    cfg: &SeededPageRankConfig,
    seed: Option<&[f64]>,
) -> PageRankRun
where
    G: GraphRep + Sync,
    K: PrKernel,
{
    let slots = g.num_real_slots();
    let n_live = g.num_vertices();
    if n_live == 0 {
        return PageRankRun {
            ranks: vec![0.0; slots],
            iterations: 0,
        };
    }
    let n = n_live as f64;
    let d = cfg.damping;
    let mut rank = initial_ranks(g, seed);
    let mut next = vec![0.0f64; slots];
    let mut contrib = vec![0.0f64; slots];
    let threads = cfg.threads.max(1);
    let chunk = slots.div_ceil(threads);
    let mut iterations = 0usize;
    while iterations < cfg.max_iterations.max(1) {
        let mut dangling = 0.0f64;
        for u in 0..slots {
            let deg = degs[u];
            if deg > 0 {
                contrib[u] = rank[u] / deg as f64;
            } else {
                contrib[u] = 0.0;
                if g.is_alive(RealId(u as u32)) {
                    dangling += rank[u];
                }
            }
        }
        kernel.begin_iteration(&contrib);
        let k: &K = kernel;
        let base_term = (1.0 - d) / n + d * dangling / n;
        let mut deltas = vec![0.0f64; next.chunks(chunk).count()];
        let (rank_ref, contrib_ref) = (&rank, &contrib);
        std::thread::scope(|scope| {
            for ((ci, slot), delta) in next.chunks_mut(chunk).enumerate().zip(&mut deltas) {
                scope.spawn(move || {
                    let mut scratch: Vec<u32> = Vec::new();
                    let base = ci * chunk;
                    let mut worst = 0.0f64;
                    for (j, s) in slot.iter_mut().enumerate() {
                        let u = RealId((base + j) as u32);
                        if !g.is_alive(u) {
                            *s = 0.0;
                            continue;
                        }
                        let sum = k.neighbor_sum(u, contrib_ref, &mut scratch);
                        let r = base_term + d * sum;
                        worst = worst.max((r - rank_ref[base + j]).abs());
                        *s = r;
                    }
                    *delta = worst;
                });
            }
        });
        std::mem::swap(&mut rank, &mut next);
        iterations += 1;
        if deltas.iter().fold(0.0f64, |a, &b| a.max(b)) < cfg.tol {
            break;
        }
    }
    PageRankRun {
        ranks: rank,
        iterations,
    }
}

/// Generic traversal kernel: one `for_each_neighbor` pass per vertex.
struct TraversalKernel<'a, G: GraphRep + Sync> {
    g: &'a G,
}

impl<G: GraphRep + Sync> PrKernel for TraversalKernel<'_, G> {
    fn begin_iteration(&mut self, _contrib: &[f64]) {}
    fn neighbor_sum(&self, u: RealId, contrib: &[f64], _scratch: &mut Vec<u32>) -> f64 {
        let mut sum = 0.0;
        self.g
            .for_each_neighbor(u, &mut |v| sum += contrib[v.0 as usize]);
        sum
    }
}

/// Aggregated kernel: per-virtual contribution sums refreshed once per
/// iteration, then each vertex reads `S(V) − own share` per child.
struct AggregatedKernel<'a> {
    g: &'a CondensedGraph,
    virt_sum: Vec<f64>,
}

impl PrKernel for AggregatedKernel<'_> {
    fn begin_iteration(&mut self, contrib: &[f64]) {
        let g = self.g;
        for (v, s) in self.virt_sum.iter_mut().enumerate() {
            *s = g
                .virt_out(VirtId(v as u32))
                .iter()
                .filter_map(|a| a.as_real())
                .filter(|r| g.is_alive(*r))
                .map(|r| contrib[r.0 as usize])
                .sum();
        }
    }

    fn neighbor_sum(&self, u: RealId, contrib: &[f64], _scratch: &mut Vec<u32>) -> f64 {
        let mut sum = 0.0;
        for a in self.g.real_out(u) {
            if let Some(r) = a.as_real() {
                if r != u && self.g.is_alive(r) {
                    sum += contrib[r.0 as usize];
                }
            } else if let Some(v) = a.as_virtual() {
                sum += self.virt_sum[v.0 as usize];
                if member(self.g, v, u) {
                    sum -= contrib[u.0 as usize];
                }
            }
        }
        sum
    }
}

/// Merged kernel: distinct targets gathered by sort-merge per vertex
/// (duplicate-path safe), contributions summed over the deduped list.
struct MergedKernel<'a> {
    g: &'a CondensedGraph,
}

impl PrKernel for MergedKernel<'_> {
    fn begin_iteration(&mut self, _contrib: &[f64]) {}
    fn neighbor_sum(&self, u: RealId, contrib: &[f64], scratch: &mut Vec<u32>) -> f64 {
        merged_targets(self.g, u, scratch);
        scratch.iter().map(|&r| contrib[r as usize]).sum()
    }
}

/// Representation-generic convergence PageRank, optionally warm-started
/// from a previous rank vector. Symmetric-graph pull formulation with the
/// dangling mass summed exactly every iteration (the fixed-iteration
/// [`crate::pagerank()`] precomputes an aggregate dangling model that is only
/// valid from a uniform start, so the seeded family recomputes it).
pub fn pagerank_seeded<G: GraphRep + Sync>(
    g: &G,
    cfg: &SeededPageRankConfig,
    seed: Option<&[f64]>,
) -> PageRankRun {
    let degs = degrees(g, cfg.threads);
    let mut kernel = TraversalKernel { g };
    power_iterate(g, &degs, &mut kernel, cfg, seed)
}

/// Aggregated condensed-direct PageRank (single-layer, duplicate-free
/// structures — DEDUP-1). Never materializes expanded adjacency.
pub fn pagerank_dedup_free(
    g: &CondensedGraph,
    cfg: &SeededPageRankConfig,
    seed: Option<&[f64]>,
) -> PageRankRun {
    debug_assert!(
        g.is_single_layer(),
        "aggregated pagerank needs single layer"
    );
    let degs = degrees_dedup_free(g, cfg.threads);
    let mut kernel = AggregatedKernel {
        g,
        virt_sum: vec![0.0; g.num_virtual()],
    };
    power_iterate(g, &degs, &mut kernel, cfg, seed)
}

/// Merged condensed-direct PageRank (single-layer structures with
/// duplicate paths — C-DUP and the BITMAP core). Never materializes
/// expanded adjacency.
pub fn pagerank_merged(
    g: &CondensedGraph,
    cfg: &SeededPageRankConfig,
    seed: Option<&[f64]>,
) -> PageRankRun {
    debug_assert!(g.is_single_layer(), "merged pagerank needs single layer");
    let degs = degrees_merged(g, cfg.threads);
    let mut kernel = MergedKernel { g };
    power_iterate(g, &degs, &mut kernel, cfg, seed)
}

/// Min-label connected components, optionally warm-started from a previous
/// label vector. Sound whenever no vertex or edge has been *removed* since
/// the seed was computed: every seed label names a vertex still in the same
/// component, so the propagated minimum is exactly the cold-start answer
/// (min-label can never recover from a component split, so callers must
/// fall back to a cold start after deletions). Returns the labels and the
/// supersteps executed.
pub fn components_seeded<G: GraphRep + Sync>(
    g: &G,
    threads: usize,
    seed: Option<&[u32]>,
) -> (Vec<u32>, usize) {
    struct SeededMinLabel<'a> {
        seed: Option<&'a [u32]>,
    }
    impl<G: GraphRep + Sync> VertexProgram<G> for SeededMinLabel<'_> {
        type State = u32;
        fn init(&self, g: &G, u: RealId) -> u32 {
            if !g.is_alive(u) {
                return u.0;
            }
            match self.seed.and_then(|s| s.get(u.0 as usize)) {
                Some(&l) => l.min(u.0),
                None => u.0,
            }
        }
        fn compute(&self, g: &G, u: RealId, prev: &[u32], _step: usize) -> (u32, bool) {
            let mut best = prev[u.0 as usize];
            g.for_each_neighbor(u, &mut |v| best = best.min(prev[v.0 as usize]));
            (best, best == prev[u.0 as usize])
        }
    }
    run_vertex_centric(
        g,
        &SeededMinLabel { seed },
        VertexCentricConfig {
            threads,
            max_supersteps: 100_000,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::concomp::connected_components;
    use graphgen_graph::{CondensedBuilder, ExpandedGraph};

    /// Overlapping cliques with a dead vertex and a revived one.
    fn dataset() -> CondensedGraph {
        let mut b = CondensedBuilder::new(8);
        b.clique(&[RealId(0), RealId(1), RealId(2), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        b.clique(&[RealId(0), RealId(3), RealId(5)]);
        b.clique(&[RealId(0), RealId(3)]); // duplicate pair
        let mut g = b.build();
        g.delete_vertex(RealId(4));
        g.delete_vertex(RealId(6));
        g.revive_vertex(RealId(6));
        g
    }

    #[test]
    fn merged_degrees_match_traversal() {
        let g = dataset();
        assert_eq!(degrees_merged(&g, 2), degrees(&g, 2));
        assert_eq!(degrees_merged(&g, 1), degrees(&g, 1));
    }

    #[test]
    fn aggregated_degrees_match_on_dedup_free_structure() {
        // A builder graph with disjoint cliques stores one path per pair.
        let mut b = CondensedBuilder::new(6);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        b.clique(&[RealId(3), RealId(4)]);
        let mut g = b.build();
        g.delete_vertex(RealId(1));
        assert_eq!(degrees_dedup_free(&g, 2), degrees(&g, 2));
    }

    #[test]
    fn merged_pagerank_matches_expanded() {
        let g = dataset();
        let exp = ExpandedGraph::from_rep(&g);
        let cfg = SeededPageRankConfig {
            threads: 2,
            ..Default::default()
        };
        let a = pagerank_merged(&g, &cfg, None);
        let b = pagerank_seeded(&exp, &cfg, None);
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert!((x - y).abs() < 1e-11, "{x} vs {y}");
        }
    }

    #[test]
    fn aggregated_pagerank_matches_expanded() {
        let mut b = CondensedBuilder::new(7);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        b.clique(&[RealId(3), RealId(4), RealId(5)]);
        let g = b.build();
        let exp = ExpandedGraph::from_rep(&g);
        let cfg = SeededPageRankConfig {
            threads: 2,
            ..Default::default()
        };
        let a = pagerank_dedup_free(&g, &cfg, None);
        let b = pagerank_seeded(&exp, &cfg, None);
        for (x, y) in a.ranks.iter().zip(&b.ranks) {
            assert!((x - y).abs() < 1e-11, "{x} vs {y}");
        }
    }

    #[test]
    fn warm_start_converges_to_cold_fixpoint_faster() {
        let g = dataset();
        let cfg = SeededPageRankConfig {
            threads: 2,
            ..Default::default()
        };
        let cold = pagerank_merged(&g, &cfg, None);
        let warm = pagerank_merged(&g, &cfg, Some(&cold.ranks));
        assert!(warm.iterations < cold.iterations);
        for (x, y) in warm.ranks.iter().zip(&cold.ranks) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn seeded_components_match_cold_after_additions() {
        let mut g = dataset();
        let (cold_before, _) = components_seeded(&g, 2, None);
        assert_eq!(cold_before, connected_components(&g, 2));
        // Additions only: merge the two components with a bridge.
        g.add_edge(RealId(5), RealId(6));
        g.add_edge(RealId(6), RealId(5));
        let (cold, _) = components_seeded(&g, 2, None);
        let (warm, _) = components_seeded(&g, 2, Some(&cold_before));
        assert_eq!(cold, warm);
    }

    #[test]
    fn dangling_mass_kept_exact_with_nonuniform_seed() {
        // Vertex 2 is isolated (dangling). A skewed seed must still land on
        // the same fixpoint as the uniform start.
        let g = ExpandedGraph::from_edges(3, [(0, 1), (1, 0)]);
        let cfg = SeededPageRankConfig::default();
        let cold = pagerank_seeded(&g, &cfg, None);
        let skew = [0.7, 0.1, 0.2];
        let warm = pagerank_seeded(&g, &cfg, Some(&skew));
        let sum: f64 = warm.ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        for (x, y) in warm.ranks.iter().zip(&cold.ranks) {
            assert!((x - y).abs() < 1e-9);
        }
    }
}
