//! Property test: condensed extraction against the full-join oracle.
//!
//! For random membership tables, the condensed path (virtual nodes) and the
//! full SQL path (one big join executed in the relational engine) must
//! produce the same logical graph — regardless of the planner's
//! large-output threshold.
// Requires the external `proptest` crate (see Cargo.toml); compiled only
// when the `proptest-tests` feature is enabled.
#![cfg(feature = "proptest-tests")]

use graphgen::core::{GraphGen, GraphGenConfig};
use graphgen::graph::expand_to_edge_list;
use graphgen::reldb::{Column, Database, Schema, Table, Value};
use proptest::prelude::*;

fn db_from_rows(rows: &[(i64, i64)], n_entities: i64) -> Database {
    let mut entity = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for e in 0..n_entities {
        entity
            .push_row(vec![Value::int(e), Value::str(format!("e{e}"))])
            .unwrap();
    }
    let mut membership = Table::new(Schema::new(vec![Column::int("eid"), Column::int("gid")]));
    for &(e, g) in rows {
        membership
            .push_row(vec![Value::int(e % n_entities), Value::int(g)])
            .unwrap();
    }
    let mut db = Database::new();
    db.register("Entity", entity).unwrap();
    db.register("Membership", membership).unwrap();
    db
}

const QUERY: &str = "Nodes(ID, Name) :- Entity(ID, Name).\n\
                     Edges(A, B) :- Membership(A, G), Membership(B, G).";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn condensed_matches_full_join(
        rows in proptest::collection::vec((0i64..20, 0i64..8), 0..60),
        n_entities in 1i64..20,
        factor in prop_oneof![Just(0.0), Just(2.0), Just(1e12)],
    ) {
        let db = db_from_rows(&rows, n_entities);
        let gg = GraphGen::with_config(&db, GraphGenConfig::builder().large_output_factor(factor).preprocess(false).auto_expand_threshold(None).threads(1).build());
        let condensed = gg.extract(QUERY).unwrap();
        let full = gg.extract_full(QUERY).unwrap();
        prop_assert_eq!(
            expand_to_edge_list(&condensed),
            expand_to_edge_list(&full)
        );
    }

    #[test]
    fn preprocessing_and_auto_expansion_preserve_extraction(
        rows in proptest::collection::vec((0i64..15, 0i64..6), 0..40),
    ) {
        let db = db_from_rows(&rows, 15);
        let oracle = GraphGen::with_config(&db, GraphGenConfig::builder().large_output_factor(0.0).preprocess(false).auto_expand_threshold(None).threads(1).build()).extract(QUERY).unwrap();
        let tuned = GraphGen::new(&db).extract(QUERY).unwrap();
        prop_assert_eq!(
            expand_to_edge_list(&tuned),
            expand_to_edge_list(&oracle)
        );
    }

    #[test]
    fn two_hop_chain_matches_oracle(
        follows in proptest::collection::vec((0i64..12, 0i64..12), 0..40),
    ) {
        // Edges(A, B) :- F(A, X), F(X, B): friend-of-friend, a chain whose
        // middle attribute is an entity id itself.
        let mut entity = Table::new(Schema::new(vec![Column::int("id"), Column::str("n")]));
        for e in 0..12 {
            entity.push_row(vec![Value::int(e), Value::str("x")]).unwrap();
        }
        let mut f = Table::new(Schema::new(vec![Column::int("src"), Column::int("dst")]));
        for &(a, b) in &follows {
            f.push_row(vec![Value::int(a), Value::int(b)]).unwrap();
        }
        let mut db = Database::new();
        db.register("Entity", entity).unwrap();
        db.register("F", f).unwrap();
        let q = "Nodes(ID, N) :- Entity(ID, N).\n\
                 Edges(A, B) :- F(A, X), F(X, B).";
        let gg = GraphGen::with_config(&db, GraphGenConfig::builder().large_output_factor(0.0).preprocess(false).auto_expand_threshold(None).threads(1).build());
        let condensed = gg.extract(q).unwrap();
        let full = gg.extract_full(q).unwrap();
        prop_assert_eq!(
            expand_to_edge_list(&condensed),
            expand_to_edge_list(&full)
        );
    }
}
