//! Column-oriented table storage.
//!
//! A [`Table`] stores each column as a `Vec<Value>`. Appends validate arity
//! and type. Row access materializes a `Vec<Value>` only when asked; the
//! physical operators in [`crate::exec`] work column-wise where possible.
//!
//! Deletes are **tombstoned**: [`Table::delete_physical_rows`] flips a
//! per-row dead bit in O(batch) instead of retaining every column in
//! O(table). Physical row indices stay stable across deletes; a periodic
//! compaction (triggered only when dead rows outnumber live ones) rewrites
//! the columns, so the amortized cost per deleted row is O(1) and every
//! mutation path is bounded by the delta, not the table.

use crate::error::DbResult;
use crate::schema::Schema;
use crate::value::Value;
use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_common::ByteSize;

/// Dead rows required before compaction is even considered: below this the
/// bookkeeping vector is cheaper than any rewrite.
const COMPACT_MIN_DEAD: usize = 64;

/// An in-memory table: a schema plus one value vector per column.
///
/// `rows` counts **live** rows; the columns may be longer when tombstoned
/// rows are awaiting compaction. All row indices taken and returned by this
/// type are *physical* (stable across deletes, invalidated only by
/// compaction).
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
    /// Tombstones, one per physical row. `true` = deleted, awaiting
    /// compaction.
    dead: Vec<bool>,
    dead_count: usize,
    compactions: u64,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Self {
            schema,
            columns,
            rows: 0,
            dead: Vec::new(),
            dead_count: 0,
            compactions: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of **live** rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// Number of physical row slots (live + tombstoned). Every valid
    /// physical row index is strictly below this.
    pub fn physical_rows(&self) -> usize {
        self.dead.len()
    }

    /// True if physical row `row` has not been tombstoned.
    pub fn is_live(&self, row: usize) -> bool {
        !self.dead[row]
    }

    /// How many compaction rewrites this table has performed. Tests use
    /// this to prove delete cost is amortized, not per-batch O(table).
    pub fn compaction_count(&self) -> u64 {
        self.compactions
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row. Checks arity and (non-NULL) types.
    pub fn push_row(&mut self, row: Vec<Value>) -> DbResult<()> {
        self.schema.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.dead.push(false);
        self.rows += 1;
        Ok(())
    }

    /// Append many rows.
    pub fn extend_rows<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> DbResult<()> {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Reserve capacity for `n` additional rows in every column.
    pub fn reserve(&mut self, n: usize) {
        for col in &mut self.columns {
            col.reserve(n);
        }
    }

    /// The full column at `idx`.
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&[Value]> {
        self.schema.index_of(name).map(|i| self.column(i))
    }

    /// The cell at (`row`, `col`).
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Materialize row `row`.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }

    /// Iterate **live** rows as freshly materialized `Vec<Value>`s, in
    /// physical order.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.dead.len())
            .filter(|&r| !self.dead[r])
            .map(|r| self.row(r))
    }

    /// Tombstone the physical rows in `rows` — O(batch), no column rewrite.
    /// Already-dead entries are ignored. May trigger a compaction pass when
    /// dead rows outnumber live ones (amortized O(1) per deleted row).
    pub fn delete_physical_rows(&mut self, rows: &[u32]) {
        for &r in rows {
            let r = r as usize;
            if !self.dead[r] {
                self.dead[r] = true;
                self.dead_count += 1;
                self.rows -= 1;
            }
        }
        self.maybe_compact();
    }

    /// Remove the physical rows whose indices are flagged in `remove`
    /// (length must equal [`Table::physical_rows`]). Tombstones the flagged
    /// rows; survivors keep their relative order.
    pub fn remove_marked(&mut self, remove: &[bool]) {
        assert_eq!(remove.len(), self.dead.len(), "mask length mismatch");
        for (r, &kill) in remove.iter().enumerate() {
            if kill && !self.dead[r] {
                self.dead[r] = true;
                self.dead_count += 1;
                self.rows -= 1;
            }
        }
        self.maybe_compact();
    }

    /// Rewrite the columns dropping tombstoned rows iff the dead outnumber
    /// the living (and there are enough of them to matter). One `retain`
    /// pass per column — the cost is charged against the ≥ 50% of physical
    /// rows that were deleted since the last rewrite, so deletes stay
    /// amortized O(1) each.
    fn maybe_compact(&mut self) {
        if self.dead_count < COMPACT_MIN_DEAD || self.dead_count <= self.rows {
            return;
        }
        for col in &mut self.columns {
            let mut idx = 0;
            col.retain(|_| {
                let keep = !self.dead[idx];
                idx += 1;
                keep
            });
        }
        self.dead.clear();
        self.dead.resize(self.rows, false);
        self.dead_count = 0;
        self.compactions += 1;
    }

    /// Append the binary encoding of this table: schema, live row count,
    /// then the columns in declaration order (column-major, each cell a
    /// tagged [`Value`]); tombstoned rows are not written, so a decoded
    /// table is always compact. Part of the service database snapshot.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.schema.encode_into(out);
        codec::put_len(out, self.rows);
        for col in &self.columns {
            for (r, v) in col.iter().enumerate() {
                if !self.dead[r] {
                    v.encode_into(out);
                }
            }
        }
    }

    /// Decode one table (inverse of [`Table::encode_into`]). Cell types are
    /// re-validated against the decoded schema.
    pub fn decode(r: &mut Reader<'_>) -> Result<Table, CodecError> {
        let schema = Schema::decode(r)?;
        let rows = r.len()?;
        let mut columns = Vec::with_capacity(schema.arity());
        for idx in 0..schema.arity() {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                let at = r.pos();
                let v = Value::decode(r)?;
                if let Some(dt) = v.data_type() {
                    if dt != schema.column(idx).dtype {
                        return Err(CodecError::invalid(
                            at,
                            format!(
                                "column `{}` expects {}",
                                schema.column(idx).name,
                                schema.column(idx).dtype
                            ),
                        ));
                    }
                }
                col.push(v);
            }
            columns.push(col);
        }
        Ok(Table {
            schema,
            columns,
            rows,
            dead: vec![false; rows],
            dead_count: 0,
            compactions: 0,
        })
    }

    /// Exact number of distinct values in column `idx` among live rows
    /// (NULLs count as one value, matching our join semantics, not SQL's).
    pub fn distinct_count(&self, idx: usize) -> usize {
        let mut seen: graphgen_common::FxHashSet<&Value> = Default::default();
        seen.reserve(self.rows.min(1 << 20));
        for (r, v) in self.columns[idx].iter().enumerate() {
            if !self.dead[r] {
                seen.insert(v);
            }
        }
        seen.len()
    }
}

impl ByteSize for Table {
    fn heap_bytes(&self) -> usize {
        self.dead.capacity()
            + self
                .columns
                .iter()
                .map(|col| {
                    col.capacity() * std::mem::size_of::<Value>()
                        + col.iter().map(ByteSize::heap_bytes).sum::<usize>()
                })
                .sum::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use crate::schema::Column;

    fn people() -> Table {
        let mut t = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        t.push_row(vec![Value::int(1), Value::str("a")]).unwrap();
        t.push_row(vec![Value::int(2), Value::str("b")]).unwrap();
        t.push_row(vec![Value::int(3), Value::str("a")]).unwrap();
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = people();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.cell(1, 1), &Value::str("b"));
        assert_eq!(t.row(0), vec![Value::int(1), Value::str("a")]);
        assert_eq!(t.iter_rows().count(), 3);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = people();
        let err = t.push_row(vec![Value::int(9)]).unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = people();
        let err = t
            .push_row(vec![Value::str("oops"), Value::str("x")])
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        // NULL is allowed anywhere.
        t.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn distinct_counts() {
        let t = people();
        assert_eq!(t.distinct_count(0), 3);
        assert_eq!(t.distinct_count(1), 2);
    }

    #[test]
    fn column_by_name() {
        let t = people();
        assert!(t.column_by_name("name").is_some());
        assert!(t.column_by_name("nope").is_none());
    }

    #[test]
    fn remove_marked_preserves_order() {
        let mut t = people();
        t.remove_marked(&[false, true, false]);
        assert_eq!(t.num_rows(), 2);
        let rows: Vec<_> = t.iter_rows().collect();
        assert_eq!(rows[0], vec![Value::int(1), Value::str("a")]);
        assert_eq!(rows[1], vec![Value::int(3), Value::str("a")]);
    }

    #[test]
    fn tombstones_keep_physical_indices_stable() {
        let mut t = people();
        t.delete_physical_rows(&[1]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.physical_rows(), 3);
        assert!(t.is_live(0) && !t.is_live(1) && t.is_live(2));
        // Physical addressing still reaches the survivor at slot 2.
        assert_eq!(t.row(2), vec![Value::int(3), Value::str("a")]);
        // Repeat deletes of the same slot are no-ops.
        t.delete_physical_rows(&[1]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.distinct_count(0), 2);
    }

    #[test]
    fn small_delete_batches_never_rewrite_columns() {
        let mut t = Table::new(Schema::new(vec![Column::int("id")]));
        for i in 0..200 {
            t.push_row(vec![Value::int(i)]).unwrap();
        }
        // Delete under the dead-majority threshold: no compaction, the
        // physical layout is untouched (that's the O(batch) guarantee).
        t.delete_physical_rows(&(0..63).collect::<Vec<u32>>());
        assert_eq!(t.compaction_count(), 0);
        assert_eq!(t.physical_rows(), 200);
        // Push the dead past the living: exactly one rewrite happens.
        t.delete_physical_rows(&(63..150).collect::<Vec<u32>>());
        assert_eq!(t.compaction_count(), 1);
        assert_eq!(t.physical_rows(), 50);
        assert_eq!(t.num_rows(), 50);
        let rows: Vec<_> = t.iter_rows().collect();
        assert_eq!(rows[0], vec![Value::int(150)]);
        assert_eq!(rows[49], vec![Value::int(199)]);
    }

    #[test]
    fn codec_drops_tombstones() {
        let mut t = people();
        t.delete_physical_rows(&[0]);
        let mut bytes = Vec::new();
        t.encode_into(&mut bytes);
        let back = Table::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.num_rows(), 2);
        assert_eq!(back.physical_rows(), 2);
        assert_eq!(
            back.iter_rows().collect::<Vec<_>>(),
            t.iter_rows().collect::<Vec<_>>()
        );
    }

    #[test]
    fn bytesize_nonzero() {
        let t = people();
        assert!(t.heap_bytes() > 0);
    }
}
