//! Column-oriented table storage.
//!
//! A [`Table`] stores each column as a `Vec<Value>`. Appends validate arity
//! and type. Row access materializes a `Vec<Value>` only when asked; the
//! physical operators in [`crate::exec`] work column-wise where possible.

use crate::error::DbResult;
use crate::schema::Schema;
use crate::value::Value;
use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_common::ByteSize;

/// An in-memory table: a schema plus one value vector per column.
#[derive(Debug, Clone)]
pub struct Table {
    schema: Schema,
    columns: Vec<Vec<Value>>,
    rows: usize,
}

impl Table {
    /// Create an empty table with the given schema.
    pub fn new(schema: Schema) -> Self {
        let columns = (0..schema.arity()).map(|_| Vec::new()).collect();
        Self {
            schema,
            columns,
            rows: 0,
        }
    }

    /// The table's schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.rows
    }

    /// True if the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Append one row. Checks arity and (non-NULL) types.
    pub fn push_row(&mut self, row: Vec<Value>) -> DbResult<()> {
        self.schema.check_row(&row)?;
        for (col, v) in self.columns.iter_mut().zip(row) {
            col.push(v);
        }
        self.rows += 1;
        Ok(())
    }

    /// Append many rows.
    pub fn extend_rows<I: IntoIterator<Item = Vec<Value>>>(&mut self, rows: I) -> DbResult<()> {
        for row in rows {
            self.push_row(row)?;
        }
        Ok(())
    }

    /// Reserve capacity for `n` additional rows in every column.
    pub fn reserve(&mut self, n: usize) {
        for col in &mut self.columns {
            col.reserve(n);
        }
    }

    /// The full column at `idx`.
    pub fn column(&self, idx: usize) -> &[Value] {
        &self.columns[idx]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Option<&[Value]> {
        self.schema.index_of(name).map(|i| self.column(i))
    }

    /// The cell at (`row`, `col`).
    pub fn cell(&self, row: usize, col: usize) -> &Value {
        &self.columns[col][row]
    }

    /// Materialize row `row`.
    pub fn row(&self, row: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c[row].clone()).collect()
    }

    /// Iterate rows as freshly materialized `Vec<Value>`s.
    pub fn iter_rows(&self) -> impl Iterator<Item = Vec<Value>> + '_ {
        (0..self.rows).map(|r| self.row(r))
    }

    /// Remove the rows whose indices are flagged in `remove` (length must
    /// equal [`Table::num_rows`]), preserving the relative order of the
    /// survivors. One `retain` pass per column.
    pub fn remove_marked(&mut self, remove: &[bool]) {
        assert_eq!(remove.len(), self.rows, "mask length mismatch");
        for col in &mut self.columns {
            let mut idx = 0;
            col.retain(|_| {
                let keep = !remove[idx];
                idx += 1;
                keep
            });
        }
        self.rows -= remove.iter().filter(|&&r| r).count();
    }

    /// Append the binary encoding of this table: schema, row count, then
    /// the columns in declaration order (column-major, each cell a tagged
    /// [`Value`]). Part of the service database snapshot.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.schema.encode_into(out);
        codec::put_len(out, self.rows);
        for col in &self.columns {
            for v in col {
                v.encode_into(out);
            }
        }
    }

    /// Decode one table (inverse of [`Table::encode_into`]). Cell types are
    /// re-validated against the decoded schema.
    pub fn decode(r: &mut Reader<'_>) -> Result<Table, CodecError> {
        let schema = Schema::decode(r)?;
        let rows = r.len()?;
        let mut columns = Vec::with_capacity(schema.arity());
        for idx in 0..schema.arity() {
            let mut col = Vec::with_capacity(rows);
            for _ in 0..rows {
                let at = r.pos();
                let v = Value::decode(r)?;
                if let Some(dt) = v.data_type() {
                    if dt != schema.column(idx).dtype {
                        return Err(CodecError::invalid(
                            at,
                            format!(
                                "column `{}` expects {}",
                                schema.column(idx).name,
                                schema.column(idx).dtype
                            ),
                        ));
                    }
                }
                col.push(v);
            }
            columns.push(col);
        }
        Ok(Table {
            schema,
            columns,
            rows,
        })
    }

    /// Exact number of distinct values in column `idx` (NULLs count as one
    /// value, matching our join semantics, not SQL's).
    pub fn distinct_count(&self, idx: usize) -> usize {
        let mut seen: graphgen_common::FxHashSet<&Value> = Default::default();
        seen.reserve(self.rows.min(1 << 20));
        for v in &self.columns[idx] {
            seen.insert(v);
        }
        seen.len()
    }
}

impl ByteSize for Table {
    fn heap_bytes(&self) -> usize {
        self.columns
            .iter()
            .map(|col| {
                col.capacity() * std::mem::size_of::<Value>()
                    + col.iter().map(ByteSize::heap_bytes).sum::<usize>()
            })
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::DbError;
    use crate::schema::Column;

    fn people() -> Table {
        let mut t = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        t.push_row(vec![Value::int(1), Value::str("a")]).unwrap();
        t.push_row(vec![Value::int(2), Value::str("b")]).unwrap();
        t.push_row(vec![Value::int(3), Value::str("a")]).unwrap();
        t
    }

    #[test]
    fn push_and_read_back() {
        let t = people();
        assert_eq!(t.num_rows(), 3);
        assert_eq!(t.cell(1, 1), &Value::str("b"));
        assert_eq!(t.row(0), vec![Value::int(1), Value::str("a")]);
        assert_eq!(t.iter_rows().count(), 3);
    }

    #[test]
    fn arity_mismatch_rejected() {
        let mut t = people();
        let err = t.push_row(vec![Value::int(9)]).unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
    }

    #[test]
    fn type_mismatch_rejected() {
        let mut t = people();
        let err = t
            .push_row(vec![Value::str("oops"), Value::str("x")])
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        // NULL is allowed anywhere.
        t.push_row(vec![Value::Null, Value::Null]).unwrap();
        assert_eq!(t.num_rows(), 4);
    }

    #[test]
    fn distinct_counts() {
        let t = people();
        assert_eq!(t.distinct_count(0), 3);
        assert_eq!(t.distinct_count(1), 2);
    }

    #[test]
    fn column_by_name() {
        let t = people();
        assert!(t.column_by_name("name").is_some());
        assert!(t.column_by_name("nope").is_none());
    }

    #[test]
    fn remove_marked_preserves_order() {
        let mut t = people();
        t.remove_marked(&[false, true, false]);
        assert_eq!(t.num_rows(), 2);
        assert_eq!(t.row(0), vec![Value::int(1), Value::str("a")]);
        assert_eq!(t.row(1), vec![Value::int(3), Value::str("a")]);
    }

    #[test]
    fn bytesize_nonzero() {
        let t = people();
        assert!(t.heap_bytes() > 0);
    }
}
