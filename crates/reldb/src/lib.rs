//! `graphgen-reldb` — a small in-memory columnar relational engine.
//!
//! GraphGen (the paper's system) sits on top of PostgreSQL and needs only
//! "basic SQL support from the underlying storage engine": table scans,
//! selection, projection, equi-joins, `DISTINCT`, and catalog statistics
//! (`pg_stats.n_distinct`) for its large-output-join test. This crate is the
//! from-scratch substitute for that substrate:
//!
//! * [`Value`] / [`DataType`] — a compact dynamic value model (64-bit ints
//!   and strings cover every schema in the paper's Fig. 15).
//! * [`Schema`] / [`Table`] — column-oriented storage with append ingestion.
//! * [`Database`] — the catalog: named tables plus per-column statistics
//!   (row count, exact distinct count) used by the extraction planner.
//! * [`RowSet`] — the flat value arena every operator consumes and
//!   produces: one allocation per batch, rows addressed by index, no
//!   per-row `Vec`s.
//! * [`exec`] — physical operators: scan, filter, project, hash equi-join,
//!   distinct; and [`query::Query`], a tiny logical plan ("the SQL we
//!   generate") with a reference nested-loop implementation for testing.
//!
//! Every operator takes a `threads` knob (morsel-parallel scans and join
//! probes, hash-partitioned join builds and DISTINCT — std scoped threads)
//! and produces byte-identical output for any thread count; see [`exec`]
//! for the operator contract and ordering guarantee.
//!
//! Tables are mutable after registration: [`Database::insert_rows`] and
//! [`Database::delete_rows`] apply a batch, recompute the statistics, and
//! return a typed [`Delta`] log that `graphgen-core`'s incremental module
//! consumes to maintain extracted graphs without re-running queries.

#![warn(missing_docs)]

pub mod catalog;
pub mod csv;
pub mod delta;
pub mod error;
pub mod exec;
pub mod expr;
pub mod intern;
pub mod query;
pub mod rowset;
pub mod schema;
pub mod table;
pub mod value;

pub use catalog::{ColumnStats, Database};
pub use delta::{Delta, DeltaBatch, DeltaOp, DeltaRow};
pub use error::{DbError, DbResult};
pub use expr::Predicate;
pub use intern::{Interner, Vid, NULL_VID};
pub use query::Query;
pub use rowset::RowSet;
pub use schema::{Column, Schema};
pub use table::Table;
pub use value::{DataType, Value};
