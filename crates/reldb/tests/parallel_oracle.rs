//! Seeded-random oracle tests for the parallel operators.
//!
//! Unlike `properties.rs` (which needs the external `proptest` crate and is
//! feature-gated), these run in the tier-1 suite using `SplitMix64` seeds.
//! They assert the operator contract of `reldb::exec`:
//!
//! * `hash_join` equals the `nested_loop_join` oracle **including row
//!   order**, for every thread count and both build sides;
//! * `scan_project` and `distinct_rows` are byte-identical across
//!   1/2/8 threads;
//! * NULL-heavy, skewed-key, empty, and size-asymmetric inputs are covered,
//!   at sizes both below and above the serial-fallback threshold.

use graphgen_common::parallel::MIN_PARALLEL_ITEMS;
use graphgen_common::SplitMix64;
use graphgen_reldb::exec::{
    distinct_rows, hash_join, hash_join_project, nested_loop_join, scan_project,
};
use graphgen_reldb::{Column, Predicate, RowSet, Schema, Table, Value};

const THREADS: [usize; 3] = [1, 2, 8];

/// Random arity-2 rows. `null_pct` percent of cells are NULL; with
/// `skew`, ~80% of key-column draws collapse onto a single hot value.
fn random_rows(rng: &mut SplitMix64, n: usize, domain: u64, null_pct: u64, skew: bool) -> RowSet {
    let mut out = RowSet::with_row_capacity(2, n);
    for _ in 0..n {
        let cell = |rng: &mut SplitMix64| {
            if rng.next_below(100) < null_pct {
                Value::Null
            } else if skew && rng.next_below(100) < 80 {
                Value::int(0)
            } else {
                Value::int(rng.next_below(domain) as i64)
            }
        };
        let a = cell(rng);
        let b = cell(rng);
        out.push_row([a, b]);
    }
    out
}

fn table_from(rows: &RowSet) -> Table {
    let mut t = Table::new(Schema::new(vec![Column::int("a"), Column::int("b")]));
    for row in rows.iter() {
        t.push_row(row.to_vec()).unwrap();
    }
    t
}

fn check_join(l: &RowSet, r: &RowSet, label: &str) {
    for (lk, rk) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
        let oracle = nested_loop_join(l, lk, r, rk);
        for threads in THREADS {
            let h = hash_join(l, lk, r, rk, threads);
            assert_eq!(
                h, oracle,
                "{label}: join keys ({lk},{rk}) at {threads} threads"
            );
        }
    }
}

/// For inputs large enough that the quadratic oracle is slow: nested-loop
/// oracle on one key pair, serial-vs-parallel byte-equality on all pairs.
fn check_join_large(l: &RowSet, r: &RowSet, label: &str) {
    assert_eq!(
        hash_join(l, 0, r, 1, 1),
        nested_loop_join(l, 0, r, 1),
        "{label}: serial vs oracle"
    );
    for (lk, rk) in [(0usize, 0usize), (0, 1), (1, 0), (1, 1)] {
        let serial = hash_join(l, lk, r, rk, 1);
        for threads in [2usize, 8] {
            assert_eq!(
                hash_join(l, lk, r, rk, threads),
                serial,
                "{label}: join keys ({lk},{rk}) at {threads} threads"
            );
        }
    }
}

#[test]
fn join_oracle_null_heavy() {
    let mut rng = SplitMix64::new(0xA11CE);
    for n in [0usize, 7, 200] {
        let l = random_rows(&mut rng, n, 10, 40, false);
        let r = random_rows(&mut rng, n / 2 + 1, 10, 40, false);
        check_join(&l, &r, "null-heavy");
    }
    // Large enough that effective_threads grants multiple workers.
    let n = MIN_PARALLEL_ITEMS * 3;
    let l = random_rows(&mut rng, n, 10, 40, false);
    let r = random_rows(&mut rng, n / 2 + 1, 10, 40, false);
    check_join_large(&l, &r, "null-heavy-large");
}

#[test]
fn join_oracle_skewed_keys() {
    let mut rng = SplitMix64::new(0xBEEF);
    // Skewed keys produce quadratic match lists on the hot key; keep sizes
    // moderate but still crossing the parallel threshold via asymmetry.
    let l = random_rows(&mut rng, 300, 40, 5, true);
    let r = random_rows(&mut rng, 120, 40, 5, true);
    check_join(&l, &r, "skewed");
}

#[test]
fn join_oracle_empty_inputs() {
    let mut rng = SplitMix64::new(7);
    let some = random_rows(&mut rng, 50, 5, 20, false);
    let empty = RowSet::new(2);
    check_join(&empty, &some, "empty-left");
    check_join(&some, &empty, "empty-right");
    check_join(&empty, &empty, "empty-both");
}

#[test]
fn join_builds_on_smaller_side_either_direction() {
    let mut rng = SplitMix64::new(0xD15C);
    // Heavy asymmetry in both directions, large enough that the bigger side
    // gets multiple workers from effective_threads.
    let big = random_rows(&mut rng, MIN_PARALLEL_ITEMS * 3, 64, 10, false);
    let small = random_rows(&mut rng, 60, 64, 10, false);
    check_join_large(&big, &small, "big-left/small-right");
    check_join_large(&small, &big, "small-left/big-right");
}

#[test]
fn fused_projection_matches_join_then_project() {
    let mut rng = SplitMix64::new(0xF00D);
    let l = random_rows(&mut rng, 500, 12, 10, false);
    let r = random_rows(&mut rng, 800, 12, 10, false);
    let full = nested_loop_join(&l, 1, &r, 0);
    let projected = graphgen_reldb::exec::project(&full, &[0, 3]);
    for threads in THREADS {
        assert_eq!(
            hash_join_project(&l, 1, &r, 0, &[0, 3], threads),
            projected,
            "{threads} threads"
        );
    }
}

#[test]
fn scan_project_parallel_is_byte_identical() {
    let mut rng = SplitMix64::new(0x5CA9);
    for n in [0usize, 33, MIN_PARALLEL_ITEMS * 3] {
        let rows = random_rows(&mut rng, n, 30, 25, false);
        let t = table_from(&rows);
        for pred in [
            Predicate::True,
            Predicate::Lt(0, Value::int(15)),
            Predicate::Eq(1, Value::Null),
            Predicate::Gt(0, Value::int(5)).and(Predicate::Ne(1, Value::int(2))),
        ] {
            let serial = scan_project(&t, &pred, &[1, 0], 1);
            // Oracle: per-row eval + manual projection.
            let mut expected = RowSet::new(2);
            for r in 0..t.num_rows() {
                let row = t.row(r);
                if pred.eval(&row) {
                    expected.push_row([row[1].clone(), row[0].clone()]);
                }
            }
            assert_eq!(serial, expected, "{pred:?} serial vs oracle");
            for threads in THREADS {
                assert_eq!(
                    scan_project(&t, &pred, &[1, 0], threads),
                    serial,
                    "{pred:?} at {threads} threads"
                );
            }
        }
    }
}

#[test]
fn distinct_parallel_preserves_first_occurrence() {
    let mut rng = SplitMix64::new(0xDED0);
    for n in [0usize, 100, MIN_PARALLEL_ITEMS * 2] {
        // Small domain forces many duplicates; NULLs participate as values.
        let rows = random_rows(&mut rng, n, 8, 20, true);
        let serial = distinct_rows(rows.clone(), 1);
        // Oracle: first-occurrence filter via a set of materialized rows.
        let mut seen = std::collections::HashSet::new();
        let mut expected = RowSet::new(2);
        for row in rows.iter() {
            if seen.insert(row.to_vec()) {
                expected.push_row_from(row);
            }
        }
        assert_eq!(serial, expected, "serial vs oracle at n={n}");
        for threads in THREADS {
            assert_eq!(
                distinct_rows(rows.clone(), threads),
                serial,
                "{threads} threads at n={n}"
            );
        }
    }
}
