//! BITMAP: deduplication via per-(source, virtual node) bitmaps (§4.3, §5.1).
//!
//! The condensed structure is kept exactly as extracted (no edges are
//! rewired), but a virtual node `V` may carry bitmaps indexed by real source
//! node id: when a traversal that started at `u` reaches `V` and a bitmap
//! for `u` exists, only the out-edges whose bit is set are followed. The
//! preprocessing algorithms (BITMAP-1, BITMAP-2 in `graphgen-dedup`) set the
//! bits so that every real target is reached exactly once per source.
//!
//! Mutations: `add_edge` adds a direct edge; `delete_edge` detaches the
//! source from offending virtual nodes (dropping its bitmaps there) and
//! compensates with direct edges, like C-DUP.

use crate::api::{GraphRep, RepKind};
use crate::cdup::CondensedGraph;
use crate::ids::{RealId, VirtId};
use graphgen_common::{Bitmap, FxHashMap};

/// A condensed graph plus traversal bitmaps.
#[derive(Debug, Clone)]
pub struct BitmapGraph {
    pub(crate) core: CondensedGraph,
    /// For each virtual node: source real id → bitmap over the positions of
    /// `virt_out[v]`. Absent bitmap = follow all out-edges.
    pub(crate) bitmaps: Vec<FxHashMap<u32, Bitmap>>,
}

impl BitmapGraph {
    /// Wrap a condensed graph with no bitmaps yet (every traversal behaves
    /// like C-DUP without dedup — callers must run a BITMAP preprocessing
    /// algorithm before using it).
    pub fn new_unmasked(core: CondensedGraph) -> Self {
        let n = core.num_virtual();
        Self {
            core,
            bitmaps: vec![FxHashMap::default(); n],
        }
    }

    /// The underlying condensed structure.
    pub fn core(&self) -> &CondensedGraph {
        &self.core
    }

    /// Mutable access for the preprocessing algorithms.
    pub fn core_mut(&mut self) -> &mut CondensedGraph {
        &mut self.core
    }

    /// Get (or create, all-ones) the bitmap of `v` for source `u`.
    pub fn bitmap_entry(&mut self, v: VirtId, u: RealId) -> &mut Bitmap {
        let out_len = self.core.virt_out(v).len();
        self.bitmaps[v.0 as usize]
            .entry(u.0)
            .or_insert_with(|| Bitmap::ones(out_len))
    }

    /// Insert a fully materialized bitmap.
    pub fn set_bitmap(&mut self, v: VirtId, u: RealId, bm: Bitmap) {
        debug_assert_eq!(bm.len(), self.core.virt_out(v).len());
        self.bitmaps[v.0 as usize].insert(u.0, bm);
    }

    /// The bitmap of `v` for source `u`, if one was installed.
    pub fn bitmap(&self, v: VirtId, u: RealId) -> Option<&Bitmap> {
        self.bitmaps[v.0 as usize].get(&u.0)
    }

    /// Remove the bitmap of `v` for source `u`.
    pub fn remove_bitmap(&mut self, v: VirtId, u: RealId) {
        self.bitmaps[v.0 as usize].remove(&u.0);
    }

    /// Total number of bitmaps installed.
    pub fn bitmap_count(&self) -> usize {
        self.bitmaps.iter().map(|m| m.len()).sum()
    }

    /// Number of virtual nodes.
    pub fn num_virtual(&self) -> usize {
        self.core.num_virtual()
    }

    fn traverse(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        let mut visited_virts: graphgen_common::FxHashSet<u32> = Default::default();
        let mut stack: Vec<u32> = Vec::new();
        for a in self.core.real_out(u) {
            if let Some(r) = a.as_real() {
                if r != u && self.core.is_alive(r) {
                    f(r);
                }
            } else if let Some(v) = a.as_virtual() {
                if visited_virts.insert(v.0) {
                    stack.push(v.0);
                }
            }
        }
        while let Some(x) = stack.pop() {
            let out = self.core.virt_out(VirtId(x));
            let mask = self.bitmaps[x as usize].get(&u.0);
            for (i, a) in out.iter().enumerate() {
                if let Some(bm) = mask {
                    if !bm.get(i) {
                        continue;
                    }
                }
                if let Some(r) = a.as_real() {
                    if r != u && self.core.is_alive(r) {
                        f(r);
                    }
                } else if let Some(v) = a.as_virtual() {
                    if visited_virts.insert(v.0) {
                        stack.push(v.0);
                    }
                }
            }
        }
    }
}

impl GraphRep for BitmapGraph {
    fn kind(&self) -> RepKind {
        RepKind::Bitmap
    }

    fn num_real_slots(&self) -> usize {
        self.core.num_real_slots()
    }

    fn is_alive(&self, u: RealId) -> bool {
        self.core.is_alive(u)
    }

    fn num_vertices(&self) -> usize {
        self.core.num_vertices()
    }

    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        self.traverse(u, f);
    }

    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        // Bitmaps only mask duplicates; reachability is unchanged, so the
        // core's check (with its sorted-list binary searches) is correct.
        self.core.exists_edge(u, v)
    }

    fn add_vertex(&mut self) -> RealId {
        self.core.add_vertex()
    }

    fn delete_vertex(&mut self, u: RealId) {
        self.core.delete_vertex(u);
    }

    fn revive_vertex(&mut self, u: RealId) {
        self.core.revive_vertex(u);
    }

    fn compact(&mut self) {
        // Compaction removes dead real targets from virt_out lists, which
        // shifts bitmap positions: rebuild each affected bitmap.
        let n_virt = self.core.num_virtual();
        for v in 0..n_virt {
            let out = self.core.virt_out(VirtId(v as u32));
            let keep: Vec<bool> = out
                .iter()
                .map(|a| a.as_real().is_none_or(|r| self.core.is_alive(r)))
                .collect();
            if keep.iter().all(|&k| k) {
                continue;
            }
            let new_len = keep.iter().filter(|&&k| k).count();
            for bm in self.bitmaps[v].values_mut() {
                let mut nb = Bitmap::zeros(new_len);
                let mut j = 0;
                for (i, &k) in keep.iter().enumerate() {
                    if k {
                        if bm.get(i) {
                            nb.set(j);
                        }
                        j += 1;
                    }
                }
                *bm = nb;
            }
        }
        self.core.compact();
    }

    fn add_edge(&mut self, u: RealId, v: RealId) {
        self.core.add_edge(u, v);
    }

    fn delete_edge(&mut self, u: RealId, v: RealId) {
        // Identify virtual children of u that (per u's masked view!) reach v,
        // detach u and drop its bitmaps there, compensating with direct
        // edges to whatever else u could reach through them.
        let before: Vec<u32> = {
            let mut acc = Vec::new();
            self.traverse(u, &mut |r| acc.push(r.0));
            acc
        };
        if !before.contains(&v.0) {
            // Only a direct edge (or nothing) to remove.
            self.core.delete_edge(u, v);
            return;
        }
        // Collect u's virtual children and drop the ones reaching v.
        let children: Vec<VirtId> = self
            .core
            .real_out(u)
            .iter()
            .filter_map(|a| a.as_virtual())
            .collect();
        for w in children {
            let mut reach: graphgen_common::FxHashSet<u32> = Default::default();
            self.core.virtual_reach(w, &mut reach);
            if reach.contains(&v.0) {
                self.core.detach_real_from_virtual(u, w);
                self.remove_bitmap(w, u);
            }
        }
        // Remove a possible direct edge.
        if let Ok(pos) = self
            .core
            .real_out(u)
            .binary_search(&crate::ids::Adj::real(v))
        {
            // need mutable core surgery
            let _ = pos;
            self.core.delete_edge(u, v);
        }
        // Compensate: everything u could reach before, minus v, must stay.
        let mut after: graphgen_common::FxHashSet<u32> = Default::default();
        self.traverse(u, &mut |r| {
            after.insert(r.0);
        });
        let mut missing: Vec<u32> = before
            .into_iter()
            .filter(|&w| w != v.0 && !after.contains(&w))
            .collect();
        missing.sort_unstable();
        missing.dedup();
        for w in missing {
            self.core.insert_direct(u, RealId(w));
        }
    }

    fn stored_edge_count(&self) -> u64 {
        self.core.stored_edge_count()
    }

    fn stored_node_count(&self) -> usize {
        self.core.stored_node_count()
    }

    fn heap_bytes(&self) -> usize {
        let bitmap_bytes: usize = self
            .bitmaps
            .iter()
            .map(|m| {
                m.capacity() * (std::mem::size_of::<(u32, Bitmap)>() + 1)
                    + m.values().map(Bitmap::heap_bytes).sum::<usize>()
            })
            .sum();
        self.core.heap_bytes()
            + self.bitmaps.capacity() * std::mem::size_of::<FxHashMap<u32, Bitmap>>()
            + bitmap_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CondensedBuilder;

    /// Fig. 1 graph with hand-set bitmaps deduplicating a1↔a4 (shared pubs
    /// p1 and p2): each of a1,a4 masks the other out of p2's out-edges.
    fn fig1_bitmapped() -> BitmapGraph {
        let mut b = CondensedBuilder::new(5);
        let _p1 = b.clique(&[RealId(0), RealId(1), RealId(3)]);
        let p2 = b.clique(&[RealId(0), RealId(3)]);
        let _p3 = b.clique(&[RealId(2), RealId(3), RealId(4)]);
        let mut g = BitmapGraph::new_unmasked(b.build());
        // p2's out list is sorted: [r0, r3]
        let mut m0 = Bitmap::ones(2);
        m0.unset(1); // from a1, skip a4 at p2 (already reached via p1)
        m0.unset(0); // and never emit self
        g.set_bitmap(p2, RealId(0), m0);
        let mut m3 = Bitmap::ones(2);
        m3.unset(0); // from a4, skip a1 at p2
        m3.unset(1); // self
        g.set_bitmap(p2, RealId(3), m3);
        g
    }

    #[test]
    fn masked_iteration_has_no_duplicates() {
        let g = fig1_bitmapped();
        let mut seen = Vec::new();
        g.for_each_neighbor(RealId(0), &mut |r| seen.push(r.0));
        seen.sort_unstable();
        assert_eq!(seen, vec![1, 3]);
        assert!(crate::validate::validate_no_duplicate_emission(&g).is_ok());
    }

    #[test]
    fn unmasked_graph_emits_duplicates() {
        let mut b = CondensedBuilder::new(2);
        b.clique(&[RealId(0), RealId(1)]);
        b.clique(&[RealId(0), RealId(1)]);
        let g = BitmapGraph::new_unmasked(b.build());
        let mut count = 0;
        g.for_each_neighbor(RealId(0), &mut |_| count += 1);
        assert_eq!(count, 2, "two unmasked paths -> duplicate emission");
        assert!(crate::validate::validate_no_duplicate_emission(&g).is_err());
    }

    #[test]
    fn exists_edge_unaffected_by_masks() {
        let g = fig1_bitmapped();
        assert!(g.exists_edge(RealId(0), RealId(3)));
        assert!(g.exists_edge(RealId(3), RealId(0)));
        assert!(!g.exists_edge(RealId(0), RealId(4)));
    }

    #[test]
    fn delete_edge_respects_other_sources() {
        let mut g = fig1_bitmapped();
        g.delete_edge(RealId(0), RealId(3));
        assert!(!g.exists_edge(RealId(0), RealId(3)));
        // a1 keeps a2; a4 keeps a1.
        assert!(g.exists_edge(RealId(0), RealId(1)));
        assert!(g.exists_edge(RealId(3), RealId(0)));
        assert!(crate::validate::validate_no_duplicate_emission(&g).is_ok());
    }

    #[test]
    fn delete_vertex_then_compact_rebuilds_bitmaps() {
        let mut g = fig1_bitmapped();
        g.delete_vertex(RealId(1));
        g.compact();
        let mut seen = Vec::new();
        g.for_each_neighbor(RealId(0), &mut |r| seen.push(r.0));
        seen.sort_unstable();
        assert_eq!(seen, vec![3]);
        assert!(crate::validate::validate_no_duplicate_emission(&g).is_ok());
    }

    #[test]
    fn bitmap_count_and_bytes() {
        let g = fig1_bitmapped();
        assert_eq!(g.bitmap_count(), 2);
        assert!(g.heap_bytes() > g.core().heap_bytes());
    }
}
