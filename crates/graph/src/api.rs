//! The representation-independent graph API (§3.4 of the paper).
//!
//! The paper exposes seven operations — `getVertices`, `getNeighbors`,
//! `existsEdge`, `addEdge`, `deleteEdge`, `addVertex`, `deleteVertex` — that
//! every in-memory representation implements, so that graph algorithms and
//! the vertex-centric framework run unchanged on any of them.
//!
//! Neighbor access comes in two forms: `for_each_neighbor` (the hot path
//! used by algorithms — no allocation, no dynamic iterator) and `neighbors`
//! (the convenience materializing form, the paper's `.toList`). Both yield
//! each **distinct live** logical out-neighbor exactly once, excluding the
//! vertex itself.

use crate::ids::RealId;
use std::fmt;

/// Which representation a graph value is (for reporting and dispatch).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RepKind {
    /// Condensed with duplicates, on-the-fly dedup (C-DUP).
    CDup,
    /// Fully expanded (EXP).
    Exp,
    /// Condensed, structurally deduplicated (DEDUP-1).
    Dedup1,
    /// Single-layer symmetric optimization (DEDUP-2).
    Dedup2,
    /// Condensed with per-source bitmaps (BITMAP).
    Bitmap,
}

impl RepKind {
    /// All five representations, in the paper's Fig. 10 order.
    pub fn all() -> [RepKind; 5] {
        [
            RepKind::CDup,
            RepKind::Exp,
            RepKind::Dedup1,
            RepKind::Dedup2,
            RepKind::Bitmap,
        ]
    }

    /// The paper's name for the representation.
    pub fn label(self) -> &'static str {
        match self {
            RepKind::CDup => "C-DUP",
            RepKind::Exp => "EXP",
            RepKind::Dedup1 => "DEDUP-1",
            RepKind::Dedup2 => "DEDUP-2",
            RepKind::Bitmap => "BITMAP",
        }
    }

    /// Parse a representation name, round-tripping [`RepKind::label`].
    /// Lenient about case and `-`/`_` separators (`"C-DUP"`, `"cdup"`, and
    /// `"dedup_1"` all parse), so CLI-style callers can take user input.
    pub fn from_label(s: &str) -> Option<RepKind> {
        let normalized: String = s
            .chars()
            .filter(|c| !matches!(c, '-' | '_'))
            .map(|c| c.to_ascii_uppercase())
            .collect();
        match normalized.as_str() {
            "CDUP" => Some(RepKind::CDup),
            "EXP" => Some(RepKind::Exp),
            "DEDUP1" => Some(RepKind::Dedup1),
            "DEDUP2" => Some(RepKind::Dedup2),
            "BITMAP" => Some(RepKind::Bitmap),
            _ => None,
        }
    }
}

impl fmt::Display for RepKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The 7-operation representation-independent graph API, plus the metadata
/// accessors (node/edge counts, memory) the experiments report.
pub trait GraphRep {
    /// Which representation this is.
    fn kind(&self) -> RepKind;

    /// Total real-node slots ever allocated (including lazily deleted ones).
    /// Valid `RealId`s are `0..num_real_slots()`.
    fn num_real_slots(&self) -> usize;

    /// Is this real node currently in the graph?
    fn is_alive(&self, u: RealId) -> bool;

    /// Number of live real nodes.
    fn num_vertices(&self) -> usize;

    /// Iterate over the live real nodes (the paper's `getVertices`).
    fn vertices(&self) -> Box<dyn Iterator<Item = RealId> + '_> {
        Box::new(
            (0..self.num_real_slots() as u32)
                .map(RealId)
                .filter(move |&u| self.is_alive(u)),
        )
    }

    /// Visit every distinct live out-neighbor of `u` exactly once
    /// (the paper's `getNeighbors` iterator; self is never visited).
    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId));

    /// Materialize the out-neighbors of `u` (the paper's
    /// `getNeighbors(v).toList`).
    fn neighbors(&self, u: RealId) -> Vec<RealId> {
        let mut out = Vec::new();
        self.for_each_neighbor(u, &mut |v| out.push(v));
        out
    }

    /// Out-degree of `u` (number of distinct logical out-neighbors).
    fn degree(&self, u: RealId) -> usize {
        let mut n = 0usize;
        self.for_each_neighbor(u, &mut |_| n += 1);
        n
    }

    /// Is there a logical edge `u → v`?
    fn exists_edge(&self, u: RealId, v: RealId) -> bool;

    /// Add a new isolated vertex, returning its id.
    fn add_vertex(&mut self) -> RealId;

    /// Logically remove a vertex (lazy deletion: it disappears from
    /// iteration and neighbor lists immediately; physical storage is
    /// reclaimed by [`GraphRep::compact`]).
    fn delete_vertex(&mut self, u: RealId);

    /// Undo a lazy [`GraphRep::delete_vertex`]: mark the slot live again.
    /// Whatever adjacency the slot still physically holds becomes visible
    /// again — the incremental maintenance layer relies on this to
    /// re-materialize a node whose key reappears in the base tables without
    /// rebuilding its edges. No-op if `u` is already alive.
    fn revive_vertex(&mut self, u: RealId);

    /// Physically reclaim storage for lazily deleted vertices. Ids are
    /// stable (slots are cleared, not reindexed), matching the paper's
    /// batched rebuild.
    fn compact(&mut self);

    /// Add the logical edge `u → v` (no-op if it already exists).
    fn add_edge(&mut self, u: RealId, v: RealId);

    /// Remove the logical edge `u → v` (and only it: other sources sharing
    /// virtual nodes keep their edges).
    fn delete_edge(&mut self, u: RealId, v: RealId);

    /// Number of edges in the fully expanded graph (distinct real pairs).
    fn expanded_edge_count(&self) -> u64 {
        let mut n = 0u64;
        for u in self.vertices() {
            self.for_each_neighbor(u, &mut |_| n += 1);
        }
        n
    }

    /// Number of *physically stored* edges (what Fig. 10 plots).
    fn stored_edge_count(&self) -> u64;

    /// Total nodes stored: real + virtual (what Fig. 10 plots).
    fn stored_node_count(&self) -> usize;

    /// Estimated heap bytes of the structure (Table 3 / Table 4 memory).
    fn heap_bytes(&self) -> usize;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repkind_labels() {
        assert_eq!(RepKind::CDup.label(), "C-DUP");
        assert_eq!(RepKind::Exp.label(), "EXP");
        assert_eq!(RepKind::Dedup1.label(), "DEDUP-1");
        assert_eq!(RepKind::Dedup2.label(), "DEDUP-2");
        assert_eq!(RepKind::Bitmap.label(), "BITMAP");
    }

    #[test]
    fn repkind_display_matches_label() {
        for kind in RepKind::all() {
            assert_eq!(kind.to_string(), kind.label());
        }
    }

    #[test]
    fn repkind_labels_round_trip() {
        for kind in RepKind::all() {
            assert_eq!(RepKind::from_label(kind.label()), Some(kind));
        }
        assert_eq!(RepKind::from_label("cdup"), Some(RepKind::CDup));
        assert_eq!(RepKind::from_label("dedup_1"), Some(RepKind::Dedup1));
        assert_eq!(RepKind::from_label("Bitmap"), Some(RepKind::Bitmap));
        assert_eq!(RepKind::from_label("nope"), None);
        assert_eq!(RepKind::from_label(""), None);
    }
}
