//! Row predicates (the WHERE clauses of generated queries).
//!
//! Extraction queries only need constant-equality selections (a Datalog atom
//! with a constant in some position) and conjunctions thereof, plus simple
//! comparisons so examples can express things like "papers since 2010"
//! (temporal graph extraction from the paper's introduction).

use crate::value::Value;

/// A predicate over a row (indexed by column position).
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// Always true.
    True,
    /// `row[col] == value`.
    Eq(usize, Value),
    /// `row[col] != value`.
    Ne(usize, Value),
    /// `row[col] < value` (on the `Value` ordering; meaningful for ints).
    Lt(usize, Value),
    /// `row[col] <= value`.
    Le(usize, Value),
    /// `row[col] > value`.
    Gt(usize, Value),
    /// `row[col] >= value`.
    Ge(usize, Value),
    /// Conjunction.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Evaluate against one row. Comparisons against NULL are false
    /// (except `Ne`, which is true when the stored value is non-NULL).
    pub fn eval(&self, row: &[Value]) -> bool {
        match self {
            Predicate::True => true,
            Predicate::Eq(col, v) => &row[*col] == v,
            Predicate::Ne(col, v) => &row[*col] != v,
            Predicate::Lt(col, v) => !row[*col].is_null() && row[*col] < *v,
            Predicate::Le(col, v) => !row[*col].is_null() && row[*col] <= *v,
            Predicate::Gt(col, v) => !row[*col].is_null() && row[*col] > *v,
            Predicate::Ge(col, v) => !row[*col].is_null() && row[*col] >= *v,
            Predicate::And(ps) => ps.iter().all(|p| p.eval(row)),
        }
    }

    /// Conjoin two predicates, flattening nested `And`s and dropping `True`s.
    pub fn and(self, other: Predicate) -> Predicate {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (Predicate::And(mut a), Predicate::And(b)) => {
                a.extend(b);
                Predicate::And(a)
            }
            (Predicate::And(mut a), p) => {
                a.push(p);
                Predicate::And(a)
            }
            (p, Predicate::And(mut b)) => {
                b.insert(0, p);
                Predicate::And(b)
            }
            (a, b) => Predicate::And(vec![a, b]),
        }
    }

    /// True if this predicate is the trivial `True`.
    pub fn is_trivial(&self) -> bool {
        matches!(self, Predicate::True)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> Vec<Value> {
        vec![Value::int(5), Value::str("x"), Value::Null]
    }

    #[test]
    fn eq_and_ne() {
        assert!(Predicate::Eq(0, Value::int(5)).eval(&row()));
        assert!(!Predicate::Eq(0, Value::int(6)).eval(&row()));
        assert!(Predicate::Ne(1, Value::str("y")).eval(&row()));
        assert!(Predicate::Eq(2, Value::Null).eval(&row()));
    }

    #[test]
    fn comparisons() {
        assert!(Predicate::Lt(0, Value::int(6)).eval(&row()));
        assert!(Predicate::Le(0, Value::int(5)).eval(&row()));
        assert!(Predicate::Gt(0, Value::int(4)).eval(&row()));
        assert!(Predicate::Ge(0, Value::int(5)).eval(&row()));
        assert!(!Predicate::Gt(0, Value::int(5)).eval(&row()));
        // NULL never satisfies ordered comparisons.
        assert!(!Predicate::Lt(2, Value::int(100)).eval(&row()));
    }

    #[test]
    fn and_flattening() {
        let p = Predicate::Eq(0, Value::int(5))
            .and(Predicate::True)
            .and(Predicate::Ne(1, Value::str("y")));
        assert!(p.eval(&row()));
        match &p {
            Predicate::And(ps) => assert_eq!(ps.len(), 2),
            other => panic!("expected And, got {other:?}"),
        }
        assert!(Predicate::True.and(Predicate::True).is_trivial());
    }
}
