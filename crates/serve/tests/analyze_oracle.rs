//! The condensed-vs-expanded oracle: for every algorithm and every
//! representation a served handle can be converted to, the kernel the
//! `ANALYZE` dispatch picks must produce the same answer as the plain
//! traversal computation on the fully expanded graph — exactly for the
//! integer algorithms (degree, components, triangles), within 1e-9 L∞ for
//! the floating-point ones (PageRank, clustering). Warm-started fixpoints
//! must equal cold-started ones after mutation batches through the real
//! `apply` path.

use graphgen_core::ConvertOptions;
use graphgen_datagen::relational::DBLP_COAUTHORS;
use graphgen_datagen::{dblp_like, layered_database, DblpConfig, LayeredConfig};
use graphgen_graph::RepKind;
use graphgen_reldb::Value;
use graphgen_serve::{
    compute_on_handle, Algo, AnalyzeParams, GraphService, GraphSnapshot, TableMutation,
};
use std::sync::Arc;

const THREADS: [usize; 3] = [1, 2, 8];

fn dblp_service(seed: u64) -> GraphService {
    let db = dblp_like(DblpConfig {
        authors: 150,
        publications: 260,
        avg_authors_per_pub: 2.5,
        seed,
    });
    let service = GraphService::in_memory(db);
    service.extract("co", DBLP_COAUTHORS).unwrap();
    service
}

fn linf(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "rank vector lengths differ");
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Every convertible representation of `snap`, reference first.
fn all_reps(snap: &Arc<GraphSnapshot>) -> Vec<(RepKind, graphgen_core::GraphHandle)> {
    RepKind::all()
        .into_iter()
        .filter_map(|kind| {
            snap.handle()
                .convert(kind, &ConvertOptions::default())
                .ok()
                .map(|h| (kind, h))
        })
        .collect()
}

#[test]
fn condensed_direct_equals_expanded_on_every_rep() {
    for seed in [11u64, 12] {
        let service = dblp_service(seed);
        let snap = service.snapshot("co").unwrap();
        let params = AnalyzeParams::default();
        let reps = all_reps(&snap);
        assert_eq!(reps.len(), 5, "a single-layer handle converts everywhere");
        let exp = reps
            .iter()
            .find(|(k, _)| *k == RepKind::Exp)
            .map(|(_, h)| h)
            .unwrap();
        for threads in THREADS {
            let reference: Vec<_> = Algo::all()
                .into_iter()
                .map(|algo| compute_on_handle(exp, algo, &params, None, threads).unwrap())
                .collect();
            for (kind, handle) in &reps {
                for (algo, want) in Algo::all().into_iter().zip(&reference) {
                    let got = compute_on_handle(handle, algo, &params, None, threads).unwrap();
                    let ctx = format!("{kind:?} {} seed={seed} threads={threads}", algo.label());
                    match algo {
                        Algo::Degree => assert_eq!(got.degrees, want.degrees, "{ctx}"),
                        Algo::Components => assert_eq!(got.labels, want.labels, "{ctx}"),
                        Algo::Triangles => assert_eq!(got.summary, want.summary, "{ctx}"),
                        Algo::Pagerank => {
                            let d = linf(got.ranks.as_ref().unwrap(), want.ranks.as_ref().unwrap());
                            assert!(d <= 1e-9, "{ctx}: L∞={d}");
                        }
                        Algo::Clustering => {
                            let got_avg = graphgen_algo::average_clustering(handle, threads);
                            let want_avg = graphgen_algo::average_clustering(exp, threads);
                            assert!((got_avg - want_avg).abs() <= 1e-9, "{ctx}");
                        }
                    }
                }
                // The dispatch must actually take the condensed-direct path
                // on condensed cores — that is the whole point.
                let deg = compute_on_handle(handle, Algo::Degree, &params, None, threads).unwrap();
                let expected_path = match kind {
                    RepKind::Dedup1 => "aggregated",
                    RepKind::CDup | RepKind::Bitmap => "merged",
                    RepKind::Exp | RepKind::Dedup2 => "traversal",
                };
                assert_eq!(deg.path.label(), expected_path, "{kind:?} degree path");
            }
        }
    }
}

/// Seeded insert/delete batches on `AuthorPub` through the real write path.
fn mutation_batch(round: u64, seed: u64) -> TableMutation {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(round);
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for _ in 0..3 {
        inserts.push(vec![
            Value::int((next() % 150) as i64),
            Value::int((next() % 400) as i64),
        ]);
    }
    if round % 2 == 1 {
        // Delete a row the generator provably inserted earlier (same
        // stream: inserted rows of round-1 are reproducible), or a base
        // row — absent rows are no-ops under bag semantics, so this is
        // safe either way and *sometimes* removes a real edge.
        deletes.push(vec![
            Value::int((next() % 150) as i64),
            Value::int((next() % 260) as i64),
        ]);
    }
    TableMutation::new("AuthorPub", inserts, deletes)
}

#[test]
fn warm_start_fixpoints_equal_cold_start() {
    for seed in [21u64, 22] {
        let service = dblp_service(seed);
        let params = AnalyzeParams::default();
        // Cold baselines at version 1 populate the seeds.
        service.analyze("co", Algo::Pagerank, &params).unwrap();
        service.analyze("co", Algo::Components, &params).unwrap();
        for round in 1..=4u64 {
            let outcome = service.apply(&[mutation_batch(round, seed)]).unwrap();
            let removed_something = outcome
                .graphs
                .iter()
                .any(|(_, _, patch)| patch.logical_edges_removed > 0 || patch.nodes_removed > 0);
            let snap = service.snapshot("co").unwrap();

            let warm_pr = service.analyze("co", Algo::Pagerank, &params).unwrap();
            assert!(warm_pr.warm(), "round {round}: pagerank always warms");
            let cold_pr =
                compute_on_handle(snap.handle(), Algo::Pagerank, &params, None, 2).unwrap();
            let d = linf(
                warm_pr.outcome().ranks.as_ref().unwrap(),
                cold_pr.ranks.as_ref().unwrap(),
            );
            assert!(d <= 1e-9, "round {round} seed {seed}: pagerank L∞={d}");

            let warm_cc = service.analyze("co", Algo::Components, &params).unwrap();
            if removed_something {
                assert!(
                    !warm_cc.warm(),
                    "round {round}: component seeds are unsound after a removal"
                );
            }
            let cold_cc =
                compute_on_handle(snap.handle(), Algo::Components, &params, None, 2).unwrap();
            assert_eq!(
                warm_cc.outcome().labels,
                cold_cc.labels,
                "round {round} seed {seed}: component labels"
            );
        }
        // Warm starts actually happened and saved work somewhere.
        let counters = service.analyze_counters();
        assert!(counters.warm_starts >= 4, "{counters:?}");
    }
}

#[test]
fn multi_layer_condensed_falls_back_to_expansion() {
    let (db, query) = layered_database(LayeredConfig {
        rows_a: 240,
        rows_b: 240,
        outer_selectivity: 0.1,
        inner_selectivity: 0.2,
        seed: 33,
    });
    let service = GraphService::in_memory(db);
    let snap = service.extract("layered", &query).unwrap();
    let params = AnalyzeParams::default();
    let handle = snap.handle();
    let multi_layer = handle
        .graph()
        .as_condensed()
        .is_some_and(|c| !c.is_single_layer());
    assert!(
        multi_layer,
        "the layered workload must produce a multi-layer condensed handle \
         (otherwise the fall-back path is never exercised)"
    );
    let exp = handle
        .convert(RepKind::Exp, &ConvertOptions::default())
        .unwrap();
    for algo in Algo::all() {
        let got = compute_on_handle(handle, algo, &params, None, 2).unwrap();
        let want = compute_on_handle(&exp, algo, &params, None, 2).unwrap();
        if multi_layer {
            // The fall-back converts internally; the result is traversal.
            assert_eq!(got.path.label(), "traversal", "{}", algo.label());
        }
        match algo {
            Algo::Degree => assert_eq!(got.degrees, want.degrees),
            Algo::Components => assert_eq!(got.labels, want.labels),
            Algo::Triangles | Algo::Clustering => assert_eq!(got.summary, want.summary),
            Algo::Pagerank => {
                let d = linf(got.ranks.as_ref().unwrap(), want.ranks.as_ref().unwrap());
                assert!(d <= 1e-9, "pagerank L∞={d}");
            }
        }
    }
    // The end-to-end verb works on this graph too.
    let entry = service.analyze("layered", Algo::Degree, &params).unwrap();
    assert_eq!(entry.version(), 1);
}
