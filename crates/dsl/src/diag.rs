//! Span-carrying, coded diagnostics: the output format of the static
//! analyzer ([`crate::check`]), the parser, and the semantic validator.
//!
//! Every failure class has a **stable code** (`E001`, `W103`, …) that
//! front ends key on — `graphgen-check` exit codes, the serving layer's
//! per-code rejection counters, and the golden test suite all match on the
//! code, never on message text. See `docs/DSL.md` ("Diagnostics
//! reference") for the full table with examples and fixes.

use crate::span::Span;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// The program may be suboptimal or suspicious but is executable.
    Warning,
    /// The program is rejected; extraction will not run.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// The stable failure classes of the extraction DSL. The numeric code and
/// kebab-case name of each variant are frozen: tools match on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// `E000`: lexical or grammatical failure.
    Syntax,
    /// `E001`: a body atom references a relation the catalog doesn't hold.
    UnknownRelation,
    /// `E002`: a constant's type differs from its column's declared type.
    TypeMismatch,
    /// `E003`: a body atom's argument count differs from the relation's
    /// column count.
    ArityMismatch,
    /// `E004`: a head variable is not bound by any body atom (range
    /// restriction).
    UnboundHeadVariable,
    /// `E005`: a malformed rule head (non-variable key attribute, too few
    /// `Edges` attributes, multi-atom `Nodes` body, …).
    InvalidHead,
    /// `E006`: an `Edges` body that is not α-acyclic (GYO reduction).
    CyclicBody,
    /// `E007`: an acyclic `Edges` body that cannot be ordered into a join
    /// chain from ID1 to ID2 (the paper's Case 2).
    NonChainBody,
    /// `E008`: a body atom references `Nodes`/`Edges` (recursion).
    RecursiveRule,
    /// `E009`: the program is missing a `Nodes` or an `Edges` statement.
    IncompleteProgram,
    /// `E010`: a `Nodes` head binds the same property name twice.
    DuplicateProperty,
    /// `E011`: a rule is a structural duplicate of an earlier rule.
    DuplicateRule,
    /// `W101`: a join or filter is statically unsatisfiable — the rule can
    /// never produce rows (e.g. a variable relating an Int column to a Str
    /// column, or identical endpoint head variables producing only
    /// self-loops).
    UnsatisfiableFilter,
    /// `W102`: a body variable occurs exactly once — it constrains
    /// nothing; `_` says so explicitly.
    SingletonVariable,
    /// `W103`: this edge view can never convert to DEDUP-2 — the chain
    /// shape predicts `ConvertError::Asymmetric` or
    /// `ConvertError::MultiLayer` at check time (conversion lint group).
    Dedup2Infeasible,
    /// `W105`: catalog statistics classify a join of this chain as
    /// large-output (§4.2) — it will be postponed into a virtual-node
    /// layer (plan lint group).
    LargeOutputSegment,
}

impl Code {
    /// The stable `ENNN`/`WNNN` code string.
    pub fn code(&self) -> &'static str {
        match self {
            Code::Syntax => "E000",
            Code::UnknownRelation => "E001",
            Code::TypeMismatch => "E002",
            Code::ArityMismatch => "E003",
            Code::UnboundHeadVariable => "E004",
            Code::InvalidHead => "E005",
            Code::CyclicBody => "E006",
            Code::NonChainBody => "E007",
            Code::RecursiveRule => "E008",
            Code::IncompleteProgram => "E009",
            Code::DuplicateProperty => "E010",
            Code::DuplicateRule => "E011",
            Code::UnsatisfiableFilter => "W101",
            Code::SingletonVariable => "W102",
            Code::Dedup2Infeasible => "W103",
            Code::LargeOutputSegment => "W105",
        }
    }

    /// The stable kebab-case name.
    pub fn name(&self) -> &'static str {
        match self {
            Code::Syntax => "syntax",
            Code::UnknownRelation => "unknown-relation",
            Code::TypeMismatch => "type-mismatch",
            Code::ArityMismatch => "arity-mismatch",
            Code::UnboundHeadVariable => "unbound-head-variable",
            Code::InvalidHead => "invalid-head",
            Code::CyclicBody => "cyclic-body",
            Code::NonChainBody => "non-chain-body",
            Code::RecursiveRule => "recursive-rule",
            Code::IncompleteProgram => "incomplete-program",
            Code::DuplicateProperty => "duplicate-property",
            Code::DuplicateRule => "duplicate-rule",
            Code::UnsatisfiableFilter => "unsatisfiable-filter",
            Code::SingletonVariable => "singleton-variable",
            Code::Dedup2Infeasible => "dedup2-infeasible",
            Code::LargeOutputSegment => "large-output-segment",
        }
    }

    /// The severity this code carries (`E…` = error, `W…` = warning).
    pub fn severity(&self) -> Severity {
        if self.code().starts_with('E') {
            Severity::Error
        } else {
            Severity::Warning
        }
    }

    /// All codes, for reference tables and exhaustiveness tests.
    pub fn all() -> &'static [Code] {
        &[
            Code::Syntax,
            Code::UnknownRelation,
            Code::TypeMismatch,
            Code::ArityMismatch,
            Code::UnboundHeadVariable,
            Code::InvalidHead,
            Code::CyclicBody,
            Code::NonChainBody,
            Code::RecursiveRule,
            Code::IncompleteProgram,
            Code::DuplicateProperty,
            Code::DuplicateRule,
            Code::UnsatisfiableFilter,
            Code::SingletonVariable,
            Code::Dedup2Infeasible,
            Code::LargeOutputSegment,
        ]
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {}", self.code(), self.name())
    }
}

/// One coded, span-carrying finding about a DSL program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// The stable failure class.
    pub code: Code,
    /// Error or warning (defaults to `code.severity()`).
    pub severity: Severity,
    /// Where in the source the problem is.
    pub span: Span,
    /// What is wrong, in one sentence.
    pub message: String,
    /// How to fix it, when the analyzer knows.
    pub help: Option<String>,
}

impl Diagnostic {
    /// A diagnostic at its code's default severity.
    pub fn new(code: Code, span: Span, message: impl Into<String>) -> Self {
        Self {
            code,
            severity: code.severity(),
            span,
            message: message.into(),
            help: None,
        }
    }

    /// Attach a help line.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// The compact single-line rendering used by protocol front ends:
    /// `E001 unknown-relation at 2:20: unknown relation \`AP\``.
    pub fn one_line(&self) -> String {
        if self.span.is_synthetic() {
            format!("{}: {}", self.code, self.message)
        } else {
            format!("{} at {}: {}", self.code, self.span, self.message)
        }
    }

    /// Render this diagnostic rustc-style against its source text:
    ///
    /// ```text
    /// error[E001]: unknown relation `AuthorPubb`
    ///   --> query.ggd:2:20
    ///    |
    ///  2 | Edges(ID1, ID2) :- AuthorPubb(ID1, P).
    ///    |                    ^^^^^^^^^^
    ///    = help: did you mean `AuthorPub`?
    /// ```
    ///
    /// `origin` is the file name (or any label) shown in the `-->` line.
    pub fn render(&self, source: &str, origin: &str) -> String {
        let mut out = format!(
            "{}[{}]: {}\n",
            self.severity,
            self.code.code(),
            self.message
        );
        if !self.span.is_synthetic() {
            let line_no = self.span.line as usize;
            let gutter = line_no.to_string().len().max(2);
            out.push_str(&format!(
                "{:>gutter$}--> {}:{}\n",
                "",
                origin,
                self.span,
                gutter = gutter
            ));
            if let Some(text) = source.lines().nth(line_no - 1) {
                let col = (self.span.col as usize).max(1);
                // Clamp the caret run to the visible line remainder.
                let width = self
                    .span
                    .len
                    .clamp(1, text.len().saturating_sub(col - 1).max(1));
                out.push_str(&format!("{:>gutter$} |\n", "", gutter = gutter));
                out.push_str(&format!("{line_no:>gutter$} | {text}\n", gutter = gutter));
                out.push_str(&format!(
                    "{:>gutter$} | {:>col$}{}\n",
                    "",
                    "",
                    "^".repeat(width),
                    gutter = gutter,
                    col = col - 1
                ));
            }
        }
        if let Some(help) = &self.help {
            out.push_str(&format!("  = help: {help}\n"));
        }
        out
    }
}

/// Render a batch of diagnostics (in order) followed by a summary line,
/// the `graphgen-check` CLI output format. Returns `None` when there is
/// nothing to report.
pub fn render_all(diagnostics: &[Diagnostic], source: &str, origin: &str) -> Option<String> {
    if diagnostics.is_empty() {
        return None;
    }
    let mut out = String::new();
    for d in diagnostics {
        out.push_str(&d.render(source, origin));
        out.push('\n');
    }
    let errors = diagnostics
        .iter()
        .filter(|d| d.severity == Severity::Error)
        .count();
    let warnings = diagnostics.len() - errors;
    out.push_str(&format!(
        "{origin}: {errors} error(s), {warnings} warning(s)\n"
    ));
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_stable_and_unique() {
        let all = Code::all();
        for (i, a) in all.iter().enumerate() {
            assert_eq!(a.severity() == Severity::Error, a.code().starts_with('E'));
            for b in &all[i + 1..] {
                assert_ne!(a.code(), b.code());
                assert_ne!(a.name(), b.name());
            }
        }
        assert_eq!(Code::UnknownRelation.code(), "E001");
        assert_eq!(Code::ArityMismatch.code(), "E003");
        assert_eq!(Code::NonChainBody.code(), "E007");
        assert_eq!(Code::UnsatisfiableFilter.code(), "W101");
        assert_eq!(Code::Dedup2Infeasible.code(), "W103");
        assert_eq!(Code::LargeOutputSegment.code(), "W105");
    }

    #[test]
    fn render_carets_under_the_span() {
        let src = "Nodes(ID) :- Author(ID).\nEdges(A, B) :- Nope(A, B).";
        let d = Diagnostic::new(
            Code::UnknownRelation,
            Span::new(40, 4, 2, 16),
            "unknown relation `Nope`",
        )
        .with_help("available relations: Author");
        let r = d.render(src, "q.ggd");
        assert!(r.contains("error[E001]: unknown relation `Nope`"), "{r}");
        assert!(r.contains("--> q.ggd:2:16"), "{r}");
        assert!(r.contains(" 2 | Edges(A, B) :- Nope(A, B)."), "{r}");
        assert!(r.contains("^^^^"), "{r}");
        assert!(r.contains("= help: available relations: Author"), "{r}");
        // The caret line aligns under the N of Nope.
        let caret_line = r.lines().find(|l| l.contains('^')).unwrap();
        let code_line = r.lines().find(|l| l.contains("Nope(A")).unwrap();
        assert_eq!(
            caret_line.find('^').unwrap(),
            code_line.find("Nope").unwrap()
        );
    }

    #[test]
    fn synthetic_spans_render_without_excerpt() {
        let d = Diagnostic::new(
            Code::IncompleteProgram,
            Span::default(),
            "no Edges statement",
        );
        let r = d.render("whatever", "q");
        assert!(!r.contains("-->"), "{r}");
        assert_eq!(d.one_line(), "E009 incomplete-program: no Edges statement");
    }

    #[test]
    fn one_line_and_summary() {
        let d = Diagnostic::new(Code::ArityMismatch, Span::new(0, 2, 1, 1), "boom");
        assert_eq!(d.one_line(), "E003 arity-mismatch at 1:1: boom");
        let out = render_all(&[d], "src", "f.ggd").unwrap();
        assert!(out.ends_with("f.ggd: 1 error(s), 0 warning(s)\n"), "{out}");
        assert!(render_all(&[], "src", "f.ggd").is_none());
    }
}
