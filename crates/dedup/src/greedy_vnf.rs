//! Greedy Virtual-Nodes-First deduplication (§5.2.1, Fig. 9).
//!
//! Like the naive virtual-nodes-first algorithm, virtual nodes are added to
//! an (always deduplicated) partial graph one at a time. But instead of
//! evicting a random shared target from the smaller node, every candidate
//! removal is scored: removing target `r` from the incoming node `V` kills
//! `r`'s duplication against *all* conflicting nodes at once (benefit =
//! number of conflicts containing `r`), while removing `r` from one
//! conflicting `Vi` has benefit 1; the cost is the number of direct edges
//! needed to compensate sources that lose their only witness. The removal
//! with the best benefit/cost ratio wins — the vertex-cover-inspired
//! heuristic of the paper.

use crate::naive::resolve_pair;
use crate::work::{intersect_sorted, WorkGraph};
use graphgen_common::VertexOrdering;
use graphgen_graph::{CondensedGraph, Dedup1Graph};

/// Is there non-self duplication between v1 and v2 (given current state)?
fn duplicated(w: &WorkGraph, v1: u32, v2: u32) -> bool {
    let ss = intersect_sorted(&w.iv[v1 as usize], &w.iv[v2 as usize]);
    if ss.is_empty() {
        return false;
    }
    let st = intersect_sorted(&w.ov[v1 as usize], &w.ov[v2 as usize]);
    if st.is_empty() {
        return false;
    }
    !(ss.len() == 1 && st.len() == 1 && ss[0] == st[0])
}

/// Cost of removing target `r` from node `v`: direct edges needed to keep
/// all of `v`'s sources connected to `r`.
fn removal_cost(w: &WorkGraph, v: u32, r: u32) -> usize {
    w.iv[v as usize]
        .iter()
        .filter(|&&x| x != r && w.witness_count(x, r) == 1)
        .count()
}

/// Remove direct edges covered by virtual node `v`.
fn absorb_direct_edges(w: &mut WorkGraph, v: u32) {
    let sources = w.iv[v as usize].clone();
    let targets = w.ov[v as usize].clone();
    for &u in &sources {
        for &t in &targets {
            if u != t {
                w.remove_direct(u, t);
            }
        }
    }
}

/// Greedy Virtual-Nodes-First (complexity `O(n_v d (n_v d^2 + d))`).
pub fn greedy_virtual_nodes_first(
    g: &CondensedGraph,
    ordering: VertexOrdering,
    seed: u64,
) -> Dedup1Graph {
    let mut w = WorkGraph::from_condensed(g, false);
    let order = ordering.order_by(w.num_virtual(), |v| w.ov[v as usize].len() as u64, seed);
    for v in order {
        w.activate(v);
        absorb_direct_edges(&mut w, v);
        loop {
            // Conflicting active nodes.
            let mut conflicts: Vec<u32> = Vec::new();
            for &u in &w.iv[v as usize] {
                for &r in &w.rv[u as usize] {
                    if r != v && w.active[r as usize] {
                        conflicts.push(r);
                    }
                }
            }
            conflicts.sort_unstable();
            conflicts.dedup();
            conflicts.retain(|&c| duplicated(&w, v, c));
            if conflicts.is_empty() {
                break;
            }
            // Candidate removals: (node, target, benefit, cost).
            let mut best: Option<(u32, u32, f64)> = None;
            let mut consider = |node: u32, target: u32, benefit: usize, w: &WorkGraph| {
                let cost = removal_cost(w, node, target);
                let ratio = benefit as f64 / (cost as f64 + 1.0);
                if best.is_none_or(|(_, _, r)| ratio > r) {
                    best = Some((node, target, ratio));
                }
            };
            // Shared targets per conflict; removing from V helps every
            // conflict containing the target.
            let mut v_target_gain: graphgen_common::FxHashMap<u32, usize> = Default::default();
            for &c in &conflicts {
                let st = intersect_sorted(&w.ov[v as usize], &w.ov[c as usize]);
                for &r in &st {
                    *v_target_gain.entry(r).or_insert(0) += 1;
                    consider(c, r, 1, &w);
                }
            }
            for (&r, &gain) in &v_target_gain {
                consider(v, r, gain, &w);
            }
            let (node, target, _) = best.expect("conflicts imply candidates");
            w.remove_target_and_compensate(node, target);
            // The chosen removal may not fully resolve a conflict pair if
            // the duplication came through other targets; the loop
            // re-evaluates until no conflict remains. As a safety net
            // against pathological non-progress (removing a target the
            // duplication didn't hinge on), finish stragglers pairwise.
            if w.ov[node as usize].is_empty() {
                continue;
            }
        }
        // Belt-and-braces: pairwise resolution of anything left (no-op in
        // the common case).
        let mut conflicts: Vec<u32> = Vec::new();
        for &u in &w.iv[v as usize] {
            for &r in &w.rv[u as usize] {
                if r != v && w.active[r as usize] {
                    conflicts.push(r);
                }
            }
        }
        conflicts.sort_unstable();
        conflicts.dedup();
        for c in conflicts {
            resolve_pair(&mut w, v, c);
        }
    }
    debug_assert!(w.is_deduplicated());
    Dedup1Graph::new_unchecked(w.into_condensed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{
        expand_to_edge_list, validate::validate_dedup1, CondensedBuilder, GraphRep, RealId,
    };

    /// Fig. 9's shape: V={u1,u2,u4,u5} conflicts with V1={u1,u2,u3},
    /// V2={u1,u4,u5,u6}, V3={u2,u5,u7}.
    fn fig9() -> CondensedGraph {
        let mut b = CondensedBuilder::new(7);
        let u: Vec<RealId> = (0..7).map(RealId).collect();
        b.clique(&[u[0], u[1], u[2]]); // V1
        b.clique(&[u[0], u[3], u[4], u[5]]); // V2
        b.clique(&[u[1], u[4], u[6]]); // V3
        b.clique(&[u[0], u[1], u[3], u[4]]); // V
        b.build()
    }

    #[test]
    fn fig9_semantics_preserved() {
        let g = fig9();
        let before = expand_to_edge_list(&g);
        let d = greedy_virtual_nodes_first(&g, VertexOrdering::Ascending, 0);
        assert_eq!(expand_to_edge_list(&d), before);
        assert!(validate_dedup1(&d).is_ok());
    }

    #[test]
    fn produces_fewer_stored_edges_than_expansion_on_dense_overlap() {
        // Two large overlapping cliques: condensed dedup should beat EXP.
        let mut b = CondensedBuilder::new(20);
        let ids: Vec<RealId> = (0..20).map(RealId).collect();
        b.clique(&ids[0..12]);
        b.clique(&ids[8..20]);
        let g = b.build();
        let d = greedy_virtual_nodes_first(&g, VertexOrdering::Descending, 1);
        assert!(validate_dedup1(&d).is_ok());
        assert_eq!(expand_to_edge_list(&d), expand_to_edge_list(&g));
        assert!(d.stored_edge_count() < d.expanded_edge_count());
    }

    #[test]
    fn all_orderings_preserve_semantics() {
        let g = fig9();
        let before = expand_to_edge_list(&g);
        for ord in VertexOrdering::all() {
            for seed in [0u64, 1, 2] {
                let d = greedy_virtual_nodes_first(&g, ord, seed);
                assert_eq!(expand_to_edge_list(&d), before, "{ord:?} seed {seed}");
                assert!(validate_dedup1(&d).is_ok());
            }
        }
    }

    #[test]
    fn identical_triplet_cliques() {
        let mut b = CondensedBuilder::new(4);
        let ids = [RealId(0), RealId(1), RealId(2), RealId(3)];
        b.clique(&ids);
        b.clique(&ids);
        b.clique(&ids);
        let g = b.build();
        let d = greedy_virtual_nodes_first(&g, VertexOrdering::Random, 3);
        assert_eq!(d.expanded_edge_count(), 12);
        assert!(validate_dedup1(&d).is_ok());
    }
}
