//! Write-ahead-log files and atomic snapshot writes.
//!
//! A [`Wal`] is an append-only file of checksummed, length-prefixed
//! records:
//!
//! ```text
//! record:  u32 payload_len | u64 fxhash64(payload) | payload
//! ```
//!
//! Opening a WAL reads every intact record and **truncates a torn tail**
//! (a record cut short by a crash mid-append, or whose checksum does not
//! match) so subsequent appends continue from the last durable record —
//! the standard redo-log recovery discipline.
//!
//! Snapshots are replaced atomically: [`write_file_atomic`] writes to a
//! `.tmp` sibling, syncs, then renames over the target, so a reader never
//! observes a half-written snapshot and a crash mid-compaction leaves
//! either the old or the new file, never a hybrid.

use graphgen_common::metrics::Histogram;
use std::fs::{File, OpenOptions};
use std::hash::Hasher;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Frame overhead per record (length + checksum).
const HEADER: usize = 4 + 8;

fn checksum(payload: &[u8]) -> u64 {
    let mut h = graphgen_common::FxHasher::default();
    h.write(payload);
    h.finish()
}

/// An append-only record log. See the module docs for the framing.
#[derive(Debug)]
pub struct Wal {
    file: File,
    path: PathBuf,
    bytes: u64,
    records: u64,
    /// When set, every synced append records its `sync_all` duration here
    /// (nanoseconds) — the fsync cost is the durability tax the service
    /// reports per WAL, distinct from the encode+write cost around it.
    fsync_hist: Option<Histogram>,
}

impl Wal {
    /// Open (or create) the log at `path`, returning the intact records in
    /// append order. A torn or corrupt tail is truncated away; everything
    /// before it is kept.
    pub fn open(path: impl Into<PathBuf>) -> io::Result<(Wal, Vec<Vec<u8>>)> {
        let path = path.into();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;
        let mut records = Vec::new();
        let mut good = 0usize;
        let mut pos = 0usize;
        while raw.len() - pos >= HEADER {
            let len = u32::from_le_bytes(raw[pos..pos + 4].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(raw[pos + 4..pos + 12].try_into().unwrap());
            let start = pos + HEADER;
            if raw.len() - start < len {
                break; // torn tail: length says more than the file holds
            }
            let payload = &raw[start..start + len];
            if checksum(payload) != sum {
                break; // corrupt tail record
            }
            records.push(payload.to_vec());
            pos = start + len;
            good = pos;
        }
        if good < raw.len() {
            file.set_len(good as u64)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        Ok((
            Wal {
                file,
                path,
                bytes: good as u64,
                records: records.len() as u64,
                fsync_hist: None,
            },
            records,
        ))
    }

    /// Attach a histogram that receives the duration (ns) of every fsync
    /// performed by [`append`](Wal::append).
    pub fn set_fsync_histogram(&mut self, hist: Histogram) {
        self.fsync_hist = Some(hist);
    }

    /// Append one record. With `sync`, the write is fsynced before
    /// returning (durable once this call returns). Payloads of 4 GiB or
    /// more are rejected loudly (the frame length is a `u32`; a wrapped
    /// length would silently corrupt the log instead).
    pub fn append(&mut self, payload: &[u8], sync: bool) -> io::Result<()> {
        if u32::try_from(payload.len()).is_err() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds the u32 frame limit",
                    payload.len()
                ),
            ));
        }
        let mut frame = Vec::with_capacity(HEADER + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&checksum(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        let write = (|| -> io::Result<()> {
            self.file.write_all(&frame)?;
            self.file.flush()?;
            if sync {
                let t0 = Instant::now();
                self.file.sync_all()?;
                if let Some(h) = &self.fsync_hist {
                    h.record_since(t0);
                }
            }
            Ok(())
        })();
        if let Err(e) = write {
            // Roll the file back to the last good offset: a partial frame
            // left in place would make the recovery scan treat every later
            // (successful, acknowledged) append as part of the torn tail.
            let _ = self.file.set_len(self.bytes);
            let _ = self.file.seek(SeekFrom::Start(self.bytes));
            return Err(e);
        }
        self.bytes += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Truncate the log to empty (after its content was folded into a
    /// fresh snapshot).
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(0)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.sync_all()?;
        self.bytes = 0;
        self.records = 0;
        Ok(())
    }

    /// Current log size in bytes (framing included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Number of records in the log.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Append an fxhash64 integrity trailer over `bytes` — the seal every
/// snapshot file carries so recovery detects corruption (WAL records carry
/// per-record checksums; snapshot files carry this whole-file one).
pub fn seal(bytes: &mut Vec<u8>) {
    let sum = checksum(bytes);
    bytes.extend_from_slice(&sum.to_le_bytes());
}

/// Verify and strip the trailer written by [`seal`]. `None` when the input
/// is too short or the checksum mismatches (corrupt file).
pub fn unseal(bytes: &[u8]) -> Option<&[u8]> {
    let n = bytes.len().checked_sub(8)?;
    let (content, trailer) = bytes.split_at(n);
    let stored = u64::from_le_bytes(trailer.try_into().expect("8-byte trailer"));
    (checksum(content) == stored).then_some(content)
}

/// Write `bytes` to `path` atomically: write + sync a `.tmp` sibling, then
/// rename it over the target. Leftover `.tmp` files from a crash are inert
/// (recovery ignores them).
pub fn write_file_atomic(path: &Path, bytes: &[u8], sync: bool) -> io::Result<()> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp)?;
        f.write_all(bytes)?;
        if sync {
            f.sync_all()?;
        }
    }
    std::fs::rename(&tmp, path)?;
    if sync {
        // Make the rename itself durable where the platform allows.
        if let Some(dir) = path.parent() {
            if let Ok(d) = File::open(dir) {
                let _ = d.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::TempDir;

    #[test]
    fn append_and_reopen() {
        let dir = TempDir::new("wal-reopen");
        let path = dir.path().join("t.wal");
        let (mut wal, records) = Wal::open(&path).unwrap();
        assert!(records.is_empty());
        wal.append(b"one", true).unwrap();
        wal.append(b"two", false).unwrap();
        assert_eq!(wal.records(), 2);
        drop(wal);
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"one".to_vec(), b"two".to_vec()]);
        assert_eq!(wal.records(), 2);
        assert!(wal.bytes() > 0);
    }

    #[test]
    fn torn_tail_is_truncated() {
        let dir = TempDir::new("wal-torn");
        let path = dir.path().join("t.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"intact", true).unwrap();
        let good = wal.bytes();
        wal.append(b"torn-away", true).unwrap();
        drop(wal);
        // Cut the second record short, simulating a crash mid-append.
        let raw = std::fs::read(&path).unwrap();
        std::fs::write(&path, &raw[..raw.len() - 3]).unwrap();
        let (wal, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"intact".to_vec()]);
        assert_eq!(wal.bytes(), good);
        // The file itself was truncated back to the durable prefix.
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good);
    }

    #[test]
    fn corrupt_tail_checksum_is_dropped() {
        let dir = TempDir::new("wal-corrupt");
        let path = dir.path().join("t.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"keep", true).unwrap();
        wal.append(b"flip", true).unwrap();
        drop(wal);
        let mut raw = std::fs::read(&path).unwrap();
        let n = raw.len();
        raw[n - 1] ^= 0xFF; // corrupt the last payload byte
        std::fs::write(&path, &raw).unwrap();
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"keep".to_vec()]);
    }

    #[test]
    fn reset_empties_the_log() {
        let dir = TempDir::new("wal-reset");
        let path = dir.path().join("t.wal");
        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(b"gone", true).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), 0);
        wal.append(b"fresh", true).unwrap();
        drop(wal);
        let (_, records) = Wal::open(&path).unwrap();
        assert_eq!(records, vec![b"fresh".to_vec()]);
    }

    #[test]
    fn seal_and_unseal() {
        let mut bytes = b"snapshot content".to_vec();
        seal(&mut bytes);
        assert_eq!(unseal(&bytes), Some(b"snapshot content".as_slice()));
        // Any single-byte flip is detected.
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x01;
            assert_eq!(unseal(&bad), None, "flip at {i} undetected");
        }
        assert_eq!(unseal(b"short"), None);
    }

    #[test]
    fn atomic_write_replaces() {
        let dir = TempDir::new("wal-atomic");
        let path = dir.path().join("s.snap");
        write_file_atomic(&path, b"v1", true).unwrap();
        write_file_atomic(&path, b"v2", true).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"v2");
        assert!(!path.with_extension("tmp").exists());
    }
}
