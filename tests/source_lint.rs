//! Source lint for the serving layer: request-handling and WAL code must
//! not contain `unwrap()` / `expect(...)` / `panic!` outside a small,
//! explicit allowlist — a panic in a connection thread or the writer path
//! kills the service, so fallible paths must report through `ServeError`.
//!
//! Std-only (string scanning, no syn): code up to the first
//! `#[cfg(test)]` line of each file is checked; `main.rs` (process
//! startup, where aborting is the right move) and `testutil.rs` are
//! deliberately out of scope.
//!
//! A second lint keeps the analysis crates honest about suppressions:
//! every `#[allow(...)]` in `crates/core` / `crates/dsl` must appear in
//! `ALLOW_REGISTRY` with a written reason, and registry entries whose
//! attribute has been deleted are flagged as stale.
//!
//! A third lint keeps serving-layer bookkeeping observable: raw atomic
//! counters (`AtomicU64` and friends) in `crates/serve/src` must go
//! through the metrics registry (`crate::obs`) so they show up in
//! `METRICS`, with `RAW_COUNTER_ALLOWED` for the justified exceptions.

use std::path::Path;

/// The files whose non-test code is linted.
const LINTED: &[&str] = &[
    "crates/serve/src/analyze.rs",
    "crates/serve/src/service.rs",
    "crates/serve/src/protocol.rs",
    "crates/serve/src/server.rs",
    "crates/serve/src/wal.rs",
];

/// `.unwrap()` is allowed only directly on these: lock poisoning (the
/// panic already happened elsewhere; propagating is correct) and
/// fixed-size slice conversions whose length is proven on the line.
const UNWRAP_ALLOWED_AFTER: &[&str] = &[".lock()", ".read()", ".write()", ".try_into()"];

/// The only `.expect(...)` messages allowed: each marks an invariant that
/// an enclosing check on the same path already established.
const EXPECT_ALLOWED: &[&str] = &[
    "\"listed name\"",
    "\"wal implies dir\"",
    "\"db wal implies dir\"",
    "\"checked\"",
    "\"8-byte trailer\"",
];

/// The file's non-test source with comments stripped and lines joined
/// (so multi-line method chains like `.write()\n.unwrap()` scan as one
/// token stream).
fn compact_nontest_source(path: &Path) -> String {
    let src = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
    let nontest = match src.find("#[cfg(test)]") {
        Some(cut) => &src[..cut],
        None => &src[..],
    };
    nontest
        .lines()
        .map(|line| {
            // Naive comment strip: fine for these files (no `//` inside
            // string literals on linted constructs).
            let cut = line.find("//").unwrap_or(line.len());
            line[..cut].trim()
        })
        .collect::<Vec<_>>()
        .join("")
}

fn context(text: &str, pos: usize) -> String {
    let start = pos.saturating_sub(60);
    let end = (pos + 40).min(text.len());
    text[start..end].to_string()
}

#[test]
fn serve_request_and_wal_paths_do_not_panic() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut violations = Vec::new();
    for rel in LINTED {
        let text = compact_nontest_source(&root.join(rel));

        for (pos, _) in text.match_indices(".unwrap()") {
            let before = &text[..pos];
            if !UNWRAP_ALLOWED_AFTER.iter().any(|ok| before.ends_with(ok)) {
                violations.push(format!(
                    "{rel}: `.unwrap()` outside the allowlist near `…{}…`",
                    context(&text, pos)
                ));
            }
        }

        for (pos, _) in text.match_indices(".expect(") {
            let after = &text[pos + ".expect(".len()..];
            if !EXPECT_ALLOWED.iter().any(|msg| after.starts_with(msg)) {
                violations.push(format!(
                    "{rel}: `.expect(...)` with unlisted message near `…{}…`",
                    context(&text, pos)
                ));
            }
        }

        for needle in ["panic!", "unreachable!", "todo!", "unimplemented!"] {
            if let Some(pos) = text.find(needle) {
                violations.push(format!(
                    "{rel}: `{needle}` in non-test code near `…{}…`",
                    context(&text, pos)
                ));
            }
        }
    }
    assert!(
        violations.is_empty(),
        "serving-layer panic lint failed (either return a ServeError or, \
         for a genuinely proven invariant, extend the allowlist in \
         tests/source_lint.rs with a justification):\n{}",
        violations.join("\n")
    );
}

// ---------------------------------------------------------------------------
// Counter bookkeeping goes through the metrics registry
// ---------------------------------------------------------------------------

/// Files in `crates/serve/src` allowed to hold a raw atomic counter.
/// Everything else must use `graphgen_common::metrics` instruments via
/// `obs.rs` — a bare `AtomicU64` is invisible to `METRICS`, and the
/// read-then-reset races the registry replaced all started as "just one
/// little counter". (`AtomicBool` flags — shutdown, wedged — are fine;
/// this lint is about *counters*.)
const RAW_COUNTER_ALLOWED: &[&str] = &[
    // Temp-dir name uniquifier in test support, not a metric.
    "crates/serve/src/testutil.rs",
];

#[test]
fn serve_counters_live_in_the_metrics_registry() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let dir = root.join("crates/serve/src");
    let mut violations = Vec::new();
    for entry in std::fs::read_dir(&dir).unwrap_or_else(|e| panic!("{dir:?}: {e}")) {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|ext| ext != "rs") {
            continue;
        }
        let rel = format!(
            "crates/serve/src/{}",
            path.file_name().expect("file name").to_string_lossy()
        );
        if RAW_COUNTER_ALLOWED.contains(&rel.as_str()) {
            continue;
        }
        let text = compact_nontest_source(&path);
        for needle in ["AtomicU64", "AtomicUsize", "AtomicI64"] {
            if let Some(pos) = text.find(needle) {
                violations.push(format!(
                    "{rel}: raw `{needle}` counter near `…{}…` — register a \
                     Counter/Gauge/Histogram through crate::obs instead (or, \
                     for a genuine non-metric, extend RAW_COUNTER_ALLOWED \
                     with a justification)",
                    context(&text, pos)
                ));
            }
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));
}

#[test]
fn raw_counter_allowlist_entries_are_still_used() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    for rel in RAW_COUNTER_ALLOWED {
        let text = compact_nontest_source(&root.join(rel));
        assert!(
            ["AtomicU64", "AtomicUsize", "AtomicI64"]
                .iter()
                .any(|needle| text.contains(needle)),
            "{rel} no longer holds a raw atomic counter; prune it from \
             RAW_COUNTER_ALLOWED"
        );
    }
}

// ---------------------------------------------------------------------------
// `#[allow(...)]` registry for the analysis crates
// ---------------------------------------------------------------------------

/// Every `#[allow(...)]` in `crates/core` / `crates/dsl` must be
/// registered here as `(file, lint)` with a reason. CI runs clippy with
/// `-D warnings`, so a suppression is the only way a lint regression can
/// slip through — each one is a deliberate, reviewed exception, and a
/// registered entry whose attribute has since been deleted is stale and
/// must be pruned (the test fails in both directions).
const ALLOW_REGISTRY: &[(&str, &str)] = &[
    // `SegmentState::transitions` honestly returns (appeared, disappeared)
    // edge-pair vectors; an alias used once would only hide the shape.
    ("crates/core/src/incremental.rs", "clippy::type_complexity"),
    // `materialize_segment` threads every piece of per-segment patch state
    // explicitly; bundling them would hide which step mutates what.
    (
        "crates/core/src/incremental.rs",
        "clippy::too_many_arguments",
    ),
];

/// All `(file, lint)` pairs for `#[allow(...)]` / `#![allow(...)]`
/// attributes under the given crate source directories.
fn allow_attributes(root: &Path, dirs: &[&str]) -> Vec<(String, String)> {
    fn walk(dir: &Path, files: &mut Vec<std::path::PathBuf>) {
        for entry in std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{dir:?}: {e}")) {
            let path = entry.expect("dir entry").path();
            if path.is_dir() {
                walk(&path, files);
            } else if path.extension().is_some_and(|ext| ext == "rs") {
                files.push(path);
            }
        }
    }
    let mut files = Vec::new();
    for dir in dirs {
        walk(&root.join(dir), &mut files);
    }
    let mut found = Vec::new();
    for path in files {
        let rel = path
            .strip_prefix(root)
            .expect("under root")
            .to_string_lossy()
            .into_owned();
        let src = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{path:?}: {e}"));
        for line in src.lines() {
            let line = line.trim();
            let Some(rest) = line
                .strip_prefix("#[allow(")
                .or_else(|| line.strip_prefix("#![allow("))
            else {
                continue;
            };
            let lints = rest.split(")]").next().unwrap_or(rest);
            for lint in lints.split(',') {
                found.push((rel.clone(), lint.trim().to_string()));
            }
        }
    }
    found
}

#[test]
fn analysis_crates_have_no_unregistered_or_stale_allow_attributes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let found = allow_attributes(root, &["crates/core/src", "crates/dsl/src"]);

    let mut violations = Vec::new();
    for (file, lint) in &found {
        if !ALLOW_REGISTRY
            .iter()
            .any(|(rf, rl)| rf == file && rl == lint)
        {
            violations.push(format!(
                "{file}: unregistered `#[allow({lint})]` — fix the lint, or \
                 register it with a reason in tests/source_lint.rs"
            ));
        }
    }
    for (file, lint) in ALLOW_REGISTRY {
        if !found.iter().any(|(ff, fl)| ff == file && fl == lint) {
            violations.push(format!(
                "stale registry entry ({file}, {lint}): the attribute is \
                 gone — prune it from ALLOW_REGISTRY"
            ));
        }
    }
    assert!(violations.is_empty(), "{}", violations.join("\n"));
}

#[test]
fn allowlist_entries_are_still_used() {
    // An allowlist that outlives the code it excuses silently widens the
    // lint; prune entries when their call sites go away.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let all: String = LINTED
        .iter()
        .map(|rel| compact_nontest_source(&root.join(rel)))
        .collect();
    for msg in EXPECT_ALLOWED {
        assert!(
            all.contains(&format!(".expect({msg})")),
            "allowlisted expect message {msg} no longer appears; remove it"
        );
    }
}
