//! Quickstart: extract a hidden co-author graph from relational tables and
//! run an algorithm on it — the paper's Fig. 1 flow in ~40 lines.
//!
//! Run with: `cargo run --example quickstart`

use graphgen::core::{serialize, AdvisorPolicy, ConvertOptions, GraphGen};
use graphgen::graph::GraphRep;
use graphgen::reldb::{Column, Database, Schema, Table, Value};

fn main() {
    // 1. A relational database: authors and an author↔publication table.
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for (id, name) in [
        (1, "Ada"),
        (2, "Barbara"),
        (3, "Grace"),
        (4, "Hedy"),
        (5, "Mary"),
    ] {
        author
            .push_row(vec![Value::int(id), Value::str(name)])
            .unwrap();
    }
    let mut author_pub = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (aid, pid) in [
        (1, 1),
        (2, 1),
        (4, 1),
        (1, 2),
        (4, 2),
        (3, 3),
        (4, 3),
        (5, 3),
    ] {
        author_pub
            .push_row(vec![Value::int(aid), Value::int(pid)])
            .unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", author_pub).unwrap();

    // 2. Declare the hidden graph in the Datalog DSL ([Q1] from the paper).
    let query = "
        Nodes(ID, Name) :- Author(ID, Name).
        Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
    ";

    // 3. Extract. The result is a GraphHandle: the graph in whatever
    //    representation GraphGen chose, plus ids, properties, and the plan
    //    report. The handle itself implements the Graph API.
    let gg = GraphGen::new(&db);
    let graph = gg.extract(query).expect("extraction");
    println!(
        "extracted {} vertices, {} logical edges ({} stored), representation: {}",
        graph.num_vertices(),
        graph.expanded_edge_count(),
        graph.stored_edge_count(),
        graph.kind(),
    );
    for sql in &graph.report().sql {
        println!("generated SQL: {sql}");
    }

    // 4. Stay in your own key space: neighbors and properties by key.
    for u in graph.vertices() {
        let key = graph.key_of(u).clone();
        let name = graph
            .vertex_property(&key, "Name")
            .and_then(|p| p.as_text().map(str::to_string))
            .unwrap_or_default();
        let coauthors: Vec<String> = graph
            .neighbors_by_key(&key)
            .unwrap_or_default()
            .iter()
            .map(|k| k.to_string())
            .collect();
        println!("{name:>8} ({key}) -> {coauthors:?}");
    }

    // 5. Ask the §6.5 advisor which representation fits, and convert. The
    //    conversion is typed: an infeasible request explains itself instead
    //    of handing back None.
    let advised = graph.advise(&AdvisorPolicy::default());
    let converted = graph
        .convert_to_advised(&AdvisorPolicy::default(), &ConvertOptions::default())
        .expect("advised conversions are always feasible");
    println!(
        "\nadvisor says {advised}; handle now holds {}",
        converted.kind()
    );

    // 6. Run PageRank through the multithreaded vertex-centric framework —
    //    algorithms take the handle directly, whatever it holds.
    let ranks = graphgen::algo::pagerank(&converted, Default::default());
    let mut ranked: Vec<(f64, String)> = converted
        .vertices()
        .map(|u| {
            let name = converted
                .properties()
                .get(u, "Name")
                .and_then(|p| p.as_text().map(str::to_string))
                .unwrap_or_default();
            (ranks[u.0 as usize], name)
        })
        .collect();
    ranked.sort_by(|a, b| b.0.total_cmp(&a.0));
    println!("\nPageRank:");
    for (r, name) in ranked {
        println!("  {name:>8}: {r:.4}");
    }

    // 7. Serialize for external tools (NetworkX-style edge list).
    let mut out = Vec::new();
    serialize::write_edge_list(&converted, &mut out).unwrap();
    println!("\nedge list:\n{}", String::from_utf8(out).unwrap());
}
