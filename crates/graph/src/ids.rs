//! Node identifiers.
//!
//! Real and virtual nodes live in separate dense id spaces. Adjacency lists
//! store a packed [`Adj`] whose high bit distinguishes the two, so a target
//! costs 4 bytes regardless of kind.

use std::fmt;

/// Dense id of a *real* node (an entity from a `Nodes` statement).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RealId(pub u32);

/// Dense id of a *virtual* node (a join-attribute value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtId(pub u32);

/// A packed adjacency target: either a real node or a virtual node.
/// The top bit is the kind flag, leaving 31 bits of id space for each.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Adj(u32);

const VIRT_FLAG: u32 = 1 << 31;

impl Adj {
    /// Target a real node.
    #[inline]
    pub fn real(id: RealId) -> Self {
        debug_assert!(id.0 < VIRT_FLAG, "real id overflows 31 bits");
        Adj(id.0)
    }

    /// Target a virtual node.
    #[inline]
    pub fn virt(id: VirtId) -> Self {
        debug_assert!(id.0 < VIRT_FLAG, "virtual id overflows 31 bits");
        Adj(id.0 | VIRT_FLAG)
    }

    /// True if this target is a virtual node.
    #[inline]
    pub fn is_virtual(self) -> bool {
        self.0 & VIRT_FLAG != 0
    }

    /// The real id, if the target is real.
    #[inline]
    pub fn as_real(self) -> Option<RealId> {
        if self.is_virtual() {
            None
        } else {
            Some(RealId(self.0))
        }
    }

    /// The virtual id, if the target is virtual.
    #[inline]
    pub fn as_virtual(self) -> Option<VirtId> {
        if self.is_virtual() {
            Some(VirtId(self.0 & !VIRT_FLAG))
        } else {
            None
        }
    }

    /// Raw packed value (used for sorted adjacency comparisons).
    #[inline]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuild from a packed value produced by [`Adj::raw`] (the snapshot
    /// codec's inverse).
    #[inline]
    pub fn from_raw(raw: u32) -> Self {
        Adj(raw)
    }
}

impl fmt::Debug for Adj {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_virtual() {
            write!(f, "V{}", v.0)
        } else {
            write!(f, "r{}", self.0)
        }
    }
}

impl fmt::Display for RealId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

impl fmt::Display for VirtId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "V{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_real() {
        let a = Adj::real(RealId(12345));
        assert!(!a.is_virtual());
        assert_eq!(a.as_real(), Some(RealId(12345)));
        assert_eq!(a.as_virtual(), None);
    }

    #[test]
    fn pack_unpack_virtual() {
        let a = Adj::virt(VirtId(7));
        assert!(a.is_virtual());
        assert_eq!(a.as_virtual(), Some(VirtId(7)));
        assert_eq!(a.as_real(), None);
    }

    #[test]
    fn packed_is_4_bytes() {
        assert_eq!(std::mem::size_of::<Adj>(), 4);
    }

    #[test]
    fn reals_sort_before_virtuals() {
        // Sorted adjacency lists put all real targets first — existsEdge
        // binary-searches the real prefix.
        let mut v = [
            Adj::virt(VirtId(0)),
            Adj::real(RealId(999)),
            Adj::real(RealId(1)),
        ];
        v.sort();
        assert_eq!(v[0], Adj::real(RealId(1)));
        assert_eq!(v[1], Adj::real(RealId(999)));
        assert_eq!(v[2], Adj::virt(VirtId(0)));
    }

    #[test]
    fn debug_formatting() {
        assert_eq!(format!("{:?}", Adj::real(RealId(3))), "r3");
        assert_eq!(format!("{:?}", Adj::virt(VirtId(3))), "V3");
    }
}
