//! Figure 13: microbenchmarks of the Graph API operations per
//! representation, normalized to EXP. Mean of 3000 repetitions on a fixed
//! random node sample, exactly like §6.3.

use graphgen_bench::{row, small_datasets, RepSet};
use graphgen_common::SplitMix64;
use graphgen_graph::{GraphRep, RealId};
use std::time::Instant;

const REPS: usize = 3000;

fn sample_nodes(n: usize) -> Vec<RealId> {
    let mut rng = SplitMix64::new(2024);
    (0..REPS)
        .map(|_| RealId(rng.next_below(n as u64) as u32))
        .collect()
}

fn bench_get_neighbors(g: &dyn GraphRep, nodes: &[RealId]) -> f64 {
    let start = Instant::now();
    let mut sink = 0usize;
    for &u in nodes {
        g.for_each_neighbor(u, &mut |_| sink += 1);
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64() / nodes.len() as f64
}

fn bench_exists_edge(g: &dyn GraphRep, nodes: &[RealId]) -> f64 {
    let start = Instant::now();
    let mut sink = 0usize;
    for w in nodes.windows(2) {
        sink += usize::from(g.exists_edge(w[0], w[1]));
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64() / (nodes.len() - 1) as f64
}

fn bench_add_delete_edge(g: &mut dyn GraphRep, nodes: &[RealId]) -> f64 {
    let start = Instant::now();
    for w in nodes.windows(2).take(500) {
        g.add_edge(w[0], w[1]);
        g.delete_edge(w[0], w[1]);
    }
    start.elapsed().as_secs_f64() / 500.0
}

fn bench_remove_vertex(g: &mut dyn GraphRep, nodes: &[RealId]) -> f64 {
    let start = Instant::now();
    for &u in nodes.iter().take(500) {
        g.delete_vertex(u);
    }
    start.elapsed().as_secs_f64() / 500.0
}

fn main() {
    println!("Figure 13: Graph-API microbenchmarks, normalized to EXP\n");
    let widths = [12, 14, 12, 14, 14];
    for (name, cdup) in small_datasets() {
        println!("--- {name} ---");
        row(
            &[
                "rep",
                "getNeighbors",
                "existsEdge",
                "add+delEdge",
                "removeVertex",
            ]
            .map(String::from),
            &widths,
        );
        let set = RepSet::build(name, cdup);
        let nodes = sample_nodes(set.exp.num_real_slots());
        // EXP baseline.
        let base = (
            bench_get_neighbors(&set.exp, &nodes),
            bench_exists_edge(&set.exp, &nodes),
            {
                let mut g = set.exp.clone();
                bench_add_delete_edge(&mut g, &nodes)
            },
            {
                let mut g = set.exp.clone();
                bench_remove_vertex(&mut g, &nodes)
            },
        );
        let norm = |v: f64, b: f64| format!("{:.2}", v / b.max(1e-12));
        let report = |label: &str, gn: f64, ee: f64, ad: f64, rv: f64| {
            row(
                &[
                    label.to_string(),
                    norm(gn, base.0),
                    norm(ee, base.1),
                    norm(ad, base.2),
                    norm(rv, base.3),
                ],
                &widths,
            );
        };
        report("EXP", base.0, base.1, base.2, base.3);
        macro_rules! run_rep {
            ($label:expr, $g:expr) => {{
                let gn = bench_get_neighbors(&$g, &nodes);
                let ee = bench_exists_edge(&$g, &nodes);
                let ad = {
                    let mut g = $g.clone();
                    bench_add_delete_edge(&mut g, &nodes)
                };
                let rv = {
                    let mut g = $g.clone();
                    bench_remove_vertex(&mut g, &nodes)
                };
                report($label, gn, ee, ad, rv);
            }};
        }
        run_rep!("C-DUP", set.cdup);
        run_rep!("DEDUP-1", set.dedup1);
        if let Some(d2) = &set.dedup2 {
            run_rep!("DEDUP-2", d2.clone());
        }
        run_rep!("BITMAP-1", set.bitmap1);
        run_rep!("BITMAP-2", set.bitmap2);
        println!();
    }
    println!("paper shape: getNeighbors slower on all condensed reps vs EXP (worst: C-DUP");
    println!("on many-small-vnode datasets); removeVertex *cheaper* on condensed reps.");
}
