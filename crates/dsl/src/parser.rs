//! Recursive-descent parser for the extraction DSL.

use crate::ast::{Atom, HeadKind, Program, Rule, Term};
use crate::lexer::{tokenize, Token};
use std::fmt;

/// Parse or semantic-analysis errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseError {
    /// Tokenizer failure.
    Lex(String),
    /// Grammar failure.
    Syntax(String),
    /// Post-parse validation failure (from [`mod@crate::analyze`]).
    Semantic(String),
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseError::Lex(msg) => write!(f, "lex error: {msg}"),
            ParseError::Syntax(msg) => write!(f, "syntax error: {msg}"),
            ParseError::Semantic(msg) => write!(f, "semantic error: {msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

struct Parser {
    tokens: Vec<(Token, usize)>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(t, _)| t)
    }

    fn next(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(t, _)| t.clone());
        self.pos += 1;
        t
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.next() {
            Some(t) if &t == want => Ok(()),
            Some(t) => Err(ParseError::Syntax(format!(
                "expected `{want}`, found `{t}`"
            ))),
            None => Err(ParseError::Syntax(format!(
                "expected `{want}`, found end of input"
            ))),
        }
    }

    fn term(&mut self) -> Result<Term, ParseError> {
        match self.next() {
            Some(Token::Ident(name)) => Ok(Term::Var(name)),
            Some(Token::Int(v)) => Ok(Term::Int(v)),
            Some(Token::Str(s)) => Ok(Term::Str(s)),
            Some(Token::Wildcard) => Ok(Term::Wildcard),
            Some(t) => Err(ParseError::Syntax(format!("expected term, found `{t}`"))),
            None => Err(ParseError::Syntax(
                "expected term, found end of input".into(),
            )),
        }
    }

    fn term_list(&mut self) -> Result<Vec<Term>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut terms = vec![self.term()?];
        loop {
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                    terms.push(self.term()?);
                }
                Some(Token::RParen) => {
                    self.next();
                    return Ok(terms);
                }
                other => {
                    return Err(ParseError::Syntax(format!(
                        "expected `,` or `)` in term list, found {:?}",
                        other.map(|t| t.to_string())
                    )))
                }
            }
        }
    }

    fn atom(&mut self) -> Result<Atom, ParseError> {
        let relation = match self.next() {
            Some(Token::Ident(name)) => name,
            Some(t) => {
                return Err(ParseError::Syntax(format!(
                    "expected relation name, found `{t}`"
                )))
            }
            None => {
                return Err(ParseError::Syntax(
                    "expected relation name, found end of input".into(),
                ))
            }
        };
        let args = self.term_list()?;
        Ok(Atom { relation, args })
    }

    fn rule(&mut self) -> Result<Rule, ParseError> {
        let head_name = match self.next() {
            Some(Token::Ident(name)) => name,
            Some(t) => {
                return Err(ParseError::Syntax(format!(
                    "expected `Nodes` or `Edges`, found `{t}`"
                )))
            }
            None => unreachable!("rule() called at end of input"),
        };
        let head = match head_name.as_str() {
            "Nodes" => HeadKind::Nodes,
            "Edges" => HeadKind::Edges,
            other => {
                return Err(ParseError::Syntax(format!(
                    "rule heads must be `Nodes` or `Edges` (found `{other}`); \
                     recursion and auxiliary views are not supported"
                )))
            }
        };
        let head_args = self.term_list()?;
        self.expect(&Token::Turnstile)?;
        let mut body = vec![self.atom()?];
        loop {
            match self.peek() {
                Some(Token::Comma) => {
                    self.next();
                    body.push(self.atom()?);
                }
                Some(Token::Dot) => {
                    self.next();
                    break;
                }
                other => {
                    return Err(ParseError::Syntax(format!(
                        "expected `,` or `.` after atom, found {:?}",
                        other.map(|t| t.to_string())
                    )))
                }
            }
        }
        Ok(Rule {
            head,
            head_args,
            body,
        })
    }
}

/// Parse a whole program.
pub fn parse(text: &str) -> Result<Program, ParseError> {
    let tokens = tokenize(text).map_err(ParseError::Lex)?;
    let mut parser = Parser { tokens, pos: 0 };
    let mut rules = Vec::new();
    while parser.peek().is_some() {
        rules.push(parser.rule()?);
    }
    if rules.is_empty() {
        return Err(ParseError::Syntax("empty program".into()));
    }
    Ok(Program { rules })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_q1() {
        let p = parse(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 2);
        assert_eq!(p.rules[0].head, HeadKind::Nodes);
        assert_eq!(p.rules[1].head, HeadKind::Edges);
        assert_eq!(p.rules[1].body.len(), 2);
        assert_eq!(p.rules[1].body[0].relation, "AuthorPub");
    }

    #[test]
    fn parses_q3_heterogeneous() {
        let p = parse(
            "Nodes(ID, Name) :- Instructor(ID, Name).\n\
             Nodes(ID, Name) :- Student(ID, Name).\n\
             Edges(ID1, ID2) :- TaughtCourse(ID1, CourseId), TookCourse(ID2, CourseId).",
        )
        .unwrap();
        assert_eq!(p.rules.len(), 3);
    }

    #[test]
    fn parses_constants_and_wildcards() {
        let p = parse("Edges(A, B) :- CastInfo(_, A, M, 'actor'), CastInfo(_, B, M, 'actor').")
            .unwrap();
        let atom = &p.rules[0].body[0];
        assert_eq!(atom.args[0], Term::Wildcard);
        assert_eq!(atom.args[3], Term::Str("actor".into()));
    }

    #[test]
    fn rejects_unknown_head() {
        let e = parse("Paths(X, Y) :- Edge(X, Y).").unwrap_err();
        assert!(matches!(e, ParseError::Syntax(_)));
    }

    #[test]
    fn rejects_missing_dot() {
        assert!(parse("Nodes(X) :- R(X)").is_err());
    }

    #[test]
    fn rejects_empty_program() {
        assert!(parse("   % only a comment\n").is_err());
    }
}
