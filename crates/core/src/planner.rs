//! The extraction planner (§4.2 Steps 2–3).
//!
//! For each join `Ri ⋈_a R(i+1)` in an `Edges` chain, the planner fetches
//! the number of distinct values `d` of the join attribute from the catalog
//! and applies the paper's large-output test:
//!
//! ```text
//! |Ri| * |R(i+1)| / d  >  2 * (|Ri| + |R(i+1)|)
//! ```
//!
//! (assuming a uniformly distributed join attribute). Small-output runs of
//! the chain become segment queries handed to the relational engine;
//! large-output joins are postponed — each boundary attribute materializes
//! as a layer of virtual nodes.

use graphgen_dsl::{ChainAtom, ConstFilter, EdgeChain};
use graphgen_reldb::{query::ChainStep, Database, DbResult, Predicate, Query, Value};

/// The planner's verdict on one join of the chain.
#[derive(Debug, Clone)]
pub struct JoinDecision {
    /// Index of the left atom in the chain.
    pub left_atom: usize,
    /// Left/right table names (for reporting).
    pub left_table: String,
    /// Right table name.
    pub right_table: String,
    /// Row counts used in the test.
    pub left_rows: usize,
    /// Right row count.
    pub right_rows: usize,
    /// Distinct values of the join attribute.
    pub distinct: usize,
    /// Estimated join output size `|L|*|R|/d`.
    pub estimated_output: f64,
    /// True if the join is classified large-output (postponed).
    pub large_output: bool,
}

/// One segment of the chain (a maximal small-output run), executable as a
/// single relational query.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    /// Indices `[start, end]` of chain atoms in this segment (inclusive).
    pub atoms: (usize, usize),
    /// The relational query computing `res_i(x, y)`.
    pub query: Query,
}

/// The full plan for one `Edges` chain.
#[derive(Debug, Clone)]
pub struct ChainPlan {
    /// Per-join decisions (length = #atoms - 1).
    pub joins: Vec<JoinDecision>,
    /// The segment queries, in chain order. One segment and no large joins
    /// means the edge list is computed entirely in the database.
    pub segments: Vec<SegmentPlan>,
}

impl ChainPlan {
    /// Number of virtual-node layers this plan creates (= #large joins).
    pub fn virtual_layers(&self) -> usize {
        self.joins.iter().filter(|j| j.large_output).count()
    }
}

/// Compile a DSL atom's constant selections into one engine predicate
/// (shared by the planner, the extractor's node views, and the incremental
/// maintenance state, so filter semantics can never diverge between them).
pub(crate) fn filters_to_predicate(filters: &[ConstFilter]) -> Predicate {
    let mut pred = Predicate::True;
    for f in filters {
        let p = match f {
            ConstFilter::Int(col, v) => Predicate::Eq(*col, Value::int(*v)),
            ConstFilter::Str(col, s) => Predicate::Eq(*col, Value::str(s.as_str())),
        };
        pred = pred.and(p);
    }
    pred
}

fn atom_to_step(atom: &ChainAtom) -> ChainStep {
    ChainStep {
        table: atom.relation.clone(),
        pred: filters_to_predicate(&atom.filters),
        in_col: atom.in_col,
        out_col: atom.out_col,
    }
}

/// Classify every join of `chain` and build the segment queries.
/// `large_output_factor` is the paper's constant 2.0.
pub fn plan_chain(
    db: &Database,
    chain: &EdgeChain,
    large_output_factor: f64,
) -> DbResult<ChainPlan> {
    let atoms = &chain.steps;
    let mut joins = Vec::with_capacity(atoms.len().saturating_sub(1));
    for i in 0..atoms.len().saturating_sub(1) {
        let left = &atoms[i];
        let right = &atoms[i + 1];
        let ls = db.column_stats(&left.relation, left.out_col)?;
        let rs = db.column_stats(&right.relation, right.in_col)?;
        // d: distinct values of the join attribute; take the larger side's
        // count as the domain estimate (both columns range over the same
        // attribute domain).
        let d = ls.n_distinct.max(rs.n_distinct).max(1);
        let estimated_output = ls.row_count as f64 * rs.row_count as f64 / d as f64;
        let large_output =
            estimated_output > large_output_factor * (ls.row_count + rs.row_count) as f64;
        joins.push(JoinDecision {
            left_atom: i,
            left_table: left.relation.clone(),
            right_table: right.relation.clone(),
            left_rows: ls.row_count,
            right_rows: rs.row_count,
            distinct: d,
            estimated_output,
            large_output,
        });
    }
    // Segments: split at large-output joins.
    let mut segments = Vec::new();
    let mut start = 0usize;
    for i in 0..=joins.len() {
        let boundary = i == joins.len() || joins[i].large_output;
        if boundary {
            let end = i;
            let steps: Vec<ChainStep> = atoms[start..=end].iter().map(atom_to_step).collect();
            segments.push(SegmentPlan {
                atoms: (start, end),
                query: Query {
                    steps,
                    distinct: true,
                },
            });
            start = i + 1;
        }
    }
    Ok(ChainPlan { joins, segments })
}

/// Build the single full-expansion query for the chain (the paper's
/// Table 1 "Full Graph" baseline; also Case 2 execution).
pub fn full_query(chain: &EdgeChain) -> Query {
    Query {
        steps: chain.steps.iter().map(atom_to_step).collect(),
        distinct: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_dsl::compile;
    use graphgen_reldb::{Column, Schema, Table};

    /// AuthorPub with a *large-output* self-join: many authors per pub.
    fn dblp_like(authors: i64, pubs: i64, per_pub: i64) -> Database {
        let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        for a in 0..authors {
            author
                .push_row(vec![Value::int(a), Value::str(format!("author{a}"))])
                .unwrap();
        }
        let mut next = 0i64;
        for p in 0..pubs {
            for _ in 0..per_pub {
                ap.push_row(vec![Value::int(next % authors), Value::int(p)])
                    .unwrap();
                next += 7;
            }
        }
        let mut db = Database::new();
        db.register("Author", author).unwrap();
        db.register("AuthorPub", ap).unwrap();
        db
    }

    fn coauthor_chain() -> EdgeChain {
        compile(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
        )
        .unwrap()
        .edges
        .remove(0)
    }

    #[test]
    fn dense_self_join_is_large_output() {
        // 10 authors per pub: |R|^2/d = (1000)^2/100 = 10,000 > 2*2000.
        let db = dblp_like(50, 100, 10);
        let plan = plan_chain(&db, &coauthor_chain(), 2.0).unwrap();
        assert_eq!(plan.joins.len(), 1);
        assert!(plan.joins[0].large_output);
        assert_eq!(plan.virtual_layers(), 1);
        assert_eq!(plan.segments.len(), 2);
    }

    #[test]
    fn sparse_self_join_is_small_output() {
        // 1 author per pub: output ~ |R| -> small.
        let db = dblp_like(100, 100, 1);
        let plan = plan_chain(&db, &coauthor_chain(), 2.0).unwrap();
        assert!(!plan.joins[0].large_output);
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].atoms, (0, 1));
    }

    #[test]
    fn segment_queries_cover_the_chain() {
        let db = dblp_like(50, 100, 10);
        let plan = plan_chain(&db, &coauthor_chain(), 2.0).unwrap();
        assert_eq!(plan.segments[0].atoms, (0, 0));
        assert_eq!(plan.segments[1].atoms, (1, 1));
        // Each segment is runnable, and the threaded path returns the same
        // pairs in the same order.
        for seg in &plan.segments {
            let serial = seg.query.run(&db).expect("segment runs");
            assert_eq!(seg.query.run_threaded(&db, 4).expect("threaded"), serial);
        }
    }

    #[test]
    fn full_query_matches_chain_len() {
        let chain = coauthor_chain();
        let q = full_query(&chain);
        assert_eq!(q.steps.len(), 2);
        assert!(q.distinct);
    }

    #[test]
    fn factor_changes_classification() {
        let db = dblp_like(50, 100, 10);
        // With an absurd factor nothing is large.
        let plan = plan_chain(&db, &coauthor_chain(), 1e9).unwrap();
        assert!(!plan.joins[0].large_output);
    }
}
