//! Graph serialization (§3.1's fourth consumption path): write the
//! extracted graph to disk "in its expanded representation, in a
//! standardized format, so that it can be further analyzed using any
//! specialized graph processing framework" (NetworkX-style edge lists),
//! plus a JSON document with nodes, properties, and edges for tools that
//! want both.

use crate::handle::GraphHandle;
use graphgen_graph::{GraphRep, PropValue};
use graphgen_reldb::Value;
use std::io::{self, Write};

/// Write the expanded edge list: one `src<TAB>dst` pair per line, using the
/// original node keys.
pub fn write_edge_list<W: Write>(g: &GraphHandle, out: &mut W) -> io::Result<()> {
    for u in g.vertices() {
        let uk = g.key_of(u);
        let mut result = Ok(());
        g.for_each_neighbor(u, &mut |v| {
            if result.is_ok() {
                result = writeln!(out, "{}\t{}", plain(uk), plain(g.key_of(v)));
            }
        });
        result?;
    }
    Ok(())
}

/// Write a JSON document: `{"nodes": [...], "edges": [[src, dst], ...]}`.
/// Hand-rolled emitter (the structure is fixed and tiny) with proper string
/// escaping.
pub fn write_json<W: Write>(g: &GraphHandle, out: &mut W) -> io::Result<()> {
    write!(out, "{{\"nodes\":[")?;
    let mut first = true;
    for u in g.vertices() {
        if !first {
            write!(out, ",")?;
        }
        first = false;
        write!(out, "{{\"id\":{}", json_value(g.key_of(u)))?;
        let mut names: Vec<&str> = g.properties().names().collect();
        names.sort_unstable();
        for name in names {
            if let Some(p) = g.properties().get(u, name) {
                write!(out, ",{}:{}", json_str(name), json_prop(p))?;
            }
        }
        write!(out, "}}")?;
    }
    write!(out, "],\"edges\":[")?;
    let mut first = true;
    for u in g.vertices() {
        let mut result = Ok(());
        g.for_each_neighbor(u, &mut |v| {
            if result.is_err() {
                return;
            }
            let sep = if first { "" } else { "," };
            first = false;
            result = write!(
                out,
                "{sep}[{},{}]",
                json_value(g.key_of(u)),
                json_value(g.key_of(v))
            );
        });
        result?;
    }
    write!(out, "]}}")
}

fn plain(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => s.to_string(),
    }
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn json_value(v: &Value) -> String {
    match v {
        Value::Null => "null".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => json_str(s),
    }
}

fn json_prop(p: &PropValue) -> String {
    match p {
        PropValue::Int(v) => v.to_string(),
        PropValue::Float(v) => format!("{v}"),
        PropValue::Text(s) => json_str(s),
    }
}

/// A canonical, key-space byte serialization of a handle's logical graph:
/// a `nodes` section (sorted by key, each with its properties sorted by
/// name) followed by an `edges` section (expanded logical edges as sorted
/// key pairs). The output depends only on the logical graph — not on the
/// representation, dense-id assignment, virtual-node numbering, or thread
/// count — so it is the equality the incremental-maintenance oracle
/// asserts: patched handle bytes == from-scratch re-extraction bytes.
pub fn canonical_bytes(g: &GraphHandle) -> Vec<u8> {
    let mut nodes: Vec<(&Value, graphgen_graph::RealId)> =
        g.vertices().map(|u| (g.key_of(u), u)).collect();
    nodes.sort_by(|a, b| a.0.cmp(b.0));
    let mut names: Vec<&str> = g.properties().names().collect();
    names.sort_unstable();
    let mut out = Vec::new();
    out.extend_from_slice(b"nodes\n");
    for (key, u) in &nodes {
        out.extend_from_slice(canon_value(key).as_bytes());
        for name in &names {
            if let Some(p) = g.properties().get(*u, name) {
                out.extend_from_slice(format!("\t{name}={}", canon_prop(p)).as_bytes());
            }
        }
        out.push(b'\n');
    }
    out.extend_from_slice(b"edges\n");
    let mut edges: Vec<(&Value, &Value)> = Vec::new();
    for u in g.vertices() {
        let uk = g.key_of(u);
        g.for_each_neighbor(u, &mut |v| edges.push((uk, g.key_of(v))));
    }
    edges.sort();
    edges.dedup();
    for (a, b) in edges {
        out.extend_from_slice(format!("{}\t{}\n", canon_value(a), canon_value(b)).as_bytes());
    }
    out
}

/// Unambiguous key rendering: string keys are escaped (`{:?}`) so keys
/// containing tabs/newlines cannot collide with the separators or with
/// differently-structured lines.
fn canon_value(v: &Value) -> String {
    match v {
        Value::Null => "NULL".to_string(),
        Value::Int(i) => i.to_string(),
        Value::Str(s) => format!("{s:?}"),
    }
}

fn canon_prop(p: &PropValue) -> String {
    match p {
        PropValue::Int(v) => v.to_string(),
        PropValue::Float(v) => format!("{v}"),
        PropValue::Text(s) => format!("{s:?}"),
    }
}

/// Expanded degree sequence keyed by original node key — a convenient
/// summary for quick inspection in examples/tests.
pub fn degree_summary(g: &GraphHandle) -> Vec<(Value, usize)> {
    let mut out: Vec<(Value, usize)> = g
        .vertices()
        .map(|u| (g.key_of(u).clone(), g.degree(u)))
        .collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::extract::{GraphGen, GraphGenConfig};
    use graphgen_reldb::{Column, Database, Schema, Table};

    fn tiny() -> Database {
        let mut person = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        for (i, n) in [(1, "ann \"a\""), (2, "bob")] {
            person.push_row(vec![Value::int(i), Value::str(n)]).unwrap();
        }
        let mut knows = Table::new(Schema::new(vec![Column::int("a"), Column::int("b")]));
        knows.push_row(vec![Value::int(1), Value::int(2)]).unwrap();
        let mut db = Database::new();
        db.register("Person", person).unwrap();
        db.register("Knows", knows).unwrap();
        db
    }

    fn extract() -> GraphHandle {
        let db = tiny();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .build(),
        );
        gg.extract(
            "Nodes(ID, Name) :- Person(ID, Name).\n\
             Edges(A, B) :- Knows(A, B).",
        )
        .unwrap()
    }

    #[test]
    fn edge_list_format() {
        let g = extract();
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        assert_eq!(String::from_utf8(buf).unwrap(), "1\t2\n");
    }

    #[test]
    fn json_is_escaped_and_shaped() {
        let g = extract();
        let mut buf = Vec::new();
        write_json(&g, &mut buf).unwrap();
        let s = String::from_utf8(buf).unwrap();
        assert!(s.starts_with("{\"nodes\":["));
        assert!(s.contains("\\\"a\\\""), "{s}");
        assert!(s.ends_with("\"edges\":[[1,2]]}"), "{s}");
    }

    #[test]
    fn degree_summary_sorted() {
        let g = extract();
        let d = degree_summary(&g);
        assert_eq!(d, vec![(Value::int(1), 1), (Value::int(2), 0)]);
    }
}
