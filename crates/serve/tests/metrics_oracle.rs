//! The observability oracle: instrument invariants that must hold under
//! concurrent load, plus the wire-format and recovery semantics of the
//! `METRICS` / `TRACE` surface.
//!
//! Invariants checked here:
//!
//! * **Histogram conservation** — once quiescent, every histogram's
//!   `count` equals the sum of its bucket counts, `max <= sum`, and the
//!   reported quantiles are monotone (p50 <= p90 <= p99 <= max). Checked
//!   after 1-, 2-, and 8-thread request storms.
//! * **Counter monotonicity** — counter families never decrease across
//!   publishes (a coherent snapshot per observation; regression guard for
//!   the read-then-reset races the registry replaced).
//! * **Trace-ring bounds** — with every op traced (threshold 0), the ring
//!   never exceeds its configured capacity while 8 threads hammer it, and
//!   drained sequence numbers are strictly increasing.
//! * **Exposition round-trip** — the escaped one-line `METRICS` response
//!   (both the in-process protocol path and the real TCP path) unescapes
//!   to exactly the canonical multi-line form `--metrics-dump` prints,
//!   every sample line parses, and the catalog stays >= 25 families.
//! * **Recovery zeroing** — instruments are in-memory only: reopening a
//!   durable service zeroes the workload counters while graph versions
//!   (and the recovery-replay instruments) prove the data survived.

use graphgen_common::metrics::{unescape_exposition, ValueSnapshot};
use graphgen_reldb::Value;
use graphgen_serve::testutil::{fig1_db, TempDir};
use graphgen_serve::{GraphService, ServiceConfig, TableMutation};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

const Q: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                 Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

fn service() -> GraphService {
    let s = GraphService::in_memory(fig1_db());
    s.extract("g", Q).expect("extract");
    s
}

/// Run one protocol command and return its response line.
fn send(s: &GraphService, line: &str) -> String {
    let cmd = graphgen_serve::protocol::parse_command(line)
        .expect("parse")
        .expect("non-empty");
    graphgen_serve::protocol::execute(s, &cmd)
}

/// Every histogram family in the registry, as `(family/label, snapshot)`.
fn histograms(s: &GraphService) -> Vec<(String, graphgen_common::metrics::HistogramSnapshot)> {
    s.obs()
        .registry()
        .snapshot()
        .into_iter()
        .filter_map(|i| match i.value {
            ValueSnapshot::Histogram(h) => {
                let key = match &i.label {
                    Some((k, v)) => format!("{}{{{}={}}}", i.name, k, v),
                    None => i.name.to_string(),
                };
                Some((key, *h))
            }
            _ => None,
        })
        .collect()
}

/// Drive `threads` concurrent workers through a mixed read/write protocol
/// workload, then assert the histogram conservation invariants.
fn storm(threads: usize, rounds: usize) {
    let s = Arc::new(service());
    std::thread::scope(|scope| {
        for t in 0..threads {
            let s = Arc::clone(&s);
            scope.spawn(move || {
                for i in 0..rounds {
                    assert!(send(&s, "PING").starts_with("OK"));
                    assert!(send(&s, "NEIGHBORS g 4").starts_with("OK"));
                    assert!(send(&s, "DEGREE g 2").starts_with("OK"));
                    assert!(send(&s, "STATS").starts_with("OK"));
                    // Writers contend on the single writer mutex; every
                    // apply still observes validate/wal/patch/publish
                    // phases into the per-phase histograms.
                    let a = 100 + (t * rounds + i) as i64;
                    assert!(send(&s, &format!("APPLY AuthorPub +{a},1")).starts_with("OK"));
                    assert!(send(&s, "METRICS").starts_with("OK "));
                }
            });
        }
    });
    let expected_requests = (threads * rounds * 6) as u64;
    assert_eq!(
        s.obs().m.requests_total.get(),
        expected_requests,
        "every protocol command observed exactly once"
    );
    for (name, h) in histograms(&s) {
        assert_eq!(
            h.count,
            h.bucket_sum(),
            "{name}: quiescent histogram must conserve observations"
        );
        if h.count > 0 {
            assert!(h.max <= h.sum, "{name}: max exceeds sum");
            let (p50, p90, p99) = (h.quantile(0.5), h.quantile(0.9), h.quantile(0.99));
            assert!(
                p50 <= p90 && p90 <= p99 && p99 <= h.max,
                "{name}: quantiles not monotone ({p50}/{p90}/{p99}/max={})",
                h.max
            );
        }
    }
    // The per-verb request histograms partition requests_total.
    let per_verb: u64 = histograms(&s)
        .iter()
        .filter(|(k, _)| k.starts_with("graphgen_request_ns{"))
        .map(|(_, h)| h.count)
        .sum();
    assert_eq!(
        per_verb, expected_requests,
        "per-verb histograms partition the total"
    );
}

#[test]
fn histogram_conservation_one_thread() {
    storm(1, 20);
}

#[test]
fn histogram_conservation_two_threads() {
    storm(2, 12);
}

#[test]
fn histogram_conservation_eight_threads() {
    storm(8, 6);
}

/// Counter families from a coherent exposition snapshot.
fn counters(s: &GraphService) -> BTreeMap<String, u64> {
    s.obs()
        .registry()
        .snapshot()
        .into_iter()
        .filter_map(|i| match i.value {
            ValueSnapshot::Counter(v) => Some((i.name.to_string(), v)),
            _ => None,
        })
        .collect()
}

#[test]
fn counters_monotone_across_publishes() {
    let s = service();
    let mut prev = counters(&s);
    for round in 0..8i64 {
        let m = TableMutation::new(
            "AuthorPub",
            vec![vec![Value::int(200 + round), Value::int(1)]],
            vec![],
        );
        s.apply(&[m]).expect("apply");
        let _ = s.metrics_text(); // also refreshes the gauges
        let now = counters(&s);
        for (name, v) in &now {
            let before = prev.get(name).copied().unwrap_or(0);
            assert!(
                *v >= before,
                "counter {name} went backwards: {before} -> {v}"
            );
        }
        assert!(
            now["graphgen_publishes_total"] > prev["graphgen_publishes_total"],
            "each publishing apply must advance the publish counter"
        );
        prev = now;
    }
    assert_eq!(prev["graphgen_applies_total"], 8);
}

#[test]
fn trace_ring_never_exceeds_capacity_under_load() {
    const CAP: usize = 4;
    let cfg = ServiceConfig {
        slow_op_ns: 0, // every op is "slow": all of them enter the ring
        trace_capacity: CAP,
        ..ServiceConfig::default()
    };
    let dir = TempDir::new("metrics-oracle-ring");
    let s = Arc::new(GraphService::create(dir.path(), fig1_db(), cfg).expect("create"));
    s.extract("g", Q).expect("extract");
    let finished = Arc::new(AtomicUsize::new(0));
    std::thread::scope(|scope| {
        for _ in 0..8 {
            let s = Arc::clone(&s);
            let finished = Arc::clone(&finished);
            scope.spawn(move || {
                for _ in 0..50 {
                    assert!(send(&s, "NEIGHBORS g 4").starts_with("OK"));
                }
                finished.fetch_add(1, Ordering::Relaxed);
            });
        }
        // The observer races the writers on purpose: the bound must hold
        // at every instant, not just at rest.
        while finished.load(Ordering::Relaxed) < 8 {
            assert!(s.obs().trace().len() <= CAP, "ring exceeded its capacity");
            std::thread::yield_now();
        }
    });
    assert_eq!(s.obs().m.requests_total.get(), 400);
    let events = s.obs().trace().drain(None);
    assert!(!events.is_empty() && events.len() <= CAP);
    for pair in events.windows(2) {
        assert!(pair[0].seq < pair[1].seq, "drained trace out of order");
    }
    assert!(s.obs().trace().is_empty(), "drain empties the ring");
    // Evictions were counted: everything that entered the ring is either
    // still there (drained just now) or was dropped on eviction.
    let dropped = s.obs().m.trace_events_dropped_total.get();
    let slow = s.obs().m.slow_ops_total.get();
    assert_eq!(slow, dropped + events.len() as u64);
}

/// Parse a canonical exposition: `(families, samples)` where every sample
/// line split into `name{labels}` and a numeric value.
fn parse_exposition(text: &str) -> (BTreeSet<String>, usize) {
    let mut families = BTreeSet::new();
    let mut samples = 0;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "summary"),
                "unknown kind in {line:?}"
            );
            families.insert(name.to_string());
        } else if !line.starts_with('#') && !line.is_empty() {
            let (name_part, value) = line.rsplit_once(' ').expect("sample line");
            assert!(
                value.parse::<f64>().is_ok(),
                "unparseable sample value in {line:?}"
            );
            let base = name_part.split('{').next().expect("name");
            let base = base
                .trim_end_matches("_max")
                .trim_end_matches("_sum")
                .trim_end_matches("_count");
            assert!(
                families.contains(base),
                "sample {line:?} precedes its # TYPE header"
            );
            samples += 1;
        }
    }
    (families, samples)
}

#[test]
fn metrics_round_trips_through_both_client_paths() {
    let s = service();
    let _ = send(&s, "NEIGHBORS g 4");
    let _ = send(&s, "STATS");

    // Path 1: the in-process protocol path (what every TCP client sees) —
    // an escaped single line.
    let wire = send(&s, "METRICS");
    let escaped = wire.strip_prefix("OK ").expect("OK payload");
    assert!(!escaped.contains('\n'), "wire form must be one line");
    let unescaped = unescape_exposition(escaped);
    let (families, samples) = parse_exposition(&unescaped);
    assert!(
        families.len() >= 25,
        "catalog shrank: {} families",
        families.len()
    );
    assert!(samples > families.len(), "histograms emit multiple samples");

    // Path 2: the canonical multi-line form (`--metrics-dump` prints
    // exactly `metrics_text`). Counters moved between the two reads (the
    // METRICS op itself was observed), so compare structure, not values.
    let canonical = s.metrics_text();
    let (families2, _) = parse_exposition(&canonical);
    assert_eq!(families, families2, "both paths expose the same catalog");
    for family in [
        "graphgen_requests_total",
        "graphgen_request_ns",
        "graphgen_apply_phase_ns",
        "graphgen_extract_phase_ns",
        "graphgen_wal_fsync_ns",
        "graphgen_recovery_replay_ns",
        "graphgen_analyze_compute_ns",
        "graphgen_graphs",
    ] {
        assert!(families.contains(family), "missing family {family}");
    }
}

#[test]
fn metrics_round_trips_over_real_tcp() {
    use std::io::{BufRead, BufReader, Write};
    let s = Arc::new(service());
    let listener = std::net::TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = graphgen_serve::spawn(Arc::clone(&s), listener).expect("spawn");
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut send_tcp = |line: &str| {
        writeln!(&stream, "{line}").expect("write");
        (&stream).flush().expect("flush");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read");
        resp.trim_end().to_string()
    };
    assert!(send_tcp("NEIGHBORS g 4").starts_with("OK"));
    let wire = send_tcp("METRICS");
    let unescaped = unescape_exposition(wire.strip_prefix("OK ").expect("OK payload"));
    let (families, _) = parse_exposition(&unescaped);
    assert!(families.len() >= 25, "TCP path lost families");
    assert!(
        unescaped.contains("graphgen_connections_opened_total 1"),
        "this connection must be counted"
    );
    assert_eq!(send_tcp("SHUTDOWN"), "OK bye");
    handle.wait();
}

#[test]
fn recovery_zeroes_instruments_but_preserves_graphs() {
    let dir = TempDir::new("metrics-oracle-recovery");
    let version_before;
    {
        let s =
            GraphService::create(dir.path(), fig1_db(), ServiceConfig::default()).expect("create");
        s.extract("g", Q).expect("extract");
        for round in 0..3i64 {
            let m = TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(300 + round), Value::int(2)]],
                vec![],
            );
            s.apply(&[m]).expect("apply");
        }
        assert_eq!(s.obs().m.extracts_total.get(), 1);
        assert_eq!(s.obs().m.applies_total.get(), 3);
        assert!(s.obs().m.wal_appends_total.get() > 0);
        version_before = s.snapshot("g").expect("snapshot").version();
    }
    let s = GraphService::open(dir.path()).expect("reopen");
    // Instruments are process-local: the workload counters start over...
    assert_eq!(
        s.obs().m.extracts_total.get(),
        0,
        "extracts zeroed on reopen"
    );
    assert_eq!(s.obs().m.applies_total.get(), 0, "applies zeroed on reopen");
    assert_eq!(
        s.obs().m.requests_total.get(),
        0,
        "requests zeroed on reopen"
    );
    // ...while the recovery instruments prove the WAL replay ran...
    assert!(
        s.obs().m.recovery_records_total.get() > 0,
        "recovery replayed records"
    );
    assert!(
        s.obs().m.recovery_replay_ns.count() > 0,
        "recovery replay was timed"
    );
    // ...and the data itself survived.
    assert_eq!(
        s.snapshot("g").expect("snapshot").version(),
        version_before,
        "graph version must survive the restart that zeroed the metrics"
    );
}
