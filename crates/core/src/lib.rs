//! `graphgen-core` — the GraphGen system (§3, §4.2).
//!
//! This crate wires the substrates together into the end-to-end pipeline of
//! the paper's Figure 3:
//!
//! 1. a Datalog extraction query is parsed and validated (`graphgen-dsl`);
//! 2. the **planner** ([`planner`]) consults catalog statistics to classify
//!    every join in each `Edges` chain as small-output (hand it to the
//!    database) or large-output (postpone it, creating virtual nodes);
//! 3. the **extractor** ([`extract`]) runs the resulting segment queries
//!    against the relational engine and assembles the condensed graph
//!    (C-DUP), optionally running the Step-6 preprocessing and the §6.5
//!    auto-expansion policy;
//! 4. the result is a [`GraphHandle`]: the graph, the id ↔ key mapping,
//!    vertex properties, and the plan report — plus the typed conversion
//!    surface ([`GraphHandle::convert`]) and the §6.5 representation
//!    advisor ([`GraphHandle::advise`]), so analysts never deal with the
//!    representation underneath unless they want to.
//!
//! Everything fallible reports through the unified [`Error`] type.
//!
//! When extraction runs with `GraphGenConfig::incremental`, the handle
//! additionally carries the [`incremental`] maintenance state, and
//! [`GraphHandle::apply_delta`] patches the graph under base-table
//! mutations with work proportional to the delta.

#![warn(missing_docs)]

pub mod anygraph;
pub mod check;
pub mod cost;
pub mod error;
pub mod extract;
pub mod handle;
pub mod incremental;
pub mod planner;
pub mod serialize;

pub use anygraph::AnyGraph;
pub use check::catalog_view;
pub use cost::{explain_spec, ChainCost, Explanation, PlanFingerprint};
pub use error::{ConvertError, Error, ErrorKind, PatchError};
pub use extract::{ExtractionReport, GraphGen, GraphGenConfig, GraphGenConfigBuilder};
pub use handle::{AdvisorPolicy, BitmapAlgorithm, ConvertOptions, GraphHandle};
pub use incremental::{GraphPatch, IncrementalState};
pub use planner::{ChainPlan, JoinDecision, SegmentPlan};
