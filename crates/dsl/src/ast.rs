//! Abstract syntax tree of the extraction DSL.
//!
//! Atoms and rules carry [`Span`]s pointing back into the source so the
//! static analyzer can attach precise locations to its diagnostics.
//! Spans are *metadata*: the manual `PartialEq` impls below ignore them,
//! so two structurally identical rules compare equal regardless of where
//! (or whether) they were parsed.

use crate::span::Span;
use std::fmt;

/// A term in a head or body atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable (joins on repeated occurrence).
    Var(String),
    /// An integer constant (selection predicate).
    Int(i64),
    /// A string constant (selection predicate).
    Str(String),
    /// `_`: ignore this attribute.
    Wildcard,
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(name) => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(name) => write!(f, "{name}"),
            Term::Int(v) => write!(f, "{v}"),
            Term::Str(s) => write!(f, "'{s}'"),
            Term::Wildcard => write!(f, "_"),
        }
    }
}

/// Which special head a rule defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadKind {
    /// `Nodes(ID, props...)`
    Nodes,
    /// `Edges(ID1, ID2, props...)`
    Edges,
}

impl HeadKind {
    /// The surface keyword.
    pub fn keyword(&self) -> &'static str {
        match self {
            HeadKind::Nodes => "Nodes",
            HeadKind::Edges => "Edges",
        }
    }
}

/// A body atom: `Relation(t1, ..., tk)`.
#[derive(Debug, Clone)]
pub struct Atom {
    /// Relation (base table) name.
    pub relation: String,
    /// Argument terms, positional.
    pub args: Vec<Term>,
    /// Span of the relation name (synthetic if built programmatically).
    pub relation_span: Span,
    /// Span of each argument, parallel to `args` (empty if synthetic).
    pub arg_spans: Vec<Span>,
}

impl Atom {
    /// An atom with synthetic spans, for programmatic construction.
    pub fn new(relation: impl Into<String>, args: Vec<Term>) -> Self {
        Self {
            relation: relation.into(),
            args,
            relation_span: Span::default(),
            arg_spans: Vec::new(),
        }
    }

    /// The span of argument `i`, falling back to the relation span when
    /// argument spans are unavailable (synthetic AST).
    pub fn arg_span(&self, i: usize) -> Span {
        self.arg_spans.get(i).copied().unwrap_or(self.relation_span)
    }
}

// Spans are metadata, not structure: duplicate-rule detection and test
// roundtrips compare atoms by content only.
impl PartialEq for Atom {
    fn eq(&self, other: &Self) -> bool {
        self.relation == other.relation && self.args == other.args
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// One rule: `Head(args) :- body.`
#[derive(Debug, Clone)]
pub struct Rule {
    /// `Nodes` or `Edges`.
    pub head: HeadKind,
    /// Head argument terms.
    pub head_args: Vec<Term>,
    /// Conjunctive body.
    pub body: Vec<Atom>,
    /// Span of the head keyword (synthetic if built programmatically).
    pub head_span: Span,
    /// Span of each head argument, parallel to `head_args`.
    pub head_arg_spans: Vec<Span>,
}

impl Rule {
    /// A rule with synthetic spans, for programmatic construction.
    pub fn new(head: HeadKind, head_args: Vec<Term>, body: Vec<Atom>) -> Self {
        Self {
            head,
            head_args,
            body,
            head_span: Span::default(),
            head_arg_spans: Vec::new(),
        }
    }

    /// The span of head argument `i`, falling back to the head keyword
    /// span when argument spans are unavailable.
    pub fn head_arg_span(&self, i: usize) -> Span {
        self.head_arg_spans
            .get(i)
            .copied()
            .unwrap_or(self.head_span)
    }

    /// The span of the whole rule, from the head keyword to the end of
    /// the last body atom's last argument.
    pub fn span(&self) -> Span {
        let end = self
            .body
            .last()
            .map(|a| a.arg_span(a.args.len().saturating_sub(1)))
            .unwrap_or(self.head_span);
        self.head_span.to(end)
    }
}

// See the note on `Atom`'s PartialEq: spans are ignored.
impl PartialEq for Rule {
    fn eq(&self, other: &Self) -> bool {
        self.head == other.head && self.head_args == other.head_args && self.body == other.body
    }
}

/// A whole extraction program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shape() {
        let atom = Atom::new(
            "AuthorPub",
            vec![Term::Var("ID1".into()), Term::Int(3), Term::Wildcard],
        );
        assert_eq!(atom.to_string(), "AuthorPub(ID1, 3, _)");
    }

    #[test]
    fn as_var() {
        assert_eq!(Term::Var("X".into()).as_var(), Some("X"));
        assert_eq!(Term::Int(1).as_var(), None);
        assert_eq!(Term::Wildcard.as_var(), None);
    }

    #[test]
    fn eq_ignores_spans() {
        let mut a = Atom::new("R", vec![Term::Var("X".into())]);
        let b = a.clone();
        a.relation_span = Span::new(10, 1, 3, 4);
        a.arg_spans = vec![Span::new(12, 1, 3, 6)];
        assert_eq!(a, b);
        let mut r = Rule::new(HeadKind::Nodes, vec![Term::Var("X".into())], vec![a]);
        let r2 = Rule {
            head_span: Span::new(0, 5, 1, 1),
            ..r.clone()
        };
        r.head_arg_spans = vec![Span::new(6, 1, 1, 7)];
        assert_eq!(r, r2);
    }

    #[test]
    fn span_fallbacks() {
        let a = Atom::new("R", vec![Term::Wildcard]);
        assert!(a.arg_span(0).is_synthetic());
        let r = Rule::new(HeadKind::Edges, vec![], vec![a]);
        assert!(r.head_arg_span(0).is_synthetic());
        assert!(r.span().is_synthetic());
    }
}
