//! Chain queries — the "SQL" that GraphGen generates.
//!
//! Every query the extraction layer issues has the shape (§4.2 Step 3):
//!
//! ```text
//! res(X, Y) :- R1(X, a1), R2(a1, a2), ..., Rn(a_{n-1}, Y)    [DISTINCT]
//! ```
//!
//! i.e. a left-deep chain of equi-joins over base tables, with per-atom
//! selection predicates, projecting the two endpoint attributes. A
//! [`Query`] captures this shape; [`Query::run`] executes it with hash
//! joins + distinct, and [`Query::to_sql`] renders the equivalent SQL
//! (the Fig. 16 output).

use crate::catalog::Database;
use crate::error::{DbError, DbResult};
use crate::exec::{distinct_rows_interned, hash_join_project_interned, scan_project};
use crate::expr::Predicate;
use crate::value::Value;

/// One atom in the chain: a base table with a selection predicate, an input
/// join column and an output join column (which may coincide, e.g. for an
/// atom used purely as a filter hop).
#[derive(Debug, Clone)]
pub struct ChainStep {
    /// Base table name.
    pub table: String,
    /// Selection predicate on the base table's columns.
    pub pred: Predicate,
    /// Column joined with the previous step's output (ignored for step 0,
    /// where it is the left endpoint / ID1 column).
    pub in_col: usize,
    /// Column carried to the next join (or the right endpoint / ID2 column
    /// for the final step).
    pub out_col: usize,
}

/// A chain query producing distinct `(X, Y)` pairs.
#[derive(Debug, Clone)]
pub struct Query {
    /// The chain; must be non-empty.
    pub steps: Vec<ChainStep>,
    /// Apply duplicate elimination to the output (extraction always does).
    pub distinct: bool,
}

impl Query {
    /// Single-table query: `res(X, Y) :- R(X, .., Y)` with a predicate.
    pub fn single(table: impl Into<String>, pred: Predicate, x_col: usize, y_col: usize) -> Self {
        Self {
            steps: vec![ChainStep {
                table: table.into(),
                pred,
                in_col: x_col,
                out_col: y_col,
            }],
            distinct: true,
        }
    }

    /// Execute against `db` serially, returning `(X, Y)` pairs. Shorthand
    /// for [`Query::run_threaded`] with one thread.
    pub fn run(&self, db: &Database) -> DbResult<Vec<(Value, Value)>> {
        self.run_threaded(db, 1)
    }

    /// Execute against `db` with `threads` worker threads, returning
    /// `(X, Y)` pairs. This is the single `threads` knob of the extraction
    /// pipeline: every scan, join build/probe, and DISTINCT of the chain
    /// fans out over it, and the result is byte-identical for any value
    /// (see [`crate::exec`] for the ordering guarantee).
    pub fn run_threaded(&self, db: &Database, threads: usize) -> DbResult<Vec<(Value, Value)>> {
        if self.steps.is_empty() {
            return Err(DbError::Invalid("empty chain query".into()));
        }
        let first = &self.steps[0];
        let t0 = db.table(&first.table)?;
        // rows carry (X, current-join-value)
        let mut rows = scan_project(t0, &first.pred, &[first.in_col, first.out_col], threads);
        for step in &self.steps[1..] {
            let t = db.table(&step.table)?;
            let right = scan_project(t, &step.pred, &[step.in_col, step.out_col], threads);
            // Joined virtual row is [X, carry, in, out]; the fused
            // projection keeps (X, new-carry) without materializing the
            // join columns at all. Every value here comes from a base
            // table, so the join probes the database dictionary's dense
            // ids instead of hashing owned values.
            rows = hash_join_project_interned(&rows, 1, &right, 0, &[0, 3], threads, db.dict());
            // Intermediate DISTINCT keeps the frontier bounded by
            // |domain(X)| * |domain(carry)|; extraction only needs set
            // semantics so this is safe and usually a large win.
            if self.distinct {
                rows = distinct_rows_interned(rows, threads, db.dict());
            }
        }
        // Multi-step chains were already deduplicated by the loop's last
        // iteration; only single-table queries still need the final pass.
        if self.distinct && self.steps.len() == 1 {
            rows = distinct_rows_interned(rows, threads, db.dict());
        }
        Ok(rows.into_pairs())
    }

    /// Render the equivalent SQL text (for display / logging, mirroring the
    /// paper's Fig. 16 "generated SQL").
    pub fn to_sql(&self, db: &Database) -> DbResult<String> {
        let mut from = Vec::new();
        let mut wheres = Vec::new();
        for (i, step) in self.steps.iter().enumerate() {
            let alias = (b'A' + (i as u8 % 26)) as char;
            from.push(format!("{} {}", step.table, alias));
            let t = db.table(&step.table)?;
            if i > 0 {
                let prev = &self.steps[i - 1];
                let prev_alias = (b'A' + ((i - 1) as u8 % 26)) as char;
                let prev_table = db.table(&prev.table)?;
                wheres.push(format!(
                    "{}.{}={}.{}",
                    prev_alias,
                    prev_table.schema().column(prev.out_col).name,
                    alias,
                    t.schema().column(step.in_col).name
                ));
            }
            render_pred(&step.pred, alias, t, &mut wheres);
        }
        let first = &self.steps[0];
        let last = self.steps.last().expect("non-empty chain");
        let first_table = db.table(&first.table)?;
        let last_table = db.table(&last.table)?;
        let last_alias = (b'A' + ((self.steps.len() - 1) as u8 % 26)) as char;
        let mut sql = format!(
            "SELECT {}A.{} AS ID1, {}.{} AS ID2 FROM {}",
            if self.distinct { "DISTINCT " } else { "" },
            first_table.schema().column(first.in_col).name,
            last_alias,
            last_table.schema().column(last.out_col).name,
            from.join(", ")
        );
        if !wheres.is_empty() {
            sql.push_str(" WHERE ");
            sql.push_str(&wheres.join(" AND "));
        }
        sql.push(';');
        Ok(sql)
    }
}

fn render_pred(pred: &Predicate, alias: char, table: &crate::table::Table, out: &mut Vec<String>) {
    match pred {
        Predicate::True => {}
        Predicate::Eq(c, v) => out.push(format!("{alias}.{}={v}", table.schema().column(*c).name)),
        Predicate::Ne(c, v) => out.push(format!("{alias}.{}<>{v}", table.schema().column(*c).name)),
        Predicate::Lt(c, v) => out.push(format!("{alias}.{}<{v}", table.schema().column(*c).name)),
        Predicate::Le(c, v) => out.push(format!("{alias}.{}<={v}", table.schema().column(*c).name)),
        Predicate::Gt(c, v) => out.push(format!("{alias}.{}>{v}", table.schema().column(*c).name)),
        Predicate::Ge(c, v) => out.push(format!("{alias}.{}>={v}", table.schema().column(*c).name)),
        Predicate::And(ps) => {
            for p in ps {
                render_pred(p, alias, table, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::table::Table;

    /// AuthorPub(aid, pid): the Fig. 1 toy dataset.
    /// p1: {a1,a2,a4}, p2: {a1,a4}, p3: {a3,a4,a5}... keep it small:
    fn fig1_db() -> Database {
        let mut t = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        let rows = [
            (1, 1),
            (2, 1),
            (4, 1),
            (1, 2),
            (4, 2),
            (3, 3),
            (4, 3),
            (5, 3),
        ];
        for (a, p) in rows {
            t.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
        }
        let mut db = Database::new();
        db.register("AuthorPub", t).unwrap();
        db
    }

    #[test]
    fn coauthor_chain_query() {
        let db = fig1_db();
        // Edges(ID1,ID2) :- AuthorPub(ID1, p), AuthorPub(ID2, p)
        // chain: step0 = AP with in=aid out=pid; step1 = AP with in=pid out=aid
        let q = Query {
            steps: vec![
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::True,
                    in_col: 0,
                    out_col: 1,
                },
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::True,
                    in_col: 1,
                    out_col: 0,
                },
            ],
            distinct: true,
        };
        let mut pairs = q.run(&db).unwrap();
        pairs.sort();
        // co-authors incl. self-pairs: p1 gives {1,2,4}^2, p2 {1,4}^2, p3 {3,4,5}^2
        let mut expected: Vec<(Value, Value)> = Vec::new();
        for group in [vec![1i64, 2, 4], vec![1, 4], vec![3, 4, 5]] {
            for &a in &group {
                for &b in &group {
                    expected.push((Value::int(a), Value::int(b)));
                }
            }
        }
        expected.sort();
        expected.dedup();
        assert_eq!(pairs, expected);
    }

    #[test]
    fn threaded_run_matches_serial_exactly() {
        let db = fig1_db();
        let q = Query {
            steps: vec![
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::True,
                    in_col: 0,
                    out_col: 1,
                },
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::True,
                    in_col: 1,
                    out_col: 0,
                },
            ],
            distinct: true,
        };
        let serial = q.run(&db).unwrap();
        for threads in [2, 8] {
            // Same pairs in the same order, not just the same set.
            assert_eq!(q.run_threaded(&db, threads).unwrap(), serial);
        }
    }

    #[test]
    fn single_step_query() {
        let db = fig1_db();
        let q = Query::single("AuthorPub", Predicate::True, 0, 1);
        let pairs = q.run(&db).unwrap();
        assert_eq!(pairs.len(), 8);
    }

    #[test]
    fn predicate_pushdown() {
        let db = fig1_db();
        // only publication 1's coauthors
        let q = Query {
            steps: vec![
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::Eq(1, Value::int(1)),
                    in_col: 0,
                    out_col: 1,
                },
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::True,
                    in_col: 1,
                    out_col: 0,
                },
            ],
            distinct: true,
        };
        let pairs = q.run(&db).unwrap();
        assert_eq!(pairs.len(), 9); // {1,2,4}^2
    }

    #[test]
    fn sql_rendering() {
        let db = fig1_db();
        let q = Query {
            steps: vec![
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::True,
                    in_col: 0,
                    out_col: 1,
                },
                ChainStep {
                    table: "AuthorPub".into(),
                    pred: Predicate::Eq(0, Value::int(3)),
                    in_col: 1,
                    out_col: 0,
                },
            ],
            distinct: true,
        };
        let sql = q.to_sql(&db).unwrap();
        assert_eq!(
            sql,
            "SELECT DISTINCT A.aid AS ID1, B.aid AS ID2 FROM AuthorPub A, AuthorPub B \
             WHERE A.pid=B.pid AND B.aid=3;"
        );
    }

    #[test]
    fn empty_query_is_error() {
        let db = fig1_db();
        let q = Query {
            steps: vec![],
            distinct: true,
        };
        assert!(q.run(&db).is_err());
    }
}
