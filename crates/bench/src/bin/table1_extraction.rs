//! Table 1: condensed (C-DUP) vs full-graph (EXP) extraction.
//!
//! For each dataset, extracts the paper's query twice — once loading the
//! condensed representation (large-output joins postponed) and once running
//! the complete join in the relational engine — and reports stored edges
//! and wall time for both, plus the blow-up factor.

use graphgen_bench::{ms, row, time};
use graphgen_core::{GraphGen, GraphGenConfig};
use graphgen_datagen::relational::{
    DBLP_COAUTHORS, IMDB_COACTORS, TPCH_COPURCHASE, UNIV_COENROLLMENT,
};
use graphgen_datagen::{
    dblp_like, imdb_like, tpch_like, univ, DblpConfig, ImdbConfig, TpchConfig, UnivConfig,
};
use graphgen_graph::GraphRep;

fn main() {
    println!("Table 1: condensed vs full extraction (synthetic stand-ins, see EXPERIMENTS.md)\n");
    let widths = [12, 10, 12, 14, 12, 14, 8];
    row(
        &[
            "dataset",
            "rows",
            "cond.edges",
            "cond.time(ms)",
            "full.edges",
            "full.time(ms)",
            "ratio",
        ]
        .map(String::from),
        &widths,
    );
    let datasets: Vec<(&str, graphgen_reldb::Database, &str)> = vec![
        ("DBLP", dblp_like(DblpConfig::default()), DBLP_COAUTHORS),
        ("IMDB", imdb_like(ImdbConfig::default()), IMDB_COACTORS),
        ("TPCH", tpch_like(TpchConfig::default()), TPCH_COPURCHASE),
        ("UNIV", univ(UnivConfig::default()), UNIV_COENROLLMENT),
    ];
    for (name, db, query) in datasets {
        let rows = db.total_rows();
        let cfg = GraphGenConfig::builder()
            .large_output_factor(2.0)
            .preprocess(false)
            .auto_expand_threshold(None)
            .threads(1)
            .build();
        let gg = GraphGen::with_config(&db, cfg);
        let (condensed, t_cond) = time(|| gg.extract(query).expect("condensed extraction"));
        let (full, t_full) = time(|| gg.extract_full(query).expect("full extraction"));
        let cond_edges = condensed.graph().stored_edge_count();
        let full_edges = full.graph().stored_edge_count();
        row(
            &[
                name.to_string(),
                rows.to_string(),
                cond_edges.to_string(),
                ms(t_cond),
                full_edges.to_string(),
                ms(t_full),
                format!("{:.2}x", full_edges as f64 / cond_edges.max(1) as f64),
            ],
            &widths,
        );
    }
    println!("\npaper shape: condensed extraction is several times faster and smaller;");
    println!("TPCH shows the largest blow-up (small input hiding a dense graph).");
}
