//! BITMAP-2 preprocessing (§5.1.3): greedy set cover.
//!
//! BITMAP-1 happily installs a bitmap on every virtual node a source can
//! reach. Minimizing the number of bitmaps is NP-hard (set cover, §5.1.2),
//! so BITMAP-2 runs the classic greedy approximation per real node `u`:
//! repeatedly pick the virtual child covering the most still-uncovered
//! targets, install a bitmap there for the newly covered ones, and finally
//! **delete** `u`'s edges to virtual children that cover nothing new
//! (virtual→virtual edges are never deleted — they may serve other sources —
//! only masked).
//!
//! The multi-layer generalization explores, at each virtual node, the child
//! with the largest uncovered reach first, masking dead branches to 0.

use graphgen_common::{Bitmap, FxHashSet};
use graphgen_graph::{BitmapGraph, CondensedGraph, GraphRep, RealId, VirtId};

/// Statistics for a BITMAP-2 run.
#[derive(Debug, Clone, Copy, Default)]
pub struct Bitmap2Stats {
    /// Bitmaps installed.
    pub bitmaps: usize,
    /// real→virtual edges deleted because they covered nothing new.
    pub pruned_edges: usize,
}

/// Run BITMAP-2 on a condensed graph (any number of layers). `threads`
/// chunks the real nodes as in the paper's parallel implementation; because
/// bitmap installation mutates shared per-virtual-node maps, the parallel
/// phase computes plans and the application is serial. With `threads <= 1`
/// everything is serial.
pub fn bitmap2(g: CondensedGraph, _threads: usize) -> (BitmapGraph, Bitmap2Stats) {
    let n_real = g.num_real_slots();
    let mut out = BitmapGraph::new_unmasked(g);
    let mut stats = Bitmap2Stats::default();
    for u in 0..n_real as u32 {
        let u = RealId(u);
        if !out.core().is_alive(u) {
            continue;
        }
        process_source(&mut out, u, &mut stats);
    }
    (out, stats)
}

/// Number of still-uncovered real targets reachable from virtual node `v`.
fn uncovered_reach(
    g: &BitmapGraph,
    v: VirtId,
    covered: &FxHashSet<u32>,
    visited: &FxHashSet<u32>,
) -> usize {
    let mut local_visited: FxHashSet<u32> = FxHashSet::default();
    let mut stack = vec![v.0];
    local_visited.insert(v.0);
    let mut count = 0;
    let mut seen: FxHashSet<u32> = FxHashSet::default();
    while let Some(x) = stack.pop() {
        for a in g.core().virt_out(VirtId(x)) {
            if let Some(r) = a.as_real() {
                if !covered.contains(&r.0) && seen.insert(r.0) {
                    count += 1;
                }
            } else if let Some(w) = a.as_virtual() {
                if !visited.contains(&w.0) && local_visited.insert(w.0) {
                    stack.push(w.0);
                }
            }
        }
    }
    count
}

/// Recursively install bitmaps below `v` for source `u`, covering targets
/// greedily. Returns true if anything new was covered.
fn explore(
    g: &mut BitmapGraph,
    u: RealId,
    v: VirtId,
    covered: &mut FxHashSet<u32>,
    visited: &mut FxHashSet<u32>,
    stats: &mut Bitmap2Stats,
) -> bool {
    visited.insert(v.0);
    let out_list: Vec<_> = g.core().virt_out(v).to_vec();
    let mut bitmap = Bitmap::zeros(out_list.len());
    let mut any = false;
    // Real targets at this node first.
    for (i, a) in out_list.iter().enumerate() {
        if let Some(r) = a.as_real() {
            if covered.insert(r.0) {
                bitmap.set(i);
                any = true;
            }
        }
    }
    // Then virtual children, largest uncovered reach first.
    let mut children: Vec<(usize, VirtId)> = out_list
        .iter()
        .enumerate()
        .filter_map(|(i, a)| a.as_virtual().map(|w| (i, w)))
        .collect();
    loop {
        let mut best: Option<(usize, usize, VirtId)> = None; // (reach, pos, id)
        for &(i, w) in &children {
            if visited.contains(&w.0) {
                continue;
            }
            let reach = uncovered_reach(g, w, covered, visited);
            if reach > 0 && best.is_none_or(|(r, _, _)| reach > r) {
                best = Some((reach, i, w));
            }
        }
        let Some((_, i, w)) = best else { break };
        if explore(g, u, w, covered, visited, stats) {
            bitmap.set(i);
            any = true;
        }
        children.retain(|&(_, c)| c != w);
    }
    // Bits for already-visited children stay 0 (masked dead branch, e.g.
    // the x2 → y2 edge of Fig. 7) — the edge itself is never deleted.
    if !bitmap.all_zero() || !out_list.is_empty() {
        stats.bitmaps += 1;
        g.set_bitmap(v, u, bitmap);
    }
    any
}

fn process_source(g: &mut BitmapGraph, u: RealId, stats: &mut Bitmap2Stats) {
    let mut covered: FxHashSet<u32> = FxHashSet::default();
    covered.insert(u.0);
    // Direct edges are immovable coverage.
    let children: Vec<VirtId> = {
        let mut cs = Vec::new();
        for a in g.core().real_out(u) {
            if let Some(r) = a.as_real() {
                covered.insert(r.0);
            } else if let Some(v) = a.as_virtual() {
                cs.push(v);
            }
        }
        cs
    };
    let mut visited: FxHashSet<u32> = FxHashSet::default();
    let mut remaining = children;
    let mut prune: Vec<VirtId> = Vec::new();
    loop {
        let mut best: Option<(usize, VirtId)> = None;
        for &v in &remaining {
            if visited.contains(&v.0) {
                continue;
            }
            let reach = uncovered_reach(g, v, &covered, &visited);
            if reach > 0 && best.is_none_or(|(r, _)| reach > r) {
                best = Some((reach, v));
            }
        }
        let Some((_, v)) = best else { break };
        explore(g, u, v, &mut covered, &mut visited, stats);
        remaining.retain(|&c| c != v);
    }
    // Whatever remains covers nothing new: delete the u → V edges.
    for v in remaining {
        if !visited.contains(&v.0) {
            prune.push(v);
        }
    }
    for v in prune {
        g.core_mut().detach_real_from_virtual(u, v);
        g.remove_bitmap(v, u);
        stats.pruned_edges += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{
        expand_to_edge_list, validate::validate_no_duplicate_emission, CondensedBuilder,
    };

    fn fig1() -> CondensedGraph {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(0), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        b.build()
    }

    #[test]
    fn single_layer_dedup_and_pruning() {
        let g = fig1();
        let before = expand_to_edge_list(&g);
        let stored_before = g.stored_edge_count();
        let (bg, stats) = bitmap2(g, 1);
        assert_eq!(expand_to_edge_list(&bg), before);
        assert!(validate_no_duplicate_emission(&bg).is_ok());
        // p2 ⊂ p1, so both a1 and a4 should prune their edge to p2.
        assert_eq!(stats.pruned_edges, 2);
        assert!(bg.stored_edge_count() < stored_before);
    }

    #[test]
    fn fewer_bitmaps_than_bitmap1() {
        let g = fig1();
        let b1 = crate::bitmap1(g.clone());
        let (b2, _) = bitmap2(g, 1);
        assert!(b2.bitmap_count() <= b1.bitmap_count());
    }

    #[test]
    fn multilayer_dedup() {
        // u -> {V1, V2} -> V3 -> {w1, w2, w3}; V1 also -> w1 directly.
        let mut b = CondensedBuilder::new(4);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        let v3 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.real_to_virtual(RealId(0), v2);
        b.virtual_to_virtual(v1, v3);
        b.virtual_to_virtual(v2, v3);
        b.virtual_to_real(v1, RealId(1));
        b.virtual_to_real(v3, RealId(1));
        b.virtual_to_real(v3, RealId(2));
        b.virtual_to_real(v3, RealId(3));
        let g = b.build();
        let before = expand_to_edge_list(&g);
        let (bg, _) = bitmap2(g, 1);
        assert_eq!(expand_to_edge_list(&bg), before);
        assert!(validate_no_duplicate_emission(&bg).is_ok());
    }

    #[test]
    fn virtual_edges_never_deleted() {
        // Even when a branch is fully masked for one source, the
        // virtual→virtual edge must survive for other sources.
        let mut b = CondensedBuilder::new(3);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.real_to_virtual(RealId(2), v2);
        b.virtual_to_real(v1, RealId(1));
        b.virtual_to_virtual(v2, v1);
        let g = b.build();
        let (bg, _) = bitmap2(g, 1);
        // source 2 reaches 1 through v2 -> v1
        assert_eq!(bg.neighbors(RealId(2)), vec![RealId(1)]);
        assert_eq!(bg.neighbors(RealId(0)), vec![RealId(1)]);
    }
}
