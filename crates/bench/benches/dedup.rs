//! Criterion benches for the deduplication algorithms (Fig. 12a).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen_common::VertexOrdering;
use graphgen_datagen::{synthetic_condensed, CondensedGenConfig};
use graphgen_dedup::{bitmap1, bitmap2, dedup2_greedy, Dedup1Algorithm};

fn bench_dedup(c: &mut Criterion) {
    let g = synthetic_condensed(CondensedGenConfig {
        n_real: 800,
        n_virtual: 1_600,
        mean_size: 6.0,
        sd_size: 2.0,
        seed: 31,
    });
    let mut group = c.benchmark_group("dedup");
    group.sample_size(10);
    group.bench_function("BITMAP-1", |b| b.iter(|| bitmap1(g.clone())));
    group.bench_function("BITMAP-2", |b| b.iter(|| bitmap2(g.clone(), 1)));
    for algo in Dedup1Algorithm::all() {
        group.bench_with_input(
            BenchmarkId::new("DEDUP-1", algo.label()),
            &algo,
            |b, &algo| b.iter(|| algo.run(&g, VertexOrdering::Random, 7)),
        );
    }
    group.bench_function("DEDUP-2", |b| {
        b.iter(|| dedup2_greedy(&g, VertexOrdering::Descending, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_dedup);
criterion_main!(benches);
