//! Dynamic values and data types.
//!
//! Every schema in the paper (DBLP, IMDB, TPCH, UNIV — Fig. 15) consists of
//! integer keys and string attributes, so the value model is deliberately
//! small: `Int` (i64), `Str` (`Arc<str>`, cheap to clone across join outputs),
//! and `Null`.

use graphgen_common::codec::{self, CodecError, Reader};
use std::fmt;
use std::sync::Arc;

/// The type of a column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Int => write!(f, "INT"),
            DataType::Str => write!(f, "TEXT"),
        }
    }
}

/// A dynamically typed value stored in a table cell.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// SQL NULL. Compares equal to itself for hashing/distinct purposes
    /// (sufficient for our workloads, which never join on NULL).
    Null,
    /// 64-bit integer.
    Int(i64),
    /// Shared string.
    Str(Arc<str>),
}

impl Value {
    /// Construct a string value.
    pub fn str(s: impl Into<Arc<str>>) -> Self {
        Value::Str(s.into())
    }

    /// Construct an integer value.
    pub fn int(v: i64) -> Self {
        Value::Int(v)
    }

    /// The data type, if not NULL.
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Int(_) => Some(DataType::Int),
            Value::Str(_) => Some(DataType::Str),
        }
    }

    /// Integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// String payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// True for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Append the binary encoding of this value (tag byte, then the
    /// payload; strings are length-prefixed UTF-8). Part of the snapshot /
    /// WAL format — see `graphgen_common::codec` for the conventions.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Null => codec::put_u8(out, 0),
            Value::Int(v) => {
                codec::put_u8(out, 1);
                codec::put_i64(out, *v);
            }
            Value::Str(s) => {
                codec::put_u8(out, 2);
                codec::put_str(out, s);
            }
        }
    }

    /// Decode one value from the reader (inverse of
    /// [`Value::encode_into`]).
    pub fn decode(r: &mut Reader<'_>) -> Result<Value, CodecError> {
        let at = r.pos();
        Ok(match r.u8()? {
            0 => Value::Null,
            1 => Value::Int(r.i64()?),
            2 => Value::str(r.str()?),
            tag => return Err(CodecError::invalid(at, format!("bad value tag {tag}"))),
        })
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
        }
    }
}

impl graphgen_common::ByteSize for Value {
    fn heap_bytes(&self) -> usize {
        match self {
            Value::Str(s) => s.len(),
            _ => 0,
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::str(s)
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Str(s.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        assert_eq!(Value::int(5).as_int(), Some(5));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert!(Value::Null.is_null());
        assert_eq!(Value::int(5).as_str(), None);
        assert_eq!(Value::str("x").as_int(), None);
    }

    #[test]
    fn data_types() {
        assert_eq!(Value::int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::str("a").data_type(), Some(DataType::Str));
        assert_eq!(Value::Null.data_type(), None);
    }

    #[test]
    fn display() {
        assert_eq!(Value::int(-3).to_string(), "-3");
        assert_eq!(Value::str("ab").to_string(), "'ab'");
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(DataType::Int.to_string(), "INT");
    }

    #[test]
    fn equality_and_hash_via_set() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Value::int(1));
        set.insert(Value::int(1));
        set.insert(Value::str("1"));
        set.insert(Value::Null);
        set.insert(Value::Null);
        assert_eq!(set.len(), 3);
    }

    #[test]
    fn conversions() {
        let v: Value = 42i64.into();
        assert_eq!(v, Value::Int(42));
        let s: Value = "hi".into();
        assert_eq!(s, Value::str("hi"));
        let owned: Value = String::from("yo").into();
        assert_eq!(owned, Value::str("yo"));
    }

    #[test]
    fn ordering_int() {
        assert!(Value::int(1) < Value::int(2));
        assert!(Value::Null < Value::int(i64::MIN));
    }
}
