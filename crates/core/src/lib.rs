//! `graphgen-core` — the GraphGen system (§3, §4.2).
//!
//! This crate wires the substrates together into the end-to-end pipeline of
//! the paper's Figure 3:
//!
//! 1. a Datalog extraction query is parsed and validated (`graphgen-dsl`);
//! 2. the **planner** ([`planner`]) consults catalog statistics to classify
//!    every join in each `Edges` chain as small-output (hand it to the
//!    database) or large-output (postpone it, creating virtual nodes);
//! 3. the **extractor** ([`extract`]) runs the resulting segment queries
//!    against the relational engine and assembles the condensed graph
//!    (C-DUP), optionally running the Step-6 preprocessing and the §6.5
//!    auto-expansion policy;
//! 4. the result is an [`ExtractedGraph`]: the graph, the id ↔ key mapping,
//!    vertex properties, and the plan report (including the generated SQL,
//!    as in the paper's Fig. 16) — ready for the graph API, the
//!    vertex-centric framework, deduplication, or serialization.

pub mod anygraph;
pub mod extract;
pub mod planner;
pub mod serialize;

pub use anygraph::AnyGraph;
pub use extract::{ExtractedGraph, GraphGen, GraphGenConfig, GraphGenError};
pub use planner::{ChainPlan, JoinDecision, SegmentPlan};
