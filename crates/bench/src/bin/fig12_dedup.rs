//! Figure 12: (a) deduplication algorithm runtimes; (b) sensitivity to the
//! vertex processing order (pass `--orderings`).

use graphgen_bench::{has_flag, ms, row, small_datasets, time};
use graphgen_common::VertexOrdering;
use graphgen_dedup::{bitmap1, bitmap2, dedup2_greedy, Dedup1Algorithm};
use graphgen_graph::GraphRep;

fn main() {
    if has_flag("--orderings") {
        orderings();
        return;
    }
    println!("Figure 12a: deduplication times (ms, RAND ordering)\n");
    let widths = [12, 12, 12, 12, 12, 12, 12, 12];
    row(
        &[
            "dataset",
            "BITMAP-1",
            "BITMAP-2",
            "Naive-VNF",
            "Naive-RNF",
            "Greedy-RNF",
            "Greedy-VNF",
            "DEDUP-2",
        ]
        .map(String::from),
        &widths,
    );
    for (name, cdup) in small_datasets() {
        let (_, t_b1) = time(|| bitmap1(cdup.clone()));
        let (_, t_b2) = time(|| bitmap2(cdup.clone(), 1));
        let mut cols = vec![name.to_string(), ms(t_b1), ms(t_b2)];
        for algo in Dedup1Algorithm::all() {
            let (_, t) = time(|| algo.run(&cdup, VertexOrdering::Random, 7));
            cols.push(ms(t));
        }
        let (_, t_d2) = time(|| dedup2_greedy(&cdup, VertexOrdering::Random, 7));
        cols.push(ms(t_d2));
        row(&cols, &widths);
    }
    println!("\npaper shape: BITMAP-1 fastest; DEDUP-1/DEDUP-2 algorithms orders of");
    println!("magnitude slower (log-scale in the paper) — a one-time cost.");
}

fn orderings() {
    println!("Figure 12b: effect of vertex ordering on DEDUP-1 (Greedy-VNF)\n");
    let widths = [12, 8, 14, 14];
    row(
        &["dataset", "order", "time(ms)", "stored_edges"].map(String::from),
        &widths,
    );
    for (name, cdup) in small_datasets() {
        for ord in VertexOrdering::all() {
            let (d, t) = time(|| Dedup1Algorithm::GreedyVnf.run(&cdup, ord, 7));
            row(
                &[
                    name.to_string(),
                    ord.label().to_string(),
                    ms(t),
                    d.stored_edge_count().to_string(),
                ],
                &widths,
            );
        }
    }
    println!("\npaper shape: only small variations across orderings; RAND recommended.");
}
