//! Vertex processing orders for the deduplication algorithms.
//!
//! Figure 12b of the paper studies how the order in which real/virtual nodes
//! are processed affects deduplication outcomes (RAND vs ascending vs
//! descending by duplication/degree). The paper recommends random ordering
//! for robustness; we implement all three so the experiment can be rerun.

use crate::SplitMix64;

/// How to order vertices before a deduplication pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum VertexOrdering {
    /// Random shuffle (the paper's recommended default).
    #[default]
    Random,
    /// Ascending by the supplied score (e.g. degree or duplication count).
    Ascending,
    /// Descending by the supplied score.
    Descending,
}

impl VertexOrdering {
    /// Produce the processing order for ids `0..n`, where `score(i)` ranks
    /// vertex `i` (higher = more duplicated / higher degree). `seed` is used
    /// only by [`VertexOrdering::Random`].
    pub fn order_by<F: Fn(u32) -> u64>(self, n: usize, score: F, seed: u64) -> Vec<u32> {
        let mut ids: Vec<u32> = (0..n as u32).collect();
        match self {
            VertexOrdering::Random => {
                let mut rng = SplitMix64::new(seed);
                rng.shuffle(&mut ids);
            }
            VertexOrdering::Ascending => {
                ids.sort_by_key(|&i| score(i));
            }
            VertexOrdering::Descending => {
                ids.sort_by_key(|&i| std::cmp::Reverse(score(i)));
            }
        }
        ids
    }

    /// All orderings, for sweep experiments.
    pub fn all() -> [VertexOrdering; 3] {
        [
            VertexOrdering::Random,
            VertexOrdering::Ascending,
            VertexOrdering::Descending,
        ]
    }

    /// Short label used in experiment output (matches the paper's "RAND").
    pub fn label(self) -> &'static str {
        match self {
            VertexOrdering::Random => "RAND",
            VertexOrdering::Ascending => "ASC",
            VertexOrdering::Descending => "DESC",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_orders_by_score() {
        let scores = [5u64, 1, 3, 2, 4];
        let order = VertexOrdering::Ascending.order_by(5, |i| scores[i as usize], 0);
        assert_eq!(order, vec![1, 3, 2, 4, 0]);
    }

    #[test]
    fn descending_is_reverse_of_ascending_scores() {
        let scores = [5u64, 1, 3, 2, 4];
        let order = VertexOrdering::Descending.order_by(5, |i| scores[i as usize], 0);
        assert_eq!(order, vec![0, 4, 2, 3, 1]);
    }

    #[test]
    fn random_is_permutation_and_seeded() {
        let a = VertexOrdering::Random.order_by(100, |_| 0, 42);
        let b = VertexOrdering::Random.order_by(100, |_| 0, 42);
        let c = VertexOrdering::Random.order_by(100, |_| 0, 43);
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
    }

    #[test]
    fn labels() {
        assert_eq!(VertexOrdering::Random.label(), "RAND");
        assert_eq!(VertexOrdering::all().len(), 3);
    }
}
