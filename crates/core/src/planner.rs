//! The extraction planner (§4.2 Steps 2–3).
//!
//! All cardinality reasoning delegates to the unified cost engine
//! ([`crate::cost`], one implementation shared with the `W103`/`W105`
//! lints and the serve-layer drift detector): per-join estimates use the
//! paper's uniform-assumption formula `|Ri| · |R(i+1)| / d`, and instead
//! of the greedy left-to-right classification the planner enumerates
//! every segmentation cut set and picks the min-cost plan. Small-output
//! runs of the chain become segment queries handed to the relational
//! engine; postponed (large-output) joins each materialize a layer of
//! virtual nodes. For two-atom chains the min-cost plan coincides with
//! the paper's test: cut iff `|L|·|R|/d > factor·(|L|+|R|)`.

use crate::check::catalog_view;
use graphgen_dsl::cost::{estimate_chain, ChainCost, PlanFingerprint};
use graphgen_dsl::{ChainAtom, ConstFilter, EdgeChain};
use graphgen_reldb::{query::ChainStep, Database, DbResult, Predicate, Query, Value};

/// The planner's verdict on one join of the chain.
#[derive(Debug, Clone)]
pub struct JoinDecision {
    /// Index of the left atom in the chain.
    pub left_atom: usize,
    /// Left/right table names (for reporting).
    pub left_table: String,
    /// Right table name.
    pub right_table: String,
    /// Estimated rows on each side after constant filters (rounded; equal
    /// to the catalog row counts for filter-free atoms).
    pub left_rows: usize,
    /// Right-side estimated rows.
    pub right_rows: usize,
    /// Distinct values of the join attribute.
    pub distinct: usize,
    /// Estimated join output size `|L|*|R|/d`.
    pub estimated_output: f64,
    /// True if the chosen min-cost plan postpones this join.
    pub large_output: bool,
}

/// One segment of the chain (a maximal small-output run), executable as a
/// single relational query.
#[derive(Debug, Clone)]
pub struct SegmentPlan {
    /// Indices `[start, end]` of chain atoms in this segment (inclusive).
    pub atoms: (usize, usize),
    /// The relational query computing `res_i(x, y)`.
    pub query: Query,
}

/// The full plan for one `Edges` chain.
#[derive(Debug, Clone)]
pub struct ChainPlan {
    /// Per-join decisions (length = #atoms - 1).
    pub joins: Vec<JoinDecision>,
    /// The segment queries, in chain order. One segment and no large joins
    /// means the edge list is computed entirely in the database.
    pub segments: Vec<SegmentPlan>,
    /// Estimated total cost of this (min-cost) plan under the statistics
    /// it was planned with.
    pub estimated_cost: f64,
    /// Stable identity of the plan's shape (segmentation + per-join
    /// classifications); the serving layer compares it across statistics
    /// snapshots to detect drift.
    pub fingerprint: PlanFingerprint,
}

impl ChainPlan {
    /// Number of virtual-node layers this plan creates (= #large joins).
    pub fn virtual_layers(&self) -> usize {
        self.joins.iter().filter(|j| j.large_output).count()
    }
}

/// Compile a DSL atom's constant selections into one engine predicate
/// (shared by the planner, the extractor's node views, and the incremental
/// maintenance state, so filter semantics can never diverge between them).
pub(crate) fn filters_to_predicate(filters: &[ConstFilter]) -> Predicate {
    let mut pred = Predicate::True;
    for f in filters {
        let p = match f {
            ConstFilter::Int(col, v) => Predicate::Eq(*col, Value::int(*v)),
            ConstFilter::Str(col, s) => Predicate::Eq(*col, Value::str(s.as_str())),
        };
        pred = pred.and(p);
    }
    pred
}

fn atom_to_step(atom: &ChainAtom) -> ChainStep {
    ChainStep {
        table: atom.relation.clone(),
        pred: filters_to_predicate(&atom.filters),
        in_col: atom.in_col,
        out_col: atom.out_col,
    }
}

/// Estimate `chain` against the live catalog: delegate to the unified
/// cost engine (every registered table carries full statistics, so the
/// engine can always cost the chain). Unknown tables surface first as
/// the engine's own error type.
pub(crate) fn cost_chain(
    db: &Database,
    chain: &EdgeChain,
    large_output_factor: f64,
) -> DbResult<ChainCost> {
    for atom in &chain.steps {
        db.column_stats(&atom.relation, atom.in_col)?;
    }
    Ok(
        estimate_chain(&catalog_view(db), &chain.steps, large_output_factor)
            .expect("catalog_view supplies rows and n_distinct for every registered table"),
    )
}

/// Choose the min-cost plan for `chain` and build its segment queries.
/// `large_output_factor` is the paper's constant 2.0.
pub fn plan_chain(
    db: &Database,
    chain: &EdgeChain,
    large_output_factor: f64,
) -> DbResult<ChainPlan> {
    let atoms = &chain.steps;
    let cost = cost_chain(db, chain, large_output_factor)?;
    let joins = cost
        .joins
        .iter()
        .enumerate()
        .map(|(i, j)| JoinDecision {
            left_atom: i,
            left_table: j.left.clone(),
            right_table: j.right.clone(),
            left_rows: j.left_rows.round() as usize,
            right_rows: j.right_rows.round() as usize,
            distinct: j.distinct as usize,
            estimated_output: j.estimated_output,
            large_output: j.cut,
        })
        .collect();
    let segments = cost
        .segments()
        .into_iter()
        .map(|(start, end)| {
            let steps: Vec<ChainStep> = atoms[start..=end].iter().map(atom_to_step).collect();
            SegmentPlan {
                atoms: (start, end),
                query: Query {
                    steps,
                    distinct: true,
                },
            }
        })
        .collect();
    Ok(ChainPlan {
        joins,
        segments,
        estimated_cost: cost.cost,
        fingerprint: cost.fingerprint,
    })
}

/// Build the single full-expansion query for the chain (the paper's
/// Table 1 "Full Graph" baseline; also Case 2 execution).
pub fn full_query(chain: &EdgeChain) -> Query {
    Query {
        steps: chain.steps.iter().map(atom_to_step).collect(),
        distinct: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_dsl::compile;
    use graphgen_reldb::{Column, Schema, Table};

    /// AuthorPub with a *large-output* self-join: many authors per pub.
    fn dblp_like(authors: i64, pubs: i64, per_pub: i64) -> Database {
        let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        for a in 0..authors {
            author
                .push_row(vec![Value::int(a), Value::str(format!("author{a}"))])
                .unwrap();
        }
        let mut next = 0i64;
        for p in 0..pubs {
            for _ in 0..per_pub {
                ap.push_row(vec![Value::int(next % authors), Value::int(p)])
                    .unwrap();
                next += 7;
            }
        }
        let mut db = Database::new();
        db.register("Author", author).unwrap();
        db.register("AuthorPub", ap).unwrap();
        db
    }

    fn coauthor_chain() -> EdgeChain {
        compile(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).",
        )
        .unwrap()
        .edges
        .remove(0)
    }

    #[test]
    fn dense_self_join_is_large_output() {
        // 10 authors per pub: |R|^2/d = (1000)^2/100 = 10,000 > 2*2000.
        let db = dblp_like(50, 100, 10);
        let plan = plan_chain(&db, &coauthor_chain(), 2.0).unwrap();
        assert_eq!(plan.joins.len(), 1);
        assert!(plan.joins[0].large_output);
        assert_eq!(plan.virtual_layers(), 1);
        assert_eq!(plan.segments.len(), 2);
    }

    #[test]
    fn sparse_self_join_is_small_output() {
        // 1 author per pub: output ~ |R| -> small.
        let db = dblp_like(100, 100, 1);
        let plan = plan_chain(&db, &coauthor_chain(), 2.0).unwrap();
        assert!(!plan.joins[0].large_output);
        assert_eq!(plan.segments.len(), 1);
        assert_eq!(plan.segments[0].atoms, (0, 1));
    }

    #[test]
    fn segment_queries_cover_the_chain() {
        let db = dblp_like(50, 100, 10);
        let plan = plan_chain(&db, &coauthor_chain(), 2.0).unwrap();
        assert_eq!(plan.segments[0].atoms, (0, 0));
        assert_eq!(plan.segments[1].atoms, (1, 1));
        // Each segment is runnable, and the threaded path returns the same
        // pairs in the same order.
        for seg in &plan.segments {
            let serial = seg.query.run(&db).expect("segment runs");
            assert_eq!(seg.query.run_threaded(&db, 4).expect("threaded"), serial);
        }
    }

    #[test]
    fn full_query_matches_chain_len() {
        let chain = coauthor_chain();
        let q = full_query(&chain);
        assert_eq!(q.steps.len(), 2);
        assert!(q.distinct);
    }

    #[test]
    fn factor_changes_classification() {
        let db = dblp_like(50, 100, 10);
        // With an absurd factor nothing is large.
        let plan = plan_chain(&db, &coauthor_chain(), 1e9).unwrap();
        assert!(!plan.joins[0].large_output);
    }
}
