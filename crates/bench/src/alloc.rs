//! Allocation accounting for the experiment binaries.
//!
//! A [`CountingAlloc`] wraps the system allocator and keeps three atomic
//! counters: bytes allocated in total, bytes currently live, and the peak of
//! the live count. Installing it (this crate does, via `#[global_allocator]`
//! in `lib.rs`) lets every bench binary report *bytes allocated* and *peak
//! resident bytes* per measured region — the numbers the extraction pipeline
//! claims to improve — without any external profiler.
//!
//! On top of the global counters, every allocation is attributed to the
//! **operator region** the allocating thread is in
//! (`graphgen_common::region`: scan / join build / join probe / DISTINCT,
//! set by the `reldb` physical operators), so [`region_stats`] breaks the
//! total down per operator and the next allocation hotspot is a line in a
//! table instead of a guess.

use graphgen_common::region::{self, Region, ALL_REGIONS, REGION_COUNT};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static TOTAL: AtomicUsize = AtomicUsize::new(0);
static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);
static REGION_BYTES: [AtomicUsize; REGION_COUNT] = [const { AtomicUsize::new(0) }; REGION_COUNT];
static REGION_ALLOCS: [AtomicUsize; REGION_COUNT] = [const { AtomicUsize::new(0) }; REGION_COUNT];

/// System-allocator wrapper that counts total / live / peak bytes.
pub struct CountingAlloc;

// SAFETY: delegates every allocation verbatim to `System`; the counters are
// pure bookkeeping and never influence allocation behavior.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            record_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) };
        LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            LIVE.fetch_sub(layout.size(), Ordering::Relaxed);
            record_alloc(new_size);
        }
        new_ptr
    }
}

fn record_alloc(size: usize) {
    TOTAL.fetch_add(size, Ordering::Relaxed);
    let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
    PEAK.fetch_max(live, Ordering::Relaxed);
    let r = region::current() as usize;
    REGION_BYTES[r].fetch_add(size, Ordering::Relaxed);
    REGION_ALLOCS[r].fetch_add(1, Ordering::Relaxed);
}

/// Counter snapshot (or, from [`measure`], deltas for one region).
#[derive(Debug, Clone, Copy)]
pub struct AllocStats {
    /// Bytes allocated (cumulative, frees not subtracted).
    pub total: usize,
    /// Bytes live right now.
    pub live: usize,
    /// Peak live bytes.
    pub peak: usize,
}

/// Read the raw counters.
///
/// `peak` is the high-water mark **since the last [`measure`] call** (each
/// measured region resets it to its entry baseline so regions are
/// comparable), not since process start.
pub fn stats() -> AllocStats {
    AllocStats {
        total: TOTAL.load(Ordering::Relaxed),
        live: LIVE.load(Ordering::Relaxed),
        peak: PEAK.load(Ordering::Relaxed),
    }
}

/// Run `f` and report what it allocated: `total` is the bytes allocated
/// during the call and `peak` the high-water mark of live bytes *above* the
/// live baseline at entry (so back-to-back regions are comparable).
///
/// Resets the global peak counter to the entry baseline, so it is **not
/// reentrant** — nesting `measure` inside a measured closure corrupts the
/// outer region's `peak`, and a later [`stats`] read reports the peak since
/// this call. The bench bins measure disjoint regions only.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, AllocStats) {
    let before_total = TOTAL.load(Ordering::Relaxed);
    let baseline = LIVE.load(Ordering::Relaxed);
    PEAK.store(baseline, Ordering::Relaxed);
    let out = f();
    let after = stats();
    (
        out,
        AllocStats {
            total: after.total - before_total,
            live: after.live.saturating_sub(baseline),
            peak: after.peak.saturating_sub(baseline),
        },
    )
}

/// Allocation totals of one operator region.
#[derive(Debug, Clone, Copy)]
pub struct RegionStats {
    /// Which region the numbers belong to.
    pub region: Region,
    /// Bytes allocated while a thread was in the region (cumulative).
    pub bytes: usize,
    /// Number of allocations in the region.
    pub allocs: usize,
}

/// Per-region allocation totals, in `ALL_REGIONS` order. Regions are
/// labeled by the `reldb` operators (scan / build / probe / distinct);
/// `general` is everything else.
pub fn region_stats() -> Vec<RegionStats> {
    ALL_REGIONS
        .iter()
        .map(|&region| RegionStats {
            region,
            bytes: REGION_BYTES[region as usize].load(Ordering::Relaxed),
            allocs: REGION_ALLOCS[region as usize].load(Ordering::Relaxed),
        })
        .collect()
}

/// Run `f` and report the per-region allocation deltas during the call
/// (alongside the return value). Concurrent measurement from other threads
/// is attributed like everything else — bench binaries measure one region
/// at a time.
pub fn measure_regions<T>(f: impl FnOnce() -> T) -> (T, Vec<RegionStats>) {
    let before = region_stats();
    let out = f();
    let after = region_stats();
    let deltas = before
        .into_iter()
        .zip(after)
        .map(|(b, a)| RegionStats {
            region: a.region,
            bytes: a.bytes - b.bytes,
            allocs: a.allocs - b.allocs,
        })
        .collect();
    (out, deltas)
}

/// Human-readable byte count (binary units, one decimal).
pub fn human_bytes(bytes: usize) -> String {
    const UNITS: [&str; 5] = ["B", "KiB", "MiB", "GiB", "TiB"];
    let mut v = bytes as f64;
    let mut unit = 0;
    while v >= 1024.0 && unit < UNITS.len() - 1 {
        v /= 1024.0;
        unit += 1;
    }
    if unit == 0 {
        format!("{bytes}B")
    } else {
        format!("{v:.1}{}", UNITS[unit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_sees_allocations() {
        let (v, stats) = measure(|| vec![0u8; 1 << 20]);
        assert_eq!(v.len(), 1 << 20);
        assert!(stats.total >= 1 << 20, "total {}", stats.total);
        assert!(stats.peak >= 1 << 20, "peak {}", stats.peak);
    }

    #[test]
    fn human_bytes_units() {
        assert_eq!(human_bytes(512), "512B");
        assert_eq!(human_bytes(2048), "2.0KiB");
        assert_eq!(human_bytes(3 << 20), "3.0MiB");
    }

    #[test]
    fn regions_attribute_operator_allocations() {
        let (_, deltas) = measure_regions(|| {
            let _g = region::enter(Region::Probe);
            std::hint::black_box(vec![0u8; 1 << 16])
        });
        let probe = deltas.iter().find(|d| d.region == Region::Probe).unwrap();
        assert!(probe.bytes >= 1 << 16, "probe bytes {}", probe.bytes);
        assert!(probe.allocs >= 1);
    }

    #[test]
    fn real_operators_label_their_regions() {
        use graphgen_reldb::{exec, RowSet, Value};
        let rows = RowSet::from_rows(
            2,
            (0..4000i64).map(|i| vec![Value::int(i % 97), Value::int(i)]),
        );
        let (_, deltas) = measure_regions(|| {
            let joined = exec::hash_join(&rows, 0, &rows, 0, 2);
            exec::distinct_rows(joined, 2)
        });
        let by_region = |r: Region| deltas.iter().find(|d| d.region == r).unwrap().bytes;
        assert!(by_region(Region::Build) > 0, "build not attributed");
        assert!(by_region(Region::Probe) > 0, "probe not attributed");
        assert!(by_region(Region::Distinct) > 0, "distinct not attributed");
    }
}
