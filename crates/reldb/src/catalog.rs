//! The database catalog: named tables plus the per-column statistics that
//! drive the extraction planner's large-output-join test (§4.2 Step 2).
//!
//! PostgreSQL exposes `n_distinct` in `pg_stats`; we compute exact distinct
//! counts at registration time (tables here are immutable once registered,
//! and the datasets are small enough that exactness is free).

use crate::error::{DbError, DbResult};
use crate::table::Table;
use graphgen_common::{ByteSize, FxHashMap};

/// Statistics for one column, analogous to a `pg_stats` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Total rows in the table.
    pub row_count: usize,
    /// Exact number of distinct values in the column.
    pub n_distinct: usize,
}

impl ColumnStats {
    /// Average number of rows per distinct value of this column.
    pub fn avg_fanout(&self) -> f64 {
        if self.n_distinct == 0 {
            0.0
        } else {
            self.row_count as f64 / self.n_distinct as f64
        }
    }
}

/// A named collection of tables with statistics.
#[derive(Debug, Default)]
pub struct Database {
    tables: FxHashMap<String, Table>,
    stats: FxHashMap<(String, usize), ColumnStats>,
}

impl Database {
    /// New empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `table` under `name`, computing statistics for every column
    /// (the ANALYZE step).
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        let rows = table.num_rows();
        for idx in 0..table.schema().arity() {
            let n_distinct = table.distinct_count(idx);
            self.stats.insert(
                (name.clone(), idx),
                ColumnStats {
                    row_count: rows,
                    n_distinct,
                },
            );
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Statistics for the `col`-th column of `table` (the `pg_stats` lookup).
    pub fn column_stats(&self, table: &str, col: usize) -> DbResult<ColumnStats> {
        self.stats
            .get(&(table.to_string(), col))
            .copied()
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    /// Statistics by column name.
    pub fn column_stats_by_name(&self, table: &str, column: &str) -> DbResult<ColumnStats> {
        let t = self.table(table)?;
        let idx = t
            .schema()
            .index_of(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        self.column_stats(table, idx)
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::num_rows).sum()
    }
}

impl ByteSize for Database {
    fn heap_bytes(&self) -> usize {
        self.tables.values().map(Table::heap_bytes).sum::<usize>()
            + self.stats.len() * std::mem::size_of::<((String, usize), ColumnStats)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn sample_db() -> Database {
        let mut t = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        for (a, p) in [(1, 10), (2, 10), (3, 11), (1, 11), (2, 12)] {
            t.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
        }
        let mut db = Database::new();
        db.register("AuthorPub", t).unwrap();
        db
    }

    #[test]
    fn register_and_lookup() {
        let db = sample_db();
        assert!(db.has_table("AuthorPub"));
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 5);
        assert!(db.table("Missing").is_err());
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut db = sample_db();
        let t = Table::new(Schema::new(vec![Column::int("x")]));
        assert!(matches!(
            db.register("AuthorPub", t),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn stats_are_exact() {
        let db = sample_db();
        let aid = db.column_stats_by_name("AuthorPub", "aid").unwrap();
        assert_eq!(aid.row_count, 5);
        assert_eq!(aid.n_distinct, 3);
        let pid = db.column_stats_by_name("AuthorPub", "pid").unwrap();
        assert_eq!(pid.n_distinct, 3);
        assert!((pid.avg_fanout() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_column_stats() {
        let db = sample_db();
        assert!(matches!(
            db.column_stats_by_name("AuthorPub", "nope"),
            Err(DbError::UnknownColumn { .. })
        ));
    }
}
