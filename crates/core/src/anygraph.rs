//! Runtime-chosen representation.
//!
//! The paper's system picks a representation per dataset / per analysis
//! (§6.5). [`AnyGraph`] is the dynamic wrapper: it holds any of the five
//! representations and implements the full [`GraphRep`] API by dispatch.
//! Moving **between** representations is the job of
//! [`crate::GraphHandle::convert`] — the typed, single entry point that
//! replaced the old scatter of `Option`-returning `to_*` methods here.

use graphgen_graph::{
    BitmapGraph, CondensedGraph, Dedup1Graph, Dedup2Graph, ExpandedGraph, GraphRep, RealId, RepKind,
};

/// Any of the five in-memory representations.
#[derive(Debug, Clone)]
pub enum AnyGraph {
    /// Condensed with duplicates.
    CDup(CondensedGraph),
    /// Fully expanded.
    Exp(ExpandedGraph),
    /// Structurally deduplicated condensed.
    Dedup1(Dedup1Graph),
    /// Single-layer symmetric optimization.
    Dedup2(Dedup2Graph),
    /// Condensed with traversal bitmaps.
    Bitmap(BitmapGraph),
}

impl AnyGraph {
    fn inner(&self) -> &dyn GraphRep {
        match self {
            AnyGraph::CDup(g) => g,
            AnyGraph::Exp(g) => g,
            AnyGraph::Dedup1(g) => g,
            AnyGraph::Dedup2(g) => g,
            AnyGraph::Bitmap(g) => g,
        }
    }

    fn inner_mut(&mut self) -> &mut dyn GraphRep {
        match self {
            AnyGraph::CDup(g) => g,
            AnyGraph::Exp(g) => g,
            AnyGraph::Dedup1(g) => g,
            AnyGraph::Dedup2(g) => g,
            AnyGraph::Bitmap(g) => g,
        }
    }

    /// The condensed core, if this representation retains one (C-DUP,
    /// DEDUP-1, and BITMAP do; EXP and DEDUP-2 do not).
    pub fn as_condensed(&self) -> Option<&CondensedGraph> {
        match self {
            AnyGraph::CDup(g) => Some(g),
            AnyGraph::Dedup1(g) => Some(g.as_condensed()),
            AnyGraph::Bitmap(g) => Some(g.core()),
            _ => None,
        }
    }
}

impl From<CondensedGraph> for AnyGraph {
    fn from(g: CondensedGraph) -> Self {
        AnyGraph::CDup(g)
    }
}

impl From<ExpandedGraph> for AnyGraph {
    fn from(g: ExpandedGraph) -> Self {
        AnyGraph::Exp(g)
    }
}

impl From<Dedup1Graph> for AnyGraph {
    fn from(g: Dedup1Graph) -> Self {
        AnyGraph::Dedup1(g)
    }
}

impl From<Dedup2Graph> for AnyGraph {
    fn from(g: Dedup2Graph) -> Self {
        AnyGraph::Dedup2(g)
    }
}

impl From<BitmapGraph> for AnyGraph {
    fn from(g: BitmapGraph) -> Self {
        AnyGraph::Bitmap(g)
    }
}

impl GraphRep for AnyGraph {
    fn kind(&self) -> RepKind {
        self.inner().kind()
    }
    fn num_real_slots(&self) -> usize {
        self.inner().num_real_slots()
    }
    fn is_alive(&self, u: RealId) -> bool {
        self.inner().is_alive(u)
    }
    fn num_vertices(&self) -> usize {
        self.inner().num_vertices()
    }
    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        self.inner().for_each_neighbor(u, f)
    }
    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        self.inner().exists_edge(u, v)
    }
    fn add_vertex(&mut self) -> RealId {
        self.inner_mut().add_vertex()
    }
    fn delete_vertex(&mut self, u: RealId) {
        self.inner_mut().delete_vertex(u)
    }
    fn revive_vertex(&mut self, u: RealId) {
        self.inner_mut().revive_vertex(u)
    }
    fn compact(&mut self) {
        self.inner_mut().compact()
    }
    fn add_edge(&mut self, u: RealId, v: RealId) {
        self.inner_mut().add_edge(u, v)
    }
    fn delete_edge(&mut self, u: RealId, v: RealId) {
        self.inner_mut().delete_edge(u, v)
    }
    fn stored_edge_count(&self) -> u64 {
        self.inner().stored_edge_count()
    }
    fn stored_node_count(&self) -> usize {
        self.inner().stored_node_count()
    }
    fn heap_bytes(&self) -> usize {
        self.inner().heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::CondensedBuilder;

    fn sample() -> AnyGraph {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(0), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        AnyGraph::CDup(b.build())
    }

    #[test]
    fn dispatch_works() {
        let mut g = sample();
        assert_eq!(g.kind(), RepKind::CDup);
        assert_eq!(g.num_vertices(), 5);
        assert!(g.exists_edge(RealId(0), RealId(3)));
        let v = g.add_vertex();
        g.add_edge(v, RealId(0));
        assert!(g.exists_edge(v, RealId(0)));
        g.delete_vertex(v);
        assert_eq!(g.num_vertices(), 5);
    }

    #[test]
    fn condensed_core_visibility() {
        let g = sample();
        assert!(g.as_condensed().is_some());
        let exp = AnyGraph::Exp(ExpandedGraph::from_rep(&g));
        assert_eq!(exp.kind(), RepKind::Exp);
        assert!(exp.as_condensed().is_none());
    }

    #[test]
    fn from_impls_wrap_the_right_variant() {
        let core = match sample() {
            AnyGraph::CDup(g) => g,
            _ => unreachable!(),
        };
        assert_eq!(AnyGraph::from(core.clone()).kind(), RepKind::CDup);
        assert_eq!(
            AnyGraph::from(ExpandedGraph::from_rep(&core)).kind(),
            RepKind::Exp
        );
    }
}
