//! Binary snapshot codecs for every in-memory representation.
//!
//! The serving layer persists extracted graphs to disk and recovers them
//! after a crash (see `graphgen-serve`). This module provides the
//! representation-level primitives of that snapshot format: a verbatim,
//! structure-preserving binary encoding of each of the five
//! representations plus [`Properties`], following the workspace codec
//! conventions (`graphgen_common::codec`: little-endian, length-prefixed,
//! bounds-checked decode).
//!
//! The encodings are **verbatim**: a decoded graph has exactly the stored
//! adjacency of the encoded one — same virtual-node numbering, same dead
//! slots, same bitmaps — so a recovered handle is byte-identical
//! (canonical serialization *and* structure) to the one that was
//! persisted. Encoding is deterministic (hash-map content is emitted in
//! sorted key order), so equal graphs produce equal bytes.
//!
//! Framing (magic header, format version, section layout for a whole
//! `GraphHandle`) lives one level up in `graphgen_core::serialize`; these
//! functions encode bare representation payloads.

use crate::api::GraphRep;
use crate::bitmap_rep::BitmapGraph;
use crate::cdup::CondensedGraph;
use crate::dedup1::Dedup1Graph;
use crate::dedup2::Dedup2Graph;
use crate::exp::ExpandedGraph;
use crate::ids::Adj;
use crate::properties::{PropValue, Properties};
use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_common::{Bitmap, FxHashMap};

// ---------------------------------------------------------------------------
// Small shared pieces
// ---------------------------------------------------------------------------

/// Encode a `Vec<bool>` as a bit-packed word array.
fn put_bools(out: &mut Vec<u8>, bits: &[bool]) {
    codec::put_len(out, bits.len());
    let mut word = 0u64;
    for (i, &b) in bits.iter().enumerate() {
        if b {
            word |= 1 << (i % 64);
        }
        if i % 64 == 63 {
            codec::put_u64(out, word);
            word = 0;
        }
    }
    if !bits.len().is_multiple_of(64) {
        codec::put_u64(out, word);
    }
}

fn read_bools(r: &mut Reader<'_>) -> Result<Vec<bool>, CodecError> {
    let n = r.len()?;
    let mut bits = Vec::with_capacity(n);
    let mut word = 0u64;
    for i in 0..n {
        if i % 64 == 0 {
            word = r.u64()?;
        }
        bits.push((word >> (i % 64)) & 1 == 1);
    }
    Ok(bits)
}

/// Encode a list-of-sorted-u32-lists adjacency structure.
fn put_lists(out: &mut Vec<u8>, lists: &[Vec<u32>]) {
    codec::put_len(out, lists.len());
    for list in lists {
        codec::put_len(out, list.len());
        for &v in list {
            codec::put_u32(out, v);
        }
    }
}

/// Decode an adjacency structure, checking each entry is `< bound` and each
/// list is strictly sorted (the invariant every representation maintains).
fn read_lists(r: &mut Reader<'_>, bound: u32, what: &str) -> Result<Vec<Vec<u32>>, CodecError> {
    let n = r.len_of(8)?;
    let mut lists = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.len_of(4)?;
        let mut list = Vec::with_capacity(len);
        for _ in 0..len {
            let at = r.pos();
            let v = r.u32()?;
            if v >= bound {
                return Err(CodecError::invalid(
                    at,
                    format!("{what} target {v} out of range {bound}"),
                ));
            }
            if let Some(&prev) = list.last() {
                if prev >= v {
                    return Err(CodecError::invalid(
                        at,
                        format!("{what} list not strictly sorted"),
                    ));
                }
            }
            list.push(v);
        }
        lists.push(list);
    }
    Ok(lists)
}

/// Encode adjacency lists of packed [`Adj`] targets.
fn put_adj_lists(out: &mut Vec<u8>, lists: &[Vec<Adj>]) {
    codec::put_len(out, lists.len());
    for list in lists {
        codec::put_len(out, list.len());
        for a in list {
            codec::put_u32(out, a.raw());
        }
    }
}

fn read_adj_lists(
    r: &mut Reader<'_>,
    n_real: u32,
    n_virt: u32,
    what: &str,
) -> Result<Vec<Vec<Adj>>, CodecError> {
    let n = r.len_of(8)?;
    let mut lists = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.len_of(4)?;
        let mut list: Vec<Adj> = Vec::with_capacity(len);
        for _ in 0..len {
            let at = r.pos();
            let a = Adj::from_raw(r.u32()?);
            let ok = match (a.as_real(), a.as_virtual()) {
                (Some(u), _) => u.0 < n_real,
                (_, Some(v)) => v.0 < n_virt,
                _ => unreachable!("Adj is always one of the two"),
            };
            if !ok {
                return Err(CodecError::invalid(
                    at,
                    format!("{what} adjacency target out of range"),
                ));
            }
            if let Some(&prev) = list.last() {
                if prev.raw() >= a.raw() {
                    return Err(CodecError::invalid(
                        at,
                        format!("{what} adjacency not strictly sorted"),
                    ));
                }
            }
            list.push(a);
        }
        lists.push(list);
    }
    Ok(lists)
}

fn count_alive(alive: &[bool]) -> usize {
    alive.iter().filter(|&&a| a).count()
}

// ---------------------------------------------------------------------------
// C-DUP (also the core of DEDUP-1 and BITMAP)
// ---------------------------------------------------------------------------

/// Encode a [`CondensedGraph`] verbatim (real adjacency, virtual adjacency,
/// liveness bits).
pub fn encode_condensed(g: &CondensedGraph, out: &mut Vec<u8>) {
    codec::put_len(out, g.num_real_slots());
    codec::put_len(out, g.num_virtual());
    put_bools(out, &g.alive);
    put_adj_lists(out, &g.real_out);
    put_adj_lists(out, &g.virt_out);
}

/// Decode a [`CondensedGraph`] (inverse of [`encode_condensed`]).
pub fn decode_condensed(r: &mut Reader<'_>) -> Result<CondensedGraph, CodecError> {
    let at = r.pos();
    let n_real = r.len()?;
    let n_virt = r.len()?;
    if n_real > u32::MAX as usize || n_virt > u32::MAX as usize {
        return Err(CodecError::invalid(at, "node count overflows u32"));
    }
    let alive = read_bools(r)?;
    if alive.len() != n_real {
        return Err(CodecError::invalid(at, "liveness length mismatch"));
    }
    let real_out = read_adj_lists(r, n_real as u32, n_virt as u32, "real")?;
    let virt_out = read_adj_lists(r, n_real as u32, n_virt as u32, "virtual")?;
    if real_out.len() != n_real || virt_out.len() != n_virt {
        return Err(CodecError::invalid(at, "adjacency length mismatch"));
    }
    let n_alive = count_alive(&alive);
    Ok(CondensedGraph {
        real_out,
        virt_out,
        alive,
        n_alive,
    })
}

// ---------------------------------------------------------------------------
// EXP
// ---------------------------------------------------------------------------

/// Encode an [`ExpandedGraph`] verbatim (both adjacency directions and the
/// liveness bits are stored, so lazily deleted targets survive the trip).
pub fn encode_expanded(g: &ExpandedGraph, out: &mut Vec<u8>) {
    put_bools(out, &g.alive);
    put_lists(out, &g.out);
    put_lists(out, &g.inc);
}

/// Decode an [`ExpandedGraph`] (inverse of [`encode_expanded`]).
pub fn decode_expanded(r: &mut Reader<'_>) -> Result<ExpandedGraph, CodecError> {
    let at = r.pos();
    let alive = read_bools(r)?;
    let n = alive.len();
    if n > u32::MAX as usize {
        return Err(CodecError::invalid(at, "node count overflows u32"));
    }
    let out = read_lists(r, n as u32, "out")?;
    let inc = read_lists(r, n as u32, "in")?;
    if out.len() != n || inc.len() != n {
        return Err(CodecError::invalid(at, "adjacency length mismatch"));
    }
    let n_alive = count_alive(&alive);
    Ok(ExpandedGraph {
        out,
        inc,
        alive,
        n_alive,
    })
}

// ---------------------------------------------------------------------------
// DEDUP-1
// ---------------------------------------------------------------------------

/// Encode a [`Dedup1Graph`] (its condensed core, whose deduplication
/// invariant the decode trusts — the bytes came from a validated graph).
pub fn encode_dedup1(g: &Dedup1Graph, out: &mut Vec<u8>) {
    encode_condensed(g.as_condensed(), out);
}

/// Decode a [`Dedup1Graph`] (inverse of [`encode_dedup1`]).
pub fn decode_dedup1(r: &mut Reader<'_>) -> Result<Dedup1Graph, CodecError> {
    Ok(Dedup1Graph::new_unchecked(decode_condensed(r)?))
}

// ---------------------------------------------------------------------------
// DEDUP-2
// ---------------------------------------------------------------------------

/// Encode a [`Dedup2Graph`] verbatim (memberships, members, virtual-virtual
/// and direct edges, liveness).
pub fn encode_dedup2(g: &Dedup2Graph, out: &mut Vec<u8>) {
    codec::put_len(out, g.members.len());
    put_bools(out, &g.alive);
    put_lists(out, &g.memberships);
    put_lists(out, &g.members);
    put_lists(out, &g.vv);
    put_lists(out, &g.direct);
}

/// Decode a [`Dedup2Graph`] (inverse of [`encode_dedup2`]).
pub fn decode_dedup2(r: &mut Reader<'_>) -> Result<Dedup2Graph, CodecError> {
    let at = r.pos();
    let n_virt = r.len()?;
    let alive = read_bools(r)?;
    let n_real = alive.len();
    if n_real > u32::MAX as usize || n_virt > u32::MAX as usize {
        return Err(CodecError::invalid(at, "node count overflows u32"));
    }
    let memberships = read_lists(r, n_virt as u32, "membership")?;
    let members = read_lists(r, n_real as u32, "member")?;
    let vv = read_lists(r, n_virt as u32, "virtual-virtual")?;
    let direct = read_lists(r, n_real as u32, "direct")?;
    if memberships.len() != n_real
        || direct.len() != n_real
        || members.len() != n_virt
        || vv.len() != n_virt
    {
        return Err(CodecError::invalid(at, "section length mismatch"));
    }
    let n_alive = count_alive(&alive);
    Ok(Dedup2Graph {
        memberships,
        members,
        vv,
        direct,
        alive,
        n_alive,
    })
}

// ---------------------------------------------------------------------------
// BITMAP
// ---------------------------------------------------------------------------

/// Encode a [`BitmapGraph`] verbatim: its condensed core plus, per virtual
/// node, the per-source traversal bitmaps (in ascending source order, so
/// the bytes are deterministic).
pub fn encode_bitmap(g: &BitmapGraph, out: &mut Vec<u8>) {
    encode_condensed(&g.core, out);
    codec::put_len(out, g.bitmaps.len());
    for map in &g.bitmaps {
        let mut sources: Vec<u32> = map.keys().copied().collect();
        sources.sort_unstable();
        codec::put_len(out, sources.len());
        for src in sources {
            let bm = &map[&src];
            codec::put_u32(out, src);
            codec::put_len(out, bm.len());
            for &w in bm.words() {
                codec::put_u64(out, w);
            }
        }
    }
}

/// Decode a [`BitmapGraph`] (inverse of [`encode_bitmap`]).
pub fn decode_bitmap(r: &mut Reader<'_>) -> Result<BitmapGraph, CodecError> {
    let core = decode_condensed(r)?;
    let at = r.pos();
    let n_virt = r.len()?;
    if n_virt != core.num_virtual() {
        return Err(CodecError::invalid(
            at,
            "bitmap section does not match virtual count",
        ));
    }
    let n_real = core.num_real_slots() as u32;
    let mut bitmaps = Vec::with_capacity(n_virt);
    for v in 0..n_virt {
        let count = r.len_of(4)?;
        let mut map: FxHashMap<u32, Bitmap> = FxHashMap::default();
        for _ in 0..count {
            let at = r.pos();
            let src = r.u32()?;
            if src >= n_real {
                return Err(CodecError::invalid(at, "bitmap source out of range"));
            }
            // The stored count is in BITS (~1/8 byte each), so the
            // byte-based plausibility check of `Reader::len` does not
            // apply; bound it against the word payload instead.
            let bits = usize::try_from(r.u64()?)
                .map_err(|_| CodecError::invalid(at, "bitmap length overflows"))?;
            if bits.div_ceil(64) > r.remaining() / 8 {
                return Err(CodecError::invalid(
                    at,
                    "bitmap longer than remaining input",
                ));
            }
            if bits != core.virt_out(crate::ids::VirtId(v as u32)).len() {
                return Err(CodecError::invalid(
                    at,
                    "bitmap length does not match out-degree",
                ));
            }
            let mut words = Vec::with_capacity(bits.div_ceil(64));
            for _ in 0..bits.div_ceil(64) {
                words.push(r.u64()?);
            }
            let bm = Bitmap::from_words(words, bits)
                .ok_or_else(|| CodecError::invalid(at, "bitmap word count mismatch"))?;
            if map.insert(src, bm).is_some() {
                return Err(CodecError::invalid(at, "duplicate bitmap source"));
            }
        }
        bitmaps.push(map);
    }
    Ok(BitmapGraph { core, bitmaps })
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

/// Encode one [`PropValue`] (tag byte + payload).
pub fn encode_prop_value(p: &PropValue, out: &mut Vec<u8>) {
    match p {
        PropValue::Int(v) => {
            codec::put_u8(out, 0);
            codec::put_i64(out, *v);
        }
        PropValue::Float(v) => {
            codec::put_u8(out, 1);
            codec::put_f64(out, *v);
        }
        PropValue::Text(s) => {
            codec::put_u8(out, 2);
            codec::put_str(out, s);
        }
    }
}

/// Decode one [`PropValue`] (inverse of [`encode_prop_value`]).
pub fn decode_prop_value(r: &mut Reader<'_>) -> Result<PropValue, CodecError> {
    let at = r.pos();
    Ok(match r.u8()? {
        0 => PropValue::Int(r.i64()?),
        1 => PropValue::Float(r.f64()?),
        2 => PropValue::Text(r.str()?.to_string()),
        tag => return Err(CodecError::invalid(at, format!("bad property tag {tag}"))),
    })
}

/// Encode a [`Properties`] store (columns in sorted name order; each cell a
/// presence tag plus the value).
pub fn encode_properties(p: &Properties, out: &mut Vec<u8>) {
    codec::put_len(out, p.n);
    let mut names: Vec<&String> = p.columns.keys().collect();
    names.sort();
    codec::put_len(out, names.len());
    for name in names {
        codec::put_str(out, name);
        for cell in &p.columns[name.as_str()] {
            match cell {
                None => codec::put_u8(out, 0),
                Some(v) => {
                    codec::put_u8(out, 1);
                    encode_prop_value(v, out);
                }
            }
        }
    }
}

/// Decode a [`Properties`] store (inverse of [`encode_properties`]).
pub fn decode_properties(r: &mut Reader<'_>) -> Result<Properties, CodecError> {
    let n = r.len()?;
    let ncols = r.len()?;
    let mut columns: FxHashMap<String, Vec<Option<PropValue>>> = FxHashMap::default();
    for _ in 0..ncols {
        let at = r.pos();
        let name = r.str()?.to_string();
        let mut col = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.pos();
            col.push(match r.u8()? {
                0 => None,
                1 => Some(decode_prop_value(r)?),
                tag => return Err(CodecError::invalid(at, format!("bad presence tag {tag}"))),
            });
        }
        if columns.insert(name, col).is_some() {
            return Err(CodecError::invalid(at, "duplicate property column"));
        }
    }
    Ok(Properties { n, columns })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::CondensedBuilder;
    use crate::ids::RealId;
    use crate::{expand_to_edge_list, RepKind};

    fn sample_condensed() -> CondensedGraph {
        let mut b = CondensedBuilder::new(6);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        b.direct(RealId(5), RealId(0));
        let mut g = b.build();
        g.delete_vertex(RealId(4)); // keep a dead slot in the snapshot
        g
    }

    fn roundtrip<T>(
        encode: impl Fn(&T, &mut Vec<u8>),
        decode: impl Fn(&mut Reader<'_>) -> Result<T, CodecError>,
        g: &T,
    ) -> T {
        let mut buf = Vec::new();
        encode(g, &mut buf);
        let mut r = Reader::new(&buf);
        let back = decode(&mut r).expect("decode");
        r.expect_end().expect("no trailing bytes");
        // Determinism: re-encoding yields the same bytes.
        let mut again = Vec::new();
        encode(&back, &mut again);
        assert_eq!(buf, again, "re-encode differs");
        back
    }

    #[test]
    fn condensed_roundtrip_is_verbatim() {
        let g = sample_condensed();
        let back = roundtrip(encode_condensed, decode_condensed, &g);
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(back.num_virtual(), g.num_virtual());
        for u in 0..g.num_real_slots() as u32 {
            assert_eq!(back.real_out(RealId(u)), g.real_out(RealId(u)));
            assert_eq!(back.is_alive(RealId(u)), g.is_alive(RealId(u)));
        }
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&g));
    }

    #[test]
    fn expanded_roundtrip_keeps_lazy_deletes() {
        let mut g = ExpandedGraph::from_rep(&sample_condensed());
        g.delete_vertex(RealId(1));
        let back = roundtrip(encode_expanded, decode_expanded, &g);
        assert_eq!(back.num_vertices(), g.num_vertices());
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&g));
        // Lazily deleted targets survive verbatim (revive works after decode).
        let mut revived_a = back.clone();
        let mut revived_b = g.clone();
        revived_a.revive_vertex(RealId(1));
        revived_b.revive_vertex(RealId(1));
        assert_eq!(
            expand_to_edge_list(&revived_a),
            expand_to_edge_list(&revived_b)
        );
    }

    #[test]
    fn dedup1_and_dedup2_roundtrip() {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        let d1 = Dedup1Graph::new_unchecked(b.build());
        let back = roundtrip(encode_dedup1, decode_dedup1, &d1);
        assert_eq!(back.kind(), RepKind::Dedup1);
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&d1));

        let mut d2 = Dedup2Graph::new(9);
        let w1 = d2.add_virtual(vec![0, 1, 2]);
        let w2 = d2.add_virtual(vec![3, 4, 5]);
        d2.add_virtual_edge(w1, w2);
        d2.add_edge(RealId(6), RealId(7));
        d2.delete_vertex(RealId(8));
        let back = roundtrip(encode_dedup2, decode_dedup2, &d2);
        assert_eq!(back.kind(), RepKind::Dedup2);
        assert_eq!(back.num_vertices(), d2.num_vertices());
        assert_eq!(expand_to_edge_list(&back), expand_to_edge_list(&d2));
    }

    #[test]
    fn bitmap_roundtrip_keeps_masks() {
        let mut b = CondensedBuilder::new(4);
        let p1 = b.clique(&[RealId(0), RealId(1)]);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let mut g = BitmapGraph::new_unmasked(b.build());
        let mut m = Bitmap::ones(2);
        m.unset(0);
        m.unset(1);
        g.set_bitmap(p1, RealId(0), m);
        let back = roundtrip(encode_bitmap, decode_bitmap, &g);
        assert_eq!(back.bitmap_count(), g.bitmap_count());
        assert_eq!(back.bitmap(p1, RealId(0)), g.bitmap(p1, RealId(0)));
        // Masked traversal is identical.
        let collect = |g: &BitmapGraph| {
            let mut seen = Vec::new();
            g.for_each_neighbor(RealId(0), &mut |r| seen.push(r.0));
            seen
        };
        assert_eq!(collect(&back), collect(&g));
    }

    /// Regression: the bitmap length is a BIT count; a byte-based
    /// plausibility bound used to reject any mask with more bits than
    /// trailing bytes.
    #[test]
    fn bitmap_roundtrip_with_wide_masks() {
        let mut b = CondensedBuilder::new(130);
        let members: Vec<RealId> = (0..128).map(RealId).collect();
        let v = b.clique(&members);
        let mut g = BitmapGraph::new_unmasked(b.build());
        let mut m = Bitmap::ones(128);
        m.unset(0);
        g.set_bitmap(v, RealId(0), m);
        let back = roundtrip(encode_bitmap, decode_bitmap, &g);
        assert_eq!(back.bitmap(v, RealId(0)), g.bitmap(v, RealId(0)));
    }

    #[test]
    fn properties_roundtrip() {
        let mut p = Properties::new(3);
        p.set(RealId(0), "name", PropValue::Text("a\"b".into()));
        p.set(RealId(2), "score", PropValue::Float(2.25));
        p.set(RealId(1), "age", PropValue::Int(-3));
        let back = roundtrip(encode_properties, decode_properties, &p);
        assert_eq!(back.len(), 3);
        assert_eq!(back.get(RealId(0), "name"), p.get(RealId(0), "name"));
        assert_eq!(back.get(RealId(2), "score"), p.get(RealId(2), "score"));
        assert_eq!(back.get(RealId(1), "age"), p.get(RealId(1), "age"));
        assert_eq!(back.get(RealId(1), "name"), None);
    }

    #[test]
    fn corrupt_input_is_rejected_not_panicking() {
        let g = sample_condensed();
        let mut buf = Vec::new();
        encode_condensed(&g, &mut buf);
        // Truncations at every prefix either decode cleanly (never, given
        // trailing data checks happen in the caller) or error — no panic.
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            let _ = decode_condensed(&mut r);
        }
        // Flip each byte and make sure decode never panics.
        for i in 0..buf.len() {
            let mut bad = buf.clone();
            bad[i] ^= 0xFF;
            let mut r = Reader::new(&bad);
            let _ = decode_condensed(&mut r);
        }
    }
}
