//! The mutable working structure the DEDUP-1 algorithms operate on.
//!
//! A single-layer condensed graph is a tripartite structure: real sources →
//! virtual nodes → real targets, plus direct real→real edges. [`WorkGraph`]
//! stores it as sorted id vectors (`I(V)`, `O(V)` in the paper's notation)
//! with a reverse index from each real node to the virtual nodes it sources,
//! and supports the edits the algorithms perform: removing a target from a
//! virtual node, detaching a source, adding compensating direct edges.
//!
//! An `active` flag per virtual node implements the "partial graph" of the
//! virtual-nodes-first algorithms: `exists_edge` and witness counting only
//! consider active virtual nodes.

use graphgen_graph::{Adj, CondensedBuilder, CondensedGraph, GraphRep, RealId, VirtId};

/// Mutable single-layer condensed graph for deduplication.
#[derive(Debug, Clone)]
pub struct WorkGraph {
    n_real: usize,
    /// `I(V)`: sorted real sources of each virtual node.
    pub iv: Vec<Vec<u32>>,
    /// `O(V)`: sorted real targets of each virtual node.
    pub ov: Vec<Vec<u32>>,
    /// For each real node, the sorted virtual nodes it sources (u ∈ I(V)).
    pub rv: Vec<Vec<u32>>,
    /// Sorted direct out-neighbors per real node.
    pub direct: Vec<Vec<u32>>,
    /// Partial-graph flag: inactive virtual nodes are invisible to
    /// `exists_edge` / `witness_count`.
    pub active: Vec<bool>,
}

/// Intersection of two sorted `u32` slices.
pub fn intersect_sorted(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::new();
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out
}

/// Insert into a sorted vector if absent; returns true if inserted.
pub fn sorted_insert(v: &mut Vec<u32>, x: u32) -> bool {
    match v.binary_search(&x) {
        Ok(_) => false,
        Err(pos) => {
            v.insert(pos, x);
            true
        }
    }
}

/// Remove from a sorted vector if present; returns true if removed.
pub fn sorted_remove(v: &mut Vec<u32>, x: u32) -> bool {
    match v.binary_search(&x) {
        Ok(pos) => {
            v.remove(pos);
            true
        }
        Err(_) => false,
    }
}

impl WorkGraph {
    /// Build from a single-layer condensed graph (panics on multi-layer
    /// input — callers flatten first; see `flatten_to_single_layer`).
    pub fn from_condensed(g: &CondensedGraph, all_active: bool) -> Self {
        assert!(
            g.is_single_layer(),
            "WorkGraph requires a single-layer condensed graph"
        );
        let n_real = g.num_real_slots();
        let n_virt = g.num_virtual();
        let mut iv = vec![Vec::new(); n_virt];
        let mut ov = vec![Vec::new(); n_virt];
        let mut rv = vec![Vec::new(); n_real];
        let mut direct = vec![Vec::new(); n_real];
        for u in 0..n_real as u32 {
            for a in g.real_out(RealId(u)) {
                if let Some(v) = a.as_virtual() {
                    iv[v.0 as usize].push(u);
                    rv[u as usize].push(v.0);
                } else if let Some(r) = a.as_real() {
                    direct[u as usize].push(r.0);
                }
            }
        }
        for (v, targets) in ov.iter_mut().enumerate() {
            for a in g.virt_out(VirtId(v as u32)) {
                let r = a.as_real().expect("single-layer");
                targets.push(r.0);
            }
        }
        // real_out was sorted by Adj packing, which preserves numeric order
        // within each kind; iv/ov built in ascending u / sorted order.
        Self {
            n_real,
            iv,
            ov,
            rv,
            direct,
            active: vec![all_active; n_virt],
        }
    }

    /// Number of real nodes.
    pub fn num_real(&self) -> usize {
        self.n_real
    }

    /// Number of virtual nodes.
    pub fn num_virtual(&self) -> usize {
        self.iv.len()
    }

    /// Activate a virtual node (virtual-nodes-first partial graph growth).
    pub fn activate(&mut self, v: u32) {
        self.active[v as usize] = true;
    }

    /// Count the witnesses of the logical edge `u → w` in the active graph:
    /// direct edge (0/1) plus active virtual nodes with `u ∈ I(V), w ∈ O(V)`.
    pub fn witness_count(&self, u: u32, w: u32) -> usize {
        let mut count = usize::from(self.direct[u as usize].binary_search(&w).is_ok());
        for &v in &self.rv[u as usize] {
            if self.active[v as usize] && self.ov[v as usize].binary_search(&w).is_ok() {
                count += 1;
            }
        }
        count
    }

    /// Does the logical edge `u → w` exist in the active graph?
    pub fn exists_edge(&self, u: u32, w: u32) -> bool {
        if self.direct[u as usize].binary_search(&w).is_ok() {
            return true;
        }
        self.rv[u as usize]
            .iter()
            .any(|&v| self.active[v as usize] && self.ov[v as usize].binary_search(&w).is_ok())
    }

    /// Remove target `r` from `O(V)` and compensate: every remaining source
    /// of `V` that loses its only witness to `r` gets a direct edge.
    pub fn remove_target_and_compensate(&mut self, v: u32, r: u32) {
        if !sorted_remove(&mut self.ov[v as usize], r) {
            return;
        }
        let sources = self.iv[v as usize].clone();
        for u in sources {
            if u != r && !self.exists_edge(u, r) {
                sorted_insert(&mut self.direct[u as usize], r);
            }
        }
    }

    /// Detach source `u` from `V` (removes the `u → V` edge; `V` may still
    /// target `u`). No compensation — callers decide.
    pub fn detach_source(&mut self, v: u32, u: u32) {
        sorted_remove(&mut self.iv[v as usize], u);
        sorted_remove(&mut self.rv[u as usize], v);
    }

    /// Add a direct edge if absent.
    pub fn add_direct(&mut self, u: u32, w: u32) {
        if u != w {
            sorted_insert(&mut self.direct[u as usize], w);
        }
    }

    /// Remove a direct edge if present.
    pub fn remove_direct(&mut self, u: u32, w: u32) -> bool {
        sorted_remove(&mut self.direct[u as usize], w)
    }

    /// Total stored edges (source edges + target edges + direct).
    pub fn stored_edges(&self) -> u64 {
        let iv: u64 = self.iv.iter().map(|l| l.len() as u64).sum();
        let ov: u64 = self.ov.iter().map(|l| l.len() as u64).sum();
        let d: u64 = self.direct.iter().map(|l| l.len() as u64).sum();
        iv + ov + d
    }

    /// Convert back to a condensed graph, dropping empty virtual nodes.
    pub fn into_condensed(self) -> CondensedGraph {
        let mut b = CondensedBuilder::new(self.n_real);
        for v in 0..self.iv.len() {
            if self.iv[v].is_empty() || self.ov[v].is_empty() {
                continue;
            }
            let vid = b.add_virtual();
            for &u in &self.iv[v] {
                b.real_to_virtual(RealId(u), vid);
            }
            for &w in &self.ov[v] {
                b.virtual_to_real(vid, RealId(w));
            }
        }
        for (u, list) in self.direct.iter().enumerate() {
            for &w in list {
                b.direct(RealId(u as u32), RealId(w));
            }
        }
        b.build()
    }

    /// Sanity check used by tests: every pair has at most one witness.
    pub fn is_deduplicated(&self) -> bool {
        for u in 0..self.n_real as u32 {
            let mut counts: graphgen_common::FxHashMap<u32, u32> = Default::default();
            for &w in &self.direct[u as usize] {
                *counts.entry(w).or_insert(0) += 1;
            }
            for &v in &self.rv[u as usize] {
                if !self.active[v as usize] {
                    continue;
                }
                for &w in &self.ov[v as usize] {
                    if w != u {
                        *counts.entry(w).or_insert(0) += 1;
                    }
                }
            }
            if counts.values().any(|&c| c > 1) {
                return false;
            }
        }
        true
    }
}

/// Check that a condensed graph's direct edges don't duplicate paths (helper
/// for algorithm postconditions in tests).
pub fn direct_edges_count(g: &CondensedGraph) -> u64 {
    let mut n = 0;
    for u in 0..g.num_real_slots() as u32 {
        n += g
            .real_out(RealId(u))
            .iter()
            .filter(|a: &&Adj| !a.is_virtual())
            .count() as u64;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::CondensedBuilder;

    fn two_pubs() -> CondensedGraph {
        // V0 = {0,1,3}, V1 = {0,3}: pair (0,3) duplicated.
        let mut b = CondensedBuilder::new(4);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(0), RealId(3)]);
        b.build()
    }

    #[test]
    fn from_condensed_inverts_structure() {
        let w = WorkGraph::from_condensed(&two_pubs(), true);
        assert_eq!(w.num_virtual(), 2);
        assert_eq!(w.iv[0], vec![0, 1, 3]);
        assert_eq!(w.ov[0], vec![0, 1, 3]);
        assert_eq!(w.iv[1], vec![0, 3]);
        assert_eq!(w.rv[0], vec![0, 1]);
        assert_eq!(w.rv[2], Vec::<u32>::new());
    }

    #[test]
    fn witness_counting() {
        let w = WorkGraph::from_condensed(&two_pubs(), true);
        assert_eq!(w.witness_count(0, 3), 2);
        assert_eq!(w.witness_count(0, 1), 1);
        assert_eq!(w.witness_count(0, 2), 0);
        assert!(!w.is_deduplicated());
    }

    #[test]
    fn inactive_nodes_are_invisible() {
        let mut w = WorkGraph::from_condensed(&two_pubs(), false);
        assert_eq!(w.witness_count(0, 3), 0);
        assert!(!w.exists_edge(0, 3));
        w.activate(0);
        assert_eq!(w.witness_count(0, 3), 1);
        assert!(w.is_deduplicated());
    }

    #[test]
    fn remove_target_compensates_only_when_needed() {
        let mut w = WorkGraph::from_condensed(&two_pubs(), true);
        // Remove 3 from O(V1): pair (0,3) still covered via V0 -> no direct.
        w.remove_target_and_compensate(1, 3);
        assert_eq!(w.witness_count(0, 3), 1);
        assert!(w.direct[0].is_empty());
        // Remove 3 from O(V0) too: now 0 and 1 need direct edges to 3.
        w.remove_target_and_compensate(0, 3);
        assert_eq!(w.witness_count(0, 3), 1);
        assert_eq!(w.direct[0], vec![3]);
        assert_eq!(w.direct[1], vec![3]);
        // Pair (3, 0) is still duplicated (covered by both V0 and V1) — the
        // reverse direction needs its own resolution.
        assert!(!w.is_deduplicated());
        assert_eq!(w.witness_count(3, 0), 2);
        w.remove_target_and_compensate(1, 0);
        assert!(w.is_deduplicated());
    }

    #[test]
    fn roundtrip_to_condensed_preserves_semantics() {
        use graphgen_graph::{expand_to_edge_list, GraphRep};
        let g = two_pubs();
        let edges_before = expand_to_edge_list(&g);
        let w = WorkGraph::from_condensed(&g, true);
        let g2 = w.into_condensed();
        assert_eq!(expand_to_edge_list(&g2), edges_before);
        assert_eq!(g2.num_virtual(), 2);
        let _ = g2.expanded_edge_count();
    }

    #[test]
    fn sorted_helpers() {
        let mut v = vec![1, 3, 5];
        assert!(sorted_insert(&mut v, 4));
        assert!(!sorted_insert(&mut v, 4));
        assert_eq!(v, vec![1, 3, 4, 5]);
        assert!(sorted_remove(&mut v, 3));
        assert!(!sorted_remove(&mut v, 3));
        assert_eq!(intersect_sorted(&[1, 2, 3], &[2, 3, 4]), vec![2, 3]);
        assert_eq!(intersect_sorted(&[], &[1]), Vec::<u32>::new());
    }

    #[test]
    fn empty_virtual_nodes_dropped_on_conversion() {
        let mut w = WorkGraph::from_condensed(&two_pubs(), true);
        w.ov[1].clear();
        let g = w.into_condensed();
        assert_eq!(g.num_virtual(), 1);
    }
}
