//! Criterion benches for the Fig. 11 kernels (Degree / BFS / PageRank) per
//! representation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use graphgen_algo::{bfs, degrees, pagerank, PageRankConfig};
use graphgen_bench::RepSet;
use graphgen_datagen::{synthetic_condensed, CondensedGenConfig};
use graphgen_graph::RealId;

fn bench_algorithms(c: &mut Criterion) {
    let set = RepSet::build(
        "algos",
        synthetic_condensed(CondensedGenConfig {
            n_real: 1_500,
            n_virtual: 3_000,
            mean_size: 7.0,
            sd_size: 3.0,
            seed: 21,
        }),
    );
    let pr_cfg = PageRankConfig {
        damping: 0.85,
        iterations: 5,
        threads: 2,
    };
    let mut group = c.benchmark_group("kernels");
    group.sample_size(10);
    macro_rules! rep_benches {
        ($label:expr, $g:expr) => {
            group.bench_function(BenchmarkId::new("degree", $label), |b| {
                b.iter(|| degrees($g, 2))
            });
            group.bench_function(BenchmarkId::new("bfs", $label), |b| {
                b.iter(|| bfs($g, RealId(0)))
            });
            group.bench_function(BenchmarkId::new("pagerank", $label), |b| {
                b.iter(|| pagerank($g, pr_cfg))
            });
        };
    }
    rep_benches!("EXP", &set.exp);
    rep_benches!("C-DUP", &set.cdup);
    rep_benches!("DEDUP-1", &set.dedup1);
    rep_benches!("BITMAP-2", &set.bitmap2);
    if let Some(d2) = &set.dedup2 {
        rep_benches!("DEDUP-2", d2);
    }
    group.finish();
}

criterion_group!(benches, bench_algorithms);
criterion_main!(benches);
