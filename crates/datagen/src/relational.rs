//! Schema-faithful relational instances (Fig. 15 substitutes).
//!
//! Group-membership tables (AuthorPub, cast_info, LineItem, TookCourse) are
//! generated with a Zipf-like popularity skew over the entity side so that
//! co-occurrence graphs exhibit the overlapping-clique structure real
//! datasets show, and with group sizes drawn around the paper's reported
//! averages.

use graphgen_common::SplitMix64;
use graphgen_reldb::{Column, Database, Schema, Table, Value};

/// Draw a group size around `mean` (geometric-ish, at least 1).
fn group_size(rng: &mut SplitMix64, mean: f64) -> usize {
    // Exponential with the given mean, rounded, clamped to >= 1.
    let u = rng.next_f64().max(1e-12);
    ((-u.ln() * mean).round() as usize).max(1)
}

/// Zipf-ish entity sampler: entity popularity ∝ 1/(rank+1)^s approximated
/// by inverse-CDF sampling over a precomputed cumulative table.
struct Zipf {
    cumulative: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for i in 0..n {
            total += 1.0 / ((i + 1) as f64).powf(s);
            cumulative.push(total);
        }
        for c in &mut cumulative {
            *c /= total;
        }
        Self { cumulative }
    }

    fn sample(&self, rng: &mut SplitMix64) -> usize {
        let u = rng.next_f64();
        self.cumulative
            .partition_point(|&c| c < u)
            .min(self.cumulative.len() - 1)
    }
}

/// DBLP-shaped dataset parameters.
#[derive(Debug, Clone, Copy)]
pub struct DblpConfig {
    /// Number of authors.
    pub authors: usize,
    /// Number of publications.
    pub publications: usize,
    /// Mean authors per publication (the paper reports ~2 for DBLP).
    pub avg_authors_per_pub: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for DblpConfig {
    fn default() -> Self {
        Self {
            authors: 5_000,
            publications: 9_000,
            avg_authors_per_pub: 2.0,
            seed: 1,
        }
    }
}

/// Generate `Author(id, name)` + `AuthorPub(aid, pid)`.
pub fn dblp_like(cfg: DblpConfig) -> Database {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    author.reserve(cfg.authors);
    for a in 0..cfg.authors {
        author
            .push_row(vec![
                Value::int(a as i64),
                Value::str(format!("author_{a}")),
            ])
            .expect("schema");
    }
    let zipf = Zipf::new(cfg.authors, 0.8);
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for p in 0..cfg.publications {
        let k = group_size(&mut rng, cfg.avg_authors_per_pub).min(cfg.authors);
        let mut members = Vec::with_capacity(k);
        while members.len() < k {
            let a = zipf.sample(&mut rng);
            if !members.contains(&a) {
                members.push(a);
            }
        }
        for a in members {
            ap.push_row(vec![Value::int(a as i64), Value::int(p as i64)])
                .expect("schema");
        }
    }
    let mut db = Database::new();
    db.register("Author", author).expect("fresh db");
    db.register("AuthorPub", ap).expect("fresh db");
    db
}

/// The co-authors extraction query for [`dblp_like`] databases (\[Q1\]).
pub const DBLP_COAUTHORS: &str = "Nodes(ID, Name) :- Author(ID, Name).\n\
     Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).";

/// IMDB-shaped dataset parameters.
#[derive(Debug, Clone, Copy)]
pub struct ImdbConfig {
    /// Number of actors.
    pub actors: usize,
    /// Number of movies.
    pub movies: usize,
    /// Mean cast size (the paper reports ~10 for IMDB).
    pub avg_cast: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for ImdbConfig {
    fn default() -> Self {
        Self {
            actors: 4_000,
            movies: 900,
            avg_cast: 10.0,
            seed: 2,
        }
    }
}

/// Generate `name(id, name)` + `cast_info(person_id, movie_id)`.
pub fn imdb_like(cfg: ImdbConfig) -> Database {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut name = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 0..cfg.actors {
        name.push_row(vec![Value::int(a as i64), Value::str(format!("actor_{a}"))])
            .expect("schema");
    }
    let zipf = Zipf::new(cfg.actors, 0.9);
    let mut cast = Table::new(Schema::new(vec![
        Column::int("person_id"),
        Column::int("movie_id"),
    ]));
    for m in 0..cfg.movies {
        let k = group_size(&mut rng, cfg.avg_cast).min(cfg.actors);
        let mut members = Vec::with_capacity(k);
        while members.len() < k {
            let a = zipf.sample(&mut rng);
            if !members.contains(&a) {
                members.push(a);
            }
        }
        for a in members {
            cast.push_row(vec![Value::int(a as i64), Value::int(m as i64)])
                .expect("schema");
        }
    }
    let mut db = Database::new();
    db.register("name", name).expect("fresh db");
    db.register("cast_info", cast).expect("fresh db");
    db
}

/// The co-actors extraction query for [`imdb_like`] databases.
pub const IMDB_COACTORS: &str = "Nodes(ID, Name) :- name(ID, Name).\n\
     Edges(ID1, ID2) :- cast_info(ID1, M), cast_info(ID2, M).";

/// TPCH-shaped dataset parameters.
#[derive(Debug, Clone, Copy)]
pub struct TpchConfig {
    /// Customers.
    pub customers: usize,
    /// Orders (each owned by a random customer).
    pub orders: usize,
    /// Distinct parts.
    pub parts: usize,
    /// Mean line items per order.
    pub avg_lineitems: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TpchConfig {
    fn default() -> Self {
        Self {
            customers: 1_500,
            orders: 4_000,
            parts: 120,
            avg_lineitems: 3.0,
            seed: 3,
        }
    }
}

/// Generate `Customer` + `Orders` + `LineItem`. Few distinct parts relative
/// to order volume reproduces the paper's TPCH observation: a small input
/// hiding an extremely dense co-purchase graph.
pub fn tpch_like(cfg: TpchConfig) -> Database {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut customer = Table::new(Schema::new(vec![
        Column::int("custkey"),
        Column::str("name"),
    ]));
    for c in 0..cfg.customers {
        customer
            .push_row(vec![Value::int(c as i64), Value::str(format!("cust_{c}"))])
            .expect("schema");
    }
    let mut orders = Table::new(Schema::new(vec![
        Column::int("orderkey"),
        Column::int("custkey"),
    ]));
    for o in 0..cfg.orders {
        let c = rng.next_below(cfg.customers as u64) as i64;
        orders
            .push_row(vec![Value::int(o as i64), Value::int(c)])
            .expect("schema");
    }
    let zipf = Zipf::new(cfg.parts, 0.7);
    let mut lineitem = Table::new(Schema::new(vec![
        Column::int("orderkey"),
        Column::int("partkey"),
    ]));
    for o in 0..cfg.orders {
        let k = group_size(&mut rng, cfg.avg_lineitems).min(cfg.parts);
        for _ in 0..k {
            let p = zipf.sample(&mut rng) as i64;
            lineitem
                .push_row(vec![Value::int(o as i64), Value::int(p)])
                .expect("schema");
        }
    }
    let mut db = Database::new();
    db.register("Customer", customer).expect("fresh db");
    db.register("Orders", orders).expect("fresh db");
    db.register("LineItem", lineitem).expect("fresh db");
    db
}

/// The co-purchase extraction query for [`tpch_like`] databases (\[Q2\]).
pub const TPCH_COPURCHASE: &str = "Nodes(ID, Name) :- Customer(ID, Name).\n\
     Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK), \
                        Orders(OK2, ID2), LineItem(OK2, PK).";

/// UNIV-shaped dataset parameters (db-book.com sample substitute).
#[derive(Debug, Clone, Copy)]
pub struct UnivConfig {
    /// Students.
    pub students: usize,
    /// Instructors.
    pub instructors: usize,
    /// Courses.
    pub courses: usize,
    /// Mean courses per student.
    pub avg_courses_per_student: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for UnivConfig {
    fn default() -> Self {
        Self {
            students: 2_000,
            instructors: 50,
            courses: 100,
            avg_courses_per_student: 4.0,
            seed: 4,
        }
    }
}

/// Generate `Student` + `Instructor` + `TookCourse` + `TaughtCourse`.
pub fn univ(cfg: UnivConfig) -> Database {
    let mut rng = SplitMix64::new(cfg.seed);
    let mut student = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for s in 0..cfg.students {
        student
            .push_row(vec![
                Value::int(s as i64),
                Value::str(format!("student_{s}")),
            ])
            .expect("schema");
    }
    let mut instructor = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for i in 0..cfg.instructors {
        // Instructor ids live above the student range so heterogeneous
        // graphs don't collide.
        instructor
            .push_row(vec![
                Value::int((cfg.students + i) as i64),
                Value::str(format!("instructor_{i}")),
            ])
            .expect("schema");
    }
    let mut took = Table::new(Schema::new(vec![Column::int("sid"), Column::int("cid")]));
    for s in 0..cfg.students {
        let k = group_size(&mut rng, cfg.avg_courses_per_student).min(cfg.courses);
        let mut picked = Vec::with_capacity(k);
        while picked.len() < k {
            let c = rng.next_below(cfg.courses as u64) as i64;
            if !picked.contains(&c) {
                picked.push(c);
            }
        }
        for c in picked {
            took.push_row(vec![Value::int(s as i64), Value::int(c)])
                .expect("schema");
        }
    }
    let mut taught = Table::new(Schema::new(vec![Column::int("iid"), Column::int("cid")]));
    for c in 0..cfg.courses {
        let i = (cfg.students + rng.next_below(cfg.instructors as u64) as usize) as i64;
        taught
            .push_row(vec![Value::int(i), Value::int(c as i64)])
            .expect("schema");
    }
    let mut db = Database::new();
    db.register("Student", student).expect("fresh db");
    db.register("Instructor", instructor).expect("fresh db");
    db.register("TookCourse", took).expect("fresh db");
    db.register("TaughtCourse", taught).expect("fresh db");
    db
}

/// Co-enrollment query (Table 1's UNIV row).
pub const UNIV_COENROLLMENT: &str = "Nodes(ID, Name) :- Student(ID, Name).\n\
     Edges(ID1, ID2) :- TookCourse(ID1, C), TookCourse(ID2, C).";

/// Instructor→student bipartite query (\[Q3\]).
pub const UNIV_BIPARTITE: &str = "Nodes(ID, Name) :- Instructor(ID, Name).\n\
     Nodes(ID, Name) :- Student(ID, Name).\n\
     Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dblp_shape() {
        let db = dblp_like(DblpConfig {
            authors: 100,
            publications: 200,
            avg_authors_per_pub: 2.0,
            seed: 7,
        });
        assert_eq!(db.table("Author").unwrap().num_rows(), 100);
        let ap = db.table("AuthorPub").unwrap();
        let avg = ap.num_rows() as f64 / 200.0;
        assert!((1.0..4.0).contains(&avg), "avg authors/pub = {avg}");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = dblp_like(DblpConfig::default());
        let b = dblp_like(DblpConfig::default());
        assert_eq!(
            a.table("AuthorPub").unwrap().num_rows(),
            b.table("AuthorPub").unwrap().num_rows()
        );
    }

    #[test]
    fn imdb_has_bigger_groups_than_dblp() {
        let db = imdb_like(ImdbConfig {
            actors: 500,
            movies: 100,
            avg_cast: 10.0,
            seed: 5,
        });
        let avg = db.table("cast_info").unwrap().num_rows() as f64 / 100.0;
        assert!(avg > 5.0, "avg cast = {avg}");
    }

    #[test]
    fn tpch_tables_consistent() {
        let db = tpch_like(TpchConfig::default());
        assert_eq!(db.table("Orders").unwrap().num_rows(), 4_000);
        let li = db.table("LineItem").unwrap();
        // partkey domain is small -> the co-purchase graph will be dense
        assert!(li.distinct_count(1) <= 120);
    }

    #[test]
    fn univ_ids_disjoint() {
        let db = univ(UnivConfig::default());
        let students = db.table("Student").unwrap();
        let instructors = db.table("Instructor").unwrap();
        let max_student = students
            .column(0)
            .iter()
            .filter_map(|v| v.as_int())
            .max()
            .unwrap();
        let min_instructor = instructors
            .column(0)
            .iter()
            .filter_map(|v| v.as_int())
            .min()
            .unwrap();
        assert!(min_instructor > max_student);
    }

    #[test]
    fn queries_compile() {
        for q in [
            DBLP_COAUTHORS,
            IMDB_COACTORS,
            TPCH_COPURCHASE,
            UNIV_COENROLLMENT,
            UNIV_BIPARTITE,
        ] {
            graphgen_dsl::compile(q).unwrap();
        }
    }
}
