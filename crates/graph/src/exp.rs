//! EXP: the fully expanded graph (§4.3).
//!
//! All virtual nodes are materialized away: every node stores its direct
//! in/out adjacency (the paper's CSR-variant with two mutable ArrayLists per
//! node). Iteration is a plain scan — the performance baseline every other
//! representation is compared against — at the cost of a much larger
//! footprint (Table 1's space explosion).

use crate::api::{GraphRep, RepKind};
use crate::ids::RealId;

/// Fully expanded directed graph with lazy vertex deletion.
#[derive(Debug, Clone, Default)]
pub struct ExpandedGraph {
    pub(crate) out: Vec<Vec<u32>>, // sorted
    pub(crate) inc: Vec<Vec<u32>>, // sorted (in-edges; the paper stores both lists)
    pub(crate) alive: Vec<bool>,
    pub(crate) n_alive: usize,
}

impl ExpandedGraph {
    /// An empty graph with `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            out: vec![Vec::new(); n],
            inc: vec![Vec::new(); n],
            alive: vec![true; n],
            n_alive: n,
        }
    }

    /// Build from a directed edge list over `n` vertices. Self-loops and
    /// duplicates are dropped.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (u32, u32)>) -> Self {
        let mut g = Self::new(n);
        for (u, v) in edges {
            if u != v {
                g.out[u as usize].push(v);
                g.inc[v as usize].push(u);
            }
        }
        for list in g.out.iter_mut().chain(g.inc.iter_mut()) {
            list.sort_unstable();
            list.dedup();
            list.shrink_to_fit();
        }
        g
    }

    /// Expand any other representation into an [`ExpandedGraph`].
    pub fn from_rep<G: GraphRep + ?Sized>(rep: &G) -> Self {
        let n = rep.num_real_slots();
        let mut g = Self::new(n);
        for slot in 0..n as u32 {
            if !rep.is_alive(RealId(slot)) {
                g.alive[slot as usize] = false;
                g.n_alive -= 1;
            }
        }
        for u in rep.vertices() {
            rep.for_each_neighbor(u, &mut |v| {
                g.out[u.0 as usize].push(v.0);
                g.inc[v.0 as usize].push(u.0);
            });
        }
        for list in g.out.iter_mut().chain(g.inc.iter_mut()) {
            list.sort_unstable();
            list.dedup();
            list.shrink_to_fit();
        }
        g
    }

    /// In-neighbors of `u` (live only).
    pub fn in_neighbors(&self, u: RealId) -> impl Iterator<Item = RealId> + '_ {
        self.inc[u.0 as usize]
            .iter()
            .copied()
            .filter(move |&w| self.alive[w as usize])
            .map(RealId)
    }

    /// Raw out-adjacency slice (may contain lazily deleted targets).
    pub fn raw_out(&self, u: RealId) -> &[u32] {
        &self.out[u.0 as usize]
    }
}

impl GraphRep for ExpandedGraph {
    fn kind(&self) -> RepKind {
        RepKind::Exp
    }

    fn num_real_slots(&self) -> usize {
        self.out.len()
    }

    fn is_alive(&self, u: RealId) -> bool {
        self.alive[u.0 as usize]
    }

    fn num_vertices(&self) -> usize {
        self.n_alive
    }

    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        for &v in &self.out[u.0 as usize] {
            if self.alive[v as usize] {
                f(RealId(v));
            }
        }
    }

    fn degree(&self, u: RealId) -> usize {
        // Fast path: if nothing is deleted the list length is the degree.
        if self.n_alive == self.alive.len() {
            self.out[u.0 as usize].len()
        } else {
            self.out[u.0 as usize]
                .iter()
                .filter(|&&v| self.alive[v as usize])
                .count()
        }
    }

    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        self.alive[u.0 as usize]
            && self.alive[v.0 as usize]
            && self.out[u.0 as usize].binary_search(&v.0).is_ok()
    }

    fn add_vertex(&mut self) -> RealId {
        self.out.push(Vec::new());
        self.inc.push(Vec::new());
        self.alive.push(true);
        self.n_alive += 1;
        RealId(self.out.len() as u32 - 1)
    }

    fn delete_vertex(&mut self, u: RealId) {
        if std::mem::replace(&mut self.alive[u.0 as usize], false) {
            self.n_alive -= 1;
        }
    }

    fn revive_vertex(&mut self, u: RealId) {
        if !std::mem::replace(&mut self.alive[u.0 as usize], true) {
            self.n_alive += 1;
        }
    }

    fn compact(&mut self) {
        let alive = &self.alive;
        for (i, list) in self.out.iter_mut().enumerate() {
            if !alive[i] {
                list.clear();
                list.shrink_to_fit();
            } else {
                list.retain(|&v| alive[v as usize]);
            }
        }
        for (i, list) in self.inc.iter_mut().enumerate() {
            if !alive[i] {
                list.clear();
                list.shrink_to_fit();
            } else {
                list.retain(|&v| alive[v as usize]);
            }
        }
    }

    fn add_edge(&mut self, u: RealId, v: RealId) {
        if u == v {
            return;
        }
        if let Err(pos) = self.out[u.0 as usize].binary_search(&v.0) {
            self.out[u.0 as usize].insert(pos, v.0);
            if let Err(ipos) = self.inc[v.0 as usize].binary_search(&u.0) {
                self.inc[v.0 as usize].insert(ipos, u.0);
            }
        }
    }

    fn delete_edge(&mut self, u: RealId, v: RealId) {
        if let Ok(pos) = self.out[u.0 as usize].binary_search(&v.0) {
            self.out[u.0 as usize].remove(pos);
        }
        if let Ok(pos) = self.inc[v.0 as usize].binary_search(&u.0) {
            self.inc[v.0 as usize].remove(pos);
        }
    }

    fn stored_edge_count(&self) -> u64 {
        self.out
            .iter()
            .enumerate()
            .filter(|(i, _)| self.alive[*i])
            .map(|(_, l)| l.len() as u64)
            .sum()
    }

    fn stored_node_count(&self) -> usize {
        self.n_alive
    }

    fn heap_bytes(&self) -> usize {
        let lists = |ls: &Vec<Vec<u32>>| {
            ls.capacity() * std::mem::size_of::<Vec<u32>>()
                + ls.iter().map(|l| l.capacity() * 4).sum::<usize>()
        };
        lists(&self.out) + lists(&self.inc) + self.alive.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> ExpandedGraph {
        ExpandedGraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2), (2, 0)])
    }

    #[test]
    fn from_edges_dedups_and_drops_self_loops() {
        let g = ExpandedGraph::from_edges(2, [(0, 1), (0, 1), (0, 0)]);
        assert_eq!(g.expanded_edge_count(), 1);
        assert_eq!(g.neighbors(RealId(0)), vec![RealId(1)]);
    }

    #[test]
    fn degree_and_exists() {
        let g = triangle();
        assert_eq!(g.degree(RealId(1)), 2);
        assert!(g.exists_edge(RealId(0), RealId(2)));
        assert!(!g.exists_edge(RealId(0), RealId(0)));
    }

    #[test]
    fn add_delete_edge() {
        let mut g = ExpandedGraph::new(3);
        g.add_edge(RealId(0), RealId(1));
        g.add_edge(RealId(0), RealId(1)); // idempotent
        assert_eq!(g.stored_edge_count(), 1);
        assert_eq!(g.in_neighbors(RealId(1)).count(), 1);
        g.delete_edge(RealId(0), RealId(1));
        assert!(!g.exists_edge(RealId(0), RealId(1)));
        assert_eq!(g.in_neighbors(RealId(1)).count(), 0);
    }

    #[test]
    fn lazy_delete_then_compact() {
        let mut g = triangle();
        g.delete_vertex(RealId(2));
        assert_eq!(g.num_vertices(), 2);
        assert_eq!(g.neighbors(RealId(0)), vec![RealId(1)]);
        assert_eq!(g.degree(RealId(0)), 1);
        g.compact();
        assert_eq!(g.raw_out(RealId(0)), &[1]);
        assert_eq!(g.stored_edge_count(), 2);
    }

    #[test]
    fn from_rep_roundtrip() {
        let g = triangle();
        let g2 = ExpandedGraph::from_rep(&g);
        assert_eq!(
            crate::expand_to_edge_list(&g),
            crate::expand_to_edge_list(&g2)
        );
    }

    #[test]
    fn vertices_skips_dead() {
        let mut g = triangle();
        g.delete_vertex(RealId(1));
        let live: Vec<u32> = g.vertices().map(|r| r.0).collect();
        assert_eq!(live, vec![0, 2]);
    }
}
