//! Connected components via min-label propagation (Table 4's third kernel).
//!
//! Duplicate-insensitive, so it runs correctly on raw C-DUP — the property
//! §6.4 exploits for the Giraph speedup. Treats the graph as undirected
//! (labels flow along out-edges both ways via repeated supersteps on
//! symmetric graphs; for truly directed graphs this computes weakly
//! connected components only if edges are symmetric).

use crate::vertex_centric::{run_vertex_centric, VertexCentricConfig, VertexProgram};
use graphgen_graph::{GraphRep, RealId};

struct MinLabel;

impl<G: GraphRep + Sync> VertexProgram<G> for MinLabel {
    type State = u32;

    fn init(&self, _g: &G, u: RealId) -> u32 {
        u.0
    }

    fn compute(&self, g: &G, u: RealId, prev: &[u32], _step: usize) -> (u32, bool) {
        let mut best = prev[u.0 as usize];
        g.for_each_neighbor(u, &mut |v| best = best.min(prev[v.0 as usize]));
        (best, best == prev[u.0 as usize])
    }
}

/// Component label per vertex (the minimum vertex id in the component).
/// Dead vertices keep their own id.
pub fn connected_components<G: GraphRep + Sync>(g: &G, threads: usize) -> Vec<u32> {
    let (labels, _) = run_vertex_centric(
        g,
        &MinLabel,
        VertexCentricConfig {
            threads,
            max_supersteps: 100_000,
        },
    );
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{CondensedBuilder, ExpandedGraph};

    #[test]
    fn two_components() {
        let g = ExpandedGraph::from_edges(
            6,
            [
                (0, 1),
                (1, 0),
                (1, 2),
                (2, 1),
                (3, 4),
                (4, 3),
                (4, 5),
                (5, 4),
            ],
        );
        let labels = connected_components(&g, 2);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 3]);
    }

    #[test]
    fn runs_directly_on_cdup() {
        let mut b = CondensedBuilder::new(6);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        b.clique(&[RealId(1), RealId(2)]); // duplicates are harmless
        b.clique(&[RealId(3), RealId(4)]);
        let g = b.build();
        let labels = connected_components(&g, 1);
        assert_eq!(labels, vec![0, 0, 0, 3, 3, 5]);
    }

    #[test]
    fn isolated_vertices_label_themselves() {
        let g = ExpandedGraph::new(3);
        assert_eq!(connected_components(&g, 1), vec![0, 1, 2]);
    }
}
