//! The structural-sharing (aliasing) oracle: publish is copy-on-write over
//! `Arc`-shared adjacency chunks, so a reader's pinned version must be
//! **immune** to every later publish, byte-for-byte.
//!
//! A seeded random mutation stream drives a `GraphService` writer. After
//! every publish the test asserts, for **every** previously pinned
//! `Arc<GraphSnapshot>`:
//!
//! * its `canonical_bytes` are identical to what they were at pin time —
//!   a chunk the writer mutated in place (instead of copy-on-write) would
//!   tear exactly this;
//! * the newly published version equals a from-scratch re-extraction on a
//!   shadow database replaying the same mutations — CoW must not *drop*
//!   writes either.
//!
//! The stream mixes edge-table and node-table mutations so both the
//! chunk-level CoW (adjacency) and the `Arc`-level CoW (id map, property
//! store) are exercised, and it verifies consecutive versions really do
//! share chunks (the delta-bound publish is sharing, not copying).

use graphgen_common::SplitMix64;
use graphgen_graph::GraphRep;
use graphgen_reldb::{Column, Database, Schema, Table, Value};
use graphgen_serve::{GraphService, GraphSnapshot, TableMutation};
use std::sync::Arc;

const Q: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                 Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

/// Enough authors that the condensed graph spans several adjacency chunks
/// (16 lists each) — a publish that copied everything would still pass the
/// byte checks, so the sharing assertion below needs multiple chunks to
/// bite.
const AUTHORS: i64 = 300;
const PUBS: i64 = 90;

fn seed_db(rng: &mut SplitMix64) -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 1..=AUTHORS {
        author
            .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for _ in 0..500 {
        ap.push_row(vec![
            Value::int(rng.next_below(AUTHORS as u64) as i64 + 1),
            Value::int(rng.next_below(PUBS as u64) as i64 + 1),
        ])
        .unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();
    db
}

/// One random mutation batch: mostly edge-table churn, occasionally a
/// node-table insert (new author id past the seeded range).
fn random_mutation(rng: &mut SplitMix64, round: u64) -> Vec<TableMutation> {
    if rng.next_below(6) == 0 {
        return vec![TableMutation::new(
            "Author",
            vec![vec![
                Value::int(AUTHORS + round as i64 + 1),
                Value::str(format!("new{round}")),
            ]],
            vec![],
        )];
    }
    let mut inserts = Vec::new();
    let mut deletes = Vec::new();
    for _ in 0..rng.next_below(4) + 1 {
        let row = vec![
            Value::int(rng.next_below(AUTHORS as u64) as i64 + 1),
            Value::int(rng.next_below(PUBS as u64) as i64 + 1),
        ];
        if rng.next_below(3) == 0 {
            deletes.push(row);
        } else {
            inserts.push(row);
        }
    }
    vec![TableMutation::new("AuthorPub", inserts, deletes)]
}

fn replay(db: &mut Database, mutations: &[TableMutation]) {
    for m in mutations {
        if !m.inserts.is_empty() {
            db.insert_rows(&m.table, m.inserts.clone()).unwrap();
        }
        if !m.deletes.is_empty() {
            db.delete_rows(&m.table, &m.deletes).unwrap();
        }
    }
}

/// Chunks the two snapshots' condensed adjacency stores share (both real
/// and virtual sides).
fn shared_chunks(a: &GraphSnapshot, b: &GraphSnapshot) -> usize {
    let (Some(ga), Some(gb)) = (
        a.handle().graph().as_condensed(),
        b.handle().graph().as_condensed(),
    ) else {
        panic!("serving graphs are C-DUP");
    };
    ga.real_out_chunks()
        .shared_chunks_with(gb.real_out_chunks())
        + ga.virt_out_chunks()
            .shared_chunks_with(gb.virt_out_chunks())
}

#[test]
fn pinned_versions_are_immune_to_chunk_cow() {
    let mut rng = SplitMix64::new(0x5EED_5EED);
    let mut shadow_rng = SplitMix64::new(0x5EED_5EED);
    let service = GraphService::in_memory(seed_db(&mut rng));
    let mut shadow_db = seed_db(&mut shadow_rng);
    service.extract("g", Q).unwrap();

    // (pinned snapshot, canonical bytes at pin time), every version.
    let v1 = service.snapshot("g").unwrap();
    let v1_bytes = v1.canonical_bytes();
    let mut pinned: Vec<(Arc<GraphSnapshot>, Vec<u8>)> = vec![(v1, v1_bytes)];

    let mut publishes = 0u64;
    let mut round = 0u64;
    let mut sharing_observed = 0usize;
    while publishes < 40 {
        round += 1;
        assert!(round < 40 * 50, "stream failed to publish enough versions");
        let mutations = random_mutation(&mut rng, round);
        let shadow_mutations = random_mutation(&mut shadow_rng, round);
        let outcome = service.apply(&mutations).unwrap();
        replay(&mut shadow_db, &shadow_mutations);
        if outcome.graphs.is_empty() {
            continue;
        }
        publishes += 1;

        // 1. Every previously pinned version is byte-identical to what it
        //    was when pinned: old chunks must never be written in place.
        for (snap, bytes_at_pin) in &pinned {
            assert_eq!(
                &snap.canonical_bytes(),
                bytes_at_pin,
                "pinned version {} mutated by a later publish (CoW violated)",
                snap.version()
            );
        }

        // 2. The new version equals a from-scratch re-extraction on the
        //    identically mutated shadow database.
        let new = service.snapshot("g").unwrap();
        let fresh = graphgen_core::GraphGen::new(&shadow_db)
            .extract(Q)
            .unwrap()
            .canonical_bytes();
        let new_bytes = new.canonical_bytes();
        assert_eq!(
            new_bytes,
            fresh,
            "published version {} diverges from re-extraction",
            new.version()
        );

        // 3. Consecutive versions structurally share adjacency chunks —
        //    publish is pointer bumps plus the delta's chunks, not a copy.
        let prev = &pinned.last().unwrap().0;
        sharing_observed += shared_chunks(prev, &new);
        pinned.push((new, new_bytes));
    }
    assert!(
        sharing_observed > 0,
        "no adjacency chunk was ever shared between consecutive versions \
         — publish is copying, not structural sharing"
    );
    // Sanity: the stream's final graph is still a live, readable handle.
    let last = &pinned.last().unwrap().0;
    assert!(last.handle().num_vertices() > 0);
}

/// The same contract across a crash: pins taken *after* recovery are
/// immune to post-recovery publishes too (recovered handles must come back
/// with the CoW discipline intact, not as aliases of the writer's state).
#[test]
fn recovered_handles_keep_the_cow_discipline() {
    use graphgen_serve::testutil::TempDir;
    use graphgen_serve::ServiceConfig;
    let dir = TempDir::new("sharing-recover");
    let mut rng = SplitMix64::new(0xC0C0);
    let mut shadow_rng = SplitMix64::new(0xC0C0);
    let mut shadow_db = seed_db(&mut shadow_rng);
    {
        let service =
            GraphService::create(dir.path(), seed_db(&mut rng), ServiceConfig::default()).unwrap();
        service.extract("g", Q).unwrap();
        for round in 0..10 {
            let m = random_mutation(&mut rng, round);
            let s = random_mutation(&mut shadow_rng, round);
            service.apply(&m).unwrap();
            replay(&mut shadow_db, &s);
        }
        // Abrupt drop: recovery must replay the WAL onto the snapshot.
    }
    let service = GraphService::open(dir.path()).unwrap();
    let pin = service.snapshot("g").unwrap();
    let pin_bytes = pin.canonical_bytes();
    for round in 10..20 {
        let m = random_mutation(&mut rng, round);
        let s = random_mutation(&mut shadow_rng, round);
        service.apply(&m).unwrap();
        replay(&mut shadow_db, &s);
        assert_eq!(
            pin.canonical_bytes(),
            pin_bytes,
            "post-recovery pin mutated by a later publish"
        );
    }
    let fresh = graphgen_core::GraphGen::new(&shadow_db)
        .extract(Q)
        .unwrap()
        .canonical_bytes();
    assert_eq!(service.snapshot("g").unwrap().canonical_bytes(), fresh);
}
