//! End-to-end integration: DSL text → relational extraction → condensed
//! representations → deduplication → algorithms → serialization, driving
//! only the public facade.

use graphgen::common::VertexOrdering;
use graphgen::core::{serialize, AnyGraph, GraphGen, GraphGenConfig};
use graphgen::datagen::{
    dblp_like, relational::DBLP_COAUTHORS, relational::TPCH_COPURCHASE, tpch_like, DblpConfig,
    TpchConfig,
};
use graphgen::dedup::Dedup1Algorithm;
use graphgen::graph::{expand_to_edge_list, GraphRep};

fn condensed_config() -> GraphGenConfig {
    GraphGenConfig {
        large_output_factor: 0.0,
        preprocess: false,
        auto_expand_threshold: None,
        threads: 2,
    }
}

#[test]
fn dblp_pipeline_end_to_end() {
    let db = dblp_like(DblpConfig {
        authors: 400,
        publications: 700,
        avg_authors_per_pub: 2.0,
        seed: 11,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let extracted = gg.extract(DBLP_COAUTHORS).expect("extract");
    let truth = expand_to_edge_list(&extracted.graph);

    // The graph must be symmetric (co-occurrence).
    for &(u, v) in &truth {
        assert!(truth.binary_search(&(v, u)).is_ok(), "asymmetric pair ({u},{v})");
    }

    // Every representation conversion works through the facade.
    let d1 = extracted
        .graph
        .to_dedup1(Dedup1Algorithm::NaiveVnf, VertexOrdering::Random, 5)
        .expect("single-layer source");
    assert_eq!(expand_to_edge_list(&d1), truth);
    let d2 = extracted
        .graph
        .to_dedup2(VertexOrdering::Descending, 5)
        .expect("symmetric source");
    assert_eq!(expand_to_edge_list(&d2), truth);
    let b1 = extracted.graph.to_bitmap1().expect("condensed source");
    assert_eq!(expand_to_edge_list(&b1), truth);

    // Serialization round-trips the edge count.
    let mut buf = Vec::new();
    serialize::write_edge_list(&extracted, &mut buf).unwrap();
    let lines = buf.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
    assert_eq!(lines as u64, extracted.graph.expanded_edge_count());

    let mut json = Vec::new();
    serialize::write_json(&extracted, &mut json).unwrap();
    let text = String::from_utf8(json).unwrap();
    assert!(text.contains("\"nodes\""));
    assert!(text.contains("\"Name\""));
}

#[test]
fn tpch_multilayer_pipeline() {
    let db = tpch_like(TpchConfig {
        customers: 300,
        orders: 900,
        parts: 40,
        avg_lineitems: 2.5,
        seed: 12,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let extracted = gg.extract(TPCH_COPURCHASE).expect("extract");
    let AnyGraph::CDup(core) = &extracted.graph else {
        panic!("expected condensed result")
    };
    assert!(!core.is_single_layer(), "forced plan must be multi-layer");

    // Flatten, then deduplicate the flat version; semantics preserved.
    let flat = graphgen::dedup::flatten_to_single_layer(core);
    assert_eq!(expand_to_edge_list(&flat), expand_to_edge_list(core));
    let d1 = Dedup1Algorithm::GreedyVnf.run(&flat, VertexOrdering::Random, 3);
    assert_eq!(expand_to_edge_list(&d1), expand_to_edge_list(core));

    // BITMAP-2 works on the multi-layer structure directly.
    let (bmp, _) = graphgen::dedup::bitmap2(core.clone(), 2);
    assert_eq!(expand_to_edge_list(&bmp), expand_to_edge_list(core));

    // The report exposes the plan: middle join postponed, outer joins in DB.
    let joins = &extracted.report.plans[0].joins;
    assert_eq!(joins.len(), 3);
}

#[test]
fn representation_choice_policy() {
    // Sparse graph: auto-expansion should trigger with default config.
    let db = dblp_like(DblpConfig {
        authors: 200,
        publications: 100,
        avg_authors_per_pub: 1.2,
        seed: 13,
    });
    let gg = GraphGen::new(&db);
    let extracted = gg.extract(DBLP_COAUTHORS).expect("extract");
    assert!(extracted.report.auto_expanded);
    assert!(matches!(extracted.graph, AnyGraph::Exp(_)));
}

#[test]
fn error_paths_are_reported() {
    let db = dblp_like(DblpConfig {
        authors: 10,
        publications: 10,
        avg_authors_per_pub: 1.5,
        seed: 14,
    });
    let gg = GraphGen::new(&db);
    // Unknown table.
    assert!(gg
        .extract("Nodes(X) :- Missing(X).\nEdges(A,B) :- AuthorPub(A,P), AuthorPub(B,P).")
        .is_err());
    // Cyclic edges body.
    assert!(gg
        .extract(
            "Nodes(ID, N) :- Author(ID, N).\n\
             Edges(A, B) :- AuthorPub(A, B), AuthorPub(B, C), AuthorPub(C, A)."
        )
        .is_err());
    // Parse error.
    assert!(gg.extract("Nodes(").is_err());
}

#[test]
fn mutations_through_the_facade_stay_consistent() {
    let db = dblp_like(DblpConfig {
        authors: 120,
        publications: 200,
        avg_authors_per_pub: 2.0,
        seed: 15,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let mut extracted = gg.extract(DBLP_COAUTHORS).expect("extract");
    let edges = expand_to_edge_list(&extracted.graph);
    let (u, v) = edges[edges.len() / 2];
    let (u, v) = (graphgen::graph::RealId(u), graphgen::graph::RealId(v));
    assert!(extracted.graph.exists_edge(u, v));
    extracted.graph.delete_edge(u, v);
    assert!(!extracted.graph.exists_edge(u, v));
    let w = extracted.graph.add_vertex();
    extracted.graph.add_edge(w, u);
    assert!(extracted.graph.exists_edge(w, u));
    extracted.graph.delete_vertex(u);
    assert!(!extracted.graph.exists_edge(w, u));
    extracted.graph.compact();
    assert!(!extracted.graph.exists_edge(w, u));
}
