//! Integration tests for the `graphgen-check` binary: exit codes, caret
//! rendering on stdout, `--deny-warnings`, lint groups, and usage errors.

use std::path::PathBuf;
use std::process::{Command, Output};

fn fixtures() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn run(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_graphgen-check"))
        .args(args)
        .current_dir(fixtures())
        .output()
        .expect("spawn graphgen-check")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn clean_file_exits_zero() {
    let out = run(&[
        "--schema",
        "schema.ggs",
        "--deny-warnings",
        "w103_dedup2_infeasible.ggd",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("w103_dedup2_infeasible.ggd: OK"));
}

#[test]
fn error_fixture_exits_one_with_caret_output() {
    let out = run(&["--schema", "schema.ggs", "e001_unknown_relation.ggd"]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(
        s.contains("error[E001]: unknown relation `AuthorPubb`"),
        "{s}"
    );
    assert!(s.contains("--> e001_unknown_relation.ggd:2:20"), "{s}");
    assert!(s.contains("^^^^^^^^^^"), "{s}");
    assert!(s.contains("did you mean `AuthorPub`?"), "{s}");
    assert!(s.contains("1 error(s), 0 warning(s)"), "{s}");
}

#[test]
fn schema_free_checks_still_run() {
    let out = run(&["e006_cyclic_body.ggd"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(stdout(&out).contains("error[E006]"));
}

#[test]
fn warnings_pass_unless_denied() {
    let out = run(&["--schema", "schema.ggs", "w101_unsatisfiable_filter.ggd"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(stdout(&out).contains("warning[W101]"));
    let out = run(&[
        "--schema",
        "schema.ggs",
        "--deny-warnings",
        "w101_unsatisfiable_filter.ggd",
    ]);
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn lint_groups_are_opt_in() {
    let base = &["--schema", "schema.ggs", "w105_large_output_segment.ggd"];
    let out = run(base);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("OK"));
    let out = run(&[&["--lint", "plan"], &base[..]].concat());
    assert_eq!(out.status.code(), Some(0), "lints warn, not error");
    assert!(stdout(&out).contains("warning[W105]"));
    let out = run(&[&["--lint", "plan", "--deny-warnings"], &base[..]].concat());
    assert_eq!(out.status.code(), Some(1));
}

#[test]
fn multiple_files_and_quiet() {
    let out = run(&[
        "-q",
        "--schema",
        "schema.ggs",
        "w105_large_output_segment.ggd",
        "e003_arity_mismatch.ggd",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(!s.contains("OK"), "quiet suppresses OK lines: {s}");
    assert!(s.contains("error[E003]"));
}

#[test]
fn explain_renders_the_cost_engine_plan_tree() {
    let out = run(&[
        "--schema",
        "schema.ggs",
        "--explain",
        "w105_large_output_segment.ggd",
    ]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    let s = stdout(&out);
    assert!(s.contains("chain 1: AuthorPub ⋈ AuthorPub"), "{s}");
    assert!(
        s.contains("plan: cost=6000 segments=2 virtual_layers=1 plans_considered=2 fingerprint="),
        "{s}"
    );
    assert!(
        s.contains("scan AuthorPub: catalog rows=1000 est rows=1000"),
        "{s}"
    );
    assert!(
        s.contains("join AuthorPub.pid ⋈ AuthorPub.pid: d=10 |L|·|R|/d=100000 threshold=4000 [cut -> virtual-node layer]"),
        "{s}"
    );
}

#[test]
fn explain_without_statistics_says_so() {
    // No --schema at all: the engine cannot cost anything.
    let out = run(&["--explain", "w103_dedup2_infeasible.ggd"]);
    assert_eq!(out.status.code(), Some(0), "{}", stdout(&out));
    assert!(
        stdout(&out).contains("statistics unavailable"),
        "{}",
        stdout(&out)
    );
}

/// The JSON output is a machine interface: the exact key set, order, and
/// rendering below are a stability contract for CI/editor tooling.
#[test]
fn json_format_is_schema_stable() {
    let out = run(&[
        "--schema",
        "schema.ggs",
        "--format=json",
        "e001_unknown_relation.ggd",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let expected = concat!(
        "[{\"file\":\"e001_unknown_relation.ggd\",\"errors\":1,\"warnings\":0,",
        "\"diagnostics\":[{\"code\":\"E001\",\"name\":\"unknown-relation\",",
        "\"severity\":\"error\",\"line\":2,\"col\":20,\"len\":10,",
        "\"message\":\"unknown relation `AuthorPubb`\",",
        "\"help\":\"did you mean `AuthorPubb`?\",",
        "\"rendered\":\"error[E001]: unknown relation `AuthorPubb`\\n",
        "  --> e001_unknown_relation.ggd:2:20\\n   |\\n",
        " 2 | Edges(ID1, ID2) :- AuthorPubb(ID1, P), AuthorPub(ID2, P).\\n",
        "   |                    ^^^^^^^^^^\\n",
        "  = help: did you mean `AuthorPub`?\\n\"}]}]\n",
    );
    // `help` in the object vs. in `rendered` differ only by the suggested
    // name; build the expected text from the actual suggestion to keep the
    // assertion honest.
    let expected = expected.replace(
        "\"help\":\"did you mean `AuthorPubb`?\"",
        "\"help\":\"did you mean `AuthorPub`?\"",
    );
    assert_eq!(stdout(&out), expected);
}

#[test]
fn json_mode_emits_one_array_across_files_and_clean_files_are_empty() {
    let out = run(&[
        "--schema",
        "schema.ggs",
        "--format",
        "json",
        "w103_dedup2_infeasible.ggd",
        "e003_arity_mismatch.ggd",
    ]);
    assert_eq!(out.status.code(), Some(1));
    let s = stdout(&out);
    assert!(s.starts_with("[{\"file\":\"w103_dedup2_infeasible.ggd\",\"errors\":0,\"warnings\":0,\"diagnostics\":[]}"), "{s}");
    assert!(s.contains("\"code\":\"E003\""), "{s}");
    assert!(s.ends_with("]\n"), "{s}");
}

#[test]
fn explain_and_json_cannot_combine() {
    let out = run(&["--explain", "--format=json", "e001_unknown_relation.ggd"]);
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn usage_and_io_errors_exit_two() {
    let out = run(&["--bogus-flag", "x.ggd"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["no_such_file.ggd"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&[
        "--schema",
        "no_such_schema.ggs",
        "e001_unknown_relation.ggd",
    ]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--lint", "nonsense", "e001_unknown_relation.ggd"]);
    assert_eq!(out.status.code(), Some(2));
    let out = run(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    assert!(stdout(&out).contains("usage: graphgen-check"));
}
