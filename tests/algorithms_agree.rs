//! Cross-crate agreement: every algorithm must produce the same result on
//! every representation, and the Giraph-style message-passing engine must
//! agree with the shared-memory vertex-centric engine.

use graphgen::algo::{bfs, connected_components, degrees, pagerank, triangles, PageRankConfig};
use graphgen::common::VertexOrdering;
use graphgen::datagen::{synthetic_condensed, CondensedGenConfig};
use graphgen::dedup::{bitmap2, dedup2_greedy, Dedup1Algorithm};
use graphgen::giraph::{self, GiraphRep};
use graphgen::graph::{ExpandedGraph, GraphRep, RealId};

fn dataset(seed: u64) -> graphgen::graph::CondensedGraph {
    synthetic_condensed(CondensedGenConfig {
        n_real: 300,
        n_virtual: 120,
        mean_size: 6.0,
        sd_size: 3.0,
        seed,
    })
}

#[test]
fn kernels_agree_across_all_representations() {
    for seed in [1u64, 2, 3] {
        let cdup = dataset(seed);
        let exp = ExpandedGraph::from_rep(&cdup);
        let dedup1 = Dedup1Algorithm::GreedyRnf.run(&cdup, VertexOrdering::Random, seed);
        let dedup2 = dedup2_greedy(&cdup, VertexOrdering::Descending, seed);
        let (bmp, _) = bitmap2(cdup.clone(), 1);

        let ref_deg = degrees(&exp, 2);
        let ref_cc = connected_components(&exp, 2);
        let ref_pr = pagerank(
            &exp,
            PageRankConfig {
                damping: 0.85,
                iterations: 12,
                threads: 2,
            },
        );
        let ref_bfs = bfs(&exp, RealId(0));
        let ref_tri = triangles(&exp);

        macro_rules! check {
            ($label:expr, $g:expr) => {
                assert_eq!(degrees(&$g, 2), ref_deg, "{} degree (seed {seed})", $label);
                assert_eq!(
                    connected_components(&$g, 2),
                    ref_cc,
                    "{} concomp (seed {seed})",
                    $label
                );
                let pr = pagerank(
                    &$g,
                    PageRankConfig {
                        damping: 0.85,
                        iterations: 12,
                        threads: 2,
                    },
                );
                for (i, (a, b)) in pr.iter().zip(&ref_pr).enumerate() {
                    assert!(
                        (a - b).abs() < 1e-10,
                        "{} pagerank diverges at {i}: {a} vs {b}",
                        $label
                    );
                }
                assert_eq!(bfs(&$g, RealId(0)), ref_bfs, "{} bfs", $label);
                assert_eq!(triangles(&$g), ref_tri, "{} triangles", $label);
            };
        }
        check!("C-DUP", cdup);
        check!("DEDUP-1", dedup1);
        check!("DEDUP-2", dedup2);
        check!("BITMAP-2", bmp);
    }
}

#[test]
fn giraph_engine_agrees_with_shared_memory_engine() {
    let cdup = dataset(9);
    let exp = ExpandedGraph::from_rep(&cdup);
    let dedup1 = Dedup1Algorithm::GreedyVnf.run(&cdup, VertexOrdering::Random, 9);
    let (bmp, _) = bitmap2(cdup.clone(), 1);

    let ref_deg = degrees(&exp, 2);
    let (gd, _) = giraph::degree(GiraphRep::Dedup1(&dedup1));
    assert_eq!(gd, ref_deg);
    let (gb, _) = giraph::degree(GiraphRep::Bitmap(&bmp));
    assert_eq!(gb, ref_deg);

    let ref_pr = pagerank(
        &exp,
        PageRankConfig {
            damping: 0.85,
            iterations: 10,
            threads: 2,
        },
    );
    for rep in [
        GiraphRep::Exp(&exp),
        GiraphRep::Dedup1(&dedup1),
        GiraphRep::Bitmap(&bmp),
    ] {
        let (pr, stats) = giraph::pagerank(rep, 10, 0.85);
        for (i, (a, b)) in pr.iter().zip(&ref_pr).enumerate() {
            assert!(
                (a - b).abs() < 1e-9,
                "{} giraph pagerank diverges at {i}: {a} vs {b}",
                rep.label()
            );
        }
        assert!(stats.messages > 0);
    }

    let ref_cc = connected_components(&exp, 2);
    let (cc, _) = giraph::connected_components(GiraphRep::CDup(&cdup));
    assert_eq!(cc, ref_cc, "concomp on raw C-DUP must already be correct");
}

/// An identical mutation script applied to every representation: kill a
/// few hubs, prune edges, grow new vertices, then revive one victim — the
/// resulting graphs carry tombstoned slots, revived slots with restored
/// adjacency, and isolated newcomers all at once.
fn churn<G: GraphRep>(g: &mut G) -> (Vec<RealId>, Vec<RealId>) {
    let dead = vec![RealId(3), RealId(17), RealId(41)];
    for &u in &dead {
        g.delete_vertex(u);
    }
    g.delete_edge(RealId(5), RealId(9));
    g.delete_edge(RealId(9), RealId(5));
    let mut fresh = Vec::new();
    for _ in 0..3 {
        fresh.push(g.add_vertex());
    }
    // Wire the first newcomer in; leave the rest isolated.
    g.add_edge(fresh[0], RealId(7));
    g.add_edge(RealId(7), fresh[0]);
    // A delete/revive round trip must restore the hidden adjacency.
    g.revive_vertex(RealId(17));
    (vec![RealId(3), RealId(41)], fresh)
}

#[test]
fn kernels_agree_on_tombstoned_and_revived_graphs() {
    for seed in [4u64, 5] {
        let mut cdup = dataset(seed);
        let mut exp = ExpandedGraph::from_rep(&cdup);
        let mut dedup1 = Dedup1Algorithm::GreedyRnf.run(&cdup, VertexOrdering::Random, seed);
        let mut dedup2 = dedup2_greedy(&cdup, VertexOrdering::Descending, seed);
        let (mut bmp, _) = bitmap2(cdup.clone(), 1);

        let (dead, fresh) = churn(&mut exp);
        churn(&mut cdup);
        churn(&mut dedup1);
        churn(&mut dedup2);
        churn(&mut bmp);

        let ref_deg = degrees(&exp, 2);
        let ref_cc = connected_components(&exp, 2);
        let ref_tri = triangles(&exp);
        // Tombstoned slots: degree 0, component label = own id.
        for &u in &dead {
            assert!(!exp.is_alive(u));
            assert_eq!(ref_deg[u.0 as usize], 0, "dead slot {u:?} degree");
            assert_eq!(ref_cc[u.0 as usize], u.0, "dead slot {u:?} label");
        }
        // The revived slot is back with its pre-delete adjacency.
        assert!(exp.is_alive(RealId(17)));
        // Isolated newcomers: degree 0, own component.
        for &u in &fresh[1..] {
            assert_eq!(ref_deg[u.0 as usize], 0, "isolated {u:?} degree");
            assert_eq!(ref_cc[u.0 as usize], u.0, "isolated {u:?} label");
        }

        macro_rules! check {
            ($label:expr, $g:expr) => {
                assert_eq!(
                    degrees(&$g, 2),
                    ref_deg,
                    "{} degree after churn (seed {seed})",
                    $label
                );
                assert_eq!(
                    connected_components(&$g, 2),
                    ref_cc,
                    "{} concomp after churn (seed {seed})",
                    $label
                );
                assert_eq!(triangles(&$g), ref_tri, "{} triangles after churn", $label);
            };
        }
        check!("C-DUP", cdup);
        check!("DEDUP-1", dedup1);
        check!("DEDUP-2", dedup2);
        check!("BITMAP-2", bmp);
    }
}

#[test]
fn components_respect_edge_direction() {
    // A truly directed path 0→1→2: min-label flows along *out*-edges only,
    // so every vertex keeps a distinct label — the documented behavior
    // (weakly connected components require symmetric edges).
    let directed = ExpandedGraph::from_edges(3, [(0, 1), (1, 2)]);
    assert_eq!(connected_components(&directed, 2), vec![0, 1, 2]);
    assert_eq!(degrees(&directed, 2), vec![1, 1, 0]);
    // The symmetric closure collapses to one component.
    let undirected = ExpandedGraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]);
    assert_eq!(connected_components(&undirected, 2), vec![0, 0, 0]);
    assert_eq!(degrees(&undirected, 2), vec![1, 2, 1]);
    // Deleting the middle vertex of the symmetric path splits it — and the
    // dead slot immediately vanishes from its neighbors' degree counts.
    let mut cut = ExpandedGraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1)]);
    cut.delete_vertex(RealId(1));
    assert_eq!(connected_components(&cut, 2), vec![0, 1, 2]);
    assert_eq!(degrees(&cut, 2), vec![0, 0, 0]);
}

#[test]
fn condensed_messaging_is_cheaper_on_dense_graphs() {
    // A dense overlapping-clique graph: condensed PageRank should need far
    // fewer messages than expanded PageRank.
    let cdup = synthetic_condensed(CondensedGenConfig {
        n_real: 500,
        n_virtual: 10,
        mean_size: 120.0,
        sd_size: 20.0,
        seed: 77,
    });
    let exp = ExpandedGraph::from_rep(&cdup);
    let dedup1 = Dedup1Algorithm::GreedyVnf.run(&cdup, VertexOrdering::Random, 7);
    let (_, stats_exp) = giraph::pagerank(GiraphRep::Exp(&exp), 3, 0.85);
    let (_, stats_cond) = giraph::pagerank(GiraphRep::Dedup1(&dedup1), 3, 0.85);
    assert!(
        stats_cond.messages < stats_exp.messages / 2,
        "condensed messages {} should be well under expanded {}",
        stats_cond.messages,
        stats_exp.messages
    );
}
