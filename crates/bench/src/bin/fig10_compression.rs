//! Figure 10: in-memory graph sizes (nodes + stored edges) for every
//! representation, including the VMiner baseline (which must expand first).

use graphgen_bench::{row, small_datasets, RepSet};
use graphgen_graph::GraphRep;
use graphgen_vminer::{vminer, VMinerConfig};

fn main() {
    println!("Figure 10: stored nodes/edges per representation\n");
    let widths = [12, 10, 12, 12, 14];
    for (name, cdup) in small_datasets() {
        println!("--- {name} ---");
        row(
            &["rep", "nodes", "edges", "total", "heap_bytes"].map(String::from),
            &widths,
        );
        let set = RepSet::build(name, cdup);
        for (label, rep) in set.reps() {
            row(
                &[
                    label.to_string(),
                    rep.stored_node_count().to_string(),
                    rep.stored_edge_count().to_string(),
                    (rep.stored_node_count() as u64 + rep.stored_edge_count()).to_string(),
                    rep.heap_bytes().to_string(),
                ],
                &widths,
            );
        }
        let (vm, bicliques) = vminer(&set.exp, VMinerConfig::default());
        row(
            &[
                "VMiner".to_string(),
                vm.stored_node_count().to_string(),
                vm.stored_edge_count().to_string(),
                (vm.stored_node_count() as u64 + vm.stored_edge_count()).to_string(),
                vm.heap_bytes().to_string(),
            ],
            &widths,
        );
        println!("(VMiner bicliques mined: {bicliques})\n");
    }
    println!("paper shape: on IMDB/Synthetic_2 C-DUP & friends are several-fold smaller than EXP;");
    println!("on DBLP/Synthetic_1 the gap is small and dedup can even shrink below C-DUP;");
    println!("VMiner compresses less than native DEDUP-1 and needed the expanded input.");
}
