//! Dense id interning.
//!
//! Graph extraction maps arbitrary key values (author ids, customer keys,
//! strings…) to dense `u32` node ids; all downstream structures index by the
//! dense id. `IdMap` is the single place this translation happens.

use crate::fxhash::FxHashMap;
use std::hash::Hash;

/// Interns values of type `K` into dense `u32` ids (0, 1, 2, …) and keeps
/// the reverse mapping for lookups back to the original key.
#[derive(Debug, Clone)]
pub struct IdMap<K> {
    forward: FxHashMap<K, u32>,
    reverse: Vec<K>,
}

impl<K: Eq + Hash + Clone> Default for IdMap<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Eq + Hash + Clone> IdMap<K> {
    /// New, empty map.
    pub fn new() -> Self {
        Self {
            forward: FxHashMap::default(),
            reverse: Vec::new(),
        }
    }

    /// New map with capacity for `n` keys.
    pub fn with_capacity(n: usize) -> Self {
        Self {
            forward: FxHashMap::with_capacity_and_hasher(n, Default::default()),
            reverse: Vec::with_capacity(n),
        }
    }

    /// Intern `key`, returning its dense id (allocating a new one if unseen).
    pub fn intern(&mut self, key: K) -> u32 {
        if let Some(&id) = self.forward.get(&key) {
            return id;
        }
        let id = u32::try_from(self.reverse.len()).expect("more than u32::MAX interned ids");
        self.forward.insert(key.clone(), id);
        self.reverse.push(key);
        id
    }

    /// Look up the dense id of `key` without inserting.
    pub fn get(&self, key: &K) -> Option<u32> {
        self.forward.get(key).copied()
    }

    /// The original key for dense id `id`.
    pub fn key_of(&self, id: u32) -> &K {
        &self.reverse[id as usize]
    }

    /// Number of interned keys.
    pub fn len(&self) -> usize {
        self.reverse.len()
    }

    /// True if nothing has been interned.
    pub fn is_empty(&self) -> bool {
        self.reverse.is_empty()
    }

    /// Iterate `(dense_id, key)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &K)> {
        self.reverse.iter().enumerate().map(|(i, k)| (i as u32, k))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_stable() {
        let mut map = IdMap::new();
        let a = map.intern("alice");
        let b = map.intern("bob");
        let a2 = map.intern("alice");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut map = IdMap::new();
        for i in 0..100u64 {
            assert_eq!(map.intern(i * 7), i as u32);
        }
    }

    #[test]
    fn reverse_lookup() {
        let mut map = IdMap::new();
        let id = map.intern("key".to_string());
        assert_eq!(map.key_of(id), "key");
        assert_eq!(map.get(&"key".to_string()), Some(id));
        assert_eq!(map.get(&"missing".to_string()), None);
    }

    #[test]
    fn iter_visits_in_id_order() {
        let mut map = IdMap::new();
        map.intern('c');
        map.intern('a');
        map.intern('b');
        let pairs: Vec<(u32, char)> = map.iter().map(|(i, &k)| (i, k)).collect();
        assert_eq!(pairs, vec![(0, 'c'), (1, 'a'), (2, 'b')]);
    }
}
