//! Extraction thread scaling on the Appendix C.2 workloads
//! (`datagen::large`): wall time, speedup, bytes allocated, and peak live
//! bytes at 1/2/4/8 threads.
//!
//! The parallel pipeline promises byte-identical graphs at every thread
//! count (verified here against the 1-thread run) and no peak-memory
//! regression from going parallel.
//!
//! Usage: `scaling_extraction [--scale=F] [--quick]`
//!   --scale=F   fraction of the paper's row counts to generate (default 0.01)
//!   --quick     alias for --scale=0.002 (CI smoke run)

use graphgen_bench::alloc::human_bytes;
use graphgen_bench::{measure_thread_scaling, ms, row, speedup};
use graphgen_core::{GraphGen, GraphGenConfig};
use graphgen_datagen::large::{
    layered_database, single_layer_database, LayeredConfig, SingleLayerConfig,
};
use graphgen_graph::expand_to_edge_list;

fn arg_scale() -> f64 {
    let mut scale = 0.01;
    for a in std::env::args() {
        if a == "--quick" {
            scale = 0.002;
        } else if let Some(v) = a.strip_prefix("--scale=") {
            scale = v.parse().expect("--scale=F expects a float");
        }
    }
    scale
}

fn main() {
    let scale = arg_scale();
    println!("Extraction thread scaling (datagen::large at scale {scale})\n");
    let workloads: Vec<(&str, graphgen_reldb::Database, String)> = {
        let (db1, q1) = single_layer_database(SingleLayerConfig::single_1(scale));
        let (db2, q2) = layered_database(LayeredConfig::layered_1(scale));
        vec![("Single_1", db1, q1), ("Layered_1", db2, q2)]
    };
    let widths = [10, 9, 12, 10, 12, 12, 10];
    row(
        &[
            "dataset", "threads", "time(ms)", "speedup", "alloc", "peak", "graph",
        ]
        .map(String::from),
        &widths,
    );
    for (name, db, query) in &workloads {
        let runs = measure_thread_scaling(&[1, 2, 4, 8], |threads| {
            let cfg = GraphGenConfig::builder()
                .large_output_factor(2.0)
                .preprocess(true)
                .auto_expand_threshold(None)
                .threads(threads)
                .build();
            GraphGen::with_config(db, cfg)
                .extract(query)
                .expect("extraction")
        });
        let base = &runs[0];
        let truth = expand_to_edge_list(&base.output);
        let (base_time, base_peak) = (base.time, base.alloc.peak);
        for r in &runs {
            let identical = expand_to_edge_list(&r.output) == truth;
            row(
                &[
                    name.to_string(),
                    r.threads.to_string(),
                    ms(r.time),
                    speedup(base_time, r.time),
                    human_bytes(r.alloc.total),
                    format!(
                        "{}{}",
                        human_bytes(r.alloc.peak),
                        if r.alloc.peak > base_peak { " (!)" } else { "" }
                    ),
                    if identical { "identical" } else { "DIVERGED" }.to_string(),
                ],
                &widths,
            );
            assert!(identical, "{name}: graph diverged at {} threads", r.threads);
        }
    }
    println!("\n'peak' flags (!) any thread count whose live high-water mark exceeds the");
    println!("1-thread run; 'graph' verifies byte-identical edge lists per thread count.");
}
