//! Tables 4 & 5: the Giraph-port experiments. Degree / Connected
//! Components / PageRank per representation (EXP, DEDUP-1, BITMAP) on the
//! S/N synthetic series and the IMDB co-actor graph, reporting time, memory
//! and messages. Pass `--describe` for the Table-5 dataset description.

use graphgen_bench::{extract_cdup, has_flag, row, small_datasets};
use graphgen_common::VertexOrdering;
use graphgen_datagen::{imdb_like, synthetic_condensed, CondensedGenConfig, ImdbConfig};
use graphgen_dedup::{bitmap2, Dedup1Algorithm};
use graphgen_giraph::{connected_components, degree, pagerank, GiraphRep};
use graphgen_graph::{CondensedGraph, ExpandedGraph, GraphRep};

/// The S/N-series generator settings (scaled; S varies virtual-node size,
/// N varies node counts — Table 5).
fn datasets() -> Vec<(&'static str, CondensedGraph)> {
    let mk = |n_real, n_virtual, mean: f64, seed| {
        synthetic_condensed(CondensedGenConfig {
            n_real,
            n_virtual,
            mean_size: mean,
            sd_size: mean / 4.0,
            seed,
        })
    };
    vec![
        ("S1", mk(5_000, 10, 100.0, 41)),
        ("S2", mk(5_000, 10, 400.0, 42)),
        ("N1", mk(8_000, 400, 60.0, 43)),
        ("N2", mk(14_000, 1_000, 60.0, 44)),
        (
            "IMDB",
            extract_cdup(
                &imdb_like(ImdbConfig::default()),
                graphgen_datagen::relational::IMDB_COACTORS,
            ),
        ),
    ]
}

fn main() {
    if has_flag("--describe") {
        describe();
        return;
    }
    println!("Table 4: Giraph-port experiments (time ms / memory bytes / messages)\n");
    let widths = [8, 8, 18, 20, 20];
    row(
        &["data", "rep", "degree", "concomp", "pagerank(5it)"].map(String::from),
        &widths,
    );
    for (name, cdup) in datasets() {
        let exp = ExpandedGraph::from_rep(&cdup);
        let dedup1 = Dedup1Algorithm::GreedyVnf.run(&cdup, VertexOrdering::Random, 7);
        let (bmp, _) = bitmap2(cdup.clone(), 1);
        for (label, rep) in [
            ("EXP", GiraphRep::Exp(&exp)),
            ("DEDUP1", GiraphRep::Dedup1(&dedup1)),
            ("BMP", GiraphRep::Bitmap(&bmp)),
        ] {
            let (_, sd) = degree(rep);
            let (_, sc) = connected_components(rep);
            let (_, sp) = pagerank(rep, 5, 0.85);
            let fmt = |s: graphgen_giraph::RunStats| {
                format!("{}ms/{}B/{}m", s.millis, s.memory_bytes, s.messages)
            };
            row(
                &[
                    name.to_string(),
                    label.to_string(),
                    fmt(sd),
                    fmt(sc),
                    fmt(sp),
                ],
                &widths,
            );
        }
    }
    println!("\npaper shape: BITMAP wins time+memory on the dense S/N datasets (far fewer");
    println!("stored edges => far fewer messages); on IMDB DEDUP-1 is the better fit and");
    println!("BITMAP's extra nodes/bitmaps erode its advantage. ConComp runs on raw");
    println!("condensed structure (duplicate-insensitive).");
}

fn describe() {
    println!("Table 5: dataset descriptions (nodes / virtual nodes / stored edges)\n");
    let widths = [8, 10, 12, 12, 14];
    row(
        &["data", "rep", "all_nodes", "virt_nodes", "edges"].map(String::from),
        &widths,
    );
    for (name, cdup) in datasets() {
        let exp = ExpandedGraph::from_rep(&cdup);
        let dedup1 = Dedup1Algorithm::GreedyVnf.run(&cdup, VertexOrdering::Random, 7);
        let (bmp, _) = bitmap2(cdup.clone(), 1);
        let rows: Vec<(&str, usize, usize, u64)> = vec![
            ("EXP", exp.stored_node_count(), 0, exp.stored_edge_count()),
            (
                "DEDUP1",
                dedup1.stored_node_count(),
                dedup1.num_virtual(),
                dedup1.stored_edge_count(),
            ),
            (
                "BMP",
                bmp.stored_node_count(),
                bmp.num_virtual(),
                bmp.stored_edge_count(),
            ),
        ];
        for (label, nodes, virt, edges) in rows {
            row(
                &[
                    name.to_string(),
                    label.to_string(),
                    nodes.to_string(),
                    virt.to_string(),
                    edges.to_string(),
                ],
                &widths,
            );
        }
    }
    // Keep the small_datasets import exercised for IMDB parity checks.
    let _ = small_datasets;
}
