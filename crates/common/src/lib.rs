//! Shared utilities for the GraphGen workspace.
//!
//! This crate deliberately has no heavyweight dependencies: it provides the
//! small, hot building blocks used everywhere else — a fast non-cryptographic
//! hasher (a re-implementation of the FxHash algorithm used by rustc, since
//! `rustc-hash` is not part of our allowed dependency set), a compact bitmap,
//! dense id interning, heap-size accounting, deterministic RNG helpers, and
//! the morsel/partition scoped-thread helpers behind every parallel operator.

pub mod bitmap;
pub mod bytesize;
pub mod codec;
pub mod fxhash;
pub mod idmap;
pub mod metrics;
pub mod ordering;
pub mod parallel;
pub mod region;

pub use bitmap::Bitmap;
pub use bytesize::ByteSize;
pub use codec::{CodecError, Reader};
pub use fxhash::{FxBuildHasher, FxHashMap, FxHashSet, FxHasher};
pub use idmap::IdMap;
pub use ordering::VertexOrdering;

/// A simple deterministic splitmix64 PRNG for places where we want
/// reproducible tie-breaking without threading a `rand` generator through.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator from a seed. A zero seed is remapped to a fixed
    /// non-zero constant so the stream is never degenerate.
    pub fn new(seed: u64) -> Self {
        Self {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. `bound` must be non-zero.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Lemire's multiply-shift; the slight bias is irrelevant for
        // tie-breaking and synthetic data generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_zero_seed_not_degenerate() {
        let mut rng = SplitMix64::new(0);
        let first = rng.next_u64();
        let second = rng.next_u64();
        assert_ne!(first, second);
    }

    #[test]
    fn next_below_stays_in_range() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SplitMix64::new(3);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
