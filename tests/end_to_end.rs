//! End-to-end integration: DSL text → relational extraction → condensed
//! representations → deduplication → algorithms → serialization, driving
//! only the public facade: `GraphHandle` and its typed conversion surface.

use graphgen::core::{
    serialize, AdvisorPolicy, AnyGraph, ConvertError, ConvertOptions, ErrorKind, GraphGen,
    GraphGenConfig,
};
use graphgen::datagen::{
    dblp_like, relational::DBLP_COAUTHORS, relational::TPCH_COPURCHASE, tpch_like, univ,
    DblpConfig, TpchConfig, UnivConfig,
};
use graphgen::graph::{expand_to_edge_list, GraphRep, RepKind};

fn condensed_config() -> GraphGenConfig {
    GraphGenConfig::builder()
        .large_output_factor(0.0)
        .preprocess(false)
        .auto_expand_threshold(None)
        .threads(2)
        .build()
}

#[test]
fn dblp_pipeline_end_to_end() {
    let db = dblp_like(DblpConfig {
        authors: 400,
        publications: 700,
        avg_authors_per_pub: 2.0,
        seed: 11,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let extracted = gg.extract(DBLP_COAUTHORS).expect("extract");
    assert_eq!(extracted.kind(), RepKind::CDup);
    let truth = expand_to_edge_list(&extracted);

    // The graph must be symmetric (co-occurrence).
    for &(u, v) in &truth {
        assert!(
            truth.binary_search(&(v, u)).is_ok(),
            "asymmetric pair ({u},{v})"
        );
    }

    // Every representation is reachable through the one typed entry point.
    let opts = ConvertOptions::default();
    for target in RepKind::all() {
        let converted = extracted.convert(target, &opts).expect("feasible shape");
        assert_eq!(converted.kind(), target);
        assert_eq!(expand_to_edge_list(&converted), truth, "{target}");
    }

    // Serialization round-trips the edge count.
    let mut buf = Vec::new();
    serialize::write_edge_list(&extracted, &mut buf).unwrap();
    let lines = buf.split(|&b| b == b'\n').filter(|l| !l.is_empty()).count();
    assert_eq!(lines as u64, extracted.expanded_edge_count());

    let mut json = Vec::new();
    serialize::write_json(&extracted, &mut json).unwrap();
    let text = String::from_utf8(json).unwrap();
    assert!(text.contains("\"nodes\""));
    assert!(text.contains("\"Name\""));
}

#[test]
fn tpch_multilayer_pipeline() {
    let db = tpch_like(TpchConfig {
        customers: 300,
        orders: 900,
        parts: 40,
        avg_lineitems: 2.5,
        seed: 12,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let extracted = gg.extract(TPCH_COPURCHASE).expect("extract");
    let AnyGraph::CDup(core) = extracted.graph() else {
        panic!("expected condensed result")
    };
    assert!(!core.is_single_layer(), "forced plan must be multi-layer");
    let truth = expand_to_edge_list(&extracted);

    // Multi-layer sources refuse the DEDUP constructions with a typed
    // reason...
    let opts = ConvertOptions::default();
    assert_eq!(
        extracted.convert(RepKind::Dedup1, &opts).unwrap_err(),
        ConvertError::MultiLayer
    );
    assert_eq!(
        extracted.convert(RepKind::Dedup2, &opts).unwrap_err(),
        ConvertError::MultiLayer
    );

    // ...until the caller opts into flattening (§5.2.2's route).
    let flat_opts = ConvertOptions {
        flatten: true,
        ..opts
    };
    let d1 = extracted
        .convert(RepKind::Dedup1, &flat_opts)
        .expect("flattened");
    assert_eq!(expand_to_edge_list(&d1), truth);

    // BITMAP works on the multi-layer structure directly.
    let bmp = extracted
        .convert(RepKind::Bitmap, &opts)
        .expect("condensed source");
    assert_eq!(expand_to_edge_list(&bmp), truth);

    // The advisor never proposes an infeasible representation: multi-layer
    // condensed graphs get BITMAP when expansion is off the table.
    let strict = AdvisorPolicy {
        expand_threshold: 0.0,
        ..Default::default()
    };
    assert_eq!(extracted.advise(&strict), RepKind::Bitmap);
    let advised = extracted
        .convert_to_advised(&strict, &opts)
        .expect("advised");
    assert_eq!(expand_to_edge_list(&advised), truth);

    // The report exposes the plan: middle join postponed, outer joins in DB.
    let joins = &extracted.report().plans[0].joins;
    assert_eq!(joins.len(), 3);
}

#[test]
fn asymmetric_graphs_refuse_dedup2_with_a_reason() {
    // [Q3]-style bipartite extraction is directed: instructor -> student
    // edges only, so the virtual nodes are asymmetric and DEDUP-2's
    // restriction bites.
    let db = univ(UnivConfig {
        students: 120,
        instructors: 8,
        courses: 15,
        avg_courses_per_student: 3.0,
        seed: 21,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let extracted = gg
        .extract(graphgen::datagen::relational::UNIV_BIPARTITE)
        .expect("extract");
    let opts = ConvertOptions::default();
    assert_eq!(
        extracted.convert(RepKind::Dedup2, &opts).unwrap_err(),
        ConvertError::Asymmetric
    );
    // DEDUP-1 has no symmetry requirement; same graph converts fine.
    let d1 = extracted
        .convert(RepKind::Dedup1, &opts)
        .expect("single-layer");
    assert_eq!(expand_to_edge_list(&d1), expand_to_edge_list(&extracted));
    // And the advisor routes around the restriction.
    let strict = AdvisorPolicy {
        expand_threshold: 0.0,
        ..Default::default()
    };
    assert_eq!(extracted.advise(&strict), RepKind::Dedup1);
}

#[test]
fn expanded_graphs_refuse_condensed_targets_with_a_reason() {
    let db = dblp_like(DblpConfig {
        authors: 100,
        publications: 150,
        avg_authors_per_pub: 2.0,
        seed: 22,
    });
    // The full-SQL baseline hands back EXP, which retains no condensed core.
    let gg = GraphGen::with_config(&db, condensed_config());
    let full = gg.extract_full(DBLP_COAUTHORS).expect("extract_full");
    assert_eq!(full.kind(), RepKind::Exp);
    let opts = ConvertOptions::default();
    for target in [
        RepKind::CDup,
        RepKind::Dedup1,
        RepKind::Dedup2,
        RepKind::Bitmap,
    ] {
        assert_eq!(
            full.convert(target, &opts).unwrap_err(),
            ConvertError::NotCondensed { from: RepKind::Exp },
            "{target}"
        );
    }
    // EXP -> EXP remains trivially feasible.
    assert!(full.convert(RepKind::Exp, &opts).is_ok());
}

#[test]
fn representation_choice_policy() {
    // Sparse graph: auto-expansion should trigger with default config.
    let db = dblp_like(DblpConfig {
        authors: 200,
        publications: 100,
        avg_authors_per_pub: 1.2,
        seed: 13,
    });
    let gg = GraphGen::new(&db);
    let extracted = gg.extract(DBLP_COAUTHORS).expect("extract");
    assert!(extracted.report().auto_expanded);
    assert_eq!(extracted.kind(), RepKind::Exp);
}

#[test]
fn key_space_accessors_cover_the_whole_graph() {
    let db = dblp_like(DblpConfig {
        authors: 60,
        publications: 90,
        avg_authors_per_pub: 2.0,
        seed: 16,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let extracted = gg.extract(DBLP_COAUTHORS).expect("extract");
    for u in extracted.vertices() {
        let key = extracted.key_of(u).clone();
        assert_eq!(extracted.vertex_of(&key), Some(u));
        let nbrs = extracted.neighbors_by_key(&key).expect("known key");
        assert_eq!(nbrs.len(), extracted.degree_by_key(&key).unwrap());
        assert_eq!(nbrs.len(), extracted.degree(u));
        assert!(extracted.vertex_property(&key, "Name").is_some());
    }
}

#[test]
fn error_paths_are_reported() {
    let db = dblp_like(DblpConfig {
        authors: 10,
        publications: 10,
        avg_authors_per_pub: 1.5,
        seed: 14,
    });
    let gg = GraphGen::new(&db);
    // Unknown table -> caught by the pre-extraction check (E001), not a
    // runtime Db error.
    let err = gg
        .extract("Nodes(X) :- Missing(X).\nEdges(A,B) :- AuthorPub(A,P), AuthorPub(B,P).")
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Check);
    let diags = err.as_check().expect("check error");
    assert_eq!(diags[0].code.code(), "E001");
    // Cyclic edges body -> check error too (E006).
    let err = gg
        .extract(
            "Nodes(ID, N) :- Author(ID, N).\n\
             Edges(A, B) :- AuthorPub(A, B), AuthorPub(B, C), AuthorPub(C, A).",
        )
        .unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Check);
    assert_eq!(err.as_check().unwrap()[0].code.code(), "E006");
    // Parse error -> Dsl error.
    assert_eq!(gg.extract("Nodes(").unwrap_err().kind(), ErrorKind::Dsl);
    // Conversion errors convert into the unified type, too.
    let e: graphgen::core::Error = ConvertError::MultiLayer.into();
    assert_eq!(e.kind(), ErrorKind::Convert);
    assert_eq!(e.as_convert(), Some(ConvertError::MultiLayer));
}

#[test]
fn mutations_through_the_facade_stay_consistent() {
    let db = dblp_like(DblpConfig {
        authors: 120,
        publications: 200,
        avg_authors_per_pub: 2.0,
        seed: 15,
    });
    let gg = GraphGen::with_config(&db, condensed_config());
    let mut extracted = gg.extract(DBLP_COAUTHORS).expect("extract");
    let edges = expand_to_edge_list(&extracted);
    let (u, v) = edges[edges.len() / 2];
    let (u, v) = (graphgen::graph::RealId(u), graphgen::graph::RealId(v));
    assert!(extracted.exists_edge(u, v));
    extracted.delete_edge(u, v);
    assert!(!extracted.exists_edge(u, v));
    let w = extracted.add_vertex();
    extracted.add_edge(w, u);
    assert!(extracted.exists_edge(w, u));
    extracted.delete_vertex(u);
    assert!(!extracted.exists_edge(w, u));
    extracted.compact();
    assert!(!extracted.exists_edge(w, u));
}
