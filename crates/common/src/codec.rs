//! A tiny binary codec: length-prefixed, little-endian primitives.
//!
//! The persistence layer (graph snapshots, the write-ahead delta log)
//! serializes every structure through these helpers so the on-disk format
//! has exactly one set of conventions:
//!
//! * all integers are **little-endian** and fixed-width;
//! * variable-length data (strings, lists, nested sections) is
//!   **length-prefixed** with a `u64` count;
//! * decoding is bounds-checked everywhere and reports a typed
//!   [`CodecError`] with the byte offset of the failure — corrupt or
//!   truncated input can never panic or over-read.

use std::fmt;

/// A decoding failure: what went wrong and where in the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a read of `want` bytes at offset `at`.
    UnexpectedEof {
        /// Byte offset of the attempted read.
        at: usize,
        /// Bytes the read needed.
        want: usize,
    },
    /// The bytes at offset `at` are structurally invalid (bad tag, bad
    /// magic, non-UTF-8 string, implausible length, …).
    Invalid {
        /// Byte offset of the failure.
        at: usize,
        /// Human-readable description.
        what: String,
    },
}

impl CodecError {
    /// Shorthand for an [`CodecError::Invalid`] at `at`.
    pub fn invalid(at: usize, what: impl Into<String>) -> Self {
        CodecError::Invalid {
            at,
            what: what.into(),
        }
    }
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { at, want } => {
                write!(
                    f,
                    "unexpected end of input at byte {at} (needed {want} more)"
                )
            }
            CodecError::Invalid { at, what } => write!(f, "invalid data at byte {at}: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

/// Append a `u8`.
#[inline]
pub fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Append a little-endian `u32`.
#[inline]
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `u64`.
#[inline]
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append a little-endian `i64`.
#[inline]
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append an `f64` as its IEEE-754 bit pattern (little-endian).
#[inline]
pub fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Append a `usize` as a `u64` (the format is 64-bit regardless of host).
#[inline]
pub fn put_len(out: &mut Vec<u8>, v: usize) {
    put_u64(out, v as u64);
}

/// Append a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_len(out, s.len());
    out.extend_from_slice(s.as_bytes());
}

/// Append a length-prefixed byte slice.
pub fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_len(out, b.len());
    out.extend_from_slice(b);
}

// ---------------------------------------------------------------------------
// Reading
// ---------------------------------------------------------------------------

/// A bounds-checked cursor over an input byte slice.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Start reading at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Self { bytes, pos: 0 }
    }

    /// Current byte offset.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Bytes left to read.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Take the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::UnexpectedEof {
                at: self.pos,
                want: n - self.remaining(),
            });
        }
        let out = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Read a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Read a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Read an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Read a length (`u64`) and convert it to `usize`, rejecting lengths
    /// that could not possibly fit in the remaining input (each encoded
    /// element needs at least one byte), so corrupt lengths fail fast
    /// instead of triggering huge allocations.
    pub fn len(&mut self) -> Result<usize, CodecError> {
        let at = self.pos;
        let v = self.u64()?;
        let v = usize::try_from(v).map_err(|_| CodecError::invalid(at, "length overflows"))?;
        if v > self.remaining() {
            return Err(CodecError::invalid(
                at,
                format!("length {v} exceeds remaining input {}", self.remaining()),
            ));
        }
        Ok(v)
    }

    /// Read a `u64` scalar (an index, version, or count that does **not**
    /// describe upcoming input) as `usize`. Unlike [`Reader::len`], no
    /// remaining-input plausibility bound applies — a column index or
    /// thread count may legitimately exceed the bytes left to read.
    pub fn scalar(&mut self) -> Result<usize, CodecError> {
        let at = self.pos;
        usize::try_from(self.u64()?).map_err(|_| CodecError::invalid(at, "scalar overflows usize"))
    }

    /// Read a length that counts multi-byte elements of at least
    /// `min_elem_bytes` each (tighter plausibility bound than [`Reader::len`]).
    pub fn len_of(&mut self, min_elem_bytes: usize) -> Result<usize, CodecError> {
        let at = self.pos;
        let v = self.len()?;
        if min_elem_bytes > 1 && v > self.remaining() / min_elem_bytes {
            return Err(CodecError::invalid(
                at,
                format!("element count {v} exceeds remaining input"),
            ));
        }
        Ok(v)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, CodecError> {
        let n = self.len()?;
        let at = self.pos;
        std::str::from_utf8(self.take(n)?).map_err(|_| CodecError::invalid(at, "non-UTF-8 string"))
    }

    /// Read a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let n = self.len()?;
        self.take(n)
    }

    /// Consume and verify a fixed magic prefix.
    pub fn expect_magic(&mut self, magic: &[u8]) -> Result<(), CodecError> {
        let at = self.pos;
        let got = self.take(magic.len())?;
        if got != magic {
            return Err(CodecError::invalid(
                at,
                format!("bad magic {got:02x?}, expected {magic:02x?}"),
            ));
        }
        Ok(())
    }

    /// Error if any input remains (trailing garbage detection).
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(CodecError::invalid(
                self.pos,
                format!("{} trailing bytes", self.remaining()),
            ))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, 1.5);
        put_str(&mut buf, "héllo");
        put_bytes(&mut buf, &[1, 2, 3]);
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), 1.5);
        assert_eq!(r.str().unwrap(), "héllo");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        assert!(r.expect_end().is_ok());
    }

    #[test]
    fn eof_reports_offset() {
        let mut r = Reader::new(&[1, 2]);
        assert_eq!(r.u8().unwrap(), 1);
        let err = r.u32().unwrap_err();
        assert!(
            matches!(err, CodecError::UnexpectedEof { at: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn implausible_length_rejected() {
        let mut buf = Vec::new();
        put_len(&mut buf, 1 << 40);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.len(), Err(CodecError::Invalid { .. })));
        // len_of with a element width bound
        let mut buf = Vec::new();
        put_len(&mut buf, 10);
        buf.extend_from_slice(&[0u8; 16]);
        let mut r = Reader::new(&buf);
        assert!(r.len_of(4).is_err());
    }

    #[test]
    fn magic_and_trailing() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"MAGI");
        put_u8(&mut buf, 1);
        let mut r = Reader::new(&buf);
        assert!(r.expect_magic(b"MAGI").is_ok());
        assert!(r.expect_end().is_err());
        assert_eq!(r.u8().unwrap(), 1);
        assert!(r.expect_end().is_ok());
        let mut r2 = Reader::new(&buf);
        assert!(r2.expect_magic(b"NOPE").is_err());
    }

    #[test]
    fn bad_utf8_rejected() {
        let mut buf = Vec::new();
        put_len(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        let mut r = Reader::new(&buf);
        assert!(matches!(r.str(), Err(CodecError::Invalid { .. })));
    }
}
