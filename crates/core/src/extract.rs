//! The GraphGen facade and the condensed extraction algorithm (§4.2).

use crate::anygraph::AnyGraph;
use crate::check::catalog_view;
use crate::error::Error;
use crate::handle::GraphHandle;
use crate::incremental::{self, IncrementalState};
use crate::planner::{filters_to_predicate, full_query, plan_chain, ChainPlan};
use graphgen_common::IdMap;
use graphgen_dedup::preprocess::{expand_cheap_virtuals, should_expand, PreprocessStats};
use graphgen_dsl::{
    check_program, parse, CheckOptions, CheckReport, GraphSpec, NodesView, Severity,
};
use graphgen_graph::{CondensedBuilder, ExpandedGraph, PropValue, Properties, RealId, VirtId};
use graphgen_reldb::{exec::scan_project, Database, Delta, DeltaOp, Value};
use std::time::Instant;

/// Extraction configuration. Construct via [`GraphGenConfig::builder`]:
///
/// ```
/// use graphgen_core::GraphGenConfig;
/// let cfg = GraphGenConfig::builder().preprocess(false).threads(2).build();
/// assert!(!cfg.preprocess());
/// ```
#[derive(Debug, Clone, Copy)]
pub struct GraphGenConfig {
    large_output_factor: f64,
    preprocess: bool,
    auto_expand_threshold: Option<f64>,
    threads: usize,
    incremental: bool,
}

impl Default for GraphGenConfig {
    fn default() -> Self {
        Self {
            large_output_factor: 2.0,
            preprocess: true,
            auto_expand_threshold: Some(1.2),
            threads: default_threads(),
            incremental: false,
        }
    }
}

/// Default worker-thread count: the `GRAPHGEN_THREADS` environment variable
/// when set to a positive integer (CI uses this to exercise the parallel
/// path), otherwise the machine's available parallelism.
fn default_threads() -> usize {
    std::env::var("GRAPHGEN_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
        .unwrap_or_else(|| std::thread::available_parallelism().map_or(4, |n| n.get()))
}

impl GraphGenConfig {
    /// Start building a configuration from the defaults.
    pub fn builder() -> GraphGenConfigBuilder {
        GraphGenConfigBuilder {
            cfg: Self::default(),
        }
    }

    /// Re-open this configuration as a builder, to vary one knob without
    /// re-listing the others.
    pub fn to_builder(self) -> GraphGenConfigBuilder {
        GraphGenConfigBuilder { cfg: self }
    }

    /// The large-output test factor (the paper uses 2.0).
    pub fn large_output_factor(&self) -> f64 {
        self.large_output_factor
    }

    /// Whether §4.2 Step 6 (expand cheap virtual nodes) runs.
    pub fn preprocess(&self) -> bool {
        self.preprocess
    }

    /// The §6.5 auto-expansion threshold; `None` disables auto-expansion.
    pub fn auto_expand_threshold(&self) -> Option<f64> {
        self.auto_expand_threshold
    }

    /// Worker threads for the whole extraction pipeline: every segment
    /// query's scans, hash joins, and DISTINCTs, plus Step-6 preprocessing.
    /// Results are byte-identical for any value. Defaults to
    /// `GRAPHGEN_THREADS` (if set) or the available parallelism.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Whether extraction builds the delta-maintenance state so the handle
    /// supports [`GraphHandle::apply_delta`]. See [`crate::incremental`].
    pub fn incremental(&self) -> bool {
        self.incremental
    }
}

/// Builder for [`GraphGenConfig`]; every knob starts at its default.
#[derive(Debug, Clone)]
pub struct GraphGenConfigBuilder {
    cfg: GraphGenConfig,
}

impl GraphGenConfigBuilder {
    /// The large-output test factor (the paper uses 2.0). `0.0` classifies
    /// every join as large-output, forcing the condensed path.
    pub fn large_output_factor(mut self, factor: f64) -> Self {
        self.cfg.large_output_factor = factor;
        self
    }

    /// Run §4.2 Step 6 (expand cheap virtual nodes).
    pub fn preprocess(mut self, on: bool) -> Self {
        self.cfg.preprocess = on;
        self
    }

    /// Worker threads for the whole extraction pipeline (scans, joins,
    /// DISTINCT, preprocessing). `1` disables parallelism.
    pub fn threads(mut self, threads: usize) -> Self {
        self.cfg.threads = threads.max(1);
        self
    }

    /// §6.5 policy: hand back EXP when the expanded graph is at most this
    /// factor larger than the condensed one (e.g. 1.2 = +20%). Pass `None`
    /// to disable auto-expansion and always keep the condensed result.
    pub fn auto_expand_threshold(mut self, threshold: impl Into<Option<f64>>) -> Self {
        self.cfg.auto_expand_threshold = threshold.into();
        self
    }

    /// Build the delta-maintenance state during extraction, enabling
    /// [`GraphHandle::apply_delta`]. Incremental extraction always hands
    /// back the raw condensed graph (C-DUP) — Step-6 preprocessing and the
    /// §6.5 auto-expansion are skipped, since both rewrite the structure
    /// the maintenance state mirrors; convert the handle afterwards if a
    /// different representation is wanted (patching survives conversions).
    pub fn incremental(mut self, on: bool) -> Self {
        self.cfg.incremental = on;
        self
    }

    /// Finish building.
    pub fn build(self) -> GraphGenConfig {
        self.cfg
    }
}

/// What the extraction did (plans, SQL, preprocessing, timing).
#[derive(Debug, Clone, Default)]
pub struct ExtractionReport {
    /// Per-`Edges`-rule plans.
    pub plans: Vec<ChainPlan>,
    /// Rendered SQL of every executed segment query (Fig. 16 output).
    pub sql: Vec<String>,
    /// Step-6 statistics (if enabled).
    pub preprocess: Option<PreprocessStats>,
    /// Whether the §6.5 policy expanded the graph.
    pub auto_expanded: bool,
    /// Wall-clock extraction time in microseconds.
    pub extraction_micros: u128,
}

/// The GraphGen system: an extraction engine over a relational database.
#[derive(Debug)]
pub struct GraphGen<'a> {
    db: &'a Database,
    cfg: GraphGenConfig,
}

impl<'a> GraphGen<'a> {
    /// Engine with default configuration.
    pub fn new(db: &'a Database) -> Self {
        Self {
            db,
            cfg: GraphGenConfig::default(),
        }
    }

    /// Engine with explicit configuration.
    pub fn with_config(db: &'a Database, cfg: GraphGenConfig) -> Self {
        Self { db, cfg }
    }

    /// The database this engine reads.
    pub fn database(&self) -> &Database {
        self.db
    }

    /// Statically check a DSL program against this database's schema and
    /// statistics, without extracting anything. The report carries every
    /// diagnostic (errors and warnings) plus the compiled spec when the
    /// program is error-free. Parse failures surface as [`Error::Dsl`].
    pub fn check(&self, dsl: &str) -> Result<CheckReport, Error> {
        self.check_with(dsl, &CheckOptions::default())
    }

    /// [`GraphGen::check`] with explicit options (opt-in lint groups). The
    /// plan lints always use this engine's configured large-output factor,
    /// so W105 predicts exactly what the planner would postpone.
    pub fn check_with(&self, dsl: &str, opts: &CheckOptions) -> Result<CheckReport, Error> {
        let program = parse(dsl)?;
        let mut opts = opts.clone();
        opts.large_output_factor = self.cfg.large_output_factor;
        Ok(check_program(&program, Some(&catalog_view(self.db)), &opts))
    }

    /// Run [`GraphGen::check`] and compile the spec, rejecting programs the
    /// checker finds errors in before any extraction work happens.
    fn checked_spec(&self, dsl: &str) -> Result<GraphSpec, Error> {
        let report = self.check(dsl)?;
        if report.has_errors() {
            let errors: Vec<_> = report
                .diagnostics
                .into_iter()
                .filter(|d| d.severity == Severity::Error)
                .collect();
            return Err(Error::Check(errors));
        }
        Ok(report
            .spec
            .expect("check_program returns a spec when there are no errors"))
    }

    /// Cost a DSL program against this database's live statistics without
    /// extracting anything: the same checked-spec path as
    /// [`GraphGen::extract`], but the result is the unified cost engine's
    /// analysis — per-atom/per-join estimates, the chosen min-cost plan,
    /// its fingerprint — rendered as a plan tree by `Display`. Pure
    /// catalog arithmetic; no table is scanned.
    pub fn explain(&self, dsl: &str) -> Result<crate::cost::Explanation, Error> {
        let spec = self.checked_spec(dsl)?;
        Ok(crate::cost::explain_spec(
            self.db,
            &spec,
            self.cfg.large_output_factor,
        )?)
    }

    /// Parse a DSL program and extract the (condensed) graph.
    ///
    /// The program is statically validated first ([`GraphGen::check`]);
    /// schema or semantic errors come back as [`Error::Check`] with coded,
    /// span-carrying diagnostics, before any table is scanned.
    pub fn extract(&self, dsl: &str) -> Result<GraphHandle, Error> {
        let spec = self.checked_spec(dsl)?;
        self.extract_spec(&spec)
    }

    /// Extract from a pre-compiled spec.
    pub fn extract_spec(&self, spec: &GraphSpec) -> Result<GraphHandle, Error> {
        if self.cfg.incremental {
            return self.extract_spec_incremental(spec);
        }
        let start = Instant::now();
        let mut report = ExtractionReport::default();

        // Step 1: load nodes.
        let (ids, properties) = self.load_nodes(&spec.nodes)?;
        let mut builder = CondensedBuilder::new(ids.len());

        // Steps 2-5 per Edges statement; the union of all rules shares the
        // node space and appends virtual nodes.
        for chain in &spec.edges {
            let plan = plan_chain(self.db, chain, self.cfg.large_output_factor)?;
            for seg in &plan.segments {
                report.sql.push(seg.query.to_sql(self.db)?);
            }
            self.extract_chain(&plan, &ids, &mut builder)?;
            report.plans.push(plan);
        }
        let span =
            graphgen_common::metrics::span("build_rep", graphgen_common::region::Region::BuildRep);
        let mut graph = builder.build();

        // Step 6: preprocessing.
        if self.cfg.preprocess {
            report.preprocess = Some(expand_cheap_virtuals(&mut graph, self.cfg.threads));
        }

        // §6.5 policy: expand when cheap.
        let graph = match self.cfg.auto_expand_threshold {
            Some(t) if should_expand(&graph, t) => {
                report.auto_expanded = true;
                AnyGraph::Exp(ExpandedGraph::from_rep(&graph))
            }
            _ => AnyGraph::CDup(graph),
        };
        drop(span);
        report.extraction_micros = start.elapsed().as_micros();
        Ok(GraphHandle::from_parts(graph, ids, properties, report))
    }

    /// Incremental extraction: build the delta-maintenance state and reach
    /// the current database state by replaying every referenced base table
    /// through the delta engine itself — one code path for the initial
    /// extraction and for live maintenance, so the oracle tests exercise
    /// exactly what [`GraphHandle::apply_delta`] runs later.
    fn extract_spec_incremental(&self, spec: &GraphSpec) -> Result<GraphHandle, Error> {
        let start = Instant::now();
        let mut report = ExtractionReport::default();
        let mut plans = Vec::with_capacity(spec.edges.len());
        for chain in &spec.edges {
            let plan = plan_chain(self.db, chain, self.cfg.large_output_factor)?;
            for seg in &plan.segments {
                report.sql.push(seg.query.to_sql(self.db)?);
            }
            plans.push(plan);
        }
        let mut state = IncrementalState::new(spec, &plans, self.cfg.threads());
        let mut graph = AnyGraph::CDup(CondensedBuilder::new(0).build());
        // The engine takes `Arc`ed stores (shared with reader clones on the
        // live path); here they are freshly owned, so `make_mut` is free.
        let mut ids = std::sync::Arc::new(IdMap::<Value>::new());
        let mut properties = std::sync::Arc::new(Properties::new(0));
        for table in state.referenced_tables() {
            let t = self.db.table(&table)?;
            let mut delta = Delta::new(table);
            for row in t.iter_rows() {
                delta.push(row, DeltaOp::Insert);
            }
            incremental::apply_delta_state(
                &mut state,
                &mut graph,
                &mut ids,
                &mut properties,
                &delta,
            )?;
        }
        report.plans = plans;
        report.extraction_micros = start.elapsed().as_micros();
        Ok(GraphHandle::from_parts_incremental(
            graph, ids, properties, report, state,
        ))
    }

    /// Extract the **fully expanded** graph by running each chain as one
    /// SQL query (Table 1's "Full Graph" baseline).
    pub fn extract_full(&self, dsl: &str) -> Result<GraphHandle, Error> {
        let spec = self.checked_spec(dsl)?;
        let start = Instant::now();
        let mut report = ExtractionReport::default();
        let (ids, properties) = self.load_nodes(&spec.nodes)?;
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for chain in &spec.edges {
            let q = full_query(chain);
            report.sql.push(q.to_sql(self.db)?);
            for (x, y) in q.run_threaded(self.db, self.cfg.threads)? {
                if let (Some(u), Some(v)) = (ids.get(&x), ids.get(&y)) {
                    edges.push((u, v));
                }
            }
        }
        let graph = ExpandedGraph::from_edges(ids.len(), edges);
        report.extraction_micros = start.elapsed().as_micros();
        Ok(GraphHandle::from_parts(
            AnyGraph::Exp(graph),
            ids,
            properties,
            report,
        ))
    }

    fn load_nodes(&self, views: &[NodesView]) -> Result<(IdMap<Value>, Properties), Error> {
        let mut ids: IdMap<Value> = IdMap::new();
        let mut props = Properties::new(0);
        for view in views {
            let table = self.db.table(&view.relation)?;
            let mut cols = vec![view.id_col];
            cols.extend(view.prop_cols.iter().map(|(_, c)| *c));
            let pred = filters_to_predicate(&view.filters);
            for row in scan_project(table, &pred, &cols, self.cfg.threads).iter() {
                let key = row[0].clone();
                if key.is_null() {
                    continue;
                }
                let u = ids.intern(key);
                props.grow(ids.len());
                for ((name, _), value) in view.prop_cols.iter().zip(&row[1..]) {
                    let pv = match value {
                        Value::Int(v) => PropValue::Int(*v),
                        Value::Str(s) => PropValue::Text(s.to_string()),
                        Value::Null => continue,
                    };
                    props.set(RealId(u), name, pv);
                }
            }
        }
        Ok((ids, props))
    }

    /// Execute a planned chain and add its edges to the builder.
    fn extract_chain(
        &self,
        plan: &ChainPlan,
        ids: &IdMap<Value>,
        builder: &mut CondensedBuilder,
    ) -> Result<(), Error> {
        let k = plan.segments.len();
        if k == 1 {
            // No large-output join: the database computes the edge list.
            for (x, y) in plan.segments[0]
                .query
                .run_threaded(self.db, self.cfg.threads)?
            {
                if let (Some(u), Some(v)) = (ids.get(&x), ids.get(&y)) {
                    if u != v {
                        builder.direct(RealId(u), RealId(v));
                    }
                }
            }
            return Ok(());
        }
        // Step 4: virtual nodes per boundary attribute value, created
        // lazily per distinct value.
        let mut boundaries: Vec<IdMap<Value>> = (0..k - 1).map(|_| IdMap::new()).collect();
        let mut vnode_of: Vec<Vec<VirtId>> = vec![Vec::new(); k - 1];
        for (j, seg) in plan.segments.iter().enumerate() {
            let rows = seg.query.run_threaded(self.db, self.cfg.threads)?;
            for (x, y) in rows {
                match (j == 0, j == k - 1) {
                    (true, false) => {
                        // res1(ID1, a_l): real -> virtual
                        let Some(u) = ids.get(&x) else { continue };
                        let v = intern_vnode(&mut boundaries[0], &mut vnode_of[0], builder, y);
                        builder.real_to_virtual(RealId(u), v);
                    }
                    (false, true) => {
                        // res_k(a_u, ID2): virtual -> real
                        let Some(t) = ids.get(&y) else { continue };
                        let v =
                            intern_vnode(&mut boundaries[k - 2], &mut vnode_of[k - 2], builder, x);
                        builder.virtual_to_real(v, RealId(t));
                    }
                    (false, false) => {
                        // res_i(a_{i-1}, a_i): virtual -> virtual
                        let (left, right) = split_two(&mut boundaries, &mut vnode_of, j);
                        let vl = intern_vnode(left.0, left.1, builder, x);
                        let vr = intern_vnode(right.0, right.1, builder, y);
                        builder.virtual_to_virtual(vl, vr);
                    }
                    (true, true) => unreachable!("k > 1"),
                }
            }
        }
        Ok(())
    }
}

fn intern_vnode(
    boundary: &mut IdMap<Value>,
    vnodes: &mut Vec<VirtId>,
    builder: &mut CondensedBuilder,
    value: Value,
) -> VirtId {
    let idx = boundary.intern(value) as usize;
    if idx == vnodes.len() {
        vnodes.push(builder.add_virtual());
    }
    vnodes[idx]
}

/// A boundary's value-interner and its allocated virtual-node ids.
type BoundaryRef<'x> = (&'x mut IdMap<Value>, &'x mut Vec<VirtId>);

/// Mutable access to boundaries `j-1` and `j` simultaneously.
fn split_two<'x>(
    boundaries: &'x mut [IdMap<Value>],
    vnodes: &'x mut [Vec<VirtId>],
    j: usize,
) -> (BoundaryRef<'x>, BoundaryRef<'x>) {
    let (bl, br) = boundaries.split_at_mut(j);
    let (vl, vr) = vnodes.split_at_mut(j);
    ((&mut bl[j - 1], &mut vl[j - 1]), (&mut br[0], &mut vr[0]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{expand_to_edge_list, GraphRep};
    use graphgen_reldb::{Column, Schema, Table};

    /// The Fig. 1 toy DBLP instance.
    fn fig1_db() -> Database {
        let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        for a in 1..=5 {
            author
                .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
                .unwrap();
        }
        let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        for (a, p) in [
            (1, 1),
            (2, 1),
            (4, 1),
            (1, 2),
            (4, 2),
            (3, 3),
            (4, 3),
            (5, 3),
        ] {
            ap.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
        }
        let mut db = Database::new();
        db.register("Author", author).unwrap();
        db.register("AuthorPub", ap).unwrap();
        db
    }

    const Q1: &str = "Nodes(ID, Name) :- Author(ID, Name).\n\
                      Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

    #[test]
    fn condensed_equals_full_extraction() {
        let db = fig1_db();
        // Force the condensed path (tiny data would otherwise be classified
        // small-output) and disable auto-expansion so we can compare C-DUP.
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .large_output_factor(0.0)
                .preprocess(false)
                .auto_expand_threshold(None)
                .threads(1)
                .build(),
        );
        let condensed = gg.extract(Q1).unwrap();
        let full = gg.extract_full(Q1).unwrap();
        assert!(matches!(condensed.graph(), AnyGraph::CDup(_)));
        // Same node keys -> same dense ids -> directly comparable edges.
        assert_eq!(expand_to_edge_list(&condensed), expand_to_edge_list(&full));
        // 12 directed co-author pairs (excluding self-loops).
        assert_eq!(condensed.graph().expanded_edge_count(), 12);
    }

    #[test]
    fn threads_knob_clamps_to_one() {
        let cfg = GraphGenConfig::builder().threads(0).build();
        assert_eq!(cfg.threads(), 1);
        assert!(GraphGenConfig::default().threads() >= 1);
    }

    #[test]
    fn threaded_extraction_matches_serial() {
        let db = fig1_db();
        let base = GraphGenConfig::builder()
            .large_output_factor(0.0)
            .preprocess(false)
            .auto_expand_threshold(None);
        let serial = GraphGen::with_config(&db, base.clone().threads(1).build())
            .extract(Q1)
            .unwrap();
        let parallel = GraphGen::with_config(&db, base.threads(8).build())
            .extract(Q1)
            .unwrap();
        assert_eq!(expand_to_edge_list(&serial), expand_to_edge_list(&parallel));
    }

    #[test]
    fn properties_loaded() {
        let db = fig1_db();
        let gg = GraphGen::new(&db);
        let g = gg.extract(Q1).unwrap();
        let a1 = g.vertex_of(&Value::int(1)).unwrap();
        assert_eq!(
            g.properties().get(a1, "Name").unwrap().as_text(),
            Some("a1")
        );
        assert_eq!(g.key_of(a1), &Value::int(1));
    }

    #[test]
    fn small_output_join_handed_to_database() {
        let db = fig1_db();
        // Default factor: the tiny join is small-output -> single segment.
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .build(),
        );
        let g = gg.extract(Q1).unwrap();
        assert_eq!(g.report().plans[0].segments.len(), 1);
        assert_eq!(g.graph().expanded_edge_count(), 12);
    }

    #[test]
    fn auto_expansion_kicks_in_for_tiny_graphs() {
        let db = fig1_db();
        let gg = GraphGen::new(&db); // default: threshold 1.2
        let g = gg.extract(Q1).unwrap();
        // Either path must preserve semantics; with defaults this small
        // graph ends up expanded.
        assert!(g.report().auto_expanded);
        assert!(matches!(g.graph(), AnyGraph::Exp(_)));
    }

    #[test]
    fn sql_rendered_for_segments() {
        let db = fig1_db();
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .large_output_factor(0.0)
                .preprocess(false)
                .auto_expand_threshold(None)
                .threads(1)
                .build(),
        );
        let g = gg.extract(Q1).unwrap();
        assert_eq!(g.report().sql.len(), 2, "{:?}", g.report().sql);
        assert!(g.report().sql[0].contains("SELECT DISTINCT"));
    }

    #[test]
    fn multi_layer_extraction_tpch_shape() {
        // Customer -- Orders -- LineItem co-purchase ([Q2]).
        let mut customer = Table::new(Schema::new(vec![
            Column::int("custkey"),
            Column::str("name"),
        ]));
        for c in 0..4 {
            customer
                .push_row(vec![Value::int(c), Value::str(format!("c{c}"))])
                .unwrap();
        }
        let mut orders = Table::new(Schema::new(vec![
            Column::int("orderkey"),
            Column::int("custkey"),
        ]));
        let mut lineitem = Table::new(Schema::new(vec![
            Column::int("orderkey"),
            Column::int("partkey"),
        ]));
        // customer c owns order c; orders 0,1 share part 100; orders 2,3 share part 200.
        for o in 0..4 {
            orders.push_row(vec![Value::int(o), Value::int(o)]).unwrap();
        }
        for (o, p) in [(0, 100), (1, 100), (2, 200), (3, 200), (0, 300)] {
            lineitem
                .push_row(vec![Value::int(o), Value::int(p)])
                .unwrap();
        }
        let mut db = Database::new();
        db.register("Customer", customer).unwrap();
        db.register("Orders", orders).unwrap();
        db.register("LineItem", lineitem).unwrap();
        let q2 = "Nodes(ID, Name) :- Customer(ID, Name).\n\
                  Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK),\
                                     Orders(OK2, ID2), LineItem(OK2, PK).";
        let gg = GraphGen::with_config(
            &db,
            // large_output_factor 0.0 forces all joins large -> 3 layers.
            GraphGenConfig::builder()
                .large_output_factor(0.0)
                .preprocess(false)
                .auto_expand_threshold(None)
                .threads(1)
                .build(),
        );
        let condensed = gg.extract(q2).unwrap();
        let full = gg.extract_full(q2).unwrap();
        assert_eq!(expand_to_edge_list(&condensed), expand_to_edge_list(&full));
        let core = condensed.graph().as_condensed().unwrap();
        assert!(!core.is_single_layer());
        assert_eq!(condensed.report().plans[0].virtual_layers(), 3);
        // c0-c1 and c2-c3 connected (shared parts), plus no cross edges.
        let mut edges = expand_to_edge_list(&condensed);
        edges.sort_unstable();
        assert_eq!(edges, vec![(0, 1), (1, 0), (2, 3), (3, 2)]);
    }

    #[test]
    fn heterogeneous_bipartite_q3() {
        let mut instructor = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        instructor
            .push_row(vec![Value::int(100), Value::str("i1")])
            .unwrap();
        let mut student = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        for s in [1, 2] {
            student
                .push_row(vec![Value::int(s), Value::str(format!("s{s}"))])
                .unwrap();
        }
        let mut taught = Table::new(Schema::new(vec![Column::int("iid"), Column::int("cid")]));
        taught
            .push_row(vec![Value::int(100), Value::int(7)])
            .unwrap();
        let mut took = Table::new(Schema::new(vec![Column::int("sid"), Column::int("cid")]));
        for s in [1, 2] {
            took.push_row(vec![Value::int(s), Value::int(7)]).unwrap();
        }
        let mut db = Database::new();
        db.register("Instructor", instructor).unwrap();
        db.register("Student", student).unwrap();
        db.register("TaughtCourse", taught).unwrap();
        db.register("TookCourse", took).unwrap();
        let q3 = "Nodes(ID, Name) :- Instructor(ID, Name).\n\
                  Nodes(ID, Name) :- Student(ID, Name).\n\
                  Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).";
        let gg = GraphGen::with_config(
            &db,
            GraphGenConfig::builder()
                .auto_expand_threshold(None)
                .build(),
        );
        let g = gg.extract(q3).unwrap();
        // Directed edges instructor -> student only.
        let i1 = g.vertex_of(&Value::int(100)).unwrap();
        let s1 = g.vertex_of(&Value::int(1)).unwrap();
        let s2 = g.vertex_of(&Value::int(2)).unwrap();
        assert!(g.graph().exists_edge(i1, s1));
        assert!(g.graph().exists_edge(i1, s2));
        assert!(!g.graph().exists_edge(s1, i1));
        assert_eq!(g.graph().expanded_edge_count(), 2);
    }
}
