//! `graphgen-dedup` — preprocessing and deduplication algorithms (§5).
//!
//! All algorithms take the extracted C-DUP graph and produce one of the
//! duplicate-free representations:
//!
//! * [`preprocess::expand_cheap_virtuals`] — §4.2 Step 6: inline virtual
//!   nodes whose expansion does not grow the graph (`in*out <= in+out+1`).
//! * [`bitmap1::bitmap1`] — BITMAP-1: one pass per real node setting
//!   first-seen bits (works on multi-layer graphs).
//! * [`bitmap2::bitmap2`] — BITMAP-2: greedy-set-cover bitmaps, fewer
//!   bitmaps/bits; prunes useless real→virtual edges (multi-layer capable).
//! * [`naive::naive_virtual_nodes_first`] / [`naive::naive_real_nodes_first`]
//!   — the two naive DEDUP-1 algorithms (§5.2.1).
//! * [`greedy_rnf::greedy_real_nodes_first`] — set-cover-inspired per-node
//!   deduplication (Fig. 8).
//! * [`greedy_vnf::greedy_virtual_nodes_first`] — vertex-cover-inspired
//!   incremental deduplication (Fig. 9); the algorithm used for DEDUP-1 in
//!   the paper's Fig. 10.
//! * [`dedup2_greedy::dedup2_greedy`] — the Appendix-B style constructor of
//!   the DEDUP-2 representation (virtual–virtual edges).
//! * [`flatten::flatten_to_single_layer`] — convert a multi-layer condensed
//!   graph to single-layer by expanding all but the penultimate layer
//!   (§5.2.2's suggested route before running DEDUP-1 algorithms).
//!
//! The DEDUP-1 and DEDUP-2 algorithms require **single-layer** input (the
//! paper's restriction); BITMAP-1/2 accept any condensed graph.

pub mod bitmap1;
pub mod bitmap2;
pub mod dedup2_greedy;
pub mod flatten;
pub mod greedy_rnf;
pub mod greedy_vnf;
pub mod naive;
pub mod preprocess;
pub mod work;

pub use bitmap1::bitmap1;
pub use bitmap2::bitmap2;
pub use dedup2_greedy::{check_symmetric, dedup2_greedy, try_dedup2_greedy};
pub use flatten::flatten_to_single_layer;
pub use graphgen_common::VertexOrdering;
pub use greedy_rnf::greedy_real_nodes_first;
pub use greedy_vnf::greedy_virtual_nodes_first;
pub use naive::{naive_real_nodes_first, naive_virtual_nodes_first};
pub use preprocess::expand_cheap_virtuals;
pub use work::WorkGraph;

use graphgen_graph::{CondensedGraph, Dedup1Graph};

/// Why a deduplication constructor cannot run on a given condensed graph
/// (the paper's §5 shape restrictions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DedupError {
    /// DEDUP-1/DEDUP-2 need a single-layer source; this graph has two or
    /// more virtual layers (run [`flatten_to_single_layer`] first).
    MultiLayer,
    /// DEDUP-2 needs a symmetric source: every virtual node's source set
    /// must equal its target set.
    Asymmetric,
}

impl std::fmt::Display for DedupError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DedupError::MultiLayer => {
                write!(
                    f,
                    "source graph is multi-layer; flatten to a single layer first"
                )
            }
            DedupError::Asymmetric => {
                write!(
                    f,
                    "source graph is not symmetric (sources != targets at a virtual node)"
                )
            }
        }
    }
}

impl std::error::Error for DedupError {}

/// Which DEDUP-1 algorithm to run (for sweeps like Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dedup1Algorithm {
    /// Naive Virtual-Nodes-First.
    NaiveVnf,
    /// Naive Real-Nodes-First.
    NaiveRnf,
    /// Greedy Real-Nodes-First (Fig. 8).
    GreedyRnf,
    /// Greedy Virtual-Nodes-First (Fig. 9).
    GreedyVnf,
}

impl Dedup1Algorithm {
    /// All four algorithms.
    pub fn all() -> [Dedup1Algorithm; 4] {
        [
            Dedup1Algorithm::NaiveVnf,
            Dedup1Algorithm::NaiveRnf,
            Dedup1Algorithm::GreedyRnf,
            Dedup1Algorithm::GreedyVnf,
        ]
    }

    /// Human label matching the paper's terminology.
    pub fn label(self) -> &'static str {
        match self {
            Dedup1Algorithm::NaiveVnf => "Naive-VNF",
            Dedup1Algorithm::NaiveRnf => "Naive-RNF",
            Dedup1Algorithm::GreedyRnf => "Greedy-RNF",
            Dedup1Algorithm::GreedyVnf => "Greedy-VNF",
        }
    }

    /// Run the algorithm, reporting [`DedupError::MultiLayer`] for sources
    /// that violate the single-layer restriction instead of producing an
    /// incorrect graph.
    pub fn try_run(
        self,
        g: &CondensedGraph,
        ordering: VertexOrdering,
        seed: u64,
    ) -> Result<Dedup1Graph, DedupError> {
        if !g.is_single_layer() {
            return Err(DedupError::MultiLayer);
        }
        Ok(self.run(g, ordering, seed))
    }

    /// Run the algorithm on a single-layer condensed graph.
    pub fn run(self, g: &CondensedGraph, ordering: VertexOrdering, seed: u64) -> Dedup1Graph {
        match self {
            Dedup1Algorithm::NaiveVnf => naive_virtual_nodes_first(g, ordering, seed),
            Dedup1Algorithm::NaiveRnf => naive_real_nodes_first(g, ordering, seed),
            Dedup1Algorithm::GreedyRnf => greedy_real_nodes_first(g, ordering, seed),
            Dedup1Algorithm::GreedyVnf => greedy_virtual_nodes_first(g, ordering, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_all() {
        assert_eq!(Dedup1Algorithm::all().len(), 4);
        assert_eq!(Dedup1Algorithm::GreedyVnf.label(), "Greedy-VNF");
    }
}
