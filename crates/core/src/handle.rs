//! The first-class graph handle: the paper's representation-independent
//! analyst surface (§3.4, §6.5).
//!
//! A [`GraphHandle`] owns everything an extraction produced — the graph in
//! whatever representation it currently has, the dense-id ↔ original-key
//! mapping, the vertex properties, and the plan report — and is the **only**
//! way to move between representations:
//!
//! * [`GraphHandle::convert`] — explicit conversion to any [`RepKind`],
//!   with a typed [`ConvertError`] explaining *why* an infeasible request
//!   fails instead of a silent `None`;
//! * [`GraphHandle::advise`] — the paper's §6.5 representation chooser as
//!   a pure function of the graph's shape and an [`AdvisorPolicy`];
//! * [`GraphHandle::convert_to_advised`] — chooser + conversion in one
//!   step, the "system picks for you" default path.
//!
//! Key-space accessors ([`GraphHandle::neighbors_by_key`],
//! [`GraphHandle::degree_by_key`], [`GraphHandle::vertex_property`]) let
//! callers stay entirely in their own key domain and never touch raw
//! [`RealId`]s.

use crate::anygraph::AnyGraph;
use crate::error::{ConvertError, Error, PatchError};
use crate::extract::ExtractionReport;
use crate::incremental::{self, GraphPatch, IncrementalState};
use graphgen_common::{IdMap, VertexOrdering};
use graphgen_dedup::{
    bitmap1, bitmap2, flatten_to_single_layer, preprocess::should_expand, try_dedup2_greedy,
    Dedup1Algorithm,
};
use graphgen_graph::{
    CondensedGraph, ExpandedGraph, GraphRep, PropValue, Properties, RealId, RepKind,
};
use graphgen_reldb::{Delta, DeltaBatch, Value};
use std::sync::Arc;

/// Which BITMAP preprocessing pass builds the bitmap representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BitmapAlgorithm {
    /// BITMAP-1: one pass per real node setting first-seen bits.
    Bitmap1,
    /// BITMAP-2: greedy-set-cover bitmaps, fewer bitmaps/bits (the paper's
    /// preferred variant).
    #[default]
    Bitmap2,
}

/// Knobs for [`GraphHandle::convert`]. The defaults reproduce the paper's
/// Fig. 10 configuration (Greedy-VNF for DEDUP-1, BITMAP-2 for BITMAP).
#[derive(Debug, Clone, Copy)]
pub struct ConvertOptions {
    /// DEDUP-1 algorithm (Fig. 12a sweeps all four).
    pub algorithm: Dedup1Algorithm,
    /// Vertex processing order for the dedup constructors.
    pub ordering: VertexOrdering,
    /// Seed for the `Random` ordering's tie-breaking.
    pub seed: u64,
    /// Worker threads for BITMAP-2 preprocessing.
    pub threads: usize,
    /// Which BITMAP preprocessing pass to run.
    pub bitmap: BitmapAlgorithm,
    /// Automatically flatten multi-layer sources before DEDUP-1/DEDUP-2
    /// (§5.2.2's suggested route). When `false` (the default), a
    /// multi-layer source reports [`ConvertError::MultiLayer`].
    pub flatten: bool,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        Self {
            algorithm: Dedup1Algorithm::GreedyVnf,
            ordering: VertexOrdering::Descending,
            seed: 0,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            bitmap: BitmapAlgorithm::Bitmap2,
            flatten: false,
        }
    }
}

/// Policy for the §6.5 representation chooser ([`GraphHandle::advise`]).
#[derive(Debug, Clone, Copy)]
pub struct AdvisorPolicy {
    /// Hand back EXP when the expanded graph is at most this factor larger
    /// than the condensed one (the paper uses 1.2 = +20%): small graphs are
    /// not worth the condensed machinery.
    pub expand_threshold: f64,
    /// Permit the structural dedup representations (DEDUP-1/2). Disable for
    /// extraction-latency-critical paths: BITMAP preprocessing is cheaper
    /// than the dedup constructions (Fig. 11's trade-off).
    pub allow_dedup: bool,
}

impl Default for AdvisorPolicy {
    fn default() -> Self {
        Self {
            expand_threshold: 1.2,
            allow_dedup: true,
        }
    }
}

/// An extracted graph plus everything needed to use it: id ↔ key mapping,
/// vertex properties, and the plan report. See the module docs for the
/// conversion/advisor surface.
///
/// # Structural sharing
///
/// The id ↔ key mapping and the property store live behind `Arc`s, and a
/// condensed graph's adjacency is `Arc`-chunked (`graphgen_graph::chunk`),
/// so **cloning a handle is cheap** — `O(#chunks)` pointer bumps plus a
/// liveness-bit copy, never a traversal of the data. Mutations go
/// copy-on-write: patching one handle copies only the adjacency chunks the
/// delta lands in (and the id map / properties only if a node view
/// changed), leaving every other clone byte-identical to what it was. The
/// serving layer's delta-bound publish is built on exactly this contract;
/// [`GraphHandle::reader_clone`] is its publication primitive.
#[derive(Debug, Clone)]
pub struct GraphHandle {
    graph: AnyGraph,
    ids: Arc<IdMap<Value>>,
    properties: Arc<Properties>,
    report: ExtractionReport,
    incremental: Option<Arc<IncrementalState>>,
}

impl GraphHandle {
    /// Assemble a handle from parts (the extractor's exit point; also handy
    /// for synthetic graphs in tests and benchmarks).
    pub fn from_parts(
        graph: AnyGraph,
        ids: IdMap<Value>,
        properties: Properties,
        report: ExtractionReport,
    ) -> Self {
        Self {
            graph,
            ids: Arc::new(ids),
            properties: Arc::new(properties),
            report,
            incremental: None,
        }
    }

    /// Assemble a handle that carries the delta-maintenance state (the
    /// incremental extractor's exit point). Takes the `Arc`ed stores the
    /// replay engine worked on directly — no unwrap/re-wrap round-trip.
    pub(crate) fn from_parts_incremental(
        graph: AnyGraph,
        ids: Arc<IdMap<Value>>,
        properties: Arc<Properties>,
        report: ExtractionReport,
        state: IncrementalState,
    ) -> Self {
        Self {
            graph,
            ids,
            properties,
            report,
            incremental: Some(Arc::new(state)),
        }
    }

    /// Assemble a handle from decoded snapshot sections (the binary
    /// snapshot decoder's exit point; the report is not persisted).
    pub(crate) fn from_snapshot_parts(
        graph: AnyGraph,
        ids: IdMap<Value>,
        properties: Properties,
        mut state: Option<IncrementalState>,
    ) -> Self {
        // The vid → real-id side-table is not part of the snapshot format;
        // rebuild it against the decoded id map before the state serves
        // deltas.
        if let Some(s) = state.as_mut() {
            s.rebuild_real_ids(&ids);
        }
        Self {
            graph,
            ids: Arc::new(ids),
            properties: Arc::new(properties),
            report: ExtractionReport::default(),
            incremental: state.map(Arc::new),
        }
    }

    /// A structurally shared clone for serving **readers**: the graph's
    /// adjacency chunks, the id map, and the property store are `Arc`-shared
    /// with this handle (`O(#chunks)` pointer bumps), and the
    /// delta-maintenance state is *not* carried over. The clone therefore
    /// cannot [`GraphHandle::apply_delta`] — it is an immutable-by-intent
    /// serving view — and the writer that keeps patching this handle in
    /// place never pays a maintenance-state copy for having published it.
    /// Later patches copy-on-write only what they touch; the clone stays
    /// byte-identical ([`GraphHandle::canonical_bytes`]) to the moment it
    /// was taken.
    pub fn reader_clone(&self) -> GraphHandle {
        GraphHandle {
            graph: self.graph.clone(),
            ids: Arc::clone(&self.ids),
            properties: Arc::clone(&self.properties),
            report: self.report.clone(),
            incremental: None,
        }
    }

    /// The delta-maintenance state, if this handle carries one (snapshot
    /// codec access).
    pub(crate) fn incremental_state(&self) -> Option<&IncrementalState> {
        self.incremental.as_deref()
    }

    /// The graph, in whatever representation the handle currently holds.
    /// `GraphHandle` also implements [`GraphRep`] directly, so most callers
    /// never need this.
    pub fn graph(&self) -> &AnyGraph {
        &self.graph
    }

    /// Mutable access for the 7-operation mutation API.
    pub fn graph_mut(&mut self) -> &mut AnyGraph {
        &mut self.graph
    }

    /// The dense node id ↔ original key mapping.
    pub fn ids(&self) -> &IdMap<Value> {
        &self.ids
    }

    /// Vertex properties from the `Nodes` statements.
    pub fn properties(&self) -> &Properties {
        &self.properties
    }

    /// Plan and timing report of the extraction that produced this handle.
    pub fn report(&self) -> &ExtractionReport {
        &self.report
    }

    /// Which representation the handle currently holds.
    pub fn kind(&self) -> RepKind {
        self.graph.kind()
    }

    /// Decompose into `(graph, ids, properties, report)`. Any incremental
    /// maintenance state is dropped — a decomposed handle can no longer
    /// apply deltas. Sections shared with other clones are copied out.
    pub fn into_parts(self) -> (AnyGraph, IdMap<Value>, Properties, ExtractionReport) {
        (
            self.graph,
            Arc::try_unwrap(self.ids).unwrap_or_else(|shared| (*shared).clone()),
            Arc::try_unwrap(self.properties).unwrap_or_else(|shared| (*shared).clone()),
            self.report,
        )
    }

    // ---- incremental maintenance ---------------------------------------

    /// Live entries in the incremental engine's dense-id dictionary (0 for
    /// a plain handle). Observability: the serving layer sums this across
    /// graphs into the `graphgen_intern_entries` gauge.
    pub fn intern_entries(&self) -> usize {
        self.incremental
            .as_deref()
            .map_or(0, IncrementalState::intern_entries)
    }

    /// True if this handle carries delta-maintenance state (extracted with
    /// `GraphGenConfig::incremental`), i.e. [`GraphHandle::apply_delta`]
    /// will work. Conversions preserve the state.
    pub fn is_incremental(&self) -> bool {
        self.incremental.is_some()
    }

    /// The base tables this handle's extraction spec reads (node views
    /// first, then chain atoms, deduplicated), or empty for
    /// non-incremental handles. A [`Delta`] against any other table is
    /// guaranteed to leave the handle untouched — the serving layer uses
    /// this to skip graphs a mutation batch cannot affect. Note the
    /// converse does not hold: a delta against a referenced table must be
    /// applied (it advances the maintenance state) even when it changes no
    /// visible edge.
    pub fn referenced_tables(&self) -> Vec<String> {
        self.incremental
            .as_deref()
            .map(IncrementalState::referenced_tables)
            .unwrap_or_default()
    }

    /// Patch the graph in place for one base-table [`Delta`] produced by
    /// the `reldb` mutation API, with work proportional to the delta — see
    /// [`crate::incremental`] for the propagation rules. Apply deltas in
    /// the order the database applied them.
    ///
    /// After any sequence of deltas the handle's canonical serialization
    /// ([`GraphHandle::canonical_bytes`]) is byte-identical to a
    /// from-scratch extraction on the mutated database.
    ///
    /// # Errors
    ///
    /// [`PatchError::NotIncremental`] if the handle has no maintenance
    /// state; [`PatchError::Inconsistent`] if the delta contradicts the
    /// maintained state (the handle should then be re-extracted — its
    /// contents are no longer trustworthy).
    pub fn apply_delta(&mut self, delta: &Delta) -> Result<GraphPatch, Error> {
        let Some(state) = self.incremental.as_mut() else {
            return Err(PatchError::NotIncremental.into());
        };
        // `make_mut` is free while the writer is the state's only owner
        // (reader clones never carry it); a fully shared clone pays one
        // state copy on its first patch and is sole owner afterwards.
        incremental::apply_delta_state(
            Arc::make_mut(state),
            &mut self.graph,
            &mut self.ids,
            &mut self.properties,
            delta,
        )
    }

    /// Apply a multi-table [`DeltaBatch`] in one round-trip: every delta in
    /// batch order, with the per-delta [`GraphPatch`] counters merged. The
    /// serving layer's unit of application — one batch is one published
    /// version and one write-ahead-log record.
    ///
    /// # Errors
    ///
    /// Same contract as [`GraphHandle::apply_delta`]. A failure mid-batch
    /// leaves the handle partially patched and untrustworthy (re-extract),
    /// exactly like a failed single delta.
    pub fn apply_batch(&mut self, batch: &DeltaBatch) -> Result<GraphPatch, Error> {
        let mut total = GraphPatch::default();
        for delta in batch.deltas() {
            total.merge(&self.apply_delta(delta)?);
        }
        Ok(total)
    }

    /// A canonical, key-space byte serialization of the logical graph
    /// (sorted node keys with their properties, then sorted edge key
    /// pairs). Two handles over the same logical graph serialize to the
    /// same bytes regardless of representation, thread count, or whether
    /// they were patched or re-extracted — the equality the incremental
    /// oracle tests assert.
    pub fn canonical_bytes(&self) -> Vec<u8> {
        crate::serialize::canonical_bytes(self)
    }

    /// Encode this handle as a self-contained binary snapshot: the graph in
    /// its current representation, the id ↔ key mapping, the properties,
    /// and (for incremental handles) the complete delta-maintenance state.
    /// See [`crate::serialize`] for the format. The extraction report is
    /// diagnostics and is not included.
    pub fn to_snapshot_bytes(&self) -> Vec<u8> {
        crate::serialize::encode_snapshot(self)
    }

    /// Decode a snapshot produced by [`GraphHandle::to_snapshot_bytes`].
    /// The recovered handle is structurally verbatim: same representation,
    /// same canonical bytes, and — for incremental handles — `apply_delta`
    /// continues exactly where the encoded handle stopped.
    ///
    /// # Errors
    ///
    /// [`crate::ErrorKind::Snapshot`] on bad magic, truncation, trailing
    /// bytes, or structural corruption.
    pub fn from_snapshot_bytes(bytes: &[u8]) -> Result<GraphHandle, Error> {
        crate::serialize::decode_snapshot(bytes)
    }

    /// Override the worker-thread count delta probes fan out over (no-op
    /// on non-incremental handles). Results are byte-identical for any
    /// value. A snapshot records the count it was encoded with, which may
    /// not fit the machine decoding it — callers recovering a handle apply
    /// their own configuration through this.
    pub fn set_threads(&mut self, threads: usize) {
        if let Some(state) = self.incremental.as_mut() {
            if state.threads() != threads.max(1) {
                Arc::make_mut(state).set_threads(threads);
            }
        }
    }

    // ---- key-space accessors -------------------------------------------

    /// Original key of a vertex.
    pub fn key_of(&self, u: RealId) -> &Value {
        self.ids.key_of(u.0)
    }

    /// Vertex by original key.
    pub fn vertex_of(&self, key: &Value) -> Option<RealId> {
        self.ids.get(key).map(RealId)
    }

    /// Out-neighbors of the vertex with this key, as keys. `None` if the
    /// key names no vertex.
    pub fn neighbors_by_key(&self, key: &Value) -> Option<Vec<&Value>> {
        let u = self.vertex_of(key)?;
        let mut out = Vec::new();
        self.graph
            .for_each_neighbor(u, &mut |v| out.push(self.ids.key_of(v.0)));
        Some(out)
    }

    /// Out-degree of the vertex with this key. `None` if the key names no
    /// vertex.
    pub fn degree_by_key(&self, key: &Value) -> Option<usize> {
        Some(self.graph.degree(self.vertex_of(key)?))
    }

    /// A property of the vertex with this key. `None` if the key names no
    /// vertex or the property is unset.
    pub fn vertex_property(&self, key: &Value, name: &str) -> Option<&PropValue> {
        self.properties.get(self.vertex_of(key)?, name)
    }

    // ---- conversion and the §6.5 advisor -------------------------------

    /// The condensed core the conversions work from, or the typed reason
    /// there is none.
    fn condensed_core(&self) -> Result<&CondensedGraph, ConvertError> {
        self.graph.as_condensed().ok_or(ConvertError::NotCondensed {
            from: self.graph.kind(),
        })
    }

    /// A single-layer condensed core: borrowed when already single-layer,
    /// flattened (owned) when `opts.flatten` allows, an error otherwise.
    fn single_layer_core(
        &self,
        opts: &ConvertOptions,
    ) -> Result<std::borrow::Cow<'_, CondensedGraph>, ConvertError> {
        single_layer_of(self.condensed_core()?, opts)
    }

    /// Convert to the requested representation. Every feasible conversion
    /// goes through here; infeasible ones explain themselves:
    ///
    /// | target | requirement | failure |
    /// |---|---|---|
    /// | `Exp` | none | — |
    /// | `CDup` | condensed core | [`ConvertError::NotCondensed`] |
    /// | `Bitmap` | condensed core | [`ConvertError::NotCondensed`] |
    /// | `Dedup1` | + single layer | [`ConvertError::MultiLayer`] |
    /// | `Dedup2` | + symmetric | [`ConvertError::Asymmetric`] |
    ///
    /// Converting to the representation the handle already holds clones it.
    /// The id mapping, properties, and report carry over unchanged.
    pub fn convert(
        &self,
        target: RepKind,
        opts: &ConvertOptions,
    ) -> Result<GraphHandle, ConvertError> {
        // Same-representation requests clone as-is. This matters beyond
        // speed: DEDUP-2 retains no condensed core, so re-*constructing*
        // DEDUP-2 from a DEDUP-2 handle would be infeasible even though
        // holding it clearly is.
        if target == self.graph.kind() {
            return Ok(self.clone());
        }
        if self.incremental.is_some() {
            return self.convert_incremental(target, opts);
        }
        let graph = match target {
            RepKind::Exp => AnyGraph::Exp(ExpandedGraph::from_rep(&self.graph)),
            RepKind::CDup => AnyGraph::CDup(self.condensed_core()?.clone()),
            RepKind::Dedup1 => {
                let core = self.single_layer_core(opts)?;
                AnyGraph::Dedup1(opts.algorithm.try_run(&core, opts.ordering, opts.seed)?)
            }
            RepKind::Dedup2 => {
                let core = self.single_layer_core(opts)?;
                AnyGraph::Dedup2(try_dedup2_greedy(&core, opts.ordering, opts.seed)?)
            }
            RepKind::Bitmap => {
                let core = self.condensed_core()?.clone();
                AnyGraph::Bitmap(match opts.bitmap {
                    BitmapAlgorithm::Bitmap1 => bitmap1(core),
                    BitmapAlgorithm::Bitmap2 => bitmap2(core, opts.threads).0,
                })
            }
        };
        Ok(GraphHandle {
            graph,
            ids: self.ids.clone(),
            properties: self.properties.clone(),
            report: self.report.clone(),
            incremental: None,
        })
    }

    /// Conversion for handles carrying delta-maintenance state. The state's
    /// pristine condensed structure (the handle's own graph while it is
    /// C-DUP, its shadow afterwards) is the conversion source, so an
    /// incremental handle never loses its condensed core — even EXP and
    /// DEDUP-2 handles can convert onward. Representations are built from a
    /// *compacted* copy so deleted slots enter them without stale
    /// adjacency (a later key revival re-adds edges through the patch
    /// engine).
    fn convert_incremental(
        &self,
        target: RepKind,
        opts: &ConvertOptions,
    ) -> Result<GraphHandle, ConvertError> {
        let state = self.incremental.as_deref().expect("checked by caller");
        let pristine: CondensedGraph = match (&self.graph, state.shadow_graph()) {
            (AnyGraph::CDup(g), _) => g.clone(),
            (_, Some(shadow)) => shadow.clone(),
            // Reachable only if graph_mut() swapped the representation
            // behind the maintenance state's back: the pristine core is
            // gone, so report it like any other core-less source.
            (_, None) => {
                return Err(ConvertError::NotCondensed {
                    from: self.graph.kind(),
                })
            }
        };
        let mut new_state = state.clone();
        let graph = if target == RepKind::CDup {
            new_state.drop_shadow();
            AnyGraph::CDup(pristine)
        } else {
            let mut core = pristine.clone();
            core.compact();
            let g = match target {
                RepKind::CDup => unreachable!("handled above"),
                RepKind::Exp => AnyGraph::Exp(ExpandedGraph::from_rep(&core)),
                RepKind::Dedup1 => {
                    let single = single_layer_of(&core, opts)?;
                    AnyGraph::Dedup1(opts.algorithm.try_run(&single, opts.ordering, opts.seed)?)
                }
                RepKind::Dedup2 => {
                    let single = single_layer_of(&core, opts)?;
                    AnyGraph::Dedup2(try_dedup2_greedy(&single, opts.ordering, opts.seed)?)
                }
                RepKind::Bitmap => AnyGraph::Bitmap(match opts.bitmap {
                    BitmapAlgorithm::Bitmap1 => bitmap1(core),
                    BitmapAlgorithm::Bitmap2 => bitmap2(core, opts.threads).0,
                }),
            };
            new_state.set_shadow(pristine);
            g
        };
        Ok(GraphHandle {
            graph,
            ids: self.ids.clone(),
            properties: self.properties.clone(),
            report: self.report.clone(),
            incremental: Some(Arc::new(new_state)),
        })
    }

    /// The §6.5 chooser: which representation this graph should be held in
    /// under `policy`. The advice is always feasible for
    /// [`GraphHandle::convert`] (given default [`ConvertOptions`]).
    ///
    /// * no condensed core (already EXP, or DEDUP-2): keep what we have —
    ///   both are duplicate-free;
    /// * expansion within `policy.expand_threshold`: EXP — small graphs
    ///   don't repay the condensed machinery;
    /// * symmetric single-layer (the co-occurrence shape): DEDUP-2, the
    ///   smallest duplicate-free representation (Fig. 10);
    /// * other single-layer: DEDUP-1;
    /// * multi-layer: BITMAP — the only duplicate-free representation that
    ///   handles layered condensed graphs directly.
    pub fn advise(&self, policy: &AdvisorPolicy) -> RepKind {
        // Incremental handles keep a pristine condensed shadow after
        // converting away from C-DUP; the chooser consults it so the
        // advice stays shape-aware (and convert can always realize it).
        let shadow = self
            .incremental
            .as_deref()
            .and_then(IncrementalState::shadow_graph);
        let Some(core) = self.graph.as_condensed().or(shadow) else {
            return self.graph.kind();
        };
        if should_expand(core, policy.expand_threshold) {
            return RepKind::Exp;
        }
        if policy.allow_dedup && core.is_single_layer() {
            return match graphgen_dedup::check_symmetric(core) {
                Ok(()) => RepKind::Dedup2,
                Err(_) => RepKind::Dedup1,
            };
        }
        RepKind::Bitmap
    }

    /// Chooser + conversion in one step: convert to whatever
    /// [`GraphHandle::advise`] picks. This is the transparent "the system
    /// decides" path of §6.5.
    pub fn convert_to_advised(
        &self,
        policy: &AdvisorPolicy,
        opts: &ConvertOptions,
    ) -> Result<GraphHandle, ConvertError> {
        self.convert(self.advise(policy), opts)
    }
}

/// A single-layer view of `core`: borrowed when already single-layer,
/// flattened (owned) when `opts.flatten` allows, [`ConvertError::MultiLayer`]
/// otherwise.
fn single_layer_of<'a>(
    core: &'a CondensedGraph,
    opts: &ConvertOptions,
) -> Result<std::borrow::Cow<'a, CondensedGraph>, ConvertError> {
    if core.is_single_layer() {
        Ok(std::borrow::Cow::Borrowed(core))
    } else if opts.flatten {
        Ok(std::borrow::Cow::Owned(flatten_to_single_layer(core)))
    } else {
        Err(ConvertError::MultiLayer)
    }
}

/// The handle is itself a graph: the 7-operation API dispatches to the
/// representation it currently holds, so algorithms take `&GraphHandle`
/// directly.
impl GraphRep for GraphHandle {
    fn kind(&self) -> RepKind {
        self.graph.kind()
    }
    fn num_real_slots(&self) -> usize {
        self.graph.num_real_slots()
    }
    fn is_alive(&self, u: RealId) -> bool {
        self.graph.is_alive(u)
    }
    fn num_vertices(&self) -> usize {
        self.graph.num_vertices()
    }
    fn for_each_neighbor(&self, u: RealId, f: &mut dyn FnMut(RealId)) {
        self.graph.for_each_neighbor(u, f)
    }
    fn exists_edge(&self, u: RealId, v: RealId) -> bool {
        self.graph.exists_edge(u, v)
    }
    fn add_vertex(&mut self) -> RealId {
        self.graph.add_vertex()
    }
    fn delete_vertex(&mut self, u: RealId) {
        self.graph.delete_vertex(u)
    }
    fn revive_vertex(&mut self, u: RealId) {
        self.graph.revive_vertex(u)
    }
    fn compact(&mut self) {
        self.graph.compact()
    }
    fn add_edge(&mut self, u: RealId, v: RealId) {
        self.graph.add_edge(u, v)
    }
    fn delete_edge(&mut self, u: RealId, v: RealId) {
        self.graph.delete_edge(u, v)
    }
    fn stored_edge_count(&self) -> u64 {
        self.graph.stored_edge_count()
    }
    fn stored_node_count(&self) -> usize {
        self.graph.stored_node_count()
    }
    fn heap_bytes(&self) -> usize {
        self.graph.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{expand_to_edge_list, CondensedBuilder};

    fn handle_of(graph: AnyGraph) -> GraphHandle {
        let n = graph.num_real_slots();
        let mut ids = IdMap::new();
        for i in 0..n {
            ids.intern(Value::int(i as i64 * 10));
        }
        let mut properties = Properties::new(n);
        for i in 0..n {
            properties.set(RealId(i as u32), "Name", PropValue::Text(format!("n{i}")));
        }
        GraphHandle::from_parts(graph, ids, properties, ExtractionReport::default())
    }

    fn symmetric_handle() -> GraphHandle {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        handle_of(AnyGraph::CDup(b.build()))
    }

    fn multilayer_handle() -> GraphHandle {
        let mut b = CondensedBuilder::new(4);
        let l1 = b.add_virtual();
        let l2 = b.add_virtual();
        b.virtual_to_virtual(l1, l2);
        for u in 0..3u32 {
            b.real_to_virtual(RealId(u), l1);
            b.virtual_to_real(l2, RealId(u + 1));
        }
        handle_of(AnyGraph::CDup(b.build()))
    }

    fn asymmetric_handle() -> GraphHandle {
        let mut b = CondensedBuilder::new(3);
        let v = b.add_virtual();
        b.real_to_virtual(RealId(0), v);
        b.virtual_to_real(v, RealId(1));
        handle_of(AnyGraph::CDup(b.build()))
    }

    /// Only *direct* real→real edges, and directed ones: `member_sets`'
    /// virtual-node scan is vacuous here, so the direct-edge symmetry check
    /// must be what refuses DEDUP-2.
    fn asymmetric_direct_handle() -> GraphHandle {
        let mut b = CondensedBuilder::new(3);
        b.direct(RealId(0), RealId(1));
        b.direct(RealId(2), RealId(1));
        handle_of(AnyGraph::CDup(b.build()))
    }

    #[test]
    fn directed_direct_edges_refuse_dedup2() {
        let h = asymmetric_direct_handle();
        let opts = ConvertOptions::default();
        // Regression: this used to return Ok with a corrupted edge set
        // (dropped (2,1), fabricated (1,0)).
        assert_eq!(
            h.convert(RepKind::Dedup2, &opts).unwrap_err(),
            ConvertError::Asymmetric
        );
        // The advisor must route such graphs to DEDUP-1 instead.
        let strict = AdvisorPolicy {
            expand_threshold: 0.0,
            ..Default::default()
        };
        assert_eq!(h.advise(&strict), RepKind::Dedup1);
        let d1 = h.convert_to_advised(&strict, &opts).unwrap();
        assert_eq!(expand_to_edge_list(&d1), expand_to_edge_list(&h));
    }

    #[test]
    fn every_feasible_conversion_preserves_semantics() {
        let h = symmetric_handle();
        let truth = expand_to_edge_list(&h);
        let opts = ConvertOptions::default();
        for target in RepKind::all() {
            let converted = h.convert(target, &opts).unwrap();
            assert_eq!(converted.kind(), target);
            assert_eq!(expand_to_edge_list(&converted), truth, "{target}");
            // Ids and properties carry over.
            assert_eq!(converted.key_of(RealId(3)), &Value::int(30));
            assert_eq!(
                converted.vertex_property(&Value::int(30), "Name"),
                Some(&PropValue::Text("n3".into()))
            );
        }
    }

    #[test]
    fn multilayer_source_reports_multilayer_for_dedup() {
        let h = multilayer_handle();
        let opts = ConvertOptions::default();
        assert_eq!(
            h.convert(RepKind::Dedup1, &opts).unwrap_err(),
            ConvertError::MultiLayer
        );
        assert_eq!(
            h.convert(RepKind::Dedup2, &opts).unwrap_err(),
            ConvertError::MultiLayer
        );
        // BITMAP handles multi-layer graphs directly.
        let bmp = h.convert(RepKind::Bitmap, &opts).unwrap();
        assert_eq!(expand_to_edge_list(&bmp), expand_to_edge_list(&h));
    }

    #[test]
    fn flatten_option_unlocks_multilayer_dedup1() {
        let h = multilayer_handle();
        let opts = ConvertOptions {
            flatten: true,
            ..Default::default()
        };
        let d1 = h.convert(RepKind::Dedup1, &opts).unwrap();
        assert_eq!(expand_to_edge_list(&d1), expand_to_edge_list(&h));
    }

    #[test]
    fn asymmetric_source_reports_asymmetric_for_dedup2() {
        let h = asymmetric_handle();
        let opts = ConvertOptions::default();
        assert_eq!(
            h.convert(RepKind::Dedup2, &opts).unwrap_err(),
            ConvertError::Asymmetric
        );
        // DEDUP-1 does not need symmetry.
        assert!(h.convert(RepKind::Dedup1, &opts).is_ok());
    }

    #[test]
    fn exp_source_reports_not_condensed() {
        let h = symmetric_handle();
        let opts = ConvertOptions::default();
        let exp = h.convert(RepKind::Exp, &opts).unwrap();
        for target in [
            RepKind::CDup,
            RepKind::Dedup1,
            RepKind::Dedup2,
            RepKind::Bitmap,
        ] {
            assert_eq!(
                exp.convert(target, &opts).unwrap_err(),
                ConvertError::NotCondensed { from: RepKind::Exp },
                "{target}"
            );
        }
        // EXP -> EXP still fine.
        assert!(exp.convert(RepKind::Exp, &opts).is_ok());
    }

    #[test]
    fn advise_is_always_feasible_and_shape_aware() {
        let opts = ConvertOptions::default();
        let policy = AdvisorPolicy::default();
        // Tiny symmetric graph: expansion is cheap.
        let h = symmetric_handle();
        assert_eq!(h.advise(&policy), RepKind::Exp);
        // Forbid expansion: symmetric single-layer -> DEDUP-2.
        let strict = AdvisorPolicy {
            expand_threshold: 0.0,
            ..Default::default()
        };
        assert_eq!(h.advise(&strict), RepKind::Dedup2);
        assert_eq!(
            h.advise(&AdvisorPolicy {
                allow_dedup: false,
                ..strict
            }),
            RepKind::Bitmap
        );
        // Asymmetric single-layer -> DEDUP-1.
        assert_eq!(asymmetric_handle().advise(&strict), RepKind::Dedup1);
        // Multi-layer -> BITMAP.
        assert_eq!(multilayer_handle().advise(&strict), RepKind::Bitmap);
        // convert_to_advised succeeds for every shape.
        for h in [symmetric_handle(), asymmetric_handle(), multilayer_handle()] {
            for policy in [policy, strict] {
                let advised = h.convert_to_advised(&policy, &opts).unwrap();
                assert_eq!(advised.kind(), h.advise(&policy));
                assert_eq!(expand_to_edge_list(&advised), expand_to_edge_list(&h));
            }
        }
    }

    #[test]
    fn same_kind_conversion_stays_feasible_without_a_core() {
        let opts = ConvertOptions::default();
        let strict = AdvisorPolicy {
            expand_threshold: 0.0,
            ..Default::default()
        };
        // DEDUP-2 retains no condensed core, yet advise/convert on a
        // DEDUP-2 handle must keep the "advice is always feasible"
        // contract (regression: used to fail with NotCondensed).
        let d2 = symmetric_handle().convert(RepKind::Dedup2, &opts).unwrap();
        assert_eq!(d2.advise(&strict), RepKind::Dedup2);
        let again = d2.convert_to_advised(&strict, &opts).unwrap();
        assert_eq!(again.kind(), RepKind::Dedup2);
        assert_eq!(expand_to_edge_list(&again), expand_to_edge_list(&d2));
    }

    #[test]
    fn key_space_accessors_never_expose_real_ids() {
        let h = symmetric_handle();
        let mut nbrs = h.neighbors_by_key(&Value::int(30)).unwrap();
        nbrs.sort();
        assert_eq!(
            nbrs,
            vec![
                &Value::int(0),
                &Value::int(10),
                &Value::int(20),
                &Value::int(40)
            ]
        );
        assert_eq!(h.degree_by_key(&Value::int(30)), Some(4));
        assert_eq!(h.degree_by_key(&Value::int(999)), None);
        assert!(h.neighbors_by_key(&Value::int(999)).is_none());
        assert_eq!(
            h.vertex_property(&Value::int(0), "Name"),
            Some(&PropValue::Text("n0".into()))
        );
        assert_eq!(h.vertex_property(&Value::int(0), "Missing"), None);
    }
}
