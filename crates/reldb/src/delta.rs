//! Typed mutation logs for incremental graph maintenance.
//!
//! The paper's GraphGen re-runs its segment queries from scratch whenever
//! the base tables change. The mutation API on [`crate::Database`]
//! ([`Database::insert_rows`], [`Database::delete_rows`]) instead records
//! every change as a [`Delta`] — an ordered log of signed rows against one
//! table — which `graphgen-core`'s incremental module propagates through
//! the extraction plan with work proportional to the delta (FO+MOD-style
//! delta processing, Berkholz et al.).
//!
//! A [`Delta`] only ever describes mutations that **actually happened**:
//! `delete_rows` silently drops requested rows that were not present, so a
//! delete of a never-inserted row yields an empty delta and downstream
//! `apply_delta` is a no-op.
//!
//! [`Database::insert_rows`]: crate::Database::insert_rows
//! [`Database::delete_rows`]: crate::Database::delete_rows

use crate::error::{DbError, DbResult};
use crate::value::Value;
use graphgen_common::codec::{self, CodecError, Reader};

/// Whether a [`DeltaRow`] entered or left the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DeltaOp {
    /// The row was appended to the table.
    Insert,
    /// One occurrence of the row was removed from the table.
    Delete,
}

impl DeltaOp {
    /// The row-multiplicity sign of this operation: `+1` for inserts,
    /// `-1` for deletes (the form the delta-join rules consume).
    pub fn sign(self) -> i64 {
        match self {
            DeltaOp::Insert => 1,
            DeltaOp::Delete => -1,
        }
    }
}

/// One logged mutation: a full row plus the operation applied to it.
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaRow {
    /// The row values, in schema column order.
    pub values: Vec<Value>,
    /// Insert or delete.
    pub op: DeltaOp,
}

/// An ordered mutation log against a single table.
///
/// Produced by [`crate::Database::insert_rows`] and
/// [`crate::Database::delete_rows`]; several same-table deltas can be
/// combined with [`Delta::then`] so that e.g. an insert and a delete of the
/// same row travel as one batch (they cancel during propagation).
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    table: String,
    rows: Vec<DeltaRow>,
}

impl Delta {
    /// A new, empty delta against `table`.
    pub fn new(table: impl Into<String>) -> Self {
        Self {
            table: table.into(),
            rows: Vec::new(),
        }
    }

    /// The table this delta mutates.
    pub fn table(&self) -> &str {
        &self.table
    }

    /// The logged rows, in the order the mutations were applied.
    pub fn rows(&self) -> &[DeltaRow] {
        &self.rows
    }

    /// Number of logged mutations.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing was mutated (e.g. every requested delete was absent).
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Append a logged mutation. The `Database` mutation API is the normal
    /// producer; hand-built deltas are also accepted by the incremental
    /// maintenance layer, but they must accurately describe mutations that
    /// were applied to the database — a delta claiming to delete a row that
    /// was never present makes `apply_delta` report an inconsistency.
    pub fn push(&mut self, values: Vec<Value>, op: DeltaOp) {
        self.rows.push(DeltaRow { values, op });
    }

    /// Concatenate another delta **against the same table** onto this one,
    /// preserving mutation order. Errors with [`DbError::Invalid`] on a
    /// table mismatch.
    pub fn then(mut self, other: Delta) -> DbResult<Delta> {
        if self.table != other.table {
            return Err(DbError::Invalid(format!(
                "cannot combine deltas for `{}` and `{}`",
                self.table, other.table
            )));
        }
        self.rows.extend(other.rows);
        Ok(self)
    }

    /// Append the binary encoding of this delta: table name, row count,
    /// then per row an op tag (`0` insert, `1` delete) and the
    /// length-prefixed values. This is the write-ahead-log record payload
    /// format of the serving layer.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_str(out, &self.table);
        codec::put_len(out, self.rows.len());
        for row in &self.rows {
            codec::put_u8(out, matches!(row.op, DeltaOp::Delete) as u8);
            codec::put_len(out, row.values.len());
            for v in &row.values {
                v.encode_into(out);
            }
        }
    }

    /// Decode one delta (inverse of [`Delta::encode_into`]).
    pub fn decode(r: &mut Reader<'_>) -> Result<Delta, CodecError> {
        let table = r.str()?.to_string();
        let n = r.len()?;
        let mut rows = Vec::with_capacity(n);
        for _ in 0..n {
            let at = r.pos();
            let op = match r.u8()? {
                0 => DeltaOp::Insert,
                1 => DeltaOp::Delete,
                tag => return Err(CodecError::invalid(at, format!("bad delta op tag {tag}"))),
            };
            let arity = r.len()?;
            let mut values = Vec::with_capacity(arity);
            for _ in 0..arity {
                values.push(Value::decode(r)?);
            }
            rows.push(DeltaRow { values, op });
        }
        Ok(Delta { table, rows })
    }
}

/// An ordered batch of mutations spanning **several tables**, travelling as
/// one unit: one `apply_batch` round-trip on the graph side (see
/// `graphgen-core`) and one write-ahead-log record on the persistence
/// side, amortizing per-delta patch and fsync overhead (the ROADMAP
/// follow-on to single-table [`Delta`]s).
///
/// Deltas are kept in application order; pushing a delta for the table the
/// batch currently ends with folds it into that trailing delta, so a
/// ping-ponging producer still yields a compact batch.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DeltaBatch {
    deltas: Vec<Delta>,
}

impl DeltaBatch {
    /// A new, empty batch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a delta, preserving order. Consecutive deltas against the
    /// same table are merged (order within the table is preserved); empty
    /// deltas are dropped.
    pub fn push(&mut self, delta: Delta) {
        if delta.is_empty() {
            return;
        }
        if let Some(last) = self.deltas.last_mut() {
            if last.table == delta.table {
                last.rows.extend(delta.rows);
                return;
            }
        }
        self.deltas.push(delta);
    }

    /// The deltas in application order.
    pub fn deltas(&self) -> &[Delta] {
        &self.deltas
    }

    /// Total logged mutations across every delta.
    pub fn len(&self) -> usize {
        self.deltas.iter().map(Delta::len).sum()
    }

    /// True if no delta carries any mutation.
    pub fn is_empty(&self) -> bool {
        self.deltas.is_empty()
    }

    /// Append the binary encoding: delta count, then each delta.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_len(out, self.deltas.len());
        for d in &self.deltas {
            d.encode_into(out);
        }
    }

    /// Encode into a fresh buffer (the WAL record payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    /// Decode one batch (inverse of [`DeltaBatch::encode_into`]).
    pub fn decode(r: &mut Reader<'_>) -> Result<DeltaBatch, CodecError> {
        let n = r.len()?;
        let mut deltas = Vec::with_capacity(n);
        for _ in 0..n {
            deltas.push(Delta::decode(r)?);
        }
        Ok(DeltaBatch { deltas })
    }
}

impl From<Delta> for DeltaBatch {
    fn from(delta: Delta) -> Self {
        let mut b = DeltaBatch::new();
        b.push(delta);
        b
    }
}

impl FromIterator<Delta> for DeltaBatch {
    fn from_iter<I: IntoIterator<Item = Delta>>(iter: I) -> Self {
        let mut b = DeltaBatch::new();
        for d in iter {
            b.push(d);
        }
        b
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row(v: i64) -> Vec<Value> {
        vec![Value::int(v)]
    }

    #[test]
    fn signs() {
        assert_eq!(DeltaOp::Insert.sign(), 1);
        assert_eq!(DeltaOp::Delete.sign(), -1);
    }

    #[test]
    fn then_concatenates_same_table() {
        let mut a = Delta::new("T");
        a.push(row(1), DeltaOp::Insert);
        let mut b = Delta::new("T");
        b.push(row(1), DeltaOp::Delete);
        let c = a.then(b).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.rows()[0].op, DeltaOp::Insert);
        assert_eq!(c.rows()[1].op, DeltaOp::Delete);
    }

    #[test]
    fn then_rejects_table_mismatch() {
        let a = Delta::new("T");
        let b = Delta::new("U");
        assert!(matches!(a.then(b), Err(DbError::Invalid(_))));
    }

    #[test]
    fn empty_delta_reports_empty() {
        let d = Delta::new("T");
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.table(), "T");
    }

    #[test]
    fn delta_codec_roundtrip() {
        let mut d = Delta::new("T");
        d.push(
            vec![Value::int(1), Value::str("a"), Value::Null],
            DeltaOp::Insert,
        );
        d.push(
            vec![Value::int(-9), Value::str(""), Value::int(0)],
            DeltaOp::Delete,
        );
        let mut buf = Vec::new();
        d.encode_into(&mut buf);
        let mut r = Reader::new(&buf);
        let back = Delta::decode(&mut r).unwrap();
        assert!(r.is_empty());
        assert_eq!(back, d);
    }

    #[test]
    fn delta_decode_rejects_bad_tag() {
        let mut buf = Vec::new();
        codec::put_str(&mut buf, "T");
        codec::put_len(&mut buf, 1);
        codec::put_u8(&mut buf, 9); // bad op tag
        let mut r = Reader::new(&buf);
        assert!(Delta::decode(&mut r).is_err());
    }

    #[test]
    fn batch_merges_trailing_same_table() {
        let mut a = Delta::new("T");
        a.push(row(1), DeltaOp::Insert);
        let mut b = Delta::new("T");
        b.push(row(2), DeltaOp::Delete);
        let mut c = Delta::new("U");
        c.push(row(3), DeltaOp::Insert);
        let batch: DeltaBatch = [a, b, c, Delta::new("T")].into_iter().collect();
        // T+T merged, empty T dropped.
        assert_eq!(batch.deltas().len(), 2);
        assert_eq!(batch.deltas()[0].len(), 2);
        assert_eq!(batch.len(), 3);
        let bytes = batch.encode();
        let mut r = Reader::new(&bytes);
        let back = DeltaBatch::decode(&mut r).unwrap();
        assert_eq!(back, batch);
    }

    #[test]
    fn batch_from_single_delta() {
        let mut d = Delta::new("T");
        d.push(row(5), DeltaOp::Insert);
        let batch = DeltaBatch::from(d.clone());
        assert_eq!(batch.deltas(), &[d]);
        assert!(DeltaBatch::from(Delta::new("T")).is_empty());
    }
}
