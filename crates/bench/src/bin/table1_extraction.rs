//! Table 1: condensed (C-DUP) vs full-graph (EXP) extraction.
//!
//! For each dataset, extracts the paper's query twice — once loading the
//! condensed representation (large-output joins postponed) and once running
//! the complete join in the relational engine — and reports stored edges,
//! wall time, and bytes allocated for both, plus the blow-up factor.
//! A second table re-runs the condensed extraction at 1/2/4/8 threads and
//! reports the speedup and peak live bytes per thread count.

use graphgen_bench::alloc::{human_bytes, measure, measure_regions};
use graphgen_bench::{measure_thread_scaling, ms, row, speedup, time};
use graphgen_core::{GraphGen, GraphGenConfig};
use graphgen_datagen::relational::{
    DBLP_COAUTHORS, IMDB_COACTORS, TPCH_COPURCHASE, UNIV_COENROLLMENT,
};
use graphgen_datagen::{
    dblp_like, imdb_like, tpch_like, univ, DblpConfig, ImdbConfig, TpchConfig, UnivConfig,
};
use graphgen_graph::GraphRep;

fn main() {
    println!("Table 1: condensed vs full extraction (synthetic stand-ins, see EXPERIMENTS.md)\n");
    let widths = [12, 10, 12, 14, 11, 12, 14, 11, 8];
    row(
        &[
            "dataset",
            "rows",
            "cond.edges",
            "cond.time(ms)",
            "cond.alloc",
            "full.edges",
            "full.time(ms)",
            "full.alloc",
            "ratio",
        ]
        .map(String::from),
        &widths,
    );
    let datasets: Vec<(&str, graphgen_reldb::Database, &str)> = vec![
        ("DBLP", dblp_like(DblpConfig::default()), DBLP_COAUTHORS),
        ("IMDB", imdb_like(ImdbConfig::default()), IMDB_COACTORS),
        ("TPCH", tpch_like(TpchConfig::default()), TPCH_COPURCHASE),
        ("UNIV", univ(UnivConfig::default()), UNIV_COENROLLMENT),
    ];
    for (name, db, query) in &datasets {
        let cfg = GraphGenConfig::builder()
            .large_output_factor(2.0)
            .preprocess(false)
            .auto_expand_threshold(None)
            .threads(1)
            .build();
        let gg = GraphGen::with_config(db, cfg);
        let ((condensed, t_cond), a_cond) =
            measure(|| time(|| gg.extract(query).expect("condensed extraction")));
        let ((full, t_full), a_full) =
            measure(|| time(|| gg.extract_full(query).expect("full extraction")));
        let cond_edges = condensed.graph().stored_edge_count();
        let full_edges = full.graph().stored_edge_count();
        row(
            &[
                name.to_string(),
                db.total_rows().to_string(),
                cond_edges.to_string(),
                ms(t_cond),
                human_bytes(a_cond.total),
                full_edges.to_string(),
                ms(t_full),
                human_bytes(a_full.total),
                format!("{:.2}x", full_edges as f64 / cond_edges.max(1) as f64),
            ],
            &widths,
        );
    }

    println!("\nCondensed extraction thread scaling (same datasets, forced condensed path):\n");
    let twidths = [12, 9, 14, 10, 12];
    row(
        &["dataset", "threads", "time(ms)", "speedup", "peak.alloc"].map(String::from),
        &twidths,
    );
    for (name, db, query) in &datasets {
        let runs = measure_thread_scaling(&[1, 2, 4, 8], |threads| {
            let cfg = GraphGenConfig::builder()
                .large_output_factor(0.0)
                .preprocess(true)
                .auto_expand_threshold(None)
                .threads(threads)
                .build();
            GraphGen::with_config(db, cfg)
                .extract(query)
                .expect("extraction");
        });
        let base = runs[0].time;
        for r in &runs {
            row(
                &[
                    name.to_string(),
                    r.threads.to_string(),
                    ms(r.time),
                    speedup(base, r.time),
                    human_bytes(r.alloc.peak),
                ],
                &twidths,
            );
        }
    }
    println!("\nPer-operator allocation breakdown (condensed path, 1 thread):\n");
    let rwidths = [12, 10, 12, 10];
    row(
        &["dataset", "region", "bytes", "allocs"].map(String::from),
        &rwidths,
    );
    for (name, db, query) in &datasets {
        let cfg = GraphGenConfig::builder()
            .large_output_factor(0.0)
            .preprocess(false)
            .auto_expand_threshold(None)
            .threads(1)
            .build();
        let (_, regions) = measure_regions(|| {
            GraphGen::with_config(db, cfg)
                .extract(query)
                .expect("extraction")
        });
        for r in &regions {
            row(
                &[
                    name.to_string(),
                    r.region.label().to_string(),
                    human_bytes(r.bytes),
                    r.allocs.to_string(),
                ],
                &rwidths,
            );
        }
    }

    println!("\npaper shape: condensed extraction is several times faster and smaller;");
    println!("TPCH shows the largest blow-up (small input hiding a dense graph).");
    println!("the region table attributes allocation to scan/build/probe/distinct;");
    println!("`general` is everything outside the relational operators.");
}
