//! DEDUP-2 construction (§4.3, Appendix B).
//!
//! Input: a **symmetric single-layer** condensed graph (every virtual node
//! has `I(V) = O(V)` — the shape co-occurrence extraction produces). Output:
//! a [`Dedup2Graph`] whose virtual nodes are member sets connected by
//! undirected virtual–virtual edges, duplicate-free.
//!
//! The algorithm follows Appendix B's greedy structure: virtual nodes are
//! inserted into a deduplicated partial graph one at a time; when the
//! incoming set `V` overlaps an existing node `HV` in ≥ 2 members, `HV` is
//! split into `W1 = V ∩ HV` and `W2 = HV \ W1` joined by a virtual edge
//! (with `W2` inheriting `HV`'s virtual neighbors), `W1` is carved out of
//! `V`, and the process repeats on the remainder. Carved parts and the final
//! remainder are then linked pairwise with virtual edges where that is
//! invariant-safe; any pair of members whose connection cannot be expressed
//! with a virtual edge is covered by a direct edge (the paper's singleton
//! virtual nodes).

use crate::work::intersect_sorted;
use crate::DedupError;
use graphgen_common::VertexOrdering;
use graphgen_graph::{CondensedGraph, Dedup2Graph, GraphRep, RealId, VirtId};

/// Extract symmetric member sets from a condensed graph, reporting *why*
/// the shape is unsuitable otherwise. Symmetry covers **both** edge kinds:
/// every virtual node's sources must equal its targets, and every direct
/// real→real edge must have its reverse (DEDUP-2 stores both undirected).
pub fn member_sets(g: &CondensedGraph) -> Result<Vec<Vec<u32>>, DedupError> {
    check_symmetric(g)?;
    let mut sets = Vec::with_capacity(g.num_virtual());
    for v in 0..g.num_virtual() {
        sets.push(
            g.virt_out(VirtId(v as u32))
                .iter()
                .filter_map(|a| a.as_real().map(|r| r.0))
                .collect(),
        );
    }
    Ok(sets)
}

/// Validate the DEDUP-2 shape restriction without materializing the member
/// sets — the cheap feasibility probe the §6.5 advisor uses.
pub fn check_symmetric(g: &CondensedGraph) -> Result<(), DedupError> {
    if !g.is_single_layer() {
        return Err(DedupError::MultiLayer);
    }
    let in_index = g.real_in_index();
    for (v, sources) in in_index.iter().enumerate() {
        let out = g.virt_out(VirtId(v as u32));
        if out.len() != sources.len()
            || !out
                .iter()
                .zip(sources)
                .all(|(a, &s)| a.as_real().map(|r| r.0) == Some(s))
        {
            return Err(DedupError::Asymmetric);
        }
    }
    // Direct real→real edges must be symmetric too.
    let mut direct: Vec<(u32, u32)> = Vec::new();
    for u in 0..g.num_real_slots() as u32 {
        for a in g.real_out(RealId(u)) {
            if let Some(r) = a.as_real() {
                direct.push((u, r.0));
            }
        }
    }
    direct.sort_unstable();
    if direct
        .iter()
        .any(|&(u, v)| direct.binary_search(&(v, u)).is_err())
    {
        return Err(DedupError::Asymmetric);
    }
    Ok(())
}

/// Run the DEDUP-2 greedy constructor. Panics if the input is not symmetric
/// single-layer; [`try_dedup2_greedy`] is the non-panicking form. Direct
/// real→real edges in the input must also be symmetric; each such pair
/// becomes an undirected direct edge.
pub fn dedup2_greedy(g: &CondensedGraph, ordering: VertexOrdering, seed: u64) -> Dedup2Graph {
    try_dedup2_greedy(g, ordering, seed)
        .expect("dedup2_greedy requires a symmetric single-layer graph")
}

/// Run the DEDUP-2 greedy constructor, reporting the shape restriction that
/// failed ([`DedupError::MultiLayer`] / [`DedupError::Asymmetric`]) instead
/// of panicking.
pub fn try_dedup2_greedy(
    g: &CondensedGraph,
    ordering: VertexOrdering,
    seed: u64,
) -> Result<Dedup2Graph, DedupError> {
    let sets = member_sets(g)?;
    let mut out = Dedup2Graph::new(g.num_real_slots());

    // Process order: the paper sorts by size (we default to descending so
    // big cliques form the backbone); Random/Ascending supported for the
    // Fig. 12b sweep.
    let order = ordering.order_by(sets.len(), |v| sets[v as usize].len() as u64, seed);
    let order: Vec<u32> = match ordering {
        VertexOrdering::Random => order,
        // order_by sorts ascending; for this algorithm "Descending" is the
        // natural default meaning largest-first.
        _ => order,
    };

    for &set_id in &order {
        insert_set(&mut out, sets[set_id as usize].clone());
    }

    // Symmetric direct edges from the input.
    for u in 0..g.num_real_slots() as u32 {
        for a in g.real_out(RealId(u)) {
            if let Some(r) = a.as_real() {
                if u < r.0 && !out.exists_edge(RealId(u), r) {
                    out.add_edge(RealId(u), r);
                }
            }
        }
    }
    debug_assert!(graphgen_graph::validate::validate_dedup2(&out).is_ok());
    Ok(out)
}

/// Insert one member set into the partial DEDUP-2 graph, maintaining the
/// no-duplicate-witness invariant.
fn insert_set(g: &mut Dedup2Graph, mut remaining: Vec<u32>) {
    remaining.sort_unstable();
    remaining.dedup();
    if remaining.len() < 2 {
        return; // nothing to connect
    }
    let original = remaining.clone();
    let mut parts: Vec<u32> = Vec::new(); // vnode ids covering carved pieces

    // Step 1: carve out overlaps of size >= 2 with existing virtual nodes,
    // splitting the existing node when the overlap is proper (HV -> W1, W2).
    loop {
        let mut best: Option<(u32, Vec<u32>)> = None;
        // Candidate virtual nodes: those containing any member of remaining.
        let mut candidates: Vec<u32> = Vec::new();
        for &m in &remaining {
            candidates.extend_from_slice(g.memberships_of(RealId(m)));
        }
        candidates.sort_unstable();
        candidates.dedup();
        for &hv in &candidates {
            if parts.contains(&hv) {
                continue;
            }
            let overlap = intersect_sorted(g.members(hv), &remaining);
            if overlap.len() >= 2 && best.as_ref().is_none_or(|(_, o)| overlap.len() > o.len()) {
                best = Some((hv, overlap));
            }
        }
        let Some((hv, w1)) = best else { break };
        let part = if w1.len() == g.members(hv).len() {
            hv // HV ⊆ V: reuse it wholesale.
        } else {
            split_virtual(g, hv, &w1)
        };
        parts.push(part);
        remaining.retain(|m| w1.binary_search(m).is_err());
        if remaining.len() < 2 && parts.len() == 1 && remaining.is_empty() {
            break;
        }
    }

    // Step 2: members of `remaining` whose pairs are already covered by the
    // existing structure must not enter a fresh virtual node (that would
    // double-cover). Move them out; their pairs get direct-edge fallback.
    let mut extras: Vec<u32> = Vec::new();
    loop {
        let mut worst: Option<(usize, usize)> = None; // (covered pairs, index)
        for (i, &a) in remaining.iter().enumerate() {
            let covered = remaining
                .iter()
                .filter(|&&b| b != a && g.exists_edge(RealId(a), RealId(b)))
                .count();
            if covered > 0 && worst.is_none_or(|(c, _)| covered > c) {
                worst = Some((covered, i));
            }
        }
        let Some((_, i)) = worst else { break };
        extras.push(remaining.remove(i));
    }

    // Step 3: the cleaned remainder becomes a new virtual node.
    let w_new: Option<u32> = if remaining.len() >= 2 || (remaining.len() == 1 && !parts.is_empty())
    {
        Some(g.add_virtual(remaining.clone()))
    } else {
        if remaining.len() == 1 {
            extras.push(remaining[0]);
        }
        None
    };

    // Step 4: connect the pieces. For each pair of pieces, add a virtual
    // edge iff *every* cross pair is currently uncovered (safe); otherwise
    // fall back to per-pair direct edges.
    let mut all_parts = parts.clone();
    all_parts.extend(w_new);
    for i in 0..all_parts.len() {
        for j in (i + 1)..all_parts.len() {
            link_pieces(g, all_parts[i], all_parts[j]);
        }
    }

    // Step 5: extras connect to everything in the original set by direct
    // edges where still uncovered.
    for &x in &extras {
        for &y in &original {
            if x != y && !g.exists_edge(RealId(x), RealId(y)) {
                g.add_edge(RealId(x), RealId(y));
            }
        }
    }
}

/// Split virtual node `hv` into `w1` (the given overlap, keeps `hv`'s id)
/// and a fresh node for the rest, joined by a virtual edge; the new node
/// inherits `hv`'s virtual neighbors so no previously covered pair is lost.
fn split_virtual(g: &mut Dedup2Graph, hv: u32, w1: &[u32]) -> u32 {
    let w2_members: Vec<u32> = g
        .members(hv)
        .iter()
        .copied()
        .filter(|m| w1.binary_search(m).is_err())
        .collect();
    for &m in &w2_members {
        g.remove_member(hv, m);
    }
    let w2 = g.add_virtual(w2_members);
    // Inherit neighbors: pairs (x ∈ w2, m ∈ X) for X ∈ vv(hv) were covered
    // through hv and must stay covered.
    let neighbors: Vec<u32> = g.virtual_neighbors(hv).to_vec();
    for x in neighbors {
        g.add_virtual_edge(w2, x);
    }
    g.add_virtual_edge(hv, w2);
    hv
}

/// Link two carved pieces: virtual edge if every cross pair is uncovered,
/// direct edges otherwise.
fn link_pieces(g: &mut Dedup2Graph, a: u32, b: u32) {
    let ma = g.members(a).to_vec();
    let mb = g.members(b).to_vec();
    if ma.is_empty() || mb.is_empty() {
        return;
    }
    let disjoint = intersect_sorted(&ma, &mb).is_empty();
    let all_uncovered = disjoint
        && ma.iter().all(|&x| {
            mb.iter()
                .all(|&y| x != y && !g.exists_edge(RealId(x), RealId(y)))
        });
    if all_uncovered {
        g.add_virtual_edge(a, b);
    } else {
        for &x in &ma {
            for &y in &mb {
                if x != y && !g.exists_edge(RealId(x), RealId(y)) {
                    g.add_edge(RealId(x), RealId(y));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{expand_to_edge_list, validate::validate_dedup2, CondensedBuilder};

    fn build(cliques: &[&[u32]], n: usize) -> CondensedGraph {
        let mut b = CondensedBuilder::new(n);
        for c in cliques {
            let ids: Vec<RealId> = c.iter().map(|&i| RealId(i)).collect();
            b.clique(&ids);
        }
        b.build()
    }

    #[test]
    fn fig6_overlapping_cliques() {
        // Fig. 6a: V1 = {u1,u2,u3,a,b,c}, V2 = {u1,u2,u3,d,e,f}
        // (ids: u1..u3 = 0..2, a..c = 3..5, d..f = 6..8).
        let g = build(&[&[0, 1, 2, 3, 4, 5], &[0, 1, 2, 6, 7, 8]], 9);
        let before = expand_to_edge_list(&g);
        let d2 = dedup2_greedy(&g, VertexOrdering::Descending, 0);
        assert_eq!(expand_to_edge_list(&d2), before);
        assert!(validate_dedup2(&d2).is_ok());
        // DEDUP-2 should use virtual-virtual edges to avoid the direct-edge
        // blowup DEDUP-1 suffers here (Fig. 6b needs 32 directed edges; the
        // DEDUP-2 encoding stays near C-DUP's footprint).
        assert!(
            d2.stored_edge_count() <= 14,
            "got {}",
            d2.stored_edge_count()
        );
    }

    #[test]
    fn member_sets_detects_asymmetry() {
        let mut b = CondensedBuilder::new(3);
        let v = b.add_virtual();
        b.real_to_virtual(RealId(0), v);
        b.virtual_to_real(v, RealId(1));
        let g = b.build();
        assert_eq!(member_sets(&g), Err(DedupError::Asymmetric));
        assert!(try_dedup2_greedy(&g, VertexOrdering::Descending, 0).is_err());
        let sym = build(&[&[0, 1]], 2);
        assert_eq!(member_sets(&sym).unwrap(), vec![vec![0, 1]]);
    }

    #[test]
    fn heavy_overlap_chain() {
        let g = build(
            &[
                &[0, 1, 2, 3, 4],
                &[2, 3, 4, 5, 6],
                &[4, 5, 6, 7, 8],
                &[0, 4, 8],
            ],
            9,
        );
        let before = expand_to_edge_list(&g);
        for ord in VertexOrdering::all() {
            let d2 = dedup2_greedy(&g, ord, 11);
            assert_eq!(expand_to_edge_list(&d2), before, "{ord:?}");
            assert!(validate_dedup2(&d2).is_ok(), "{ord:?}");
        }
    }

    #[test]
    fn disjoint_cliques_stay_plain() {
        let g = build(&[&[0, 1, 2], &[3, 4, 5]], 6);
        let d2 = dedup2_greedy(&g, VertexOrdering::Random, 3);
        assert_eq!(expand_to_edge_list(&d2), expand_to_edge_list(&g));
        assert_eq!(d2.num_virtual(), 2);
        assert_eq!(d2.stored_edge_count(), 6);
    }

    #[test]
    fn identical_cliques_merge() {
        let g = build(&[&[0, 1, 2, 3], &[0, 1, 2, 3]], 4);
        let d2 = dedup2_greedy(&g, VertexOrdering::Descending, 0);
        assert_eq!(expand_to_edge_list(&d2), expand_to_edge_list(&g));
        assert!(validate_dedup2(&d2).is_ok());
        assert_eq!(d2.num_virtual(), 1);
    }

    #[test]
    fn direct_edges_carry_over() {
        let mut b = CondensedBuilder::new(4);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        b.direct(RealId(0), RealId(3));
        b.direct(RealId(3), RealId(0));
        let g = b.build();
        let d2 = dedup2_greedy(&g, VertexOrdering::Random, 1);
        assert!(d2.exists_edge(RealId(0), RealId(3)));
        assert!(d2.exists_edge(RealId(3), RealId(0)));
        assert!(validate_dedup2(&d2).is_ok());
    }
}
