//! The database catalog: named tables plus the per-column statistics that
//! drive the extraction planner's large-output-join test (§4.2 Step 2).
//!
//! PostgreSQL exposes `n_distinct` in `pg_stats`; we compute exact distinct
//! counts at registration time and recompute them after every mutation
//! batch ([`Database::insert_rows`] / [`Database::delete_rows`] — the
//! ANALYZE-after-write discipline), so the planner always sees exact
//! statistics. Mutations are logged as typed [`Delta`]s for incremental
//! graph maintenance.

use crate::delta::{Delta, DeltaOp};
use crate::error::{DbError, DbResult};
use crate::rowset::hash_cells;
use crate::table::Table;
use crate::value::Value;
use graphgen_common::{ByteSize, FxHashMap};

/// Statistics for one column, analogous to a `pg_stats` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Total rows in the table.
    pub row_count: usize,
    /// Exact number of distinct values in the column.
    pub n_distinct: usize,
}

impl ColumnStats {
    /// Average number of rows per distinct value of this column.
    pub fn avg_fanout(&self) -> f64 {
        if self.n_distinct == 0 {
            0.0
        } else {
            self.row_count as f64 / self.n_distinct as f64
        }
    }
}

/// A named collection of tables with statistics.
#[derive(Debug, Default)]
pub struct Database {
    tables: FxHashMap<String, Table>,
    stats: FxHashMap<(String, usize), ColumnStats>,
}

impl Database {
    /// New empty database.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register `table` under `name`, computing statistics for every column
    /// (the ANALYZE step).
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        let rows = table.num_rows();
        for idx in 0..table.schema().arity() {
            let n_distinct = table.distinct_count(idx);
            self.stats.insert(
                (name.clone(), idx),
                ColumnStats {
                    row_count: rows,
                    n_distinct,
                },
            );
        }
        self.tables.insert(name, table);
        Ok(())
    }

    /// Append `rows` to table `name`, returning the [`Delta`] log of the
    /// mutation. Every row is validated against the schema **before** any is
    /// applied, so a failed call leaves the table untouched. Column
    /// statistics are recomputed afterwards.
    pub fn insert_rows(&mut self, name: &str, rows: Vec<Vec<Value>>) -> DbResult<Delta> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        for row in &rows {
            table.schema().check_row(row)?;
        }
        let mut delta = Delta::new(name);
        table.reserve(rows.len());
        for row in rows {
            table.push_row(row.clone()).expect("row pre-validated");
            delta.push(row, DeltaOp::Insert);
        }
        self.recompute_stats(name);
        Ok(delta)
    }

    /// Delete one occurrence of each of `rows` from table `name` (bag
    /// semantics: a row requested twice removes two occurrences), preserving
    /// the order of surviving rows. Requested rows that are not present are
    /// ignored — the returned [`Delta`] only logs rows actually removed, so
    /// deleting a never-inserted row yields an empty delta. Column
    /// statistics are recomputed afterwards.
    ///
    /// The scan probes a hash of each table row computed cell-wise (no row
    /// materialization) and stops as soon as every requested occurrence has
    /// been found.
    pub fn delete_rows(&mut self, name: &str, rows: &[Vec<Value>]) -> DbResult<Delta> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        for row in rows {
            table.schema().check_row(row)?;
        }
        // Group requested rows by hash, keeping a remaining count per
        // distinct row (bag semantics).
        let mut by_hash: FxHashMap<u64, Vec<(&[Value], u32)>> = FxHashMap::default();
        let mut remaining = 0u32;
        for row in rows {
            let candidates = by_hash.entry(hash_cells(row.iter())).or_default();
            match candidates
                .iter_mut()
                .find(|(want, _)| *want == row.as_slice())
            {
                Some((_, count)) => *count += 1,
                None => candidates.push((row.as_slice(), 1)),
            }
            remaining += 1;
        }
        let mut delta = Delta::new(name);
        let mut remove = vec![false; table.num_rows()];
        let arity = table.schema().arity();
        for (r, slot) in remove.iter_mut().enumerate() {
            if remaining == 0 {
                break;
            }
            let h = hash_cells((0..arity).map(|c| table.cell(r, c)));
            let Some(candidates) = by_hash.get_mut(&h) else {
                continue;
            };
            for (want, count) in candidates.iter_mut() {
                if *count > 0 && (0..arity).all(|c| table.cell(r, c) == &want[c]) {
                    *count -= 1;
                    remaining -= 1;
                    *slot = true;
                    delta.push(table.row(r), DeltaOp::Delete);
                    break;
                }
            }
        }
        if !delta.is_empty() {
            table.remove_marked(&remove);
            self.recompute_stats(name);
        }
        Ok(delta)
    }

    /// Recompute exact per-column statistics for `name` (the ANALYZE step
    /// after a mutation batch).
    fn recompute_stats(&mut self, name: &str) {
        let table = &self.tables[name];
        let rows = table.num_rows();
        for idx in 0..table.schema().arity() {
            let n_distinct = table.distinct_count(idx);
            self.stats.insert(
                (name.to_string(), idx),
                ColumnStats {
                    row_count: rows,
                    n_distinct,
                },
            );
        }
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Statistics for the `col`-th column of `table` (the `pg_stats` lookup).
    pub fn column_stats(&self, table: &str, col: usize) -> DbResult<ColumnStats> {
        self.stats
            .get(&(table.to_string(), col))
            .copied()
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))
    }

    /// Statistics by column name.
    pub fn column_stats_by_name(&self, table: &str, column: &str) -> DbResult<ColumnStats> {
        let t = self.table(table)?;
        let idx = t
            .schema()
            .index_of(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        self.column_stats(table, idx)
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::num_rows).sum()
    }
}

impl ByteSize for Database {
    fn heap_bytes(&self) -> usize {
        self.tables.values().map(Table::heap_bytes).sum::<usize>()
            + self.stats.len() * std::mem::size_of::<((String, usize), ColumnStats)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn sample_db() -> Database {
        let mut t = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        for (a, p) in [(1, 10), (2, 10), (3, 11), (1, 11), (2, 12)] {
            t.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
        }
        let mut db = Database::new();
        db.register("AuthorPub", t).unwrap();
        db
    }

    #[test]
    fn register_and_lookup() {
        let db = sample_db();
        assert!(db.has_table("AuthorPub"));
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 5);
        assert!(db.table("Missing").is_err());
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut db = sample_db();
        let t = Table::new(Schema::new(vec![Column::int("x")]));
        assert!(matches!(
            db.register("AuthorPub", t),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn stats_are_exact() {
        let db = sample_db();
        let aid = db.column_stats_by_name("AuthorPub", "aid").unwrap();
        assert_eq!(aid.row_count, 5);
        assert_eq!(aid.n_distinct, 3);
        let pid = db.column_stats_by_name("AuthorPub", "pid").unwrap();
        assert_eq!(pid.n_distinct, 3);
        assert!((pid.avg_fanout() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_column_stats() {
        let db = sample_db();
        assert!(matches!(
            db.column_stats_by_name("AuthorPub", "nope"),
            Err(DbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn insert_rows_logs_and_refreshes_stats() {
        let mut db = sample_db();
        let delta = db
            .insert_rows(
                "AuthorPub",
                vec![
                    vec![Value::int(7), Value::int(10)],
                    vec![Value::int(8), Value::int(13)],
                ],
            )
            .unwrap();
        assert_eq!(delta.len(), 2);
        assert!(delta.rows().iter().all(|r| r.op == DeltaOp::Insert));
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 7);
        let aid = db.column_stats_by_name("AuthorPub", "aid").unwrap();
        assert_eq!(aid.row_count, 7);
        assert_eq!(aid.n_distinct, 5); // 1,2,3 + 7,8
    }

    #[test]
    fn insert_rows_is_atomic_on_bad_row() {
        let mut db = sample_db();
        let err = db
            .insert_rows(
                "AuthorPub",
                vec![
                    vec![Value::int(7), Value::int(10)],
                    vec![Value::str("oops"), Value::int(10)],
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        // Nothing was applied.
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 5);
    }

    #[test]
    fn delete_rows_removes_first_occurrence_and_skips_absent() {
        let mut db = sample_db();
        let delta = db
            .delete_rows(
                "AuthorPub",
                &[
                    vec![Value::int(1), Value::int(10)],
                    vec![Value::int(99), Value::int(99)], // never inserted
                ],
            )
            .unwrap();
        // Only the present row is logged; the absent one is a no-op.
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.rows()[0].op, DeltaOp::Delete);
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 4);
        let aid = db.column_stats_by_name("AuthorPub", "aid").unwrap();
        assert_eq!(aid.row_count, 4);
        // Deleting a fully absent batch yields an empty delta.
        let noop = db
            .delete_rows("AuthorPub", &[vec![Value::int(99), Value::int(99)]])
            .unwrap();
        assert!(noop.is_empty());
    }

    #[test]
    fn delete_rows_bag_semantics() {
        let mut db = Database::new();
        let mut t = Table::new(Schema::new(vec![Column::int("x")]));
        for v in [5, 5, 5] {
            t.push_row(vec![Value::int(v)]).unwrap();
        }
        db.register("T", t).unwrap();
        // Requesting the same row twice removes exactly two occurrences.
        let delta = db
            .delete_rows("T", &[vec![Value::int(5)], vec![Value::int(5)]])
            .unwrap();
        assert_eq!(delta.len(), 2);
        assert_eq!(db.table("T").unwrap().num_rows(), 1);
    }

    #[test]
    fn delete_rows_validates_schema() {
        let mut db = sample_db();
        // Wrong arity is a typed error, matching insert_rows, not a silent
        // no-op.
        let err = db
            .delete_rows("AuthorPub", &[vec![Value::int(1)]])
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        let err = db
            .delete_rows("AuthorPub", &[vec![Value::str("x"), Value::int(10)]])
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 5);
    }

    #[test]
    fn mutations_on_unknown_table_error() {
        let mut db = sample_db();
        assert!(db.insert_rows("Nope", vec![]).is_err());
        assert!(db.delete_rows("Nope", &[]).is_err());
    }
}
