//! Minimal CSV ingestion/serialization so the examples can ship readable
//! datasets. Supports comma separation, `\n` rows, and double-quoted fields
//! with embedded commas; no embedded newlines.

use crate::error::{DbError, DbResult};
use crate::schema::Schema;
use crate::table::Table;
use crate::value::{DataType, Value};

/// Parse one CSV line into raw string fields plus a was-quoted flag (which
/// distinguishes an empty quoted string `""` from a NULL empty field).
fn split_line(line: &str) -> DbResult<Vec<(String, bool)>> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    cur.push('"');
                } else {
                    in_quotes = false;
                }
            }
            '"' if cur.is_empty() && !quoted => {
                in_quotes = true;
                quoted = true;
            }
            '"' => return Err(DbError::Csv(format!("stray quote in `{line}`"))),
            ',' if !in_quotes => {
                fields.push((std::mem::take(&mut cur), quoted));
                quoted = false;
            }
            c => cur.push(c),
        }
    }
    if in_quotes {
        return Err(DbError::Csv(format!("unterminated quote in `{line}`")));
    }
    fields.push((cur, quoted));
    Ok(fields)
}

/// Parse CSV text (no header) into a [`Table`] with the given schema.
/// Empty fields become NULL; integer columns are parsed with `i64`.
pub fn parse_csv(text: &str, schema: Schema) -> DbResult<Table> {
    let mut table = Table::new(schema);
    for line in text.lines() {
        // Blank lines are skipped for multi-column schemas; for a
        // single-column schema they are a NULL row (needed for round-trips).
        if line.is_empty() && table.schema().arity() != 1 {
            continue;
        }
        let fields = split_line(line)?;
        if fields.len() != table.schema().arity() {
            return Err(DbError::Csv(format!(
                "expected {} fields, got {} in `{line}`",
                table.schema().arity(),
                fields.len()
            )));
        }
        let row: DbResult<Vec<Value>> = fields
            .iter()
            .enumerate()
            .map(|(i, (f, quoted))| {
                if f.is_empty() && !quoted {
                    return Ok(Value::Null);
                }
                match table.schema().column(i).dtype {
                    DataType::Int => f
                        .parse::<i64>()
                        .map(Value::Int)
                        .map_err(|e| DbError::Csv(format!("bad int `{f}`: {e}"))),
                    DataType::Str => Ok(Value::str(f.as_str())),
                }
            })
            .collect();
        table.push_row(row?)?;
    }
    Ok(table)
}

/// Serialize a table back to CSV text (no header); only live rows are
/// written.
pub fn to_csv(table: &Table) -> String {
    let mut out = String::new();
    for r in (0..table.physical_rows()).filter(|&r| table.is_live(r)) {
        for c in 0..table.schema().arity() {
            if c > 0 {
                out.push(',');
            }
            match table.cell(r, c) {
                Value::Null => {}
                Value::Int(v) => out.push_str(&v.to_string()),
                Value::Str(s) => {
                    if s.is_empty() || s.contains(',') || s.contains('"') {
                        out.push('"');
                        out.push_str(&s.replace('"', "\"\""));
                        out.push('"');
                    } else {
                        out.push_str(s);
                    }
                }
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;

    fn schema() -> Schema {
        Schema::new(vec![Column::int("id"), Column::str("name")])
    }

    #[test]
    fn roundtrip_simple() {
        let t = parse_csv("1,alice\n2,bob\n", schema()).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(to_csv(&t), "1,alice\n2,bob\n");
    }

    #[test]
    fn quoted_fields() {
        let t = parse_csv("1,\"a,b\"\n2,\"say \"\"hi\"\"\"\n", schema()).unwrap();
        assert_eq!(t.cell(0, 1), &Value::str("a,b"));
        assert_eq!(t.cell(1, 1), &Value::str("say \"hi\""));
        // roundtrip re-quotes
        let back = to_csv(&t);
        let t2 = parse_csv(&back, schema()).unwrap();
        assert_eq!(t2.cell(0, 1), &Value::str("a,b"));
    }

    #[test]
    fn empty_field_is_null() {
        let t = parse_csv("1,\n,x\n", schema()).unwrap();
        assert_eq!(t.cell(0, 1), &Value::Null);
        assert_eq!(t.cell(1, 0), &Value::Null);
    }

    #[test]
    fn bad_int_rejected() {
        assert!(parse_csv("x,alice\n", schema()).is_err());
    }

    #[test]
    fn wrong_arity_rejected() {
        assert!(parse_csv("1,a,b\n", schema()).is_err());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_csv("1,\"oops\n", schema()).is_err());
    }
}
