//! Incremental extraction: keep a hidden graph in sync with base-table
//! mutations instead of re-extracting from scratch.
//!
//! Run with: `cargo run --example incremental`

use graphgen::core::{GraphGen, GraphGenConfig};
use graphgen::graph::GraphRep;
use graphgen::reldb::{Column, Database, Schema, Table, Value};

fn main() {
    // Authors and an author↔publication membership table.
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for (id, name) in [(1, "Ada"), (2, "Barbara"), (3, "Grace"), (4, "Hedy")] {
        author
            .push_row(vec![Value::int(id), Value::str(name)])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (a, p) in [(1, 1), (2, 1), (3, 2), (4, 2)] {
        ap.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();

    // Extract with the incremental knob: the handle carries the
    // delta-maintenance state (and always holds the raw condensed graph).
    let cfg = GraphGenConfig::builder()
        .large_output_factor(0.0) // force the condensed path on this toy data
        .incremental(true)
        .build();
    let query = "Nodes(ID, Name) :- Author(ID, Name).\n\
                 Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";
    let mut graph = GraphGen::with_config(&db, cfg).extract(query).unwrap();
    println!(
        "initial: {} vertices, {} logical edges",
        graph.num_vertices(),
        graph.expanded_edge_count()
    );

    // Mutate the database: every mutation returns a typed Delta log.
    // Ada joins publication 2, and a new author appears on publication 1.
    let d1 = db
        .insert_rows(
            "AuthorPub",
            vec![
                vec![Value::int(1), Value::int(2)],
                vec![Value::int(9), Value::int(1)],
            ],
        )
        .unwrap();
    let d2 = db
        .insert_rows("Author", vec![vec![Value::int(9), Value::str("Mary")]])
        .unwrap();
    // Barbara retires from publication 1.
    let d3 = db
        .delete_rows("AuthorPub", &[vec![Value::int(2), Value::int(1)]])
        .unwrap();

    // Patch the graph in place — work proportional to the delta, not the
    // database. The patch reports what changed.
    for delta in [&d1, &d2, &d3] {
        let patch = graph.apply_delta(delta).unwrap();
        println!(
            "applied {:>2}-row delta to {:<9} -> +{} nodes, +{}/-{} stored edges",
            delta.len(),
            delta.table(),
            patch.nodes_added,
            patch.stored_edges_added,
            patch.stored_edges_removed,
        );
    }
    println!(
        "patched: {} vertices, {} logical edges",
        graph.num_vertices(),
        graph.expanded_edge_count()
    );

    // The contract: the patched graph is byte-identical (canonically
    // serialized) to a from-scratch extraction on the mutated database.
    let fresh = GraphGen::with_config(&db, cfg).extract(query).unwrap();
    assert_eq!(graph.canonical_bytes(), fresh.canonical_bytes());
    println!("patched graph is byte-identical to a fresh extraction");

    // Ada's co-authors now include Grace and Hedy (via publication 2).
    let mut names: Vec<String> = graph
        .neighbors_by_key(&Value::int(1))
        .unwrap()
        .iter()
        .map(|k| {
            graph
                .vertex_property(k, "Name")
                .and_then(|p| p.as_text().map(str::to_string))
                .unwrap_or_default()
        })
        .collect();
    names.sort();
    println!("Ada's co-authors: {names:?}");
}
