//! Figure 11: Degree / BFS / PageRank runtimes per representation,
//! normalized to EXP (DBLP and Synthetic_1, like the paper's figure).

use graphgen_algo::{bfs, degrees, pagerank, PageRankConfig};
use graphgen_bench::{row, small_datasets, time, RepSet};
use graphgen_graph::{GraphRep, RealId};
use std::time::Duration;

fn bfs_sources(n: usize) -> Vec<RealId> {
    // The paper uses a fixed set of 50 random sources.
    let mut rng = graphgen_common::SplitMix64::new(999);
    (0..50)
        .map(|_| RealId(rng.next_below(n as u64) as u32))
        .collect()
}

fn run_kernels<G: GraphRep + Sync>(g: &G, sources: &[RealId]) -> (Duration, Duration, Duration) {
    let (_, t_degree) = time(|| degrees(g, 4));
    let (_, t_bfs) = time(|| {
        for &s in sources {
            let _ = bfs(g, s);
        }
    });
    let (_, t_pr) = time(|| {
        pagerank(
            g,
            PageRankConfig {
                damping: 0.85,
                iterations: 10,
                threads: 4,
            },
        )
    });
    (t_degree, t_bfs, t_pr)
}

fn main() {
    println!("Figure 11: algorithm runtimes normalized to EXP\n");
    let widths = [12, 12, 12, 12];
    for (name, cdup) in small_datasets() {
        if name != "DBLP" && name != "Synthetic_1" {
            continue;
        }
        println!("--- {name} ---");
        row(
            &["rep", "degree", "bfs(x50)", "pagerank"].map(String::from),
            &widths,
        );
        let set = RepSet::build(name, cdup);
        let sources = bfs_sources(set.exp.num_real_slots());
        let (base_d, base_b, base_p) = run_kernels(&set.exp, &sources);
        let norm = |t: Duration, b: Duration| {
            format!("{:.2}", t.as_secs_f64() / b.as_secs_f64().max(1e-9))
        };
        for (label, timings) in [
            ("EXP", (base_d, base_b, base_p)),
            ("C-DUP", run_kernels(&set.cdup, &sources)),
            ("DEDUP-1", run_kernels(&set.dedup1, &sources)),
            ("BITMAP-1", run_kernels(&set.bitmap1, &sources)),
            ("BITMAP-2", run_kernels(&set.bitmap2, &sources)),
        ] {
            row(
                &[
                    label.to_string(),
                    norm(timings.0, base_d),
                    norm(timings.1, base_b),
                    norm(timings.2, base_p),
                ],
                &widths,
            );
        }
        if let Some(d2) = &set.dedup2 {
            let t = run_kernels(d2, &sources);
            row(
                &[
                    "DEDUP-2".to_string(),
                    norm(t.0, base_d),
                    norm(t.1, base_b),
                    norm(t.2, base_p),
                ],
                &widths,
            );
        }
        println!();
    }
    println!("paper shape: EXP = 1.0 baseline; C-DUP pays the on-the-fly hashset cost");
    println!(
        "(largest on many-small-virtual-node datasets); DEDUP-1/BITMAP-2 close most of the gap."
    );
}
