//! PageRank (Fig. 11's heaviest kernel).
//!
//! Pull-based formulation over the representation-independent API:
//! `pr'[u] = (1-d)/N + d * Σ_{v ∈ nbr(u)} pr[v] / deg[v]`, which is exact
//! for the symmetric graphs the paper evaluates (co-author, co-actor,
//! co-purchase), where out- and in-neighborhoods coincide. Degrees are
//! **precomputed** and carried in the vertex state — the paper makes the
//! same point for its Giraph port: condensed representations cannot read a
//! neighbor's degree for free, so it must be computed once up front.
//! Dangling mass is redistributed uniformly so ranks always sum to 1.

use crate::degree::degrees;
use crate::vertex_centric::{run_vertex_centric, VertexCentricConfig, VertexProgram};
use graphgen_graph::{GraphRep, RealId};

/// PageRank parameters.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor (0.85 in the literature).
    pub damping: f64,
    /// Number of power iterations.
    pub iterations: usize,
    /// Worker threads.
    pub threads: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.85,
            iterations: 20,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
        }
    }
}

#[derive(Clone, Copy)]
struct PrState {
    rank: f64,
    contrib: f64, // rank / degree, 0 for dangling nodes
}

struct PrProgram {
    damping: f64,
    n: f64,
    degrees: Vec<u32>,
    dangling_per_iter: Vec<f64>, // dangling mass share added per iteration
    iterations: usize,
}

impl<G: GraphRep + Sync> VertexProgram<G> for PrProgram {
    type State = PrState;

    fn init(&self, _g: &G, u: RealId) -> PrState {
        let rank = 1.0 / self.n;
        let deg = self.degrees[u.0 as usize];
        PrState {
            rank,
            contrib: if deg > 0 { rank / deg as f64 } else { 0.0 },
        }
    }

    fn compute(&self, g: &G, u: RealId, prev: &[PrState], step: usize) -> (PrState, bool) {
        let mut sum = 0.0;
        g.for_each_neighbor(u, &mut |v| sum += prev[v.0 as usize].contrib);
        let rank =
            (1.0 - self.damping) / self.n + self.damping * (sum + self.dangling_per_iter[step]);
        let deg = self.degrees[u.0 as usize];
        let state = PrState {
            rank,
            contrib: if deg > 0 { rank / deg as f64 } else { 0.0 },
        };
        (state, step + 1 >= self.iterations)
    }
}

/// Run PageRank; returns per-vertex ranks (dead vertices get 0).
pub fn pagerank<G: GraphRep + Sync>(g: &G, cfg: PageRankConfig) -> Vec<f64> {
    let n_live = g.num_vertices();
    if n_live == 0 {
        return vec![0.0; g.num_real_slots()];
    }
    let degs = degrees(g, cfg.threads);
    // Dangling mass: exact redistribution needs the per-iteration total of
    // dangling ranks; with uniform init and uniform redistribution the
    // dangling share converges — we precompute it iteratively on the
    // aggregate (cheap: O(iterations)).
    let n_dangling = g.vertices().filter(|&u| degs[u.0 as usize] == 0).count() as f64;
    let n = n_live as f64;
    let mut dangling_per_iter = Vec::with_capacity(cfg.iterations);
    // Aggregate model: dangling nodes hold rank mass m_t; each iteration
    // they receive (1-d)/n + d*share each (no in-edges in the symmetric
    // case), so m_{t+1} = n_dangling * ((1-d)/n + d*m_t/n).
    let mut mass = n_dangling / n;
    for _ in 0..cfg.iterations {
        dangling_per_iter.push(mass / n);
        mass = n_dangling * ((1.0 - cfg.damping) / n + cfg.damping * mass / n);
    }
    let program = PrProgram {
        damping: cfg.damping,
        n,
        degrees: degs,
        dangling_per_iter,
        iterations: cfg.iterations.max(1),
    };
    let (states, _) = run_vertex_centric(
        g,
        &program,
        VertexCentricConfig {
            threads: cfg.threads,
            max_supersteps: cfg.iterations.max(1),
        },
    );
    let mut ranks: Vec<f64> = states.iter().map(|s| s.rank).collect();
    for (i, r) in ranks.iter_mut().enumerate() {
        if !g.is_alive(RealId(i as u32)) {
            *r = 0.0;
        }
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{CondensedBuilder, ExpandedGraph};

    fn assert_sums_to_one(ranks: &[f64]) {
        let sum: f64 = ranks.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9, "ranks sum to {sum}");
    }

    #[test]
    fn uniform_on_a_cycle() {
        let edges = (0..5u32).flat_map(|i| [(i, (i + 1) % 5), ((i + 1) % 5, i)]);
        let g = ExpandedGraph::from_edges(5, edges);
        let ranks = pagerank(&g, PageRankConfig::default());
        assert_sums_to_one(&ranks);
        for r in &ranks {
            assert!((r - 0.2).abs() < 1e-9);
        }
    }

    #[test]
    fn star_center_dominates() {
        let mut edges = Vec::new();
        for leaf in 1..6u32 {
            edges.push((0, leaf));
            edges.push((leaf, 0));
        }
        let g = ExpandedGraph::from_edges(6, edges);
        let ranks = pagerank(&g, PageRankConfig::default());
        assert_sums_to_one(&ranks);
        for leaf in 1..6 {
            assert!(ranks[0] > ranks[leaf]);
        }
    }

    #[test]
    fn condensed_matches_expanded() {
        let mut b = CondensedBuilder::new(6);
        b.clique(&[RealId(0), RealId(1), RealId(2), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4), RealId(5)]);
        b.clique(&[RealId(0), RealId(3)]);
        let cdup = b.build();
        let exp = ExpandedGraph::from_rep(&cdup);
        let cfg = PageRankConfig {
            iterations: 30,
            ..Default::default()
        };
        let r1 = pagerank(&cdup, cfg);
        let r2 = pagerank(&exp, cfg);
        for (a, b) in r1.iter().zip(&r2) {
            assert!((a - b).abs() < 1e-12);
        }
        assert_sums_to_one(&r1);
    }

    #[test]
    fn dangling_mass_conserved() {
        // vertex 2 is isolated (dangling).
        let g = ExpandedGraph::from_edges(3, [(0, 1), (1, 0)]);
        let ranks = pagerank(&g, PageRankConfig::default());
        assert_sums_to_one(&ranks);
        assert!(ranks[2] > 0.0);
    }
}
