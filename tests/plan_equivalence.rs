//! The W105 ≡ planner equivalence proof.
//!
//! Both the `W105` plan lint and the extraction planner delegate to the
//! single cost engine in `graphgen_dsl::cost` — this test pins that down
//! observationally: on every shipped example query over its seeded
//! datagen database, the joins `W105` fires on must be **exactly** the
//! joins the planner postpones (`JoinDecision::large_output`), same
//! pairs, same order. A second copy of the §4.2 arithmetic growing back
//! anywhere shows up here as a mismatch.

mod plan_corpus;

use graphgen::core::{catalog_view, GraphGen};
use graphgen::dsl::{check_source, CheckOptions};

/// The `L ⋈ R` pair a W105 message names (both message variants quote it
/// between backticks: ``join `L ⋈ R` is …``).
fn lint_pair(message: &str) -> (String, String) {
    let quoted = message
        .split('`')
        .nth(1)
        .unwrap_or_else(|| panic!("W105 message without backticks: {message}"));
    let (l, r) = quoted
        .split_once(" ⋈ ")
        .unwrap_or_else(|| panic!("W105 message without a join pair: {message}"));
    (l.to_string(), r.to_string())
}

#[test]
fn w105_firings_equal_planner_large_output_decisions() {
    let mut total_cut = 0usize;
    let mut total_kept = 0usize;
    for (stem, db) in plan_corpus::corpus() {
        let dsl = plan_corpus::query_source(stem);

        // Planner side: extract for real and read the recorded decisions.
        let handle = GraphGen::new(&db)
            .extract(&dsl)
            .unwrap_or_else(|e| panic!("{stem}: extract failed: {e}"));
        let mut planner_cuts = Vec::new();
        for plan in &handle.report().plans {
            for j in &plan.joins {
                if j.large_output {
                    planner_cuts.push((j.left_table.clone(), j.right_table.clone()));
                    total_cut += 1;
                } else {
                    total_kept += 1;
                }
            }
        }

        // Lint side: the same program, the same live statistics
        // (`catalog_view`), the plan lint group enabled.
        let mut opts = CheckOptions::default();
        opts.enable_lint("plan").expect("plan is a lint group");
        let catalog = catalog_view(&db);
        let report = check_source(&dsl, Some(&catalog), &opts);
        assert!(!report.has_errors(), "{stem}: {:?}", report.diagnostics);
        let lint_cuts: Vec<(String, String)> = report
            .diagnostics
            .iter()
            .filter(|d| d.code.code() == "W105")
            .map(|d| lint_pair(&d.message))
            .collect();

        assert_eq!(
            lint_cuts, planner_cuts,
            "{stem}: W105 firings diverged from the planner's large_output \
             decisions — the two sides are no longer the same cost engine"
        );
    }
    // The corpus must exercise both verdicts, or the equivalence above is
    // vacuous (e.g. dblp keeps its join, imdb and univ_coenrollment cut).
    assert!(total_cut > 0, "corpus produced no postponed joins");
    assert!(total_kept > 0, "corpus produced no in-segment joins");
}
