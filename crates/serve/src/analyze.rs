//! The `ANALYZE` engine: background analytics on pinned snapshots with a
//! versioned result cache.
//!
//! # Execution model
//!
//! An `ANALYZE <graph> <algo>` request pins the currently published
//! [`GraphSnapshot`] (one `Arc` bump — the same
//! entry point every reader uses) and hands the computation to a small
//! fixed worker pool. The accept loop, other reader connections, and the
//! writer are never involved: an hour-long PageRank occupies one pool
//! worker and nothing else, while publishes keep landing and point reads
//! keep serving the freshest version.
//!
//! # Cache
//!
//! Results land in a map keyed `(graph, algo, params, version)`:
//!
//! * a repeated request for a version already computed is a **hit** —
//!   no recomputation, the cached entry is returned as-is;
//! * concurrent requests for the same key are **single-flight**: the first
//!   claims the key, the rest block on its flight handle, exactly one
//!   computation runs;
//! * a publish does not delete anything — stale entries are retained until
//!   evicted (the newest [`KEEP_VERSIONS`] versions per key group survive)
//!   and served with their `version=` tag so a client pinned to an old
//!   version keeps its answers;
//! * recovery starts cold by construction: the cache is an in-memory
//!   field of the service, never persisted.
//!
//! # Condensed-direct dispatch and warm starts
//!
//! [`compute_on_handle`] picks the cheapest sound kernel for the served
//! representation: the `graphgen_algo::condensed` aggregated path for
//! DEDUP-1 cores, the sort-merge path for C-DUP/BITMAP cores (neither
//! materializes the expanded adjacency), a `convert`-to-EXP fall-back for
//! multi-layer cores, and plain traversal for EXP/DEDUP-2. PageRank reuses
//! the previous version's cached rank vector as its starting point
//! whenever one exists (the fixpoint is unique, so the seed only buys
//! iterations); connected components reuse previous labels only while no
//! publish since that version removed a vertex or edge (min-label
//! propagation cannot recover from a component split).

use crate::error::{ServeError, ServeResult};
use crate::protocol::format_value;
use crate::service::{GraphService, GraphSnapshot};
use graphgen_algo::{
    average_clustering, components_seeded, degrees, degrees_dedup_free, degrees_merged,
    pagerank_dedup_free, pagerank_merged, pagerank_seeded, triangles, CondensedPath, PageRankRun,
    SeededPageRankConfig,
};
use graphgen_common::metrics::{self, Counter, Histogram};
use graphgen_common::region::Region;
use graphgen_common::FxHashMap;
use graphgen_core::{ConvertOptions, GraphHandle, GraphPatch};
use graphgen_graph::{GraphRep, RealId, RepKind};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::time::Instant;

/// Background workers shared by every analysis of one service.
const WORKERS: usize = 2;

/// Cached result versions retained per `(graph, algo, params)` group.
pub const KEEP_VERSIONS: usize = 2;

// ---------------------------------------------------------------------------
// Request vocabulary
// ---------------------------------------------------------------------------

/// The analyses the `ANALYZE` verb can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Algo {
    /// Per-vertex out-degree distribution summary.
    Degree,
    /// Convergence PageRank (`damping=`, `iters=`, `tol=` parameters).
    Pagerank,
    /// Connected components by min-label propagation.
    Components,
    /// Global triangle count.
    Triangles,
    /// Average clustering coefficient.
    Clustering,
}

impl Algo {
    /// Parse a protocol token (case-insensitive, common aliases accepted).
    pub fn parse(tok: &str) -> Option<Algo> {
        match tok.to_ascii_lowercase().as_str() {
            "degree" | "degrees" => Some(Algo::Degree),
            "pagerank" | "pr" => Some(Algo::Pagerank),
            "components" | "cc" => Some(Algo::Components),
            "triangles" => Some(Algo::Triangles),
            "clustering" => Some(Algo::Clustering),
            _ => None,
        }
    }

    /// Stable lower-case protocol name.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Degree => "degree",
            Algo::Pagerank => "pagerank",
            Algo::Components => "components",
            Algo::Triangles => "triangles",
            Algo::Clustering => "clustering",
        }
    }

    /// Every supported algorithm (oracle-suite iteration order).
    pub fn all() -> [Algo; 5] {
        [
            Algo::Degree,
            Algo::Pagerank,
            Algo::Components,
            Algo::Triangles,
            Algo::Clustering,
        ]
    }
}

/// Parameters of one analysis request. Only PageRank reads them; the
/// protocol layer rejects parameters on the other algorithms so a typo
/// cannot silently key a duplicate cache entry.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AnalyzeParams {
    /// PageRank damping factor (`damping=`), in `(0, 1)`.
    pub damping: f64,
    /// Convergence tolerance (`tol=`): stop once the L∞ rank change of an
    /// iteration drops below it.
    pub tol: f64,
    /// Hard iteration cap (`iters=`).
    pub max_iterations: usize,
}

impl Default for AnalyzeParams {
    fn default() -> Self {
        Self {
            damping: 0.85,
            tol: 1e-12,
            max_iterations: 200,
        }
    }
}

impl AnalyzeParams {
    /// Parse `k=v` tokens (`damping=0.9 iters=50 tol=1e-9`); unspecified
    /// keys keep their defaults.
    pub fn parse(tokens: &[&str]) -> ServeResult<AnalyzeParams> {
        let mut params = AnalyzeParams::default();
        for tok in tokens {
            let (key, value) = tok.split_once('=').ok_or_else(|| {
                ServeError::Protocol(format!("parameter `{tok}` is not of the form k=v"))
            })?;
            let bad = |what: &str| ServeError::Protocol(format!("bad {what} `{value}`"));
            match key.to_ascii_lowercase().as_str() {
                "damping" => {
                    params.damping = value.parse().map_err(|_| bad("damping"))?;
                    if !(params.damping > 0.0 && params.damping < 1.0) {
                        return Err(bad("damping (need 0 < d < 1)"));
                    }
                }
                "tol" => {
                    params.tol = value.parse().map_err(|_| bad("tol"))?;
                    if params.tol <= 0.0 || params.tol.is_nan() {
                        return Err(bad("tol (need > 0)"));
                    }
                }
                "iters" | "iterations" => {
                    params.max_iterations = value.parse().map_err(|_| bad("iters"))?;
                    if params.max_iterations == 0 {
                        return Err(bad("iters (need >= 1)"));
                    }
                }
                other => {
                    return Err(ServeError::Protocol(format!(
                        "unknown parameter `{other}` (damping, tol, iters)"
                    )))
                }
            }
        }
        Ok(params)
    }

    /// Canonical cache-key rendering: only the parameters the algorithm
    /// actually reads, so `ANALYZE g degree` and a future parameterized
    /// spelling share one cache line.
    pub fn canonical(&self, algo: Algo) -> String {
        match algo {
            Algo::Pagerank => format!(
                "damping={:?} tol={:?} iters={}",
                self.damping, self.tol, self.max_iterations
            ),
            _ => String::new(),
        }
    }
}

// ---------------------------------------------------------------------------
// Results
// ---------------------------------------------------------------------------

/// What one computation produced (cache payload plus warm-start state).
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// Which kernel strategy the dispatch picked.
    pub path: CondensedPath,
    /// Power iterations / supersteps executed (1 for one-pass algorithms).
    pub iterations: usize,
    /// One-line framing-safe rendering of the result.
    pub summary: String,
    /// Per-slot out-degrees (degree analysis only; oracle surface).
    pub degrees: Option<Vec<u32>>,
    /// Per-slot ranks (PageRank only; the next version's warm seed).
    pub ranks: Option<Vec<f64>>,
    /// Per-slot component labels (components only; warm seed).
    pub labels: Option<Vec<u32>>,
}

/// One cached analysis result, pinned to the graph version it ran on.
#[derive(Debug)]
pub struct AnalysisEntry {
    version: u64,
    algo: Algo,
    warm: bool,
    outcome: AnalysisOutcome,
}

impl AnalysisEntry {
    /// The graph version the analysis ran on.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The algorithm that produced this entry.
    pub fn algo(&self) -> Algo {
        self.algo
    }

    /// Whether the run was warm-started from a previous version's result.
    pub fn warm(&self) -> bool {
        self.warm
    }

    /// The computed result.
    pub fn outcome(&self) -> &AnalysisOutcome {
        &self.outcome
    }

    /// Render the protocol response line: the `version=` tag, a freshness
    /// flag against the currently published version, and the summary.
    pub fn render(&self, current_version: u64) -> String {
        format!(
            "version={} fresh={} algo={} path={} warm={} iterations={} {}",
            self.version,
            self.version == current_version,
            self.algo.label(),
            self.outcome.path.label(),
            self.warm,
            self.outcome.iterations,
            self.outcome.summary
        )
    }
}

/// Engine-wide counters (the `ANALYZE STATUS` / bare `STATS` surface).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AnalyzeCounters {
    /// Analyses actually computed (cache misses that ran a kernel).
    pub computes: u64,
    /// Requests served from cache or joined onto an in-flight compute.
    pub hits: u64,
    /// Computes warm-started from a previous version's cached result.
    pub warm_starts: u64,
    /// Iterations the warm starts saved relative to their seed runs.
    pub iterations_saved: u64,
    /// Result entries currently retained in the cache.
    pub cached: usize,
    /// Analyses claimed but not yet finished (running or queued).
    pub in_flight: usize,
}

// ---------------------------------------------------------------------------
// Kernel dispatch
// ---------------------------------------------------------------------------

enum Strategy<'a> {
    /// Virtual-node weighting (DEDUP-1: single stored path per edge).
    Aggregated(&'a graphgen_graph::CondensedGraph),
    /// Sort-merge dedup (C-DUP / BITMAP cores: duplicate paths possible).
    Merged(&'a graphgen_graph::CondensedGraph),
    /// Multi-layer condensed core: fall back through `convert` to EXP.
    Expand,
    /// EXP / DEDUP-2: traverse the handle directly.
    Direct,
}

fn pick_strategy(handle: &GraphHandle) -> Strategy<'_> {
    match handle.graph().as_condensed() {
        Some(core) if core.is_single_layer() => {
            if handle.kind() == RepKind::Dedup1 {
                Strategy::Aggregated(core)
            } else {
                Strategy::Merged(core)
            }
        }
        Some(_) => Strategy::Expand,
        None => Strategy::Direct,
    }
}

fn convert_expanded(handle: &GraphHandle) -> ServeResult<GraphHandle> {
    handle
        .convert(RepKind::Exp, &ConvertOptions::default())
        .map_err(|e| ServeError::Analyze(format!("expanded fall-back failed: {e}")))
}

fn degree_summary(handle: &GraphHandle, degs: &[u32]) -> String {
    let mut live: Vec<u32> = handle
        .vertices()
        .map(|u| degs.get(u.0 as usize).copied().unwrap_or(0))
        .collect();
    live.sort_unstable();
    if live.is_empty() {
        return "n=0 min=0 max=0 avg=0.00 p50=0".to_string();
    }
    let n = live.len();
    let sum: u64 = live.iter().map(|&d| u64::from(d)).sum();
    format!(
        "n={n} min={} max={} avg={:.2} p50={}",
        live[0],
        live[n - 1],
        sum as f64 / n as f64,
        live[n / 2]
    )
}

fn pagerank_summary(handle: &GraphHandle, run: &PageRankRun) -> String {
    let mut top: Vec<(f64, RealId)> = handle
        .vertices()
        .map(|u| (run.ranks.get(u.0 as usize).copied().unwrap_or(0.0), u))
        .collect();
    top.sort_by(|a, b| b.0.total_cmp(&a.0).then(a.1 .0.cmp(&b.1 .0)));
    let rendered: Vec<String> = top
        .iter()
        .take(3)
        .map(|(rank, u)| format!("{}:{rank:.6}", format_value(handle.key_of(*u))))
        .collect();
    format!("top={}", rendered.join(","))
}

fn components_summary(handle: &GraphHandle, labels: &[u32]) -> String {
    let mut sizes: FxHashMap<u32, usize> = FxHashMap::default();
    for u in handle.vertices() {
        *sizes
            .entry(labels.get(u.0 as usize).copied().unwrap_or(u.0))
            .or_insert(0) += 1;
    }
    let largest = sizes.values().copied().max().unwrap_or(0);
    format!("components={} largest={largest}", sizes.len())
}

/// Run one analysis on a handle, dispatching to the cheapest sound kernel
/// for its representation (see the module docs). `seed` is a previous
/// version's outcome: its rank vector warm-starts PageRank, its labels
/// warm-start components — soundness gating is the *caller's* job (the
/// service only passes component labels when no removal intervened).
pub fn compute_on_handle(
    handle: &GraphHandle,
    algo: Algo,
    params: &AnalyzeParams,
    seed: Option<&AnalysisOutcome>,
    threads: usize,
) -> ServeResult<AnalysisOutcome> {
    let threads = threads.max(1);
    match algo {
        Algo::Degree => {
            let (degs, path) = match pick_strategy(handle) {
                Strategy::Aggregated(core) => {
                    (degrees_dedup_free(core, threads), CondensedPath::Aggregated)
                }
                Strategy::Merged(core) => (degrees_merged(core, threads), CondensedPath::Merged),
                Strategy::Expand => {
                    let exp = convert_expanded(handle)?;
                    (degrees(&exp, threads), CondensedPath::Traversal)
                }
                Strategy::Direct => (degrees(handle, threads), CondensedPath::Traversal),
            };
            Ok(AnalysisOutcome {
                path,
                iterations: 1,
                summary: degree_summary(handle, &degs),
                degrees: Some(degs),
                ranks: None,
                labels: None,
            })
        }
        Algo::Pagerank => {
            let cfg = SeededPageRankConfig {
                damping: params.damping,
                tol: params.tol,
                max_iterations: params.max_iterations,
                threads,
            };
            let seed_ranks = seed.and_then(|o| o.ranks.as_deref());
            let (run, path) = match pick_strategy(handle) {
                Strategy::Aggregated(core) => (
                    pagerank_dedup_free(core, &cfg, seed_ranks),
                    CondensedPath::Aggregated,
                ),
                Strategy::Merged(core) => (
                    pagerank_merged(core, &cfg, seed_ranks),
                    CondensedPath::Merged,
                ),
                Strategy::Expand => {
                    let exp = convert_expanded(handle)?;
                    (
                        pagerank_seeded(&exp, &cfg, seed_ranks),
                        CondensedPath::Traversal,
                    )
                }
                Strategy::Direct => (
                    pagerank_seeded(handle, &cfg, seed_ranks),
                    CondensedPath::Traversal,
                ),
            };
            Ok(AnalysisOutcome {
                path,
                iterations: run.iterations,
                summary: pagerank_summary(handle, &run),
                degrees: None,
                ranks: Some(run.ranks),
                labels: None,
            })
        }
        Algo::Components => {
            let seed_labels = seed.and_then(|o| o.labels.as_deref());
            let (labels, supersteps) = components_seeded(handle, threads, seed_labels);
            Ok(AnalysisOutcome {
                path: CondensedPath::Traversal,
                iterations: supersteps,
                summary: components_summary(handle, &labels),
                degrees: None,
                ranks: None,
                labels: Some(labels),
            })
        }
        Algo::Triangles => Ok(AnalysisOutcome {
            path: CondensedPath::Traversal,
            iterations: 1,
            summary: format!("triangles={}", triangles(handle)),
            degrees: None,
            ranks: None,
            labels: None,
        }),
        Algo::Clustering => Ok(AnalysisOutcome {
            path: CondensedPath::Traversal,
            iterations: 1,
            summary: format!("avg_clustering={:.6}", average_clustering(handle, threads)),
            degrees: None,
            ranks: None,
            labels: None,
        }),
    }
}

// ---------------------------------------------------------------------------
// The engine: worker pool + single-flight cache
// ---------------------------------------------------------------------------

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A lazily spawned fixed pool. Workers block on a shared receiver and
/// exit when the sender side (the service) is dropped; they are detached,
/// so dropping a service mid-analysis never blocks on a long kernel.
#[derive(Debug, Default)]
struct WorkerPool {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
}

impl WorkerPool {
    fn submit(&self, job: Job) {
        let mut tx = self.tx.lock().unwrap();
        let sender = tx.get_or_insert_with(|| {
            let (sender, receiver) = mpsc::channel::<Job>();
            let receiver = Arc::new(Mutex::new(receiver));
            for _ in 0..WORKERS {
                let receiver = Arc::clone(&receiver);
                std::thread::spawn(move || loop {
                    let next = { receiver.lock().unwrap().recv() };
                    match next {
                        Ok(job) => job(),
                        Err(_) => break,
                    }
                });
            }
            sender
        });
        // Unreachable while the pool owns the sender, but if the workers
        // ever vanished the job must still complete (a flight is waiting).
        if let Err(mpsc::SendError(job)) = sender.send(job) {
            job();
        }
    }
}

/// The single-flight handle concurrent requests for one key share.
#[derive(Debug, Default)]
struct Flight {
    result: Mutex<Option<Result<Arc<AnalysisEntry>, String>>>,
    cv: Condvar,
}

impl Flight {
    fn wait(&self) -> Result<Arc<AnalysisEntry>, String> {
        let mut guard = self.result.lock().unwrap();
        loop {
            if let Some(result) = guard.as_ref() {
                return result.clone();
            }
            guard = match self.cv.wait(guard) {
                Ok(g) => g,
                Err(poisoned) => poisoned.into_inner(),
            };
        }
    }

    fn fulfil(&self, result: Result<Arc<AnalysisEntry>, String>) {
        *self.result.lock().unwrap() = Some(result);
        self.cv.notify_all();
    }
}

#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct CacheKey {
    graph: String,
    algo: Algo,
    params: String,
    version: u64,
}

#[derive(Debug)]
enum Slot {
    Running(Arc<Flight>),
    Done(Arc<AnalysisEntry>),
}

#[derive(Debug, Default)]
struct CacheState {
    cache: FxHashMap<CacheKey, Slot>,
    /// Per graph: the highest version whose publish removed a vertex or an
    /// edge. A components warm seed from version `P` is sound iff
    /// `last_removal <= P` (additions can only merge components; min-label
    /// cannot recover from a split).
    last_removal: FxHashMap<String, u64>,
}

fn same_group(k: &CacheKey, key: &CacheKey) -> bool {
    k.graph == key.graph && k.algo == key.algo && k.params == key.params
}

/// Keep the newest [`KEEP_VERSIONS`] computed versions of `key`'s group.
fn evict_group(state: &mut CacheState, key: &CacheKey) {
    let mut versions: Vec<u64> = state
        .cache
        .iter()
        .filter(|(k, slot)| matches!(slot, Slot::Done(_)) && same_group(k, key))
        .map(|(k, _)| k.version)
        .collect();
    if versions.len() <= KEEP_VERSIONS {
        return;
    }
    versions.sort_unstable();
    let cutoff = versions[versions.len() - KEEP_VERSIONS];
    state.cache.retain(|k, slot| {
        !(matches!(slot, Slot::Done(_)) && same_group(k, key) && k.version < cutoff)
    });
}

/// The newest usable previous-version entry for a warm start, if any.
fn warm_seed(state: &CacheState, key: &CacheKey) -> Option<Arc<AnalysisEntry>> {
    if !matches!(key.algo, Algo::Pagerank | Algo::Components) {
        return None;
    }
    let best = state
        .cache
        .iter()
        .filter_map(|(k, slot)| match slot {
            Slot::Done(entry) if same_group(k, key) && k.version < key.version => {
                Some((k.version, entry))
            }
            _ => None,
        })
        .max_by_key(|(version, _)| *version)?;
    let entry = Arc::clone(best.1);
    if key.algo == Algo::Components {
        let last_removal = state.last_removal.get(&key.graph).copied().unwrap_or(0);
        if last_removal > entry.version {
            return None;
        }
    }
    Some(entry)
}

/// The per-service engine (owned by [`GraphService`], fresh on every
/// construction — recovery therefore starts with a cold cache).
#[derive(Debug, Default)]
pub(crate) struct Analytics {
    shared: Arc<Shared>,
    pool: WorkerPool,
}

#[derive(Debug, Default)]
struct Shared {
    state: Mutex<CacheState>,
    // Registry-backed instruments (see `obs::ServeMetrics`). The counter
    // cells are shared atomics, but every *write* happens while holding
    // `state` — so reading them under the same lock (as
    // `analyze_counters` does) observes a coherent combination, never a
    // torn one like `hits > computes + cache hits issued`. Lock-free
    // readers (the METRICS exposition) still get monotone values, just
    // without cross-counter atomicity.
    computes: Counter,
    hits: Counter,
    warm_starts: Counter,
    iterations_saved: Counter,
    /// Wall time of each kernel run on the worker pool (ns).
    compute_ns: Histogram,
}

impl Analytics {
    /// Bind the engine's counters and timings to registry-owned
    /// instruments. Called once at service assembly, before any analysis
    /// can run; [`Analytics::default`] (standalone tests) keeps detached
    /// cells with identical behaviour.
    pub(crate) fn with_instruments(
        computes: Counter,
        hits: Counter,
        warm_starts: Counter,
        iterations_saved: Counter,
        compute_ns: Histogram,
    ) -> Self {
        Analytics {
            shared: Arc::new(Shared {
                state: Mutex::default(),
                computes,
                hits,
                warm_starts,
                iterations_saved,
                compute_ns,
            }),
            pool: WorkerPool::default(),
        }
    }

    /// Record a committed publish: component warm-starts become unsound
    /// past any version that removed something.
    pub(crate) fn note_publish(&self, name: &str, version: u64, patch: &GraphPatch) {
        if patch.nodes_removed > 0
            || patch.stored_edges_removed > 0
            || patch.logical_edges_removed > 0
        {
            let mut state = self.shared.state.lock().unwrap();
            state.last_removal.insert(name.to_string(), version);
        }
    }

    /// Drop every cached entry of `name` (a dropped graph's name may be
    /// re-registered at version 1; stale entries must not collide).
    pub(crate) fn forget(&self, name: &str) {
        let mut state = self.shared.state.lock().unwrap();
        state.cache.retain(|k, _| k.graph != name);
        state.last_removal.remove(name);
    }
}

impl GraphService {
    /// Run `algo` on the currently published version of `name` — or serve
    /// the cached result when this `(version, algo, params)` was already
    /// computed. The computation happens on the service's analysis worker
    /// pool against a pinned snapshot: the accept loop, readers, and the
    /// writer proceed untouched while it runs. Concurrent requests for the
    /// same key share one computation (single-flight).
    pub fn analyze(
        &self,
        name: &str,
        algo: Algo,
        params: &AnalyzeParams,
    ) -> ServeResult<Arc<AnalysisEntry>> {
        let snap = self.snapshot(name)?;
        let threads = self.analysis_threads();
        let key = CacheKey {
            graph: name.to_string(),
            algo,
            params: params.canonical(algo),
            version: snap.version(),
        };
        let shared = Arc::clone(&self.analytics().shared);
        // Fast path under the cache lock: a hit, a flight to join, or a
        // claim of the key for this request.
        let (flight, seed) = {
            let mut state = shared.state.lock().unwrap();
            match state.cache.get(&key) {
                Some(Slot::Done(entry)) => {
                    let entry = Arc::clone(entry);
                    // Bumped before the lock drops so counter combinations
                    // stay coherent (see the `Shared` field docs).
                    shared.hits.inc();
                    drop(state);
                    return Ok(entry);
                }
                Some(Slot::Running(flight)) => {
                    let flight = Arc::clone(flight);
                    shared.hits.inc();
                    drop(state);
                    return flight.wait().map_err(ServeError::Analyze);
                }
                None => {}
            }
            let seed = warm_seed(&state, &key);
            let flight = Arc::new(Flight::default());
            state
                .cache
                .insert(key.clone(), Slot::Running(Arc::clone(&flight)));
            (flight, seed)
        };
        let job_shared = Arc::clone(&shared);
        let job_flight = Arc::clone(&flight);
        let job_key = key;
        let job_params = *params;
        self.analytics().pool.submit(Box::new(move || {
            run_analysis(
                &job_shared,
                &job_flight,
                &job_key,
                &snap,
                algo,
                &job_params,
                seed,
                threads,
            );
        }));
        flight.wait().map_err(ServeError::Analyze)
    }

    /// The newest cached result for `(name, algo, params)` across all
    /// retained versions, **without computing anything** (the
    /// `ANALYZE STATUS <graph> <algo>` verb). Errs when nothing is cached.
    pub fn analyze_cached(
        &self,
        name: &str,
        algo: Algo,
        params: &AnalyzeParams,
    ) -> ServeResult<Arc<AnalysisEntry>> {
        let probe = CacheKey {
            graph: name.to_string(),
            algo,
            params: params.canonical(algo),
            version: u64::MAX,
        };
        let state = self.analytics().shared.state.lock().unwrap();
        state
            .cache
            .iter()
            .filter_map(|(k, slot)| match slot {
                Slot::Done(entry) if same_group(k, &probe) => Some((k.version, entry)),
                _ => None,
            })
            .max_by_key(|(version, _)| *version)
            .map(|(_, entry)| Arc::clone(entry))
            .ok_or_else(|| {
                ServeError::Analyze(format!(
                    "no cached {} result for graph `{name}`",
                    algo.label()
                ))
            })
    }

    /// Engine-wide analysis counters, snapshotted coherently: every
    /// counter write happens under the cache-state lock, and this read
    /// holds the same lock — so the returned combination corresponds to an
    /// actual point in the engine's history (no torn `hits`/`computes`
    /// mixes mid-publish).
    pub fn analyze_counters(&self) -> AnalyzeCounters {
        let shared = &self.analytics().shared;
        let state = shared.state.lock().unwrap();
        let cached = state
            .cache
            .values()
            .filter(|slot| matches!(slot, Slot::Done(_)))
            .count();
        let in_flight = state.cache.len() - cached;
        AnalyzeCounters {
            computes: shared.computes.get(),
            hits: shared.hits.get(),
            warm_starts: shared.warm_starts.get(),
            iterations_saved: shared.iterations_saved.get(),
            cached,
            in_flight,
        }
    }
}

/// The worker-side body of one analysis: compute, publish into the cache,
/// bump counters, release the flight. Panics in a kernel are contained
/// into an error result so waiters never hang.
#[allow(clippy::too_many_arguments)]
fn run_analysis(
    shared: &Shared,
    flight: &Flight,
    key: &CacheKey,
    snap: &GraphSnapshot,
    algo: Algo,
    params: &AnalyzeParams,
    seed: Option<Arc<AnalysisEntry>>,
    threads: usize,
) {
    let warm = seed.is_some();
    let seed_iterations = seed.as_ref().map(|e| e.outcome.iterations);
    let t0 = Instant::now();
    let computed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _span = metrics::span("analyze_compute", Region::Analyze);
        compute_on_handle(
            snap.handle(),
            algo,
            params,
            seed.as_ref().map(|e| e.outcome()),
            threads,
        )
    }));
    shared.compute_ns.record_since(t0);
    let result: Result<Arc<AnalysisEntry>, String> = match computed {
        Ok(Ok(outcome)) => Ok(Arc::new(AnalysisEntry {
            version: key.version,
            algo,
            warm,
            outcome,
        })),
        Ok(Err(e)) => Err(e.to_string()),
        Err(_) => Err("analysis worker panicked".to_string()),
    };
    {
        let mut state = shared.state.lock().unwrap();
        match &result {
            Ok(entry) => {
                // Only a still-claimed key is filled in: the graph may have
                // been dropped (and forgotten) while the kernel ran.
                if matches!(state.cache.get(key), Some(Slot::Running(_))) {
                    state
                        .cache
                        .insert(key.clone(), Slot::Done(Arc::clone(entry)));
                    evict_group(&mut state, key);
                }
                shared.computes.inc();
                if warm {
                    shared.warm_starts.inc();
                    if let Some(prev) = seed_iterations {
                        let saved = prev.saturating_sub(entry.outcome.iterations) as u64;
                        shared.iterations_saved.add(saved);
                    }
                }
            }
            Err(_) => {
                if matches!(state.cache.get(key), Some(Slot::Running(_))) {
                    state.cache.remove(key);
                }
            }
        }
    }
    flight.fulfil(result);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests::{fig1_db, Q1};
    use crate::service::TableMutation;
    use graphgen_reldb::Value;

    #[test]
    fn algo_and_param_parsing() {
        assert_eq!(Algo::parse("PageRank"), Some(Algo::Pagerank));
        assert_eq!(Algo::parse("cc"), Some(Algo::Components));
        assert_eq!(Algo::parse("nope"), None);
        let p = AnalyzeParams::parse(&["damping=0.9", "iters=50", "tol=1e-9"]).unwrap();
        assert_eq!(p.damping, 0.9);
        assert_eq!(p.max_iterations, 50);
        assert_eq!(p.tol, 1e-9);
        for bad in ["damping=1.5", "tol=0", "iters=0", "x=1", "damping"] {
            assert!(AnalyzeParams::parse(&[bad]).is_err(), "{bad}");
        }
        // Canonical params: only PageRank keys on them.
        assert_eq!(p.canonical(Algo::Degree), "");
        assert!(p.canonical(Algo::Pagerank).contains("damping=0.9"));
    }

    #[test]
    fn analyze_serves_and_caches() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("g", Q1).unwrap();
        let params = AnalyzeParams::default();
        let first = service.analyze("g", Algo::Degree, &params).unwrap();
        assert_eq!(first.version(), 1);
        assert!(!first.warm());
        assert!(first.outcome().degrees.is_some());
        // Same key again: a hit, the identical Arc.
        let second = service.analyze("g", Algo::Degree, &params).unwrap();
        assert!(Arc::ptr_eq(&first, &second));
        let counters = service.analyze_counters();
        assert_eq!(counters.computes, 1);
        assert_eq!(counters.hits, 1);
        assert_eq!(counters.cached, 1);
    }

    #[test]
    fn warm_start_after_publish_and_render_tags() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("g", Q1).unwrap();
        let params = AnalyzeParams::default();
        let v1 = service.analyze("g", Algo::Pagerank, &params).unwrap();
        service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(2), Value::int(3)]],
                vec![],
            )])
            .unwrap();
        let v2 = service.analyze("g", Algo::Pagerank, &params).unwrap();
        assert_eq!(v2.version(), 2);
        assert!(v2.warm(), "second run must seed from the cached v1 ranks");
        assert!(v1.render(2).contains("version=1 fresh=false"));
        assert!(v2
            .render(2)
            .starts_with("version=2 fresh=true algo=pagerank"));
        let counters = service.analyze_counters();
        assert_eq!(counters.warm_starts, 1);
    }

    #[test]
    fn component_seeds_are_dropped_after_removals() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("g", Q1).unwrap();
        let params = AnalyzeParams::default();
        service.analyze("g", Algo::Components, &params).unwrap();
        // A removal publish: the v1 labels are no longer a sound seed.
        service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![],
                vec![vec![Value::int(3), Value::int(3)]],
            )])
            .unwrap();
        let after = service.analyze("g", Algo::Components, &params).unwrap();
        assert!(!after.warm(), "seed must be rejected after a removal");
        // An insert-only publish: the fresh labels become a sound seed.
        service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(3), Value::int(3)]],
                vec![],
            )])
            .unwrap();
        let again = service.analyze("g", Algo::Components, &params).unwrap();
        assert!(again.warm());
    }

    #[test]
    fn cached_lookup_and_eviction() {
        let service = GraphService::in_memory(fig1_db());
        service.extract("g", Q1).unwrap();
        let params = AnalyzeParams::default();
        assert!(service.analyze_cached("g", Algo::Degree, &params).is_err());
        for round in 0u64..4 {
            service.analyze("g", Algo::Degree, &params).unwrap();
            service
                .apply(&[TableMutation::new(
                    "AuthorPub",
                    vec![vec![Value::int(2), Value::int(3 + round as i64)]],
                    vec![],
                )])
                .unwrap();
        }
        // Four versions computed, only KEEP_VERSIONS retained.
        assert_eq!(service.analyze_counters().cached, KEEP_VERSIONS);
        let latest = service.analyze_cached("g", Algo::Degree, &params).unwrap();
        assert_eq!(latest.version(), 4);
        service.drop_graph("g").unwrap();
        assert!(service.analyze_cached("g", Algo::Degree, &params).is_err());
    }
}
