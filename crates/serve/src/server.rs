//! The TCP front end: thread-per-connection over the text protocol.
//!
//! [`spawn`] starts an accept loop on its own thread; each connection gets
//! a handler thread reading newline-delimited commands and writing one
//! response line per command ([`crate::protocol`]). `SHUTDOWN` (from any
//! connection) answers `OK bye`, then stops the accept loop and lets
//! in-flight handlers finish their current line.

use crate::protocol::{execute, parse_command, Command};
use crate::service::GraphService;
use std::io::{self, BufRead, BufReader, Write};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// A running server: its address and the handle to stop/join it.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: JoinHandle<()>,
}

impl ServerHandle {
    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once `SHUTDOWN` was received (or [`ServerHandle::shutdown`]
    /// was called).
    pub fn is_stopped(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Stop accepting and join the accept loop. Idempotent with a
    /// protocol-level `SHUTDOWN`.
    pub fn shutdown(self) {
        request_stop(&self.stop, self.addr);
        let _ = self.accept_thread.join();
    }

    /// Join the accept loop without requesting a stop (wait for a
    /// protocol-level `SHUTDOWN`).
    pub fn wait(self) {
        let _ = self.accept_thread.join();
    }
}

fn request_stop(stop: &AtomicBool, addr: SocketAddr) {
    if !stop.swap(true, Ordering::SeqCst) {
        // Unblock the accept() call with a throwaway connection. A
        // wildcard bind address (0.0.0.0 / ::) is not itself connectable
        // on every platform — poke the listener via loopback instead.
        let mut addr = addr;
        if addr.ip().is_unspecified() {
            addr.set_ip(match addr {
                SocketAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
                SocketAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
            });
        }
        let _ = TcpStream::connect(addr);
    }
}

/// Start serving `service` on `listener`. Returns immediately; use the
/// handle to find the bound address and to stop the server.
pub fn spawn(service: Arc<GraphService>, listener: TcpListener) -> io::Result<ServerHandle> {
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let accept_stop = Arc::clone(&stop);
    let accept_thread = std::thread::Builder::new()
        .name("graphgen-serve-accept".into())
        .spawn(move || {
            for conn in listener.incoming() {
                if accept_stop.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let service = Arc::clone(&service);
                let stop = Arc::clone(&accept_stop);
                // Handlers are detached: a handler parked on an idle
                // connection exits on client EOF (or with the process), so
                // shutdown never waits on somebody else's open socket.
                let _ = std::thread::Builder::new()
                    .name("graphgen-serve-conn".into())
                    .spawn(move || handle_connection(stream, &service, &stop, addr));
            }
        })?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread,
    })
}

/// Decrements the active-connections gauge on every exit path of
/// [`handle_connection`] (early returns and panics included).
struct ActiveConnGuard<'a>(&'a GraphService);

impl Drop for ActiveConnGuard<'_> {
    fn drop(&mut self) {
        self.0.obs().m.connections_active.sub(1);
    }
}

fn handle_connection(
    stream: TcpStream,
    service: &GraphService,
    stop: &AtomicBool,
    addr: SocketAddr,
) {
    service.obs().m.connections_opened_total.inc();
    service.obs().m.connections_active.add(1);
    let _active = ActiveConnGuard(service);
    let Ok(mut writer) = stream.try_clone() else {
        return;
    };
    let reader = BufReader::new(stream);
    for line in reader.lines() {
        let Ok(line) = line else { break };
        if stop.load(Ordering::SeqCst) {
            break;
        }
        let response = match parse_command(&line) {
            Ok(None) => continue,
            Ok(Some(cmd)) => {
                let response = execute(service, &cmd);
                if matches!(cmd, Command::Shutdown) {
                    let _ = writeln!(writer, "{response}");
                    let _ = writer.flush();
                    request_stop(stop, addr);
                    return;
                }
                response
            }
            Err(e) => crate::protocol::sanitize_line(&format!("ERR {e}")),
        };
        if writeln!(writer, "{response}")
            .and_then(|()| writer.flush())
            .is_err()
        {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::tests::{fig1_db, Q1};

    fn client(addr: SocketAddr) -> (BufReader<TcpStream>, TcpStream) {
        let stream = TcpStream::connect(addr).unwrap();
        (BufReader::new(stream.try_clone().unwrap()), stream)
    }

    fn roundtrip(reader: &mut BufReader<TcpStream>, writer: &mut TcpStream, line: &str) -> String {
        writeln!(writer, "{line}").unwrap();
        let mut response = String::new();
        reader.read_line(&mut response).unwrap();
        response.trim_end().to_string()
    }

    #[test]
    fn end_to_end_over_tcp() {
        let service = Arc::new(GraphService::in_memory(fig1_db()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(service, listener).unwrap();
        let addr = handle.addr();

        let (mut r1, mut w1) = client(addr);
        assert_eq!(roundtrip(&mut r1, &mut w1, "PING"), "OK pong");
        assert!(roundtrip(&mut r1, &mut w1, &format!("EXTRACT g {Q1}")).starts_with("OK version=1"));
        // A second, concurrent connection sees the same registry.
        let (mut r2, mut w2) = client(addr);
        assert!(roundtrip(&mut r2, &mut w2, "NEIGHBORS g 4").starts_with("OK version=1 n=4"));
        assert!(roundtrip(&mut r1, &mut w1, "APPLY AuthorPub +2,3").starts_with("OK rows=1 g@2"));
        assert!(roundtrip(&mut r2, &mut w2, "DEGREE g 2").starts_with("OK version=2 degree=4"));
        // Bad input gets an ERR line, and the connection stays usable.
        assert!(roundtrip(&mut r2, &mut w2, "NOPE").starts_with("ERR"));
        assert_eq!(roundtrip(&mut r2, &mut w2, "PING"), "OK pong");
        // Protocol-level shutdown.
        assert_eq!(roundtrip(&mut r1, &mut w1, "SHUTDOWN"), "OK bye");
        handle.wait();
    }

    #[test]
    fn shutdown_handle_side() {
        let service = Arc::new(GraphService::in_memory(fig1_db()));
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let handle = spawn(service, listener).unwrap();
        assert!(!handle.is_stopped());
        handle.shutdown();
    }
}
