//! Kill-and-recover: a service dropped abruptly (no shutdown call exists —
//! every committed version is already durable) must reopen to the exact
//! pre-crash canonical bytes for every registered graph, from every crash
//! layout: snapshot + non-empty WAL, WAL-only-compacted graphs, stale WAL
//! records after a snapshot rename (mid-compaction), leftover `.tmp`
//! files, and torn WAL tails.

use graphgen_common::SplitMix64;
use graphgen_reldb::{Column, Database, Schema, Table, Value};
use graphgen_serve::testutil::TempDir;
use graphgen_serve::{GraphService, ServiceConfig, TableMutation};
use std::collections::HashMap;

const Q_COAUTHORS: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                           Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";
const Q_NODES_ONLY: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                            Edges(A, B) :- Author(A, N), Author(B, N).";

fn seed_db() -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 1..=12 {
        author
            .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (a, p) in [
        (1, 1),
        (2, 1),
        (4, 1),
        (1, 2),
        (4, 2),
        (3, 3),
        (4, 3),
        (5, 3),
    ] {
        ap.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();
    db
}

fn churn(service: &GraphService, seed: u64, batches: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut applied = 0;
    while applied < batches {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for _ in 0..rng.next_below(3) + 1 {
            let row = vec![
                Value::int(rng.next_below(12) as i64 + 1),
                Value::int(rng.next_below(6) as i64 + 1),
            ];
            if rng.next_below(4) == 0 {
                deletes.push(row);
            } else {
                inserts.push(row);
            }
        }
        let outcome = service
            .apply(&[
                TableMutation::new("AuthorPub", inserts, deletes),
                // Occasionally churn the node table too.
                if rng.next_below(5) == 0 {
                    TableMutation::new(
                        "Author",
                        vec![vec![
                            Value::int(rng.next_below(20) as i64 + 1),
                            Value::str(format!("r{applied}")),
                        ]],
                        vec![],
                    )
                } else {
                    TableMutation::new("Author", vec![], vec![])
                },
            ])
            .unwrap();
        if !outcome.graphs.is_empty() {
            applied += 1;
        }
    }
}

/// Canonical bytes + version per graph.
fn fingerprint(service: &GraphService) -> HashMap<String, (u64, Vec<u8>)> {
    service
        .names()
        .into_iter()
        .map(|name| {
            let snap = service.snapshot(&name).unwrap();
            (name, (snap.version(), snap.canonical_bytes()))
        })
        .collect()
}

fn assert_recovered(dir: &TempDir, expected: &HashMap<String, (u64, Vec<u8>)>) {
    let recovered = GraphService::open(dir.path()).unwrap();
    let got = fingerprint(&recovered);
    assert_eq!(
        got.keys().collect::<std::collections::BTreeSet<_>>(),
        expected.keys().collect::<std::collections::BTreeSet<_>>(),
        "graph registry diverged"
    );
    for (name, (version, bytes)) in expected {
        let (got_version, got_bytes) = &got[name];
        assert_eq!(got_version, version, "{name}: version diverged");
        assert_eq!(got_bytes, bytes, "{name}: canonical bytes diverged");
    }
}

/// Abrupt drop with snapshot + non-empty WAL on two graphs (one of which
/// ignores most of the churn).
#[test]
fn recover_snapshot_plus_wal() {
    let dir = TempDir::new("rec-basic");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX, // never compact: WAL carries everything
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        service.extract("roster", Q_NODES_ONLY).unwrap();
        churn(&service, 7, 12);
        expected = fingerprint(&service);
        // WAL must be non-empty for the scenario to be the one claimed.
        let (stats, _) = service.stats();
        assert!(stats.iter().any(|s| s.wal_bytes > 0));
    }
    assert_recovered(&dir, &expected);
}

/// Aggressive compaction: every batch folds the WAL into a fresh snapshot,
/// so recovery is snapshot-only (plus whatever tail remains).
#[test]
fn recover_with_aggressive_compaction() {
    let dir = TempDir::new("rec-compact");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: 1, // every publish triggers compaction
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 21, 10);
        expected = fingerprint(&service);
    }
    assert_recovered(&dir, &expected);
}

/// Mid-compaction crash, layout A: the new snapshot was renamed into place
/// but the WAL was not yet truncated — recovery must skip the WAL records
/// the snapshot already contains.
#[test]
fn recover_mid_compaction_stale_wal() {
    let dir = TempDir::new("rec-midcompact");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 33, 8);
        // Simulate: keep the pre-compaction WAL, compact (snapshot moves to
        // the newest version + WAL truncates), then restore the stale WAL —
        // exactly the layout of a crash between rename and truncate.
        let wal_path = dir.path().join("coauthors.graph.wal");
        let stale_wal = std::fs::read(&wal_path).unwrap();
        assert!(!stale_wal.is_empty());
        service.compact("coauthors").unwrap();
        expected = fingerprint(&service);
        drop(service);
        std::fs::write(&wal_path, &stale_wal).unwrap();
    }
    assert_recovered(&dir, &expected);
}

/// Mid-compaction crash, layout B: the crash hit before the rename — a
/// leftover `.tmp` next to the old snapshot and the full WAL. The `.tmp`
/// must be ignored and the WAL replayed.
#[test]
fn recover_mid_compaction_leftover_tmp() {
    let dir = TempDir::new("rec-tmp");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 55, 6);
        expected = fingerprint(&service);
        // A half-written snapshot the rename never happened for.
        std::fs::write(dir.path().join("coauthors.graph.tmp"), b"half-written").unwrap();
    }
    assert_recovered(&dir, &expected);
}

/// A WAL whose tail record was torn mid-write: the torn record was never
/// acknowledged, so recovery lands exactly on the last durable version.
#[test]
fn recover_torn_wal_tail() {
    let dir = TempDir::new("rec-torn");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 77, 6);
        expected = fingerprint(&service);
        drop(service);
        // Append garbage that looks like the start of a record.
        let wal_path = dir.path().join("coauthors.graph.wal");
        let mut raw = std::fs::read(&wal_path).unwrap();
        raw.extend_from_slice(&[0x40, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&wal_path, &raw).unwrap();
    }
    assert_recovered(&dir, &expected);
}

/// Crash between the two WAL appends of one batch: the db WAL carries the
/// batch, the graph WAL does not (they are separate files, appended in
/// sequence). Recovery must catch the lagging graph up from the db WAL —
/// not serve a graph one batch behind its database — and the caught-up
/// maintenance state must keep evolving identically to an uninterrupted
/// service.
#[test]
fn recover_graph_wal_lagging_db_wal() {
    let dir = TempDir::new("rec-lag");
    let wal_path = dir.path().join("coauthors.graph.wal");
    let final_batch = [TableMutation::new(
        "AuthorPub",
        vec![
            vec![Value::int(2), Value::int(2)],
            vec![Value::int(4), Value::int(5)],
        ],
        vec![],
    )];
    let expected;
    let pre_len;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        service.extract("roster", Q_NODES_ONLY).unwrap();
        churn(&service, 13, 6);
        pre_len = std::fs::metadata(&wal_path).unwrap().len() as usize;
        // One more committed batch; its graph-WAL record is then erased to
        // reproduce a crash after the db-WAL append, before the graph's.
        let outcome = service.apply(&final_batch).unwrap();
        assert_eq!(outcome.graphs.len(), 1);
        expected = fingerprint(&service);
    }
    let raw = std::fs::read(&wal_path).unwrap();
    assert!(raw.len() > pre_len, "the batch must have appended a record");
    std::fs::write(&wal_path, &raw[..pre_len]).unwrap();
    assert_recovered(&dir, &expected);
    // assert_recovered's open() already re-appended the missing record, so
    // this second recovery starts from healed logs.
    let recovered = GraphService::open(dir.path()).unwrap();
    let reference = GraphService::in_memory(seed_db());
    reference.extract("coauthors", Q_COAUTHORS).unwrap();
    reference.extract("roster", Q_NODES_ONLY).unwrap();
    churn(&reference, 13, 6);
    reference.apply(&final_batch).unwrap();
    churn(&recovered, 17, 3);
    churn(&reference, 17, 3);
    assert_eq!(
        recovered.snapshot("coauthors").unwrap().canonical_bytes(),
        reference.snapshot("coauthors").unwrap().canonical_bytes(),
        "caught-up graph diverged from the uninterrupted reference"
    );
}

/// A graph whose tables the workload never touches gains no WAL records,
/// yet aggressive db compaction truncates `db.wal` constantly. The
/// compaction rule (fold every graph whose durable stamp lags before
/// truncating the db log) must keep such a graph recoverable.
#[test]
fn recover_quiescent_graph_across_db_compaction() {
    let dir = TempDir::new("rec-db-compact");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: 1, // every batch folds the oversized WALs
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        service.extract("roster", Q_NODES_ONLY).unwrap();
        // AuthorPub-only churn: roster (Author-only) stays at version 1
        // throughout while db.wal is truncated after every batch.
        for pid in 1..=5 {
            service
                .apply(&[TableMutation::new(
                    "AuthorPub",
                    vec![vec![Value::int(pid), Value::int(6)]],
                    vec![],
                )])
                .unwrap();
        }
        assert_eq!(service.snapshot("roster").unwrap().version(), 1);
        expected = fingerprint(&service);
    }
    assert_recovered(&dir, &expected);
}

/// The layout the db-version stamps exist to rule out: a graph consistent
/// with a database version *older than `db.snap`*, with the batches in
/// between compacted away. No crash produces it; if it is found on disk
/// anyway, recovery must refuse rather than silently serve a diverged
/// graph.
#[test]
fn graph_stranded_behind_db_snapshot_is_rejected() {
    let dir = TempDir::new("rec-stranded");
    let snap_path = dir.path().join("roster.graph.snap");
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: 1,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("roster", Q_NODES_ONLY).unwrap();
        let stale_snap = std::fs::read(&snap_path).unwrap();
        // Author batches advance roster while truncating db.wal each time.
        for a in 0..3i64 {
            service
                .apply(&[TableMutation::new(
                    "Author",
                    vec![vec![Value::int(50 + a), Value::str(format!("n{a}"))]],
                    vec![],
                )])
                .unwrap();
        }
        drop(service);
        // Hand-roll the impossible state: roster's files claim database
        // version 0 while db.snap is at 3 and db.wal is empty.
        std::fs::write(&snap_path, &stale_snap).unwrap();
        std::fs::write(dir.path().join("roster.graph.wal"), b"").unwrap();
    }
    let err = GraphService::open(dir.path()).unwrap_err();
    assert!(
        matches!(err, graphgen_serve::ServeError::Corrupt { .. }),
        "{err}"
    );
}

/// `drop_graph` unlinks the snapshot first, then the WAL; a crash between
/// the two leaves a WAL-only graph on disk. Recovery must not register it,
/// and a re-extraction under the same name must not resurrect its records
/// (extract empties the leftover log *before* writing the fresh snapshot,
/// so no crash point leaves the two inconsistent).
#[test]
fn reextract_after_partial_drop_crash_ignores_stale_wal() {
    let dir = TempDir::new("rec-redrop");
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 41, 5);
    }
    std::fs::remove_file(dir.path().join("coauthors.graph.snap")).unwrap();
    let reopened = GraphService::open(dir.path()).unwrap();
    assert!(
        reopened.names().is_empty(),
        "snapshot-less graph must not be registered"
    );
    reopened.extract("coauthors", Q_COAUTHORS).unwrap();
    churn(&reopened, 43, 3);
    let expected = fingerprint(&reopened);
    drop(reopened);
    assert_recovered(&dir, &expected);
}

/// `create` over a directory holding a leftover db.wal (the operator
/// deleted a bad db.snap to start over) must empty the old incarnation's
/// log: replaying its records over the fresh database would resurrect
/// mutations the new service never saw and mask the new records behind
/// their recycled version numbers.
#[test]
fn create_resets_stale_db_wal() {
    let dir = TempDir::new("rec-stale-dbwal");
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        for pid in 1..=3 {
            service
                .apply(&[TableMutation::new(
                    "AuthorPub",
                    vec![vec![Value::int(pid), Value::int(6)]],
                    vec![],
                )])
                .unwrap();
        }
    }
    assert!(std::fs::metadata(dir.path().join("db.wal")).unwrap().len() > 0);
    std::fs::remove_file(dir.path().join("db.snap")).unwrap();
    let expected;
    let rows_expected;
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        service
            .apply(&[TableMutation::new(
                "AuthorPub",
                vec![vec![Value::int(2), Value::int(2)]],
                vec![],
            )])
            .unwrap();
        expected = fingerprint(&service);
        rows_expected = service.stats().1;
    }
    let recovered = GraphService::open(dir.path()).unwrap();
    assert_eq!(recovered.stats().1, rows_expected, "db rows diverged");
    assert_recovered(&dir, &expected);
}

/// `create` over a directory holding a previous incarnation's graph files
/// (same start-over scenario as above, but with graphs registered) must
/// delete them: they were extracted from a database this service never
/// saw, and a later `open` would otherwise serve them as live.
#[test]
fn create_clears_previous_incarnation_graph_files() {
    let dir = TempDir::new("rec-stale-graphs");
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 3, 3);
    }
    std::fs::remove_file(dir.path().join("db.snap")).unwrap();
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        assert!(!dir.path().join("coauthors.graph.snap").exists());
        assert!(!dir.path().join("coauthors.graph.wal").exists());
        service
            .apply(&[TableMutation::new(
                "Author",
                vec![vec![Value::int(30), Value::str("x")]],
                vec![],
            )])
            .unwrap();
    }
    let recovered = GraphService::open(dir.path()).unwrap();
    assert!(
        recovered.names().is_empty(),
        "previous incarnation's graph resurrected"
    );
}

/// A corrupted snapshot file must fail recovery with a clean `Corrupt`
/// error (whole-file checksum), never decode flipped bytes.
#[test]
fn corrupted_snapshot_is_rejected() {
    let dir = TempDir::new("rec-corrupt-snap");
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 11, 3);
    }
    let snap_path = dir.path().join("coauthors.graph.snap");
    let mut raw = std::fs::read(&snap_path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&snap_path, &raw).unwrap();
    let err = GraphService::open(dir.path()).unwrap_err();
    assert!(
        matches!(err, graphgen_serve::ServeError::Corrupt { .. }),
        "{err}"
    );
}

/// The recovered incremental state must keep *working*: post-recovery
/// mutations yield the same graph a never-crashed service reaches.
#[test]
fn recovered_service_continues_identically() {
    let dir = TempDir::new("rec-continue");
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 99, 5);
    }
    let recovered = GraphService::open(dir.path()).unwrap();
    // A parallel, never-persisted service fed the identical full stream.
    let reference = GraphService::in_memory(seed_db());
    reference.extract("coauthors", Q_COAUTHORS).unwrap();
    churn(&reference, 99, 5);
    churn(&recovered, 123, 5);
    churn(&reference, 123, 5);
    assert_eq!(
        recovered.snapshot("coauthors").unwrap().canonical_bytes(),
        reference.snapshot("coauthors").unwrap().canonical_bytes(),
        "recovered service diverged from the uninterrupted reference"
    );
}

/// Format-bump guard: a graph snapshot carrying a retired magic (here
/// `GGSVGR4\0`, which framed the value-keyed maintenance state, and
/// `GGSVGR3\0`, which also lacked the frozen-plan section) must fail
/// recovery with a clean `Corrupt` magic mismatch — never misparse into a
/// half-decoded graph.
#[test]
fn old_format_graph_snapshot_is_rejected_by_magic() {
    for old in [*b"GGSVGR4\0", *b"GGSVGR3\0"] {
        let dir = TempDir::new("rec-old-magic");
        {
            let service =
                GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
            service.extract("coauthors", Q_COAUTHORS).unwrap();
        }
        // Rewrite the (valid, sealed) snapshot with the previous format's
        // magic, resealing so the integrity trailer still matches: the
        // decoder must trip on the magic itself.
        let snap_path = dir.path().join("coauthors.graph.snap");
        let sealed = std::fs::read(&snap_path).unwrap();
        let mut content = graphgen_serve::wal::unseal(&sealed).unwrap().to_vec();
        assert_eq!(&content[..8], b"GGSVGR5\0");
        content[..8].copy_from_slice(&old);
        graphgen_serve::wal::seal(&mut content);
        std::fs::write(&snap_path, &content).unwrap();
        let err = GraphService::open(dir.path()).unwrap_err();
        match &err {
            graphgen_serve::ServeError::Corrupt { what, .. } => {
                assert!(what.contains("bad magic"), "unexpected reason: {what}");
            }
            other => panic!("expected Corrupt, got {other}"),
        }
    }
}

/// Restart onto the chunked snapshot format mid-WAL: the `.graph.snap`
/// (GGSVGR5 framing a chunked GGSNAP3 handle, written from the *working*
/// handle so it carries the full maintenance state) plus a WAL holding
/// batches committed after it. Recovery must decode the chunked snapshot,
/// replay the log, and keep both the reader side (canonical bytes, CoW
/// isolation) and the writer side (identical continuation) intact.
#[test]
fn recover_chunked_snapshot_mid_wal() {
    let dir = TempDir::new("rec-chunked-midwal");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX, // keep every batch in the WAL
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 7, 6);
        expected = fingerprint(&service);
        // Abrupt drop: on disk sit the v1 chunked snapshot + 6 WAL records.
    }
    assert_recovered(&dir, &expected);
    // The recovered writer continues exactly like an uninterrupted one,
    // and a version pinned after recovery is immune to further publishes.
    let recovered = GraphService::open(dir.path()).unwrap();
    let reference = GraphService::in_memory(seed_db());
    reference.extract("coauthors", Q_COAUTHORS).unwrap();
    churn(&reference, 7, 6);
    let pin = recovered.snapshot("coauthors").unwrap();
    let pin_bytes = pin.canonical_bytes();
    churn(&recovered, 8, 4);
    churn(&reference, 8, 4);
    assert_eq!(
        recovered.snapshot("coauthors").unwrap().canonical_bytes(),
        reference.snapshot("coauthors").unwrap().canonical_bytes(),
        "post-recovery continuation diverged"
    );
    assert_eq!(
        pin.canonical_bytes(),
        pin_bytes,
        "pin taken after recovery mutated by later publishes"
    );
}
