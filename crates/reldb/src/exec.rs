//! Physical operators.
//!
//! The extraction layer composes three operators: filtered scans with
//! projection, hash equi-joins, and duplicate elimination. A nested-loop
//! join is provided as the test oracle.
//!
//! # Operator contract
//!
//! Every operator consumes and produces [`RowSet`]s — flat value arenas with
//! index-addressed rows — instead of `Vec<Vec<Value>>`, so no operator
//! allocates per row and none deep-clones values it does not emit:
//!
//! * [`scan_project`] evaluates the predicate against the table columns in
//!   place and clones only the projected columns of passing rows;
//! * [`hash_join`] / [`hash_join_project`] build a pointer-based index
//!   (`&Value` keys, row indices as payload) on the **smaller** input and
//!   emit only the requested output columns;
//! * [`distinct_rows`] keeps a hash-of-row index into its own output, so
//!   each surviving row is stored exactly once.
//!
//! # Parallelism and determinism
//!
//! Each operator takes a `threads` knob (plumbed from
//! `GraphGenConfig::threads()` through every segment query). Scans and join
//! probes are morsel-parallel, join builds and DISTINCT are hash-partitioned
//! (`std::thread::scope`, no external deps). Per-thread partial results are
//! merged in morsel/partition order, so **for any `threads` value the output
//! is byte-identical to the serial run**: scans preserve table order, joins
//! preserve left-outer/right-inner order, DISTINCT preserves first
//! occurrence. Inputs below `graphgen_common::parallel::MIN_PARALLEL_ITEMS`
//! run serially regardless of `threads`.

use crate::expr::Predicate;
use crate::intern::{Interner, Vid, NULL_VID};
use crate::rowset::{hash_row, hash_value, RowSet};
use crate::table::Table;
use crate::value::Value;
use graphgen_common::metrics;
use graphgen_common::parallel::{
    effective_threads, map_morsels, map_partitions, scatter_partitions,
};
use graphgen_common::region::Region;
use graphgen_common::{FxHashMap, FxHasher};
use std::hash::Hasher;

// Every operator opens a metrics span at entry: it enters an allocation
// region (`graphgen_common::region`) so the counting allocator in
// `graphgen-bench` can attribute bytes per operator, and on drop it logs
// the operator's wall time into the caller's phase log
// (`graphgen_common::metrics::collect_phases`) so the serving layer can
// report extraction phase breakdowns. The parallel helpers propagate the
// caller's region label onto their worker threads, and the span guard
// lives on the calling thread for the whole operator, so one guard at
// operator entry covers the whole fan-out (scatter buckets included).

/// Row indices are carried as `u32` inside the operators to halve the
/// footprint of join/distinct bookkeeping.
const MAX_ROWS: usize = u32::MAX as usize;

/// Merge per-thread partial outputs in morsel order.
fn merge(arity: usize, parts: Vec<RowSet>) -> RowSet {
    let mut parts = parts.into_iter();
    let mut out = parts.next().unwrap_or_else(|| RowSet::new(arity));
    for p in parts {
        out.append(p);
    }
    out
}

/// Scan `table`, keep rows satisfying `pred`, and project the columns in
/// `cols` (by index, in output order). The predicate is evaluated against
/// the table's columns directly; only the projected columns of passing rows
/// are cloned. Morsel-parallel over `threads`, output in table row order.
pub fn scan_project(table: &Table, pred: &Predicate, cols: &[usize], threads: usize) -> RowSet {
    let _span = metrics::span("scan", Region::Scan);
    // Morsels split the physical row space; tombstoned rows are skipped so
    // the output is the live rows in physical (= insertion) order.
    let n = table.physical_rows();
    let t = effective_threads(threads, n);
    let parts = map_morsels(n, t, |range| {
        let mut out = RowSet::new(cols.len());
        for r in range {
            if table.is_live(r) && pred.eval_at(table, r) {
                out.push_row(cols.iter().map(|&c| table.cell(r, c).clone()));
            }
        }
        out
    });
    merge(cols.len(), parts)
}

/// A hash-partitioned join index over one side's key column: partition `p`
/// owns the keys with `hash_value(key) % parts == p`. Per-key row-index
/// lists are ascending because every partition scans the build side in row
/// order.
type JoinIndex<'a> = Vec<FxHashMap<&'a Value, Vec<u32>>>;

fn build_index(build: &RowSet, key: usize, parts: usize) -> JoinIndex<'_> {
    let _span = metrics::span("join", Region::Build);
    assert!(build.num_rows() <= MAX_ROWS, "row set too large");
    if parts <= 1 {
        let mut index: FxHashMap<&Value, Vec<u32>> = FxHashMap::default();
        for (i, row) in build.iter().enumerate() {
            let k = &row[key];
            if !k.is_null() {
                index.entry(k).or_default().push(i as u32);
            }
        }
        return vec![index];
    }
    // Hash every key exactly once, scattering row indices into per-morsel
    // partition buckets; each partition thread then touches only its own
    // rows, and scatter order keeps per-key index lists ascending.
    let buckets = scatter_partitions(build.num_rows(), parts, |r| {
        let h = hash_value(&build.row(r)[key]);
        ((h as usize) % parts, r as u32)
    });
    map_partitions(parts, |p| {
        let mut index: FxHashMap<&Value, Vec<u32>> = FxHashMap::default();
        for morsel in &buckets {
            for &i in &morsel[p] {
                let k = &build.row(i as usize)[key];
                if !k.is_null() {
                    index.entry(k).or_default().push(i);
                }
            }
        }
        index
    })
}

fn index_lookup<'a, 'b>(index: &'b JoinIndex<'a>, key: &Value) -> Option<&'b [u32]> {
    let part = if index.len() > 1 {
        (hash_value(key) as usize) % index.len()
    } else {
        0
    };
    index[part].get(key).map(Vec::as_slice)
}

/// Hash equi-join: join `left` and `right` row sets on
/// `left[lkey] == right[rkey]`, emitting `left ++ right` rows.
///
/// Rows with NULL join keys never match (SQL semantics). Output order is the
/// nested-loop order (left rows outer, matching right rows in row order)
/// regardless of `threads` or which side the hash table is built on.
pub fn hash_join(
    left: &RowSet,
    lkey: usize,
    right: &RowSet,
    rkey: usize,
    threads: usize,
) -> RowSet {
    let cols: Vec<usize> = (0..left.arity() + right.arity()).collect();
    hash_join_project(left, lkey, right, rkey, &cols, threads)
}

/// [`hash_join`] fused with a projection: `cols` indexes into the virtual
/// concatenated row `left ++ right`, and only those columns are ever
/// materialized. This is what chain queries use to avoid paying for join
/// columns they immediately discard.
///
/// The hash table is built on the smaller input (ties build on `right`);
/// when the build side is `left`, matches are collected as index pairs and
/// sorted back into left-outer order, so the output is identical either way.
pub fn hash_join_project(
    left: &RowSet,
    lkey: usize,
    right: &RowSet,
    rkey: usize,
    cols: &[usize],
    threads: usize,
) -> RowSet {
    let t = effective_threads(threads, left.num_rows().max(right.num_rows()));
    if right.num_rows() <= left.num_rows() {
        // Build on `right`, probe with `left` outer: morsel concatenation
        // already yields left-outer order. The partition count is sized by
        // the *build* side so a tiny build stays serial under a big probe.
        let index = build_index(right, rkey, effective_threads(threads, right.num_rows()));
        let _span = metrics::span("join", Region::Probe);
        let parts = map_morsels(left.num_rows(), t, |range| {
            let mut out = RowSet::new(cols.len());
            for l in range {
                let lrow = left.row(l);
                let k = &lrow[lkey];
                if k.is_null() {
                    continue;
                }
                if let Some(matches) = index_lookup(&index, k) {
                    for &r in matches {
                        push_joined(&mut out, lrow, right.row(r as usize), cols);
                    }
                }
            }
            out
        });
        merge(cols.len(), parts)
    } else {
        // `left` is strictly smaller: build on it, probe with `right`, then
        // reorder the matched index pairs into left-outer order.
        assert!(right.num_rows() <= MAX_ROWS, "row set too large");
        let index = build_index(left, lkey, effective_threads(threads, left.num_rows()));
        let _span = metrics::span("join", Region::Probe);
        let pairs: Vec<(u32, u32)> = map_morsels(right.num_rows(), t, |range| {
            let mut local = Vec::new();
            for r in range {
                let k = &right.row(r)[rkey];
                if k.is_null() {
                    continue;
                }
                if let Some(matches) = index_lookup(&index, k) {
                    local.extend(matches.iter().map(|&l| (l, r as u32)));
                }
            }
            local
        })
        .concat();
        // Restore (left, right) lexicographic order == nested-loop emission
        // order. The concatenated pairs are already sorted by `r` with
        // ascending `r` per `l`, so a *stable* counting sort on `l` alone
        // finishes the job in O(m + |left|) instead of O(m log m).
        let pairs = counting_sort_by_left(pairs, left.num_rows());
        let parts = map_morsels(
            pairs.len(),
            effective_threads(threads, pairs.len()),
            |range| {
                let mut out = RowSet::with_row_capacity(cols.len(), range.len());
                for &(l, r) in &pairs[range] {
                    push_joined(&mut out, left.row(l as usize), right.row(r as usize), cols);
                }
                out
            },
        );
        merge(cols.len(), parts)
    }
}

// ---------------------------------------------------------------------------
// Interned operators
// ---------------------------------------------------------------------------
//
// When the caller owns the database dictionary (chain queries always do —
// every row they touch is derived from base tables), the join/DISTINCT key
// space can be resolved to dense `Vid`s once per row up front. After that
// resolution, partitioning, probing, and equality are all `u32` operations:
// no second value hash on the map lookup, no deep string comparison on
// collision chains, and the index itself stores machine words instead of
// `&Value` keys. If any key turns out not to be interned (a synthetic row
// set built outside the database), the operators fall back to the
// value-keyed path — semantics are identical either way.

/// Hash a row of dictionary ids (DISTINCT bookkeeping key).
fn hash_vid_row(vids: &[Vid]) -> u64 {
    let mut h = FxHasher::default();
    for &v in vids {
        h.write_u32(v);
    }
    h.finish()
}

/// Resolve column `key` of every row to its dictionary id, morsel-parallel.
/// Returns `None` if any key value is not interned.
fn resolve_key_vids(
    rows: &RowSet,
    key: usize,
    dict: &Interner,
    threads: usize,
) -> Option<Vec<Vid>> {
    let n = rows.num_rows();
    let t = effective_threads(threads, n);
    let parts: Vec<Option<Vec<Vid>>> = map_morsels(n, t, |range| {
        range.map(|r| dict.lookup(&rows.row(r)[key])).collect()
    });
    let mut out = Vec::with_capacity(n);
    for part in parts {
        out.extend(part?);
    }
    Some(out)
}

/// Resolve every cell of every row, row-major (`arity * num_rows` ids).
fn resolve_row_vids(rows: &RowSet, dict: &Interner, threads: usize) -> Option<Vec<Vid>> {
    let n = rows.num_rows();
    let arity = rows.arity();
    let t = effective_threads(threads, n);
    let parts: Vec<Option<Vec<Vid>>> = map_morsels(n, t, |range| {
        let mut out = Vec::with_capacity(range.len() * arity);
        for r in range {
            for v in rows.row(r) {
                out.push(dict.lookup(v)?);
            }
        }
        Some(out)
    });
    let mut out = Vec::with_capacity(n * arity);
    for part in parts {
        out.extend(part?);
    }
    Some(out)
}

/// Hash-partitioned join index over dictionary ids: partition `p` owns the
/// keys with `vid % parts == p`. Per-key row-index lists are ascending.
type VidIndex = Vec<FxHashMap<Vid, Vec<u32>>>;

fn build_vid_index(keys: &[Vid], parts: usize) -> VidIndex {
    let _span = metrics::span("join", Region::Build);
    assert!(keys.len() <= MAX_ROWS, "row set too large");
    if parts <= 1 {
        let mut index: FxHashMap<Vid, Vec<u32>> = FxHashMap::default();
        for (i, &k) in keys.iter().enumerate() {
            if k != NULL_VID {
                index.entry(k).or_default().push(i as u32);
            }
        }
        return vec![index];
    }
    let buckets = scatter_partitions(keys.len(), parts, |r| {
        ((keys[r] as usize) % parts, r as u32)
    });
    map_partitions(parts, |p| {
        let mut index: FxHashMap<Vid, Vec<u32>> = FxHashMap::default();
        for morsel in &buckets {
            for &i in &morsel[p] {
                let k = keys[i as usize];
                if k != NULL_VID {
                    index.entry(k).or_default().push(i);
                }
            }
        }
        index
    })
}

fn vid_index_lookup(index: &VidIndex, vid: Vid) -> Option<&[u32]> {
    let part = if index.len() > 1 {
        (vid as usize) % index.len()
    } else {
        0
    };
    index[part].get(&vid).map(Vec::as_slice)
}

/// [`hash_join_project`] probing dictionary ids instead of owned values.
/// Output is byte-identical to the value-keyed operator; `dict` must be the
/// dictionary of the database both row sets were derived from.
pub fn hash_join_project_interned(
    left: &RowSet,
    lkey: usize,
    right: &RowSet,
    rkey: usize,
    cols: &[usize],
    threads: usize,
    dict: &Interner,
) -> RowSet {
    let (Some(lk), Some(rk)) = (
        resolve_key_vids(left, lkey, dict, threads),
        resolve_key_vids(right, rkey, dict, threads),
    ) else {
        // Some key is not interned: this row set did not come from the
        // database's tables. Fall back to the value-keyed operator.
        return hash_join_project(left, lkey, right, rkey, cols, threads);
    };
    let t = effective_threads(threads, left.num_rows().max(right.num_rows()));
    if right.num_rows() <= left.num_rows() {
        let index = build_vid_index(&rk, effective_threads(threads, right.num_rows()));
        let _span = metrics::span("join", Region::Probe);
        let parts = map_morsels(left.num_rows(), t, |range| {
            let mut out = RowSet::new(cols.len());
            for l in range {
                let k = lk[l];
                if k == NULL_VID {
                    continue;
                }
                if let Some(matches) = vid_index_lookup(&index, k) {
                    let lrow = left.row(l);
                    for &r in matches {
                        push_joined(&mut out, lrow, right.row(r as usize), cols);
                    }
                }
            }
            out
        });
        merge(cols.len(), parts)
    } else {
        assert!(right.num_rows() <= MAX_ROWS, "row set too large");
        let index = build_vid_index(&lk, effective_threads(threads, left.num_rows()));
        let _span = metrics::span("join", Region::Probe);
        let pairs: Vec<(u32, u32)> = map_morsels(right.num_rows(), t, |range| {
            let mut local = Vec::new();
            for r in range {
                let k = rk[r];
                if k == NULL_VID {
                    continue;
                }
                if let Some(matches) = vid_index_lookup(&index, k) {
                    local.extend(matches.iter().map(|&l| (l, r as u32)));
                }
            }
            local
        })
        .concat();
        let pairs = counting_sort_by_left(pairs, left.num_rows());
        let parts = map_morsels(
            pairs.len(),
            effective_threads(threads, pairs.len()),
            |range| {
                let mut out = RowSet::with_row_capacity(cols.len(), range.len());
                for &(l, r) in &pairs[range] {
                    push_joined(&mut out, left.row(l as usize), right.row(r as usize), cols);
                }
                out
            },
        );
        merge(cols.len(), parts)
    }
}

/// [`distinct_rows`] deduplicating through dictionary-id tuples: one value
/// lookup per cell up front, then all hashing and equality is on `u32`
/// rows. Byte-identical output (first-occurrence order preserved).
pub fn distinct_rows_interned(rows: RowSet, threads: usize, dict: &Interner) -> RowSet {
    let _span = metrics::span("distinct", Region::Distinct);
    let n = rows.num_rows();
    assert!(n <= MAX_ROWS, "row set too large");
    let arity = rows.arity();
    let t = effective_threads(threads, n);
    let Some(vids) = resolve_row_vids(&rows, dict, threads) else {
        return distinct_rows(rows, threads);
    };
    let key = |r: usize| &vids[r * arity..(r + 1) * arity];
    let kept: Vec<u32> = if t <= 1 {
        let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut kept = Vec::new();
        for r in 0..n {
            let candidates = seen.entry(hash_vid_row(key(r))).or_default();
            if candidates.iter().all(|&c| key(c as usize) != key(r)) {
                candidates.push(r as u32);
                kept.push(r as u32);
            }
        }
        kept
    } else {
        let buckets = scatter_partitions(n, t, |r| {
            let h = hash_vid_row(key(r));
            ((h as usize) % t, (r as u32, h))
        });
        let kept: Vec<Vec<u32>> = map_partitions(t, |p| {
            let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
            let mut kept = Vec::new();
            for morsel in &buckets {
                for &(r, h) in &morsel[p] {
                    let candidates = seen.entry(h).or_default();
                    if candidates
                        .iter()
                        .all(|&c| key(c as usize) != key(r as usize))
                    {
                        candidates.push(r);
                        kept.push(r);
                    }
                }
            }
            kept
        });
        let mut kept = kept.concat();
        kept.sort_unstable();
        kept
    };
    let parts = map_morsels(
        kept.len(),
        effective_threads(threads, kept.len()),
        |range| {
            let mut out = RowSet::with_row_capacity(arity, range.len());
            for &r in &kept[range] {
                out.push_row_from(rows.row(r as usize));
            }
            out
        },
    );
    merge(arity, parts)
}

/// Stable counting sort of match pairs by their left row index. Input pairs
/// arrive sorted by the right index (probe morsel order), so stability
/// yields full `(l, r)` lexicographic order — the nested-loop emission
/// order — in two linear passes.
fn counting_sort_by_left(pairs: Vec<(u32, u32)>, left_rows: usize) -> Vec<(u32, u32)> {
    let mut offsets = vec![0usize; left_rows + 1];
    for &(l, _) in &pairs {
        offsets[l as usize + 1] += 1;
    }
    for i in 1..offsets.len() {
        offsets[i] += offsets[i - 1];
    }
    let mut sorted = vec![(0u32, 0u32); pairs.len()];
    for &(l, r) in &pairs {
        let slot = &mut offsets[l as usize];
        sorted[*slot] = (l, r);
        *slot += 1;
    }
    sorted
}

fn push_joined(out: &mut RowSet, lrow: &[Value], rrow: &[Value], cols: &[usize]) {
    out.push_row(cols.iter().map(|&c| {
        if c < lrow.len() {
            lrow[c].clone()
        } else {
            rrow[c - lrow.len()].clone()
        }
    }));
}

/// Reference nested-loop join with identical semantics to [`hash_join`];
/// used as the correctness oracle in tests. Serial by construction.
pub fn nested_loop_join(left: &RowSet, lkey: usize, right: &RowSet, rkey: usize) -> RowSet {
    let mut out = RowSet::new(left.arity() + right.arity());
    let cols: Vec<usize> = (0..left.arity() + right.arity()).collect();
    for lrow in left.iter() {
        if lrow[lkey].is_null() {
            continue;
        }
        for rrow in right.iter() {
            if !rrow[rkey].is_null() && lrow[lkey] == rrow[rkey] {
                push_joined(&mut out, lrow, rrow, &cols);
            }
        }
    }
    out
}

/// Remove duplicate rows, preserving first-occurrence order (`DISTINCT`).
///
/// Rows are deduplicated through a hash-of-row index into the output arena,
/// so every surviving row exists exactly once (the input arena is consumed
/// and freed) — no key copies, halving the former peak memory. With
/// `threads > 1` the scan is hash-partitioned: duplicates always land in the
/// same partition, each partition keeps its first occurrences, and the kept
/// row indices are merged back into input order.
pub fn distinct_rows(rows: RowSet, threads: usize) -> RowSet {
    let _span = metrics::span("distinct", Region::Distinct);
    let n = rows.num_rows();
    assert!(n <= MAX_ROWS, "row set too large");
    let t = effective_threads(threads, n);
    if t <= 1 {
        return distinct_serial(rows);
    }
    // Phase 1: hash each row once, scattering row indices into per-morsel
    // partition buckets (duplicates share a hash, hence a partition;
    // scatter order keeps buckets ascending).
    let buckets = scatter_partitions(n, t, |r| {
        let h = hash_row(rows.row(r));
        ((h as usize) % t, (r as u32, h))
    });
    // Phase 2: each partition keeps the first occurrence of the rows it
    // owns, touching only its own buckets; kept lists are ascending and
    // pairwise disjoint.
    let kept: Vec<Vec<u32>> = map_partitions(t, |p| {
        let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
        let mut kept = Vec::new();
        for morsel in &buckets {
            for &(r, h) in &morsel[p] {
                let candidates = seen.entry(h).or_default();
                if candidates
                    .iter()
                    .all(|&c| rows.row(c as usize) != rows.row(r as usize))
                {
                    candidates.push(r);
                    kept.push(r);
                }
            }
        }
        kept
    });
    let mut kept = kept.concat();
    kept.sort_unstable();
    // Phase 3: materialize the survivors, morsel-parallel, in input order.
    let parts = map_morsels(
        kept.len(),
        effective_threads(threads, kept.len()),
        |range| {
            let mut out = RowSet::with_row_capacity(rows.arity(), range.len());
            for &r in &kept[range] {
                out.push_row_from(rows.row(r as usize));
            }
            out
        },
    );
    merge(rows.arity(), parts)
}

fn distinct_serial(rows: RowSet) -> RowSet {
    let mut seen: FxHashMap<u64, Vec<u32>> = FxHashMap::default();
    let mut out = RowSet::new(rows.arity());
    for row in rows.iter() {
        let candidates = seen.entry(hash_row(row)).or_default();
        if candidates.iter().all(|&c| out.row(c as usize) != row) {
            candidates.push(out.num_rows() as u32);
            out.push_row_from(row);
        }
    }
    out
}

/// Project a row set to the given column indices.
pub fn project(rows: &RowSet, cols: &[usize]) -> RowSet {
    let mut out = RowSet::with_row_capacity(cols.len(), rows.num_rows());
    for row in rows.iter() {
        out.push_row(cols.iter().map(|&c| row[c].clone()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};

    fn table(rows: &[(i64, i64)]) -> Table {
        let mut t = Table::new(Schema::new(vec![Column::int("a"), Column::int("b")]));
        for &(a, b) in rows {
            t.push_row(vec![Value::int(a), Value::int(b)]).unwrap();
        }
        t
    }

    fn rows(pairs: &[(i64, i64)]) -> RowSet {
        RowSet::from_rows(
            2,
            pairs
                .iter()
                .map(|&(a, b)| vec![Value::int(a), Value::int(b)]),
        )
    }

    #[test]
    fn scan_project_filters_and_projects() {
        let t = table(&[(1, 10), (2, 20), (3, 30)]);
        let out = scan_project(&t, &Predicate::Gt(0, Value::int(1)), &[1], 1);
        assert_eq!(
            out.to_vecs(),
            vec![vec![Value::int(20)], vec![Value::int(30)]]
        );
    }

    #[test]
    fn hash_join_basic() {
        let l = rows(&[(1, 100), (2, 200), (3, 100)]);
        let r = rows(&[(100, 7), (100, 8), (300, 9)]);
        let out = hash_join(&l, 1, &r, 0, 1);
        // rows with b=100 match both r-rows with key 100
        assert_eq!(out.num_rows(), 4);
        assert_eq!(
            out.row(0),
            &[
                Value::int(1),
                Value::int(100),
                Value::int(100),
                Value::int(7)
            ]
        );
    }

    #[test]
    fn hash_join_matches_nested_loop_in_order() {
        let l = rows(&[(1, 1), (2, 2), (3, 1), (4, 4), (5, 2)]);
        let r = rows(&[(1, 10), (2, 20), (1, 11), (9, 90)]);
        // Exact order equality, not set equality: the operator promises
        // nested-loop emission order for every thread count and build side.
        let n = nested_loop_join(&l, 1, &r, 0);
        for threads in [1, 2, 8] {
            assert_eq!(hash_join(&l, 1, &r, 0, threads), n);
        }
    }

    #[test]
    fn hash_join_builds_on_smaller_side_transparently() {
        // Asymmetric inputs in both directions: output must be identical.
        let small = rows(&[(1, 0), (2, 0), (7, 0)]);
        let big = rows(&(0..50).map(|i| (i % 5, i)).collect::<Vec<_>>());
        let small_left = hash_join(&small, 0, &big, 0, 1);
        assert_eq!(small_left, nested_loop_join(&small, 0, &big, 0));
        let big_left = hash_join(&big, 0, &small, 0, 1);
        assert_eq!(big_left, nested_loop_join(&big, 0, &small, 0));
    }

    #[test]
    fn hash_join_project_fuses_projection() {
        let l = rows(&[(1, 100), (3, 100)]);
        let r = rows(&[(100, 7)]);
        let out = hash_join_project(&l, 1, &r, 0, &[0, 3], 1);
        assert_eq!(out.to_vecs(), rows(&[(1, 7), (3, 7)]).to_vecs());
    }

    #[test]
    fn nulls_never_join() {
        let l = RowSet::from_rows(2, vec![vec![Value::int(1), Value::Null]]);
        let r = RowSet::from_rows(2, vec![vec![Value::Null, Value::int(2)]]);
        assert!(hash_join(&l, 1, &r, 0, 1).is_empty());
        assert!(nested_loop_join(&l, 1, &r, 0).is_empty());
    }

    #[test]
    fn distinct_preserves_order() {
        let input = rows(&[(1, 1), (2, 2), (1, 1), (3, 3), (2, 2)]);
        let expected = rows(&[(1, 1), (2, 2), (3, 3)]);
        for threads in [1, 2, 8] {
            assert_eq!(distinct_rows(input.clone(), threads), expected);
        }
    }

    #[test]
    fn project_reorders() {
        let input = rows(&[(1, 2)]);
        let out = project(&input, &[1, 0]);
        assert_eq!(out, rows(&[(2, 1)]));
    }

    #[test]
    fn empty_inputs() {
        let e = RowSet::new(2);
        let r = rows(&[(1, 1)]);
        assert!(hash_join(&e, 0, &r, 0, 4).is_empty());
        assert!(hash_join(&r, 0, &e, 0, 4).is_empty());
        assert!(distinct_rows(RowSet::new(2), 4).is_empty());
        let t = table(&[]);
        assert!(scan_project(&t, &Predicate::True, &[0], 4).is_empty());
    }
}
