//! Seeded random mutation batches for the incremental-extraction oracle
//! and benchmarks.
//!
//! A [`MutationConfig`] describes one batch against one table: how many
//! existing rows to delete (sampled uniformly from the current table) and
//! how many fresh rows to insert (integer columns drawn from the observed
//! value range, slightly widened so genuinely new join values appear; NULLs
//! and strings are re-used from existing rows). Batches are deterministic
//! for a given seed and database state, so the oracle can replay identical
//! update streams at different thread counts.

use graphgen_common::SplitMix64;
use graphgen_reldb::{DataType, Database, DbResult, Delta, Value};

/// One random mutation batch against a single table.
#[derive(Debug, Clone, Copy)]
pub struct MutationConfig {
    /// Rows to insert.
    pub inserts: usize,
    /// Existing rows to delete (clamped to the current table size).
    pub deletes: usize,
    /// RNG seed.
    pub seed: u64,
}

/// Apply a random mutation batch to `table`, returning the deltas in the
/// order they were applied (deletes first, then inserts — so a batch can
/// shrink and regrow a table without transiently exceeding its size).
pub fn random_mutation(
    db: &mut Database,
    table: &str,
    cfg: MutationConfig,
) -> DbResult<Vec<Delta>> {
    let mut rng = SplitMix64::new(cfg.seed);
    // Sample rows to delete and observe per-column value ranges.
    let (del_rows, ranges, arity, sample) = {
        let t = db.table(table)?;
        // Deletes are tombstoned, so physical slots may be dead: sample
        // uniformly over the live rows only.
        let live: Vec<usize> = (0..t.physical_rows()).filter(|&r| t.is_live(r)).collect();
        let n = live.len();
        let deletes = cfg.deletes.min(n);
        let mut del_rows = Vec::with_capacity(deletes);
        for _ in 0..deletes {
            del_rows.push(t.row(live[rng.next_below(n.max(1) as u64) as usize]));
        }
        let arity = t.schema().arity();
        let mut ranges = Vec::with_capacity(arity);
        for c in 0..arity {
            let ints: Vec<i64> = live.iter().filter_map(|&r| t.cell(r, c).as_int()).collect();
            let lo = ints.iter().copied().min().unwrap_or(0);
            let hi = ints.iter().copied().max().unwrap_or(0);
            ranges.push((lo, hi));
        }
        let sample: Vec<Vec<Value>> = live.iter().take(64).map(|&r| t.row(r)).collect();
        (del_rows, ranges, arity, sample)
    };
    let mut deltas = Vec::new();
    let del = db.delete_rows(table, &del_rows)?;
    if !del.is_empty() {
        deltas.push(del);
    }
    // Fresh rows: integers drawn from a range widened by ~12% past the
    // observed maximum, so inserts hit both existing and brand-new join
    // values; non-integer columns copy from a sampled existing row.
    let mut ins_rows = Vec::with_capacity(cfg.inserts);
    let schema = db.table(table)?.schema().clone();
    for _ in 0..cfg.inserts {
        let mut row = Vec::with_capacity(arity);
        for (c, col) in schema.columns().iter().enumerate().take(arity) {
            match col.dtype {
                DataType::Int => {
                    let (lo, hi) = ranges[c];
                    let span = (hi - lo).unsigned_abs() + (hi - lo).unsigned_abs() / 8 + 8;
                    row.push(Value::int(lo + rng.next_below(span) as i64));
                }
                DataType::Str => {
                    let v = sample
                        .get(rng.next_below(sample.len().max(1) as u64) as usize)
                        .map(|r| r[c].clone())
                        .unwrap_or(Value::Null);
                    row.push(v);
                }
            }
        }
        ins_rows.push(row);
    }
    if !ins_rows.is_empty() {
        deltas.push(db.insert_rows(table, ins_rows)?);
    }
    Ok(deltas)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::large::{single_layer_database, SingleLayerConfig};

    #[test]
    fn batches_are_deterministic_and_sized() {
        let mk = || {
            single_layer_database(SingleLayerConfig {
                rows: 2_000,
                selectivity: 0.2,
                seed: 11,
            })
            .0
        };
        let cfg = MutationConfig {
            inserts: 50,
            deletes: 30,
            seed: 99,
        };
        let mut db1 = mk();
        let mut db2 = mk();
        let d1 = random_mutation(&mut db1, "A", cfg).unwrap();
        let d2 = random_mutation(&mut db2, "A", cfg).unwrap();
        assert_eq!(d1, d2, "same seed, same database -> same deltas");
        let total: usize = d1.iter().map(Delta::len).sum();
        assert!(total >= 50, "at least the inserts are logged, got {total}");
        assert_eq!(db1.table("A").unwrap().num_rows(), 2_000 + 50 - 30);
    }

    #[test]
    fn deletes_clamp_to_table_size() {
        let (mut db, _) = single_layer_database(SingleLayerConfig {
            rows: 10,
            selectivity: 0.5,
            seed: 3,
        });
        let deltas = random_mutation(
            &mut db,
            "A",
            MutationConfig {
                inserts: 0,
                deletes: 1_000,
                seed: 1,
            },
        )
        .unwrap();
        assert!(db.table("A").unwrap().num_rows() <= 10);
        assert!(!deltas.is_empty());
    }
}
