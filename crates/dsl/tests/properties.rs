//! Property tests for the DSL: printed programs re-parse, chains are always
//! valid join paths, and the lexer/parser never panic on arbitrary input.
// Requires the external `proptest` crate (see Cargo.toml); compiled only
// when the `proptest-tests` feature is enabled.
#![cfg(feature = "proptest-tests")]

use graphgen_dsl::{analyze, compile, parse, Atom, HeadKind, Program, Rule, Term};
use proptest::prelude::*;

fn ident() -> impl Strategy<Value = String> {
    "[A-Za-z][A-Za-z0-9_]{0,6}".prop_map(|s| s)
}

fn term() -> impl Strategy<Value = Term> {
    prop_oneof![
        ident().prop_map(Term::Var),
        (-100i64..100).prop_map(Term::Int),
        "[a-z ]{0,6}".prop_map(Term::Str),
        Just(Term::Wildcard),
    ]
}

fn atom() -> impl Strategy<Value = Atom> {
    (ident(), proptest::collection::vec(term(), 1..5))
        .prop_map(|(relation, args)| Atom::new(relation, args))
}

fn render(program: &Program) -> String {
    let mut out = String::new();
    for rule in &program.rules {
        let head = match rule.head {
            HeadKind::Nodes => "Nodes",
            HeadKind::Edges => "Edges",
        };
        out.push_str(head);
        out.push('(');
        for (i, t) in rule.head_args.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&t.to_string());
        }
        out.push_str(") :- ");
        for (i, a) in rule.body.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&a.to_string());
        }
        out.push_str(".\n");
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lexer_and_parser_never_panic(input in "\\PC{0,200}") {
        let _ = parse(&input); // must not panic, errors are fine
    }

    #[test]
    fn printed_programs_reparse(
        heads in proptest::collection::vec(
            (prop_oneof![Just(HeadKind::Nodes), Just(HeadKind::Edges)],
             proptest::collection::vec(ident().prop_map(Term::Var), 1..4),
             proptest::collection::vec(atom(), 1..4)),
            1..4
        )
    ) {
        let program = Program {
            rules: heads
                .into_iter()
                .map(|(head, head_args, body)| Rule::new(head, head_args, body))
                .collect(),
        };
        // Reserved names in bodies make rendering unparseable in a benign
        // way; skip those cases.
        let reserved = program.rules.iter().any(|r| {
            r.body.iter().any(|a| a.relation == "Nodes" || a.relation == "Edges")
        });
        prop_assume!(!reserved);
        let text = render(&program);
        let reparsed = parse(&text).expect("rendered program must re-parse");
        prop_assert_eq!(reparsed, program);
    }

    #[test]
    fn chains_are_connected_join_paths(
        n_extra in 0usize..3,
        use_self_join in any::<bool>(),
    ) {
        // Build co-membership queries of varying chain length and verify
        // the analyzer returns a chain whose consecutive columns join.
        let mut body = String::from("R0(ID1, J0)");
        for i in 0..n_extra {
            body.push_str(&format!(", R{}(J{}, J{})", i + 1, i, i + 1));
        }
        let last = if use_self_join {
            format!(", R0(ID2, J{n_extra})")
        } else {
            format!(", Z(ID2, J{n_extra})")
        };
        body.push_str(&last);
        let text = format!("Nodes(X) :- E(X).\nEdges(ID1, ID2) :- {body}.");
        let spec = compile(&text).expect("chain should compile");
        let chain = &spec.edges[0];
        prop_assert_eq!(chain.steps.len(), n_extra + 2);
        // Endpoint columns are where ID1/ID2 live.
        prop_assert_eq!(chain.steps[0].in_col, 0);
        prop_assert_eq!(chain.steps.last().unwrap().out_col, 0);
    }

    #[test]
    fn acyclicity_checker_accepts_paths_rejects_cycles(len in 2usize..6) {
        let mut chain_body = String::new();
        for i in 0..len {
            if i > 0 { chain_body.push_str(", "); }
            chain_body.push_str(&format!("R(V{}, V{})", i, i + 1));
        }
        let p = parse(&format!("Edges(V0, V{len}) :- {chain_body}.")).unwrap();
        prop_assert!(analyze::is_acyclic(&p.rules[0].body));

        let mut cycle_body = chain_body.clone();
        cycle_body.push_str(&format!(", R(V{len}, V0)"));
        let p = parse(&format!("Edges(V0, V{len}) :- {cycle_body}.")).unwrap();
        prop_assert!(!analyze::is_acyclic(&p.rules[0].body));
    }
}
