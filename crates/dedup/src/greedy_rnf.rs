//! Greedy Real-Nodes-First deduplication (§5.2.1, Fig. 8).
//!
//! Each real node `u` is deduplicated individually with a set-cover-style
//! heuristic: start from the hypothetical state where `u` is connected to
//! all its neighbors by direct edges (`E = N(u)`) and attached to no virtual
//! node (`V'' = all of u's virtual nodes, V' = ∅`). Greedily move the
//! virtual node with the highest *benefit* (net edge reduction) from `V''`
//! to `V'`; moving `V` drops the direct edges it covers but requires
//! disconnecting `V` from targets already covered via `V'` (with direct-edge
//! compensation for other sources that lose their only witness). When no
//! move has positive benefit, `u` is physically detached from the remaining
//! `V''` nodes and the leftover direct edges are installed.

use crate::work::{sorted_insert, WorkGraph};
use graphgen_common::{FxHashSet, VertexOrdering};
use graphgen_graph::{CondensedGraph, Dedup1Graph};

/// Benefit of moving virtual node `v` into `V'` for source `u`:
/// `+ |O(v) \ X \ {u}|` (direct edges from E dropped)
/// `+ |O(v) ∩ X|`       (target edges disconnected from v)
/// `- 1`                (the kept u→v edge)
/// `- compensations`    (sources losing their only witness to a
///                       disconnected target).
fn move_benefit(w: &WorkGraph, u: u32, v: u32, covered: &FxHashSet<u32>) -> i64 {
    let ov = &w.ov[v as usize];
    let mut new_cover = 0i64;
    let mut overlap: Vec<u32> = Vec::new();
    for &t in ov {
        if covered.contains(&t) {
            overlap.push(t);
        } else if t != u {
            new_cover += 1;
        }
    }
    let mut comp = 0i64;
    for &t in &overlap {
        for &x in &w.iv[v as usize] {
            // After disconnecting t from v, does x still reach t?
            if x != t && w.witness_count(x, t) == 1 {
                // v was the only witness (witness_count counts v once).
                comp += 1;
            }
        }
    }
    new_cover + overlap.len() as i64 - 1 - comp
}

/// Apply the move: disconnect covered targets from `v` (compensating), and
/// return `v`'s remaining targets for the caller to mark covered.
fn apply_move(w: &mut WorkGraph, v: u32, covered: &mut FxHashSet<u32>) {
    let overlap: Vec<u32> = w.ov[v as usize]
        .iter()
        .copied()
        .filter(|t| covered.contains(t))
        .collect();
    for t in overlap {
        w.remove_target_and_compensate(v, t);
    }
    for &t in &w.ov[v as usize] {
        covered.insert(t);
    }
}

/// Greedy Real-Nodes-First (complexity roughly `O(n_r * d^5)`).
pub fn greedy_real_nodes_first(
    g: &CondensedGraph,
    ordering: VertexOrdering,
    seed: u64,
) -> Dedup1Graph {
    let mut w = WorkGraph::from_condensed(g, true);
    let order = ordering.order_by(w.num_real(), |u| w.rv[u as usize].len() as u64, seed);
    for u in order {
        if w.rv[u as usize].len() < 2 && w.direct[u as usize].is_empty() {
            continue; // a single virtual neighbor cannot self-duplicate
        }
        // N(u): everything u currently reaches.
        let mut remaining: FxHashSet<u32> = FxHashSet::default();
        for &v in &w.rv[u as usize] {
            for &t in &w.ov[v as usize] {
                if t != u {
                    remaining.insert(t);
                }
            }
        }
        for &t in &w.direct[u as usize] {
            remaining.insert(t);
        }

        let mut vpp: Vec<u32> = w.rv[u as usize].clone();
        let mut covered: FxHashSet<u32> = FxHashSet::default();
        // Temporarily detach u from all its virtual nodes so that witness
        // counting during the greedy inspection reflects the hypothetical
        // "direct edges only" baseline for u itself.
        for &v in &vpp {
            crate::work::sorted_remove(&mut w.iv[v as usize], u);
        }
        w.rv[u as usize].clear();

        loop {
            let mut best: Option<(usize, i64)> = None;
            for (i, &v) in vpp.iter().enumerate() {
                let b = move_benefit(&w, u, v, &covered);
                if b > 0 && best.is_none_or(|(_, bb)| b > bb) {
                    best = Some((i, b));
                }
            }
            let Some((idx, _)) = best else { break };
            let v = vpp.swap_remove(idx);
            apply_move(&mut w, v, &mut covered);
            // Re-attach u to the kept node.
            sorted_insert(&mut w.iv[v as usize], u);
            sorted_insert(&mut w.rv[u as usize], v);
        }
        // Whatever is not covered through V' must be a direct edge; drop
        // direct edges that became covered.
        let direct_now: Vec<u32> = w.direct[u as usize].clone();
        for t in direct_now {
            if covered.contains(&t) {
                w.remove_direct(u, t);
            }
        }
        for t in remaining {
            if !covered.contains(&t) && t != u {
                w.add_direct(u, t);
            }
        }
    }
    debug_assert!(w.is_deduplicated());
    Dedup1Graph::new_unchecked(w.into_condensed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{
        expand_to_edge_list, validate::validate_dedup1, CondensedBuilder, RealId,
    };

    fn fig8_like() -> CondensedGraph {
        // One real node connected to several heavily overlapping virtual
        // nodes, as in Fig. 8.
        let mut b = CondensedBuilder::new(10);
        let ids: Vec<RealId> = (0..10).map(RealId).collect();
        b.clique(&[ids[0], ids[1], ids[2], ids[3]]);
        b.clique(&[ids[0], ids[2], ids[3], ids[4]]);
        b.clique(&[ids[0], ids[3], ids[4], ids[5]]);
        b.clique(&[ids[0], ids[5], ids[6]]);
        b.clique(&[ids[0], ids[1], ids[6], ids[7]]);
        b.build()
    }

    #[test]
    fn semantics_preserved_and_deduplicated() {
        let g = fig8_like();
        let before = expand_to_edge_list(&g);
        let d = greedy_real_nodes_first(&g, VertexOrdering::Random, 42);
        assert_eq!(expand_to_edge_list(&d), before);
        assert!(validate_dedup1(&d).is_ok());
    }

    #[test]
    fn reduces_edges_vs_duplicated_input() {
        use graphgen_graph::GraphRep;
        let g = fig8_like();
        let d = greedy_real_nodes_first(&g, VertexOrdering::Descending, 0);
        // The deduplicated structure should not blow up: at most the
        // expanded size.
        assert!(d.stored_edge_count() <= d.expanded_edge_count() * 2 + 2 * d.num_virtual() as u64);
        assert!(validate_dedup1(&d).is_ok());
    }

    #[test]
    fn all_orderings_preserve_semantics() {
        let g = fig8_like();
        let before = expand_to_edge_list(&g);
        for ord in VertexOrdering::all() {
            let d = greedy_real_nodes_first(&g, ord, 5);
            assert_eq!(expand_to_edge_list(&d), before, "{ord:?}");
            assert!(validate_dedup1(&d).is_ok(), "{ord:?}");
        }
    }

    #[test]
    fn disjoint_cliques_untouched() {
        let mut b = CondensedBuilder::new(6);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        b.clique(&[RealId(3), RealId(4), RealId(5)]);
        let g = b.build();
        let before = expand_to_edge_list(&g);
        let d = greedy_real_nodes_first(&g, VertexOrdering::Random, 9);
        assert_eq!(expand_to_edge_list(&d), before);
    }
}
