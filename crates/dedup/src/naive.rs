//! The two naive DEDUP-1 algorithms (§5.2.1).
//!
//! Both share the same pairwise conflict resolution: when two virtual nodes
//! `V`, `R` duplicate a logical edge (they share at least one source and at
//! least one target forming a non-self pair), shared targets are removed
//! from one of the two — the one with the smaller in-degree, so fewer
//! compensating direct edges are needed — until no duplication remains
//! between the pair.
//!
//! * **Naive Virtual-Nodes-First** grows a partial graph one virtual node at
//!   a time, resolving each new node against every already-added node it
//!   conflicts with.
//! * **Naive Real-Nodes-First** walks real nodes and resolves all pairwise
//!   conflicts among each node's virtual neighborhood (the `processed` set
//!   is cleared per real node).

use crate::work::{intersect_sorted, WorkGraph};
use graphgen_common::VertexOrdering;
use graphgen_graph::{CondensedGraph, Dedup1Graph};

/// Is there a duplicated (non-self) logical edge between virtual nodes with
/// these shared sources/targets?
fn has_duplication(shared_sources: &[u32], shared_targets: &[u32]) -> bool {
    if shared_sources.is_empty() || shared_targets.is_empty() {
        return false;
    }
    // Only degenerate case with no non-self pair: one shared source == the
    // one shared target.
    !(shared_sources.len() == 1
        && shared_targets.len() == 1
        && shared_sources[0] == shared_targets[0])
}

/// Resolve all duplication between virtual nodes `v1` and `v2` by removing
/// shared targets from the smaller-in-degree node and compensating.
pub(crate) fn resolve_pair(w: &mut WorkGraph, v1: u32, v2: u32) {
    loop {
        let ss = intersect_sorted(&w.iv[v1 as usize], &w.iv[v2 as usize]);
        let st = intersect_sorted(&w.ov[v1 as usize], &w.ov[v2 as usize]);
        if !has_duplication(&ss, &st) {
            return;
        }
        // Pick a shared target that participates in a non-self duplicate
        // pair: any target unless it is the sole shared source.
        let r = *st
            .iter()
            .find(|&&t| ss.len() > 1 || ss[0] != t)
            .expect("duplication implies such a target");
        // Remove from the node with the smaller in-degree (fewer direct
        // edges to compensate, the paper's §5.2.1 heuristic).
        let side = if w.iv[v1 as usize].len() <= w.iv[v2 as usize].len() {
            v1
        } else {
            v2
        };
        w.remove_target_and_compensate(side, r);
    }
}

/// Remove direct edges already covered by virtual node `v` (needed when a
/// virtual node is introduced into a partial graph that compensated earlier
/// removals with direct edges).
fn absorb_direct_edges(w: &mut WorkGraph, v: u32) {
    let sources = w.iv[v as usize].clone();
    let targets = w.ov[v as usize].clone();
    for &u in &sources {
        for &t in &targets {
            if u != t {
                w.remove_direct(u, t);
            }
        }
    }
}

/// Naive Virtual-Nodes-First (complexity `O(n_v * d^4)`).
pub fn naive_virtual_nodes_first(
    g: &CondensedGraph,
    ordering: VertexOrdering,
    seed: u64,
) -> Dedup1Graph {
    let mut w = WorkGraph::from_condensed(g, false);
    let order = ordering.order_by(w.num_virtual(), |v| w.ov[v as usize].len() as u64, seed);
    for v in order {
        // Activate first so that conflict compensation sees v as a witness
        // (otherwise removing a shared target from the *other* node would
        // add a direct edge v is about to duplicate).
        w.activate(v);
        // Direct edges covered by v become redundant.
        absorb_direct_edges(&mut w, v);
        // Candidate conflicts: active virtual nodes sharing a source.
        let mut candidates: Vec<u32> = Vec::new();
        for &u in &w.iv[v as usize].clone() {
            for &r in &w.rv[u as usize] {
                if r != v && w.active[r as usize] {
                    candidates.push(r);
                }
            }
        }
        candidates.sort_unstable();
        candidates.dedup();
        for r in candidates {
            resolve_pair(&mut w, v, r);
        }
    }
    debug_assert!(w.is_deduplicated());
    Dedup1Graph::new_unchecked(w.into_condensed())
}

/// Naive Real-Nodes-First (complexity `O(n_r * d^4)`).
pub fn naive_real_nodes_first(
    g: &CondensedGraph,
    ordering: VertexOrdering,
    seed: u64,
) -> Dedup1Graph {
    let mut w = WorkGraph::from_condensed(g, true);
    let order = ordering.order_by(w.num_real(), |u| w.rv[u as usize].len() as u64, seed);
    for u in order {
        let neighborhood = w.rv[u as usize].clone();
        let mut processed: Vec<u32> = Vec::with_capacity(neighborhood.len());
        for v in neighborhood {
            // v may have been emptied by earlier resolutions.
            for &r in &processed {
                resolve_pair(&mut w, v, r);
            }
            processed.push(v);
        }
    }
    debug_assert!(w.is_deduplicated());
    Dedup1Graph::new_unchecked(w.into_condensed())
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{
        expand_to_edge_list, validate::validate_dedup1, CondensedBuilder, GraphRep, RealId,
    };

    fn fig1() -> CondensedGraph {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(3)]);
        b.clique(&[RealId(0), RealId(3)]);
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        b.build()
    }

    /// Heavily overlapping cliques (Fig. 6-like stress).
    fn overlapping() -> CondensedGraph {
        let mut b = CondensedBuilder::new(9);
        let ids: Vec<RealId> = (0..9).map(RealId).collect();
        b.clique(&ids[0..6]);
        b.clique(&ids[3..9]);
        b.clique(&ids[2..7]);
        b.build()
    }

    #[test]
    fn vnf_preserves_semantics_and_dedups() {
        for g in [fig1(), overlapping()] {
            let before = expand_to_edge_list(&g);
            let d = naive_virtual_nodes_first(&g, VertexOrdering::Random, 1);
            assert_eq!(expand_to_edge_list(&d), before);
            assert!(validate_dedup1(&d).is_ok());
        }
    }

    #[test]
    fn rnf_preserves_semantics_and_dedups() {
        for g in [fig1(), overlapping()] {
            let before = expand_to_edge_list(&g);
            let d = naive_real_nodes_first(&g, VertexOrdering::Random, 1);
            assert_eq!(expand_to_edge_list(&d), before);
            assert!(validate_dedup1(&d).is_ok());
        }
    }

    #[test]
    fn all_orderings_work() {
        let g = overlapping();
        let before = expand_to_edge_list(&g);
        for ord in VertexOrdering::all() {
            let d1 = naive_virtual_nodes_first(&g, ord, 7);
            let d2 = naive_real_nodes_first(&g, ord, 7);
            assert_eq!(expand_to_edge_list(&d1), before, "vnf {ord:?}");
            assert_eq!(expand_to_edge_list(&d2), before, "rnf {ord:?}");
        }
    }

    #[test]
    fn identical_cliques_collapse_to_one() {
        let mut b = CondensedBuilder::new(3);
        let ids = [RealId(0), RealId(1), RealId(2)];
        b.clique(&ids);
        b.clique(&ids);
        let g = b.build();
        let d = naive_virtual_nodes_first(&g, VertexOrdering::Ascending, 0);
        // One of the cliques must have been gutted.
        assert!(d.num_virtual() <= 2);
        assert_eq!(d.expanded_edge_count(), 6);
        assert!(validate_dedup1(&d).is_ok());
    }

    #[test]
    fn no_duplication_is_a_noop_semantically() {
        let mut b = CondensedBuilder::new(4);
        b.clique(&[RealId(0), RealId(1)]);
        b.clique(&[RealId(2), RealId(3)]);
        let g = b.build();
        let before = expand_to_edge_list(&g);
        let d = naive_real_nodes_first(&g, VertexOrdering::Random, 3);
        assert_eq!(expand_to_edge_list(&d), before);
        assert_eq!(d.stored_edge_count(), g.stored_edge_count());
    }
}
