//! Typed metrics instruments and a lock-cheap registry.
//!
//! The observability substrate for the serving stack: monotonic
//! [`Counter`]s, [`Gauge`]s, and fixed-bucket log-scale latency
//! [`Histogram`]s, interned by name in a [`Registry`] whose lock is taken
//! only at registration and collection time — the record path is nothing
//! but relaxed atomic adds, so instruments can sit on hot paths (the
//! serving read path records one histogram sample per request).
//!
//! Three layers live here:
//!
//! 1. **Instruments** — cheap-clone `Arc` handles. A histogram uses
//!    log-scale buckets with four sub-buckets per octave (≤ 25% relative
//!    error on a reported quantile bound), so p50/p90/p99/max are derivable
//!    from a snapshot without any allocation on the record path.
//! 2. **Spans** — [`span`] returns a guard that records wall time on drop
//!    and simultaneously enters a [`region`] so one guard
//!    yields both allocation attribution *and* phase timing. Spans push
//!    `(label, ns)` entries into a thread-local phase log when a
//!    [`collect_phases`] scope is active, which is how a request handler
//!    reconstructs the per-phase breakdown of the call tree it just ran
//!    without the deep code knowing about any registry.
//! 3. **Exposition** — [`Registry::render`] emits Prometheus-style text
//!    (`# HELP` / `# TYPE` plus sample lines; histograms as summaries with
//!    `quantile` labels). [`escape_exposition`] /
//!    [`unescape_exposition`] convert that multi-line text to and from the
//!    documented one-line escaped form used by line-oriented protocols.
//!
//! The [`instruments!`](crate::instruments) macro generates a typed struct
//! of instruments plus a static `CATALOG` so every instrument a subsystem
//! registers is named, typed, and enumerable at compile time.

use crate::region::{self, Region};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Instruments
// ---------------------------------------------------------------------------

/// The kind of a registered instrument (for catalogs and exposition).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InstrumentKind {
    /// Monotonically increasing `u64`.
    Counter,
    /// Arbitrarily settable `u64`.
    Gauge,
    /// Log-scale latency/size distribution.
    Histogram,
}

impl InstrumentKind {
    /// The `# TYPE` keyword used in exposition.
    pub fn exposition_type(self) -> &'static str {
        match self {
            InstrumentKind::Counter => "counter",
            InstrumentKind::Gauge => "gauge",
            InstrumentKind::Histogram => "summary",
        }
    }
}

/// A monotonic counter. Clones share the underlying cell.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (standalone use in tests
    /// and benches).
    pub fn new() -> Self {
        Self::default()
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down. Clones share the cell.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Subtract `n` (saturating at 0 is the caller's responsibility; the
    /// subtraction itself wraps like the underlying atomic).
    #[inline]
    pub fn sub(&self, n: u64) {
        self.0.fetch_sub(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Values below this get their own exact bucket.
const LINEAR_MAX: u64 = 8;
/// Octaves covered above the linear range: bit positions 3..=42, i.e. up
/// to ~8.8e12 (≈ 2.4 hours in nanoseconds) before clamping to the last
/// bucket.
const OCTAVES: usize = 40;
/// Total bucket count of every [`Histogram`].
pub const HISTOGRAM_BUCKETS: usize = LINEAR_MAX as usize + OCTAVES * 4;

/// Bucket index for a recorded value: exact below [`LINEAR_MAX`], then
/// four sub-buckets per power of two (the top two bits below the MSB pick
/// the sub-bucket).
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < LINEAR_MAX {
        return v as usize;
    }
    let msb = 63 - v.leading_zeros() as usize;
    if msb > 42 {
        return HISTOGRAM_BUCKETS - 1;
    }
    let sub = ((v >> (msb - 2)) & 3) as usize;
    LINEAR_MAX as usize + (msb - 3) * 4 + sub
}

/// Inclusive upper bound of a bucket (what quantiles report — a value in
/// the bucket is at most this, and at least `3/4` of it).
fn bucket_bound(i: usize) -> u64 {
    if i < LINEAR_MAX as usize {
        return i as u64;
    }
    if i == HISTOGRAM_BUCKETS - 1 {
        // The last bucket also absorbs everything past the covered range.
        return u64::MAX;
    }
    let octave = 3 + (i - LINEAR_MAX as usize) / 4;
    let sub = ((i - LINEAR_MAX as usize) % 4) as u64;
    (1u64 << octave) + (sub + 1) * (1u64 << (octave - 2)) - 1
}

#[derive(Debug)]
struct HistogramInner {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket log-scale histogram. Recording is four relaxed atomic
/// operations and never allocates; quantiles come from a [`snapshot`]
/// (`Histogram::snapshot`).
///
/// [`snapshot`]: Histogram::snapshot
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A histogram not attached to any registry.
    pub fn new() -> Self {
        Histogram(Arc::new(HistogramInner {
            buckets: [const { AtomicU64::new(0) }; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// Record one observation (typically nanoseconds).
    #[inline]
    pub fn record(&self, v: u64) {
        let inner = &*self.0;
        inner.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Record the elapsed time of `start` in nanoseconds.
    #[inline]
    pub fn record_since(&self, start: Instant) {
        self.record(saturating_ns(start));
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Copy out the current state for quantile math and exposition.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &*self.0;
        // Buckets first, totals after: a racing `record` bumps the bucket
        // before the count, so `count` can only *lag* the bucket sum —
        // never exceed it — keeping `count <= bucket_sum` a stable
        // direction tests can rely on. (Perfect coherence would need a
        // lock on the record path, which is exactly what this design
        // avoids.)
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (slot, bucket) in buckets.iter_mut().zip(inner.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value (exact, not bucketed).
    pub max: u64,
}

impl HistogramSnapshot {
    /// Upper bound of the bucket containing the `q`-quantile observation
    /// (`q` in `[0, 1]`). Returns 0 for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        let total: u64 = self.buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // The max is exact and tighter than the last occupied
                // bucket's bound.
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Sum of the per-bucket counts (equals `count` when quiescent; never
    /// less than `count` under concurrent recording — see
    /// [`Histogram::snapshot`]).
    pub fn bucket_sum(&self) -> u64 {
        self.buckets.iter().sum()
    }
}

fn saturating_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Inst {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Inst {
    fn kind(&self) -> InstrumentKind {
        match self {
            Inst::Counter(_) => InstrumentKind::Counter,
            Inst::Gauge(_) => InstrumentKind::Gauge,
            Inst::Histogram(_) => InstrumentKind::Histogram,
        }
    }
}

#[derive(Debug)]
struct Entry {
    name: &'static str,
    help: &'static str,
    /// Optional `key="value"` pair distinguishing members of a family
    /// (e.g. `verb="extract"` under one `graphgen_request_ns` name).
    label: Option<(&'static str, String)>,
    inst: Inst,
}

/// A registry of named instruments.
///
/// Registration interns by `(name, label)` — registering the same
/// instrument twice returns a handle to the same cell — and keeps
/// registration order for exposition. The internal lock is held only
/// while registering or collecting; recording through the returned
/// handles never touches it.
#[derive(Debug, Default)]
pub struct Registry {
    entries: Mutex<Vec<Entry>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn intern(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, String)>,
        make: impl FnOnce() -> Inst,
    ) -> Inst {
        let mut entries = self.entries.lock().unwrap();
        if let Some(e) = entries.iter().find(|e| e.name == name && e.label == label) {
            return e.inst.clone();
        }
        let inst = make();
        entries.push(Entry {
            name,
            help,
            label,
            inst: inst.clone(),
        });
        inst
    }

    /// Register (or look up) a counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        match self.intern(name, help, None, || Inst::Counter(Counter::new())) {
            Inst::Counter(c) => c,
            other => mismatch(name, InstrumentKind::Counter, other.kind()),
        }
    }

    /// Register a counter labelled `key="value"` within the family `name`.
    pub fn counter_with(
        &self,
        name: &'static str,
        key: &'static str,
        value: &str,
        help: &'static str,
    ) -> Counter {
        let label = Some((key, value.to_string()));
        match self.intern(name, help, label, || Inst::Counter(Counter::new())) {
            Inst::Counter(c) => c,
            other => mismatch(name, InstrumentKind::Counter, other.kind()),
        }
    }

    /// Register (or look up) a gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        match self.intern(name, help, None, || Inst::Gauge(Gauge::new())) {
            Inst::Gauge(g) => g,
            other => mismatch(name, InstrumentKind::Gauge, other.kind()),
        }
    }

    /// Register (or look up) a histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        match self.intern(name, help, None, || Inst::Histogram(Histogram::new())) {
            Inst::Histogram(h) => h,
            other => mismatch(name, InstrumentKind::Histogram, other.kind()),
        }
    }

    /// Register a histogram labelled `key="value"` within the family
    /// `name` (e.g. per-verb request latencies).
    pub fn histogram_with(
        &self,
        name: &'static str,
        key: &'static str,
        value: &str,
        help: &'static str,
    ) -> Histogram {
        let label = Some((key, value.to_string()));
        match self.intern(name, help, label, || Inst::Histogram(Histogram::new())) {
            Inst::Histogram(h) => h,
            other => mismatch(name, InstrumentKind::Histogram, other.kind()),
        }
    }

    /// Snapshot every instrument (registration order).
    pub fn snapshot(&self) -> Vec<InstrumentSnapshot> {
        let entries = self.entries.lock().unwrap();
        entries
            .iter()
            .map(|e| InstrumentSnapshot {
                name: e.name,
                label: e.label.clone(),
                value: match &e.inst {
                    Inst::Counter(c) => ValueSnapshot::Counter(c.get()),
                    Inst::Gauge(g) => ValueSnapshot::Gauge(g.get()),
                    Inst::Histogram(h) => ValueSnapshot::Histogram(Box::new(h.snapshot())),
                },
                help: e.help,
            })
            .collect()
    }

    /// Distinct instrument family names, registration order.
    pub fn names(&self) -> Vec<&'static str> {
        let entries = self.entries.lock().unwrap();
        let mut names: Vec<&'static str> = Vec::new();
        for e in entries.iter() {
            if !names.contains(&e.name) {
                names.push(e.name);
            }
        }
        names
    }

    /// Render the canonical multi-line Prometheus-style text exposition.
    ///
    /// Counters and gauges emit one sample line; histograms emit a summary
    /// (`quantile="0.5" / "0.9" / "0.99"` bucket bounds, plus `_max`,
    /// `_sum`, and `_count` lines). `# HELP` / `# TYPE` headers appear
    /// once per family.
    pub fn render(&self) -> String {
        let snaps = self.snapshot();
        let mut out = String::new();
        let mut described: Vec<&'static str> = Vec::new();
        for s in &snaps {
            if !described.contains(&s.name) {
                described.push(s.name);
                out.push_str(&format!("# HELP {} {}\n", s.name, s.help));
                out.push_str(&format!(
                    "# TYPE {} {}\n",
                    s.name,
                    s.value.kind().exposition_type()
                ));
            }
            let labels = |extra: Option<(&str, String)>| -> String {
                let mut parts: Vec<String> = Vec::new();
                if let Some((k, v)) = &s.label {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if let Some((k, v)) = extra {
                    parts.push(format!("{k}=\"{v}\""));
                }
                if parts.is_empty() {
                    String::new()
                } else {
                    format!("{{{}}}", parts.join(","))
                }
            };
            match &s.value {
                ValueSnapshot::Counter(v) | ValueSnapshot::Gauge(v) => {
                    out.push_str(&format!("{}{} {}\n", s.name, labels(None), v));
                }
                ValueSnapshot::Histogram(h) => {
                    for (q, qs) in [(0.5, "0.5"), (0.9, "0.9"), (0.99, "0.99")] {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            s.name,
                            labels(Some(("quantile", qs.to_string()))),
                            h.quantile(q)
                        ));
                    }
                    out.push_str(&format!("{}_max{} {}\n", s.name, labels(None), h.max));
                    out.push_str(&format!("{}_sum{} {}\n", s.name, labels(None), h.sum));
                    out.push_str(&format!("{}_count{} {}\n", s.name, labels(None), h.count));
                }
            }
        }
        out
    }
}

#[cold]
fn mismatch(name: &str, wanted: InstrumentKind, found: InstrumentKind) -> ! {
    panic!("instrument {name:?} registered as {found:?}, requested as {wanted:?}")
}

/// One instrument's state in a [`Registry::snapshot`].
#[derive(Debug, Clone)]
pub struct InstrumentSnapshot {
    /// Family name (e.g. `graphgen_request_ns`).
    pub name: &'static str,
    /// Optional distinguishing label.
    pub label: Option<(&'static str, String)>,
    /// The value at snapshot time.
    pub value: ValueSnapshot,
    /// Help text.
    pub help: &'static str,
}

/// The value part of an [`InstrumentSnapshot`].
#[derive(Debug, Clone)]
pub enum ValueSnapshot {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(u64),
    /// Histogram state (boxed: the bucket array is ~1.3 KiB).
    Histogram(Box<HistogramSnapshot>),
}

impl ValueSnapshot {
    /// The instrument kind this value came from.
    pub fn kind(&self) -> InstrumentKind {
        match self {
            ValueSnapshot::Counter(_) => InstrumentKind::Counter,
            ValueSnapshot::Gauge(_) => InstrumentKind::Gauge,
            ValueSnapshot::Histogram(_) => InstrumentKind::Histogram,
        }
    }
}

// ---------------------------------------------------------------------------
// Spans and the thread-local phase log
// ---------------------------------------------------------------------------

thread_local! {
    /// Phase log: `Some(vec)` while a [`collect_phases`] scope is active
    /// on this thread; spans append `(label, ns)` on drop.
    static PHASES: RefCell<Option<Vec<(&'static str, u64)>>> = const { RefCell::new(None) };
}

/// A span guard: enters `region` for allocation attribution, and on drop
/// records elapsed wall time into the optional histogram and the active
/// phase log (if any). Created by [`span`] / [`span_timed`].
#[must_use = "dropping the span immediately ends it"]
pub struct Span {
    label: &'static str,
    start: Instant,
    hist: Option<Histogram>,
    _region: region::RegionGuard,
}

/// Start a span labelled `label` in `region`. The elapsed time lands in
/// the thread's phase log (when one is being collected); no registry or
/// histogram is involved, so deep library code can use this freely.
pub fn span(label: &'static str, r: Region) -> Span {
    Span {
        label,
        start: Instant::now(),
        hist: None,
        _region: region::enter(r),
    }
}

/// Like [`span`], but additionally records the elapsed nanoseconds into
/// `hist` on drop.
pub fn span_timed(label: &'static str, r: Region, hist: &Histogram) -> Span {
    Span {
        label,
        start: Instant::now(),
        hist: Some(hist.clone()),
        _region: region::enter(r),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let ns = saturating_ns(self.start);
        if let Some(h) = &self.hist {
            h.record(ns);
        }
        let _ = PHASES.try_with(|p| {
            if let Some(log) = p.borrow_mut().as_mut() {
                log.push((self.label, ns));
            }
        });
    }
}

/// Run `f` with phase collection enabled on this thread; returns `f`'s
/// result plus every `(label, ns)` span that completed inside it, in
/// completion order. Scopes nest: an inner scope captures its own spans
/// and the outer scope resumes afterwards.
pub fn collect_phases<R>(f: impl FnOnce() -> R) -> (R, Vec<(&'static str, u64)>) {
    let prev = PHASES.with(|p| p.borrow_mut().replace(Vec::new()));
    let out = f();
    let collected = PHASES.with(|p| {
        let mut slot = p.borrow_mut();
        let collected = slot.take().unwrap_or_default();
        *slot = prev;
        collected
    });
    (out, collected)
}

// ---------------------------------------------------------------------------
// One-line framing for line-oriented protocols
// ---------------------------------------------------------------------------

/// Escape multi-line exposition text into the documented one-line form:
/// `\` → `\\`, newline → `\n`, carriage return → `\r`. The result contains
/// no literal newline and round-trips through [`unescape_exposition`].
pub fn escape_exposition(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + s.len() / 8);
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

/// Invert [`escape_exposition`]. Unknown escapes pass through verbatim.
pub fn unescape_exposition(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some(other) => {
                out.push('\\');
                out.push(other);
            }
            None => out.push('\\'),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// The instruments! macro
// ---------------------------------------------------------------------------

/// Expands an instrument kind keyword to its handle type.
#[doc(hidden)]
#[macro_export]
macro_rules! __instrument_type {
    (counter) => {
        $crate::metrics::Counter
    };
    (gauge) => {
        $crate::metrics::Gauge
    };
    (histogram) => {
        $crate::metrics::Histogram
    };
}

/// Expands an instrument kind keyword to its [`InstrumentKind`] value.
#[doc(hidden)]
#[macro_export]
macro_rules! __instrument_kind {
    (counter) => {
        $crate::metrics::InstrumentKind::Counter
    };
    (gauge) => {
        $crate::metrics::InstrumentKind::Gauge
    };
    (histogram) => {
        $crate::metrics::InstrumentKind::Histogram
    };
}

/// Expands to the registry call registering one instrument.
#[doc(hidden)]
#[macro_export]
macro_rules! __instrument_register {
    ($r:expr, counter, $name:literal, $help:literal) => {
        $r.counter($name, $help)
    };
    ($r:expr, gauge, $name:literal, $help:literal) => {
        $r.gauge($name, $help)
    };
    ($r:expr, histogram, $name:literal, $help:literal) => {
        $r.histogram($name, $help)
    };
}

/// Define a typed instrument catalog: a struct with one field per
/// instrument, a `register(&Registry) -> Self` constructor, and a static
/// `CATALOG` of `(name, kind, help)` rows so the full instrument set is
/// enumerable without instantiating anything.
///
/// ```
/// graphgen_common::instruments! {
///     /// Demo catalog.
///     pub struct Demo {
///         counter hits: "demo_hits_total" = "requests served",
///         gauge live: "demo_live" = "live connections",
///         histogram latency_ns: "demo_latency_ns" = "request latency",
///     }
/// }
/// let registry = graphgen_common::metrics::Registry::new();
/// let m = Demo::register(&registry);
/// m.hits.inc();
/// assert_eq!(Demo::CATALOG.len(), 3);
/// ```
#[macro_export]
macro_rules! instruments {
    (
        $(#[$meta:meta])*
        pub struct $name:ident {
            $( $kind:ident $field:ident : $mname:literal = $help:literal ),* $(,)?
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone)]
        pub struct $name {
            $(
                #[doc = $help]
                pub $field: $crate::__instrument_type!($kind),
            )*
        }

        impl $name {
            /// Every instrument this struct registers: `(name, kind,
            /// help)`, in field order.
            pub const CATALOG: &'static [(
                &'static str,
                $crate::metrics::InstrumentKind,
                &'static str,
            )] = &[
                $( ($mname, $crate::__instrument_kind!($kind), $help), )*
            ];

            /// Register (or re-attach to) every instrument in `registry`.
            pub fn register(registry: &$crate::metrics::Registry) -> Self {
                Self {
                    $( $field: $crate::__instrument_register!(registry, $kind, $mname, $help), )*
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let r = Registry::new();
        let c = r.counter("c_total", "a counter");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("g", "a gauge");
        g.set(7);
        g.add(3);
        g.sub(2);
        assert_eq!(g.get(), 8);
    }

    #[test]
    fn registry_interns_by_name_and_label() {
        let r = Registry::new();
        let a = r.counter("x_total", "x");
        let b = r.counter("x_total", "x");
        a.inc();
        assert_eq!(b.get(), 1);
        let l1 = r.counter_with("fam_total", "verb", "get", "fam");
        let l2 = r.counter_with("fam_total", "verb", "put", "fam");
        l1.inc();
        assert_eq!(l2.get(), 0);
        assert_eq!(r.snapshot().len(), 3);
        assert_eq!(r.names(), vec!["x_total", "fam_total"]);
    }

    #[test]
    fn bucket_index_and_bound_agree() {
        for v in (0u64..4096).chain([1 << 20, 1 << 30, (1 << 40) + 12345, u64::MAX]) {
            let i = bucket_index(v);
            assert!(
                v <= bucket_bound(i),
                "v={v} i={i} bound={}",
                bucket_bound(i)
            );
            if i > 0 {
                assert!(
                    v > bucket_bound(i - 1),
                    "v={v} below bucket {i}'s lower edge"
                );
            }
        }
    }

    #[test]
    fn histogram_quantiles_bound_error() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.bucket_sum(), 1000);
        assert_eq!(s.max, 1000);
        let p50 = s.quantile(0.5);
        // True p50 is 500; the reported bound must cover it within one
        // bucket's relative error (≤ 25% above).
        assert!((500..=640).contains(&p50), "p50={p50}");
        let p99 = s.quantile(0.99);
        assert!((990..=1000).contains(&p99), "p99={p99}");
        assert_eq!(s.quantile(1.0), 1000);
        assert!((s.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_is_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.quantile(0.5), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.max, 0);
    }

    #[test]
    fn span_records_phase_and_histogram() {
        let h = Histogram::new();
        let ((), phases) = collect_phases(|| {
            let _s = span_timed("work", Region::Scan, &h);
            assert_eq!(region::current(), Region::Scan);
            std::hint::black_box(());
        });
        assert_eq!(region::current(), Region::General);
        assert_eq!(phases.len(), 1);
        assert_eq!(phases[0].0, "work");
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn collect_phases_nests() {
        let ((), outer) = collect_phases(|| {
            {
                let _a = span("outer_a", Region::General);
            }
            let ((), inner) = collect_phases(|| {
                let _b = span("inner_b", Region::General);
            });
            assert_eq!(inner.len(), 1);
            assert_eq!(inner[0].0, "inner_b");
            {
                let _c = span("outer_c", Region::General);
            }
        });
        let labels: Vec<_> = outer.iter().map(|p| p.0).collect();
        assert_eq!(labels, vec!["outer_a", "outer_c"]);
    }

    #[test]
    fn spans_without_collection_are_cheap_noops() {
        // No collect_phases active: the span still times and regions.
        let h = Histogram::new();
        {
            let _s = span_timed("lone", Region::Build, &h);
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn exposition_renders_and_escapes_round_trip() {
        let r = Registry::new();
        r.counter("a_total", "counts a").add(3);
        r.gauge("b", "gauges b").set(9);
        let h = r.histogram_with("lat_ns", "verb", "ping", "latency");
        h.record(100);
        let text = r.render();
        assert!(text.contains("# TYPE a_total counter"));
        assert!(text.contains("a_total 3"));
        assert!(text.contains("# TYPE lat_ns summary"));
        assert!(text.contains("lat_ns{verb=\"ping\",quantile=\"0.5\"}"));
        assert!(text.contains("lat_ns_count{verb=\"ping\"} 1"));
        let one_line = escape_exposition(&text);
        assert!(!one_line.contains('\n'));
        assert_eq!(unescape_exposition(&one_line), text);
        // Pathological payloads survive the round trip too.
        for s in ["a\\nb", "\\", "x\ny\r\\z", "\\n"] {
            assert_eq!(unescape_exposition(&escape_exposition(s)), s);
        }
    }

    instruments! {
        /// Test catalog.
        pub struct TestMetrics {
            counter ticks: "test_ticks_total" = "tick count",
            gauge depth: "test_depth" = "current depth",
            histogram wait_ns: "test_wait_ns" = "wait time",
        }
    }

    #[test]
    fn instruments_macro_registers_catalog() {
        assert_eq!(TestMetrics::CATALOG.len(), 3);
        assert_eq!(TestMetrics::CATALOG[0].0, "test_ticks_total");
        assert_eq!(TestMetrics::CATALOG[1].1, InstrumentKind::Gauge);
        let r = Registry::new();
        let m = TestMetrics::register(&r);
        m.ticks.inc();
        m.depth.set(2);
        m.wait_ns.record(50);
        // Re-registering attaches to the same cells.
        let again = TestMetrics::register(&r);
        assert_eq!(again.ticks.get(), 1);
        assert_eq!(r.snapshot().len(), 3);
    }

    #[test]
    fn concurrent_recording_keeps_invariants() {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|s| {
            for t in 0..8 {
                let h = h.clone();
                let c = c.clone();
                s.spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(t * 1000 + i);
                        c.inc();
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, 80_000);
        assert_eq!(s.bucket_sum(), 80_000);
        assert_eq!(c.get(), 80_000);
        assert_eq!(s.max, 7 * 1000 + 9_999);
    }
}
