//! Observability: the serving stack's instrument catalog and slow-op trace.
//!
//! One [`Obs`] lives on each [`crate::GraphService`], outside the writer
//! lock, so readers and the writer record into it without contending.  It
//! bundles three things:
//!
//! * a [`Registry`] holding every
//!   named instrument — the unlabelled catalog is declared once through
//!   [`graphgen_common::instruments!`] as [`ServeMetrics`], and the
//!   labelled families (per-verb request latency, per-phase apply and
//!   extraction timings) are registered beside it;
//! * the phase router ([`Obs::record_phases`]) that folds the span labels
//!   captured by [`graphgen_common::metrics::collect_phases`] into those
//!   families;
//! * a bounded [`TraceRing`] of the last N slow or failed operations,
//!   drained by the `TRACE` verb.
//!
//! The `METRICS` verb renders the registry in Prometheus-style text
//! exposition; over the one-line-per-response wire it travels in the
//! escaped form of [`graphgen_common::metrics::escape_exposition`], and
//! `graphgen-serve --metrics-dump` prints the canonical multi-line text.

use graphgen_common::instruments;
use graphgen_common::metrics::{Histogram, Registry};
use std::collections::VecDeque;
use std::sync::Mutex;

/// Every verb of the text protocol, as the `verb` label of the
/// `graphgen_request_ns` family. [`crate::protocol::Command::verb`] maps
/// a parsed command onto this list.
pub const VERBS: &[&str] = &[
    "extract",
    "check",
    "explain",
    "neighbors",
    "degree",
    "analyze",
    "analyze_status",
    "apply",
    "stats",
    "compact",
    "metrics",
    "trace",
    "ping",
    "shutdown",
];

/// The writer's publish pipeline phases, as the `phase` label of
/// `graphgen_apply_phase_ns` (span labels emitted inside
/// [`crate::GraphService::apply`]).
pub const APPLY_PHASES: &[&str] = &["validate", "wal_append", "patch", "publish"];

/// The extraction operator phases, as the `phase` label of
/// `graphgen_extract_phase_ns` (span labels emitted by the relational
/// executor and the representation builder).
pub const EXTRACT_PHASES: &[&str] = &["scan", "join", "distinct", "build_rep"];

instruments! {
    /// The unlabelled instrument catalog of the serving stack.
    ///
    /// Declared once so the names, kinds, and help strings are enumerable
    /// (`ServeMetrics::CATALOG`) — the `METRICS` exposition, the docs
    /// table, and the oracle tests all read from this single declaration.
    pub struct ServeMetrics {
        counter requests_total: "graphgen_requests_total" =
            "protocol commands executed (every verb, ok or error)",
        counter request_errors_total: "graphgen_request_errors_total" =
            "protocol commands answered with an ERR line",
        counter connections_opened_total: "graphgen_connections_opened_total" =
            "TCP connections accepted",
        gauge connections_active: "graphgen_connections_active" =
            "TCP connections currently open",
        counter snapshots_total: "graphgen_snapshots_total" =
            "published-snapshot pins handed to readers",
        counter extracts_total: "graphgen_extracts_total" =
            "successful EXTRACT registrations",
        counter check_rejects_total: "graphgen_check_rejects_total" =
            "EXTRACT requests rejected by the static checker",
        histogram extract_ns: "graphgen_extract_ns" =
            "end-to-end extraction latency (ns)",
        counter applies_total: "graphgen_applies_total" =
            "accepted APPLY batches",
        counter apply_rows_total: "graphgen_apply_rows_total" =
            "delta rows across accepted APPLY batches",
        counter publishes_total: "graphgen_publishes_total" =
            "graph versions published",
        histogram apply_ns: "graphgen_apply_ns" =
            "end-to-end APPLY latency, all phases included (ns)",
        counter wal_appends_total: "graphgen_wal_appends_total" =
            "records appended across the db and graph WALs",
        counter wal_append_bytes_total: "graphgen_wal_append_bytes_total" =
            "payload bytes appended across the db and graph WALs",
        histogram wal_fsync_ns: "graphgen_wal_fsync_ns" =
            "WAL fsync duration (ns) — the durability tax per synced append",
        counter compactions_total: "graphgen_compactions_total" =
            "WAL-into-snapshot folds (graph and db logs)",
        histogram compaction_ns: "graphgen_compaction_ns" =
            "compaction fold duration (ns)",
        histogram recovery_replay_ns: "graphgen_recovery_replay_ns" =
            "startup WAL replay duration per log (ns)",
        counter recovery_records_total: "graphgen_recovery_records_total" =
            "WAL records replayed at startup",
        counter analyze_computes_total: "graphgen_analyze_computes_total" =
            "ANALYZE kernel runs (cache misses)",
        counter analyze_hits_total: "graphgen_analyze_hits_total" =
            "ANALYZE cache hits, joined in-flight computations included",
        counter analyze_warm_starts_total: "graphgen_analyze_warm_starts_total" =
            "ANALYZE runs seeded from a superseded version's result",
        counter analyze_iterations_saved_total: "graphgen_analyze_iterations_saved_total" =
            "solver iterations saved by warm starts",
        histogram analyze_compute_ns: "graphgen_analyze_compute_ns" =
            "ANALYZE kernel wall time on the worker pool (ns)",
        gauge analyze_cached_entries: "graphgen_analyze_cached_entries" =
            "completed entries resident in the ANALYZE cache",
        gauge analyze_inflight: "graphgen_analyze_inflight" =
            "ANALYZE computations currently running",
        gauge graphs: "graphgen_graphs" =
            "registered graphs",
        gauge db_version: "graphgen_db_version" =
            "current database version (monotone across restarts)",
        gauge db_rows: "graphgen_db_rows" =
            "total rows across base tables",
        gauge intern_entries: "graphgen_intern_entries" =
            "live entries in the database value dictionary plus every \
             graph's engine dictionary (dense-id interners)",
        gauge wedged: "graphgen_wedged" =
            "1 when the writer is wedged after a divergence, else 0",
        counter slow_ops_total: "graphgen_slow_ops_total" =
            "operations at or above the slow-op threshold",
        counter trace_events_dropped_total: "graphgen_trace_events_dropped_total" =
            "slow-op trace events evicted before being drained",
    }
}

/// One slow or failed operation captured by the [`TraceRing`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Monotone sequence number (survives eviction: gaps reveal drops).
    pub seq: u64,
    /// The protocol verb (one of [`VERBS`]).
    pub verb: &'static str,
    /// Short operation detail — typically the graph or table name.
    pub detail: String,
    /// Whether the operation answered `OK`.
    pub ok: bool,
    /// End-to-end wall time in nanoseconds.
    pub total_ns: u64,
    /// Phase breakdown captured on the request thread, in completion
    /// order: `(span label, ns)`.
    pub phases: Vec<(&'static str, u64)>,
}

impl TraceEvent {
    /// Render the event as one space-free-field token sequence, e.g.
    /// `seq=3 verb=analyze detail=g ok=true total_ns=12345
    /// phases=scan:10,join:20`. Stays one line by construction.
    pub fn render(&self) -> String {
        let mut out = format!(
            "seq={} verb={} detail={} ok={} total_ns={}",
            self.seq,
            self.verb,
            if self.detail.is_empty() {
                "-"
            } else {
                &self.detail
            },
            self.ok,
            self.total_ns
        );
        if !self.phases.is_empty() {
            let phases: Vec<String> = self
                .phases
                .iter()
                .map(|(label, ns)| format!("{label}:{ns}"))
                .collect();
            out.push_str(&format!(" phases={}", phases.join(",")));
        }
        out
    }
}

#[derive(Debug)]
struct RingInner {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
}

/// A bounded ring of the most recent slow or failed operations.
///
/// Recording past capacity evicts the oldest event; `TRACE` drains
/// oldest-first. The sequence numbers are monotone across evictions, so a
/// drained client can tell how many events it missed.
#[derive(Debug)]
pub struct TraceRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

impl TraceRing {
    /// An empty ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            inner: Mutex::new(RingInner {
                events: VecDeque::new(),
                next_seq: 0,
            }),
            capacity: capacity.max(1),
        }
    }

    /// Append one event; returns `true` when an older event was evicted
    /// to make room.
    pub fn record(
        &self,
        verb: &'static str,
        detail: String,
        ok: bool,
        total_ns: u64,
        phases: Vec<(&'static str, u64)>,
    ) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        let dropped = inner.events.len() == self.capacity;
        if dropped {
            inner.events.pop_front();
        }
        inner.events.push_back(TraceEvent {
            seq,
            verb,
            detail,
            ok,
            total_ns,
            phases,
        });
        dropped
    }

    /// Remove and return up to `n` events, oldest first (all of them when
    /// `n` is `None`).
    pub fn drain(&self, n: Option<usize>) -> Vec<TraceEvent> {
        let mut inner = self.inner.lock().unwrap();
        let take = n.unwrap_or(usize::MAX).min(inner.events.len());
        inner.events.drain(..take).collect()
    }

    /// Events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().events.len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring's fixed capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

/// The per-service observability hub: registry, instruments, and the
/// slow-op trace. See the module docs for the layout.
#[derive(Debug)]
pub struct Obs {
    registry: Registry,
    /// The unlabelled instrument catalog (see [`ServeMetrics`]).
    pub m: ServeMetrics,
    request_ns: Vec<(&'static str, Histogram)>,
    apply_phase_ns: Vec<(&'static str, Histogram)>,
    extract_phase_ns: Vec<(&'static str, Histogram)>,
    trace: TraceRing,
    slow_op_ns: u64,
}

impl Obs {
    /// Build the hub: register the full catalog plus the labelled families
    /// in a fresh registry. `slow_op_ns` is the trace threshold;
    /// `trace_capacity` bounds the ring.
    pub fn new(slow_op_ns: u64, trace_capacity: usize) -> Self {
        let registry = Registry::new();
        let m = ServeMetrics::register(&registry);
        let family = |name: &'static str, label: &'static str, values: &[&'static str], help| {
            values
                .iter()
                .map(|v| (*v, registry.histogram_with(name, label, v, help)))
                .collect::<Vec<_>>()
        };
        let request_ns = family(
            "graphgen_request_ns",
            "verb",
            VERBS,
            "request latency by protocol verb (ns)",
        );
        let apply_phase_ns = family(
            "graphgen_apply_phase_ns",
            "phase",
            APPLY_PHASES,
            "publish pipeline phase duration (ns)",
        );
        let extract_phase_ns = family(
            "graphgen_extract_phase_ns",
            "phase",
            EXTRACT_PHASES,
            "extraction operator phase duration (ns)",
        );
        Obs {
            registry,
            m,
            request_ns,
            apply_phase_ns,
            extract_phase_ns,
            trace: TraceRing::new(trace_capacity),
            slow_op_ns,
        }
    }

    /// The registry holding every instrument (for exposition and tests).
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The slow-op trace ring.
    pub fn trace(&self) -> &TraceRing {
        &self.trace
    }

    /// The slow-op threshold in nanoseconds.
    pub fn slow_op_ns(&self) -> u64 {
        self.slow_op_ns
    }

    /// The per-verb request latency histogram (`None` for a verb outside
    /// [`VERBS`] — callers built from `Command::verb` never miss).
    pub fn request_hist(&self, verb: &str) -> Option<&Histogram> {
        self.request_ns
            .iter()
            .find(|(v, _)| *v == verb)
            .map(|(_, h)| h)
    }

    /// Fold span labels captured on a request thread into the phase
    /// families. Apply-phase labels go to `graphgen_apply_phase_ns`,
    /// extraction labels to `graphgen_extract_phase_ns`; anything else
    /// (a label recorded by a deeper layer this catalog does not chart)
    /// is ignored.
    pub fn record_phases(&self, phases: &[(&'static str, u64)]) {
        for (label, ns) in phases {
            let hist = self
                .apply_phase_ns
                .iter()
                .chain(&self.extract_phase_ns)
                .find(|(l, _)| l == label)
                .map(|(_, h)| h);
            if let Some(h) = hist {
                h.record(*ns);
            }
        }
    }

    /// Account one completed protocol operation: bump the request
    /// counters, record the per-verb latency and the phase breakdown, and
    /// land the event in the trace ring when it was slow (≥ the
    /// threshold) or failed.
    pub fn record_op(
        &self,
        verb: &'static str,
        detail: String,
        ok: bool,
        total_ns: u64,
        phases: Vec<(&'static str, u64)>,
    ) {
        self.m.requests_total.inc();
        if !ok {
            self.m.request_errors_total.inc();
        }
        if let Some(h) = self.request_hist(verb) {
            h.record(total_ns);
        }
        self.record_phases(&phases);
        let slow = total_ns >= self.slow_op_ns;
        if slow {
            self.m.slow_ops_total.inc();
        }
        if (slow || !ok) && self.trace.record(verb, detail, ok, total_ns, phases) {
            self.m.trace_events_dropped_total.inc();
        }
    }

    /// Render the Prometheus-style text exposition of every instrument.
    /// Gauges are whatever was last `set` — [`crate::GraphService`]
    /// refreshes them from live state before calling this.
    pub fn render(&self) -> String {
        self.registry.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_is_large_and_unique() {
        let mut names: Vec<&str> = ServeMetrics::CATALOG.iter().map(|(n, _, _)| *n).collect();
        names.sort_unstable();
        let total = names.len();
        names.dedup();
        assert_eq!(names.len(), total, "duplicate instrument names");
        // The labelled families add 3 more names on top of the catalog.
        assert!(total + 3 >= 25, "catalog too small: {total}");
        for (name, _, help) in ServeMetrics::CATALOG {
            assert!(name.starts_with("graphgen_"), "{name}");
            assert!(!help.is_empty(), "{name} missing help");
        }
    }

    #[test]
    fn phase_labels_route_to_their_families() {
        let obs = Obs::new(u64::MAX, 4);
        obs.record_phases(&[
            ("validate", 10),
            ("scan", 20),
            ("join", 30),
            ("publish", 40),
            ("unknown_label", 50),
        ]);
        let count = |name: &str, label_value: &str| {
            obs.registry()
                .snapshot()
                .into_iter()
                .find(|s| {
                    s.name == name && s.label.as_ref().map(|(_, v)| v.as_str()) == Some(label_value)
                })
                .map(|s| match s.value {
                    graphgen_common::metrics::ValueSnapshot::Histogram(h) => h.count,
                    _ => panic!("not a histogram"),
                })
                .unwrap()
        };
        assert_eq!(count("graphgen_apply_phase_ns", "validate"), 1);
        assert_eq!(count("graphgen_apply_phase_ns", "publish"), 1);
        assert_eq!(count("graphgen_extract_phase_ns", "scan"), 1);
        assert_eq!(count("graphgen_extract_phase_ns", "join"), 1);
        assert_eq!(count("graphgen_apply_phase_ns", "patch"), 0);
    }

    #[test]
    fn trace_ring_bounds_and_sequences() {
        let ring = TraceRing::new(3);
        assert!(ring.is_empty());
        for i in 0..5u64 {
            let dropped = ring.record("ping", String::new(), true, i, Vec::new());
            assert_eq!(dropped, i >= 3, "record {i}");
            assert!(ring.len() <= ring.capacity());
        }
        // Oldest two were evicted: seq 2, 3, 4 remain, drained in order.
        let drained = ring.drain(Some(2));
        assert_eq!(
            drained.iter().map(|e| e.seq).collect::<Vec<_>>(),
            vec![2, 3]
        );
        let rest = ring.drain(None);
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].seq, 4);
        assert!(ring.is_empty());
    }

    #[test]
    fn record_op_routes_slow_and_failed() {
        let obs = Obs::new(1_000, 8);
        obs.record_op("ping", String::new(), true, 10, Vec::new()); // fast + ok
        obs.record_op("apply", "T".into(), true, 5_000, vec![("patch", 4_000)]); // slow
        obs.record_op("stats", String::new(), false, 10, Vec::new()); // failed
        assert_eq!(obs.m.requests_total.get(), 3);
        assert_eq!(obs.m.request_errors_total.get(), 1);
        assert_eq!(obs.m.slow_ops_total.get(), 1);
        let events = obs.trace().drain(None);
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].verb, "apply");
        assert!(events[0].render().contains("phases=patch:4000"));
        assert_eq!(events[1].verb, "stats");
        assert!(!events[1].ok);
        // Per-verb latency recorded for all three.
        assert_eq!(obs.request_hist("ping").unwrap().count(), 1);
        assert_eq!(obs.request_hist("apply").unwrap().count(), 1);
        assert_eq!(obs.request_hist("stats").unwrap().count(), 1);
    }

    #[test]
    fn render_enumerates_the_catalog() {
        let obs = Obs::new(u64::MAX, 4);
        let text = obs.render();
        for (name, _, _) in ServeMetrics::CATALOG {
            assert!(text.contains(name), "missing {name}");
        }
        for verb in VERBS {
            assert!(
                text.contains(&format!("verb=\"{verb}\"")),
                "missing verb {verb}"
            );
        }
    }
}
