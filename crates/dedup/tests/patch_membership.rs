//! Patch-aware membership: the deduplicated representations must keep
//! their structural invariants — and their logical edge sets — under the
//! mutation sequences the incremental maintenance layer replays through
//! the 7-operation API (edge add/delete, vertex kill with edge purge,
//! revive with edge re-add).
//!
//! The incremental engine in `graphgen-core` patches converted handles by
//! translating condensed-level deltas into `add_edge`/`delete_edge`/
//! `delete_vertex`/`revive_vertex` calls; these tests pin down, at the
//! `graphgen-dedup` level, that DEDUP-1's "at most one path per pair" and
//! DEDUP-2's witness invariants survive exactly those call sequences.

use graphgen_common::{SplitMix64, VertexOrdering};
use graphgen_dedup::{try_dedup2_greedy, Dedup1Algorithm};
use graphgen_graph::{
    expand_to_edge_list, validate, CondensedBuilder, CondensedGraph, GraphRep, RealId,
};

/// A random symmetric single-layer co-occurrence graph.
fn random_cooccurrence(n_real: usize, groups: usize, mean: usize, seed: u64) -> CondensedGraph {
    let mut rng = SplitMix64::new(seed);
    let mut b = CondensedBuilder::new(n_real);
    for _ in 0..groups {
        let size = 2 + (rng.next_below(mean as u64 * 2) as usize);
        let members: Vec<RealId> = (0..size)
            .map(|_| RealId(rng.next_below(n_real as u64) as u32))
            .collect();
        b.clique(&members);
    }
    b.build()
}

/// A random stream of logical mutations, applied identically to a mutable
/// reference graph (C-DUP) and to the representation under test.
fn mutation_stream(seed: u64, n_real: u32, steps: usize) -> Vec<(u8, u32, u32)> {
    let mut rng = SplitMix64::new(seed);
    (0..steps)
        .map(|_| {
            (
                rng.next_below(4) as u8,
                rng.next_below(n_real as u64) as u32,
                rng.next_below(n_real as u64) as u32,
            )
        })
        .collect()
}

/// Replay one step the way the patch engine drives representations: edge
/// operations only between live vertices, kills purge both edge
/// directions first (so a later revival starts from a clean slot), and
/// revivals bring back an isolated vertex whose edges the engine re-adds
/// explicitly.
fn apply_step<G: GraphRep>(g: &mut G, step: (u8, u32, u32)) {
    let (op, a, b) = step;
    let (u, v) = (RealId(a), RealId(b));
    match op {
        0 if g.is_alive(u) && g.is_alive(v) => g.add_edge(u, v),
        1 if g.is_alive(u) && g.is_alive(v) => g.delete_edge(u, v),
        2 if g.is_alive(u) => {
            for t in g.neighbors(u) {
                g.delete_edge(u, t);
            }
            let ins: Vec<RealId> = g
                .vertices()
                .filter(|&s| s != u && g.exists_edge(s, u))
                .collect();
            for s in ins {
                g.delete_edge(s, u);
            }
            g.delete_vertex(u);
        }
        3 => g.revive_vertex(u),
        _ => {}
    }
}

#[test]
fn dedup1_invariant_survives_patch_sequences() {
    for seed in [1u64, 7, 23] {
        let core = random_cooccurrence(40, 25, 4, seed);
        let mut reference = core.clone();
        let mut d1 = Dedup1Algorithm::GreedyVnf.run(&core, VertexOrdering::Descending, 0);
        assert_eq!(expand_to_edge_list(&d1), expand_to_edge_list(&reference));
        for step in mutation_stream(seed * 31, 40, 60) {
            // Symmetrize edge ops so DEDUP-2-style comparisons stay fair;
            // DEDUP-1 itself is directed and needs no such care.
            apply_step(&mut reference, step);
            apply_step(&mut d1, step);
            assert_eq!(
                expand_to_edge_list(&d1),
                expand_to_edge_list(&reference),
                "seed {seed}, step {step:?}"
            );
            validate::validate_dedup1(&d1).expect("DEDUP-1 invariant broken");
        }
    }
}

#[test]
fn dedup2_membership_survives_patch_sequences() {
    for seed in [3u64, 11] {
        let core = random_cooccurrence(30, 18, 4, seed);
        let mut reference = core.clone();
        let mut d2 =
            try_dedup2_greedy(&core, VertexOrdering::Descending, 0).expect("symmetric source");
        assert_eq!(expand_to_edge_list(&d2), expand_to_edge_list(&reference));
        let mut rng = SplitMix64::new(seed * 77);
        for i in 0..50 {
            let u = RealId(rng.next_below(30) as u32);
            let v = RealId(rng.next_below(30) as u32);
            match i % 5 {
                // DEDUP-2 is undirected: apply edge ops in both directions
                // to the directed reference, exactly like the symmetric
                // logical diffs the patch engine produces. Edge ops only
                // run between live vertices (the engine's alive-gating).
                0 | 3 if d2.is_alive(u) && d2.is_alive(v) => {
                    reference.add_edge(u, v);
                    reference.add_edge(v, u);
                    d2.add_edge(u, v);
                }
                1 if d2.is_alive(u) && d2.is_alive(v) => {
                    reference.delete_edge(u, v);
                    reference.delete_edge(v, u);
                    d2.delete_edge(u, v);
                }
                2 if d2.is_alive(u) => {
                    let outs = d2.neighbors(u);
                    for t in outs {
                        reference.delete_edge(u, t);
                        reference.delete_edge(t, u);
                        d2.delete_edge(u, t);
                    }
                    reference.delete_vertex(u);
                    d2.delete_vertex(u);
                }
                4 => {
                    reference.revive_vertex(u);
                    d2.revive_vertex(u);
                }
                _ => {}
            }
            assert_eq!(
                expand_to_edge_list(&d2),
                expand_to_edge_list(&reference),
                "seed {seed}, step {i}"
            );
            validate::validate_dedup2(&d2).expect("DEDUP-2 witness invariant broken");
        }
    }
}

#[test]
fn kill_purge_then_revive_is_clean_slate() {
    // The precise revival contract the patch engine relies on: after a
    // purge+kill, a revived slot has no edges until they are re-added.
    let core = random_cooccurrence(20, 10, 3, 5);
    let mut d1 = Dedup1Algorithm::GreedyVnf.run(&core, VertexOrdering::Descending, 0);
    let u = RealId(4);
    let old_neighbors = d1.neighbors(u);
    let ins: Vec<RealId> = d1
        .vertices()
        .filter(|&s| s != u && d1.exists_edge(s, u))
        .collect();
    for t in d1.neighbors(u) {
        d1.delete_edge(u, t);
    }
    for s in &ins {
        d1.delete_edge(*s, u);
    }
    d1.delete_vertex(u);
    assert!(!d1.is_alive(u));
    d1.revive_vertex(u);
    assert!(d1.is_alive(u));
    assert!(d1.neighbors(u).is_empty(), "revived slot must start clean");
    for t in &old_neighbors {
        d1.add_edge(u, *t);
    }
    for s in &ins {
        d1.add_edge(*s, u);
    }
    let mut got = d1.neighbors(u);
    got.sort();
    let mut want = old_neighbors.clone();
    want.sort();
    assert_eq!(got, want);
    validate::validate_dedup1(&d1).expect("invariant after revive");
}
