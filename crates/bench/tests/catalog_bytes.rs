//! The catalog's maintained statistics (`n_distinct` indexes, whole-row
//! hash counts) are keyed by interned `Vid`, not by owned values — so
//! their heap footprint must track the *number of distinct values* and
//! never the *size of the value payloads*. This test pins that claim with
//! the counting allocator: registering a table whose values are already
//! dictionary-resident can only allocate statistics maps, and those bytes
//! must be identical whether each payload is a handful of bytes or half a
//! kilobyte.
//!
//! Kept as a single `#[test]` on purpose: `alloc::measure` reads
//! process-global counters, so no other test in this binary may allocate
//! concurrently.

use graphgen_bench::alloc;
use graphgen_reldb::{Column, Database, Schema, Table, Value};

const ROWS: usize = 4096;

/// A two-column table: a high-cardinality key and a 97-distinct value
/// column, each cell padded with `pad` filler bytes. Shape (row count,
/// distinct counts, insertion order) is identical for every `pad`, so the
/// statistics maps built from it must be identical too.
fn payload_table(pad: usize) -> Table {
    let mut t = Table::new(Schema::new(vec![Column::str("k"), Column::str("v")]));
    let filler = "x".repeat(pad);
    for i in 0..ROWS {
        t.push_row(vec![
            Value::str(format!("k{i:06}{filler}")),
            Value::str(format!("v{:04}{filler}", i % 97)),
        ])
        .expect("schema-valid row");
    }
    t
}

/// Register a seed table (paying dictionary + storage for the payloads),
/// then measure the live-byte growth of registering a second table with
/// the *same values*: every cell is already interned, so the measured
/// growth is the catalog statistics alone. Returns that growth plus the
/// catalog's own accounting of its statistics bytes.
fn stats_growth(pad: usize) -> (usize, usize) {
    let mut db = Database::new();
    db.register("seed", payload_table(pad)).expect("seed");
    let dup = payload_table(pad);
    let (_, m) = alloc::measure(|| db.register("dup", dup).expect("dup"));
    (m.live, db.stats_heap_bytes())
}

#[test]
fn catalog_stats_bytes_do_not_scale_with_payload_size() {
    let (small_live, small_stats) = stats_growth(0);
    let (big_live, big_stats) = stats_growth(512);

    // Same shape → the vid-keyed maps must be the same size, byte for
    // byte, regardless of payload width.
    assert_eq!(
        small_stats, big_stats,
        "stats_heap_bytes must be payload-independent"
    );
    assert!(small_stats > 0, "statistics should exist after register");

    // If registration copied values into the statistics, the padded run
    // would allocate ~4 MiB more (4096 rows × ~1 KiB of extra payload).
    // Vid-keying keeps the growth flat; allow a little slack for
    // incidental allocator noise.
    let diff = big_live.abs_diff(small_live);
    assert!(
        diff < 64 * 1024,
        "catalog registration bytes scaled with payload size: \
         pad=0 grew {small_live}B, pad=512 grew {big_live}B"
    );
}
