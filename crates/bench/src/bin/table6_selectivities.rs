//! Table 6: join selectivities and condensed sizes of the generated
//! datasets (`selectivity = distinct(a) / |A|`).

use graphgen_bench::{extract_cdup, row};
use graphgen_datagen::{layered_database, single_layer_database, LayeredConfig, SingleLayerConfig};
use graphgen_graph::GraphRep;

fn main() {
    let s: f64 = std::env::var("SCALE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.01);
    println!("Table 6: generated dataset selectivities (scale {s})\n");
    let widths = [12, 12, 12, 22, 12, 12];
    row(
        &[
            "dataset",
            "rows",
            "entities",
            "selectivities",
            "cdup_nodes",
            "cdup_edges",
        ]
        .map(String::from),
        &widths,
    );
    for (name, cfg) in [
        ("Layered_1", LayeredConfig::layered_1(s)),
        ("Layered_2", LayeredConfig::layered_2(s)),
    ] {
        let (db, q) = layered_database(cfg);
        let a = db.table("A").expect("table A");
        let b = db.table("B").expect("table B");
        let s1 = a.distinct_count(1) as f64 / a.num_rows() as f64;
        let s2 = b.distinct_count(1) as f64 / b.num_rows() as f64;
        let g = extract_cdup(&db, &q);
        row(
            &[
                name.to_string(),
                (a.num_rows() + b.num_rows()).to_string(),
                db.table("Entity").expect("entities").num_rows().to_string(),
                format!("{s1:.3} -> {s2:.3} -> {s1:.3}"),
                g.stored_node_count().to_string(),
                g.stored_edge_count().to_string(),
            ],
            &widths,
        );
    }
    for (name, cfg) in [
        ("Single_1", SingleLayerConfig::single_1(s)),
        ("Single_2", SingleLayerConfig::single_2(s)),
    ] {
        let (db, q) = single_layer_database(cfg);
        let a = db.table("A").expect("table A");
        let sel = a.distinct_count(1) as f64 / a.num_rows() as f64;
        let g = extract_cdup(&db, &q);
        row(
            &[
                name.to_string(),
                a.num_rows().to_string(),
                db.table("Entity").expect("entities").num_rows().to_string(),
                format!("{sel:.3}"),
                g.stored_node_count().to_string(),
                g.stored_edge_count().to_string(),
            ],
            &widths,
        );
    }
    println!("\npaper shape: lower selectivity (fewer distinct join values) => denser hidden");
    println!("graph; Single_2's 0.01 selectivity hides the densest one.");
}
