//! Kill-and-recover: a service dropped abruptly (no shutdown call exists —
//! every committed version is already durable) must reopen to the exact
//! pre-crash canonical bytes for every registered graph, from every crash
//! layout: snapshot + non-empty WAL, WAL-only-compacted graphs, stale WAL
//! records after a snapshot rename (mid-compaction), leftover `.tmp`
//! files, and torn WAL tails.

use graphgen_common::SplitMix64;
use graphgen_reldb::{Column, Database, Schema, Table, Value};
use graphgen_serve::testutil::TempDir;
use graphgen_serve::{GraphService, ServiceConfig, TableMutation};
use std::collections::HashMap;

const Q_COAUTHORS: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                           Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";
const Q_NODES_ONLY: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                            Edges(A, B) :- Author(A, N), Author(B, N).";

fn seed_db() -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 1..=12 {
        author
            .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
            .unwrap();
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (a, p) in [
        (1, 1),
        (2, 1),
        (4, 1),
        (1, 2),
        (4, 2),
        (3, 3),
        (4, 3),
        (5, 3),
    ] {
        ap.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", ap).unwrap();
    db
}

fn churn(service: &GraphService, seed: u64, batches: usize) {
    let mut rng = SplitMix64::new(seed);
    let mut applied = 0;
    while applied < batches {
        let mut inserts = Vec::new();
        let mut deletes = Vec::new();
        for _ in 0..rng.next_below(3) + 1 {
            let row = vec![
                Value::int(rng.next_below(12) as i64 + 1),
                Value::int(rng.next_below(6) as i64 + 1),
            ];
            if rng.next_below(4) == 0 {
                deletes.push(row);
            } else {
                inserts.push(row);
            }
        }
        let outcome = service
            .apply(&[
                TableMutation::new("AuthorPub", inserts, deletes),
                // Occasionally churn the node table too.
                if rng.next_below(5) == 0 {
                    TableMutation::new(
                        "Author",
                        vec![vec![
                            Value::int(rng.next_below(20) as i64 + 1),
                            Value::str(format!("r{applied}")),
                        ]],
                        vec![],
                    )
                } else {
                    TableMutation::new("Author", vec![], vec![])
                },
            ])
            .unwrap();
        if !outcome.graphs.is_empty() {
            applied += 1;
        }
    }
}

/// Canonical bytes + version per graph.
fn fingerprint(service: &GraphService) -> HashMap<String, (u64, Vec<u8>)> {
    service
        .names()
        .into_iter()
        .map(|name| {
            let snap = service.snapshot(&name).unwrap();
            (name, (snap.version(), snap.canonical_bytes()))
        })
        .collect()
}

fn assert_recovered(dir: &TempDir, expected: &HashMap<String, (u64, Vec<u8>)>) {
    let recovered = GraphService::open(dir.path()).unwrap();
    let got = fingerprint(&recovered);
    assert_eq!(
        got.keys().collect::<std::collections::BTreeSet<_>>(),
        expected.keys().collect::<std::collections::BTreeSet<_>>(),
        "graph registry diverged"
    );
    for (name, (version, bytes)) in expected {
        let (got_version, got_bytes) = &got[name];
        assert_eq!(got_version, version, "{name}: version diverged");
        assert_eq!(got_bytes, bytes, "{name}: canonical bytes diverged");
    }
}

/// Abrupt drop with snapshot + non-empty WAL on two graphs (one of which
/// ignores most of the churn).
#[test]
fn recover_snapshot_plus_wal() {
    let dir = TempDir::new("rec-basic");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX, // never compact: WAL carries everything
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        service.extract("roster", Q_NODES_ONLY).unwrap();
        churn(&service, 7, 12);
        expected = fingerprint(&service);
        // WAL must be non-empty for the scenario to be the one claimed.
        let (stats, _) = service.stats();
        assert!(stats.iter().any(|s| s.wal_bytes > 0));
    }
    assert_recovered(&dir, &expected);
}

/// Aggressive compaction: every batch folds the WAL into a fresh snapshot,
/// so recovery is snapshot-only (plus whatever tail remains).
#[test]
fn recover_with_aggressive_compaction() {
    let dir = TempDir::new("rec-compact");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: 1, // every publish triggers compaction
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 21, 10);
        expected = fingerprint(&service);
    }
    assert_recovered(&dir, &expected);
}

/// Mid-compaction crash, layout A: the new snapshot was renamed into place
/// but the WAL was not yet truncated — recovery must skip the WAL records
/// the snapshot already contains.
#[test]
fn recover_mid_compaction_stale_wal() {
    let dir = TempDir::new("rec-midcompact");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 33, 8);
        // Simulate: keep the pre-compaction WAL, compact (snapshot moves to
        // the newest version + WAL truncates), then restore the stale WAL —
        // exactly the layout of a crash between rename and truncate.
        let wal_path = dir.path().join("coauthors.graph.wal");
        let stale_wal = std::fs::read(&wal_path).unwrap();
        assert!(!stale_wal.is_empty());
        service.compact("coauthors").unwrap();
        expected = fingerprint(&service);
        drop(service);
        std::fs::write(&wal_path, &stale_wal).unwrap();
    }
    assert_recovered(&dir, &expected);
}

/// Mid-compaction crash, layout B: the crash hit before the rename — a
/// leftover `.tmp` next to the old snapshot and the full WAL. The `.tmp`
/// must be ignored and the WAL replayed.
#[test]
fn recover_mid_compaction_leftover_tmp() {
    let dir = TempDir::new("rec-tmp");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 55, 6);
        expected = fingerprint(&service);
        // A half-written snapshot the rename never happened for.
        std::fs::write(dir.path().join("coauthors.graph.tmp"), b"half-written").unwrap();
    }
    assert_recovered(&dir, &expected);
}

/// A WAL whose tail record was torn mid-write: the torn record was never
/// acknowledged, so recovery lands exactly on the last durable version.
#[test]
fn recover_torn_wal_tail() {
    let dir = TempDir::new("rec-torn");
    let expected;
    {
        let service = GraphService::create(
            dir.path(),
            seed_db(),
            ServiceConfig {
                compact_threshold: u64::MAX,
                ..ServiceConfig::default()
            },
        )
        .unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 77, 6);
        expected = fingerprint(&service);
        drop(service);
        // Append garbage that looks like the start of a record.
        let wal_path = dir.path().join("coauthors.graph.wal");
        let mut raw = std::fs::read(&wal_path).unwrap();
        raw.extend_from_slice(&[0x40, 0, 0, 0, 1, 2, 3]);
        std::fs::write(&wal_path, &raw).unwrap();
    }
    assert_recovered(&dir, &expected);
}

/// A corrupted snapshot file must fail recovery with a clean `Corrupt`
/// error (whole-file checksum), never decode flipped bytes.
#[test]
fn corrupted_snapshot_is_rejected() {
    let dir = TempDir::new("rec-corrupt-snap");
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 11, 3);
    }
    let snap_path = dir.path().join("coauthors.graph.snap");
    let mut raw = std::fs::read(&snap_path).unwrap();
    let mid = raw.len() / 2;
    raw[mid] ^= 0xFF;
    std::fs::write(&snap_path, &raw).unwrap();
    let err = GraphService::open(dir.path()).unwrap_err();
    assert!(
        matches!(err, graphgen_serve::ServeError::Corrupt { .. }),
        "{err}"
    );
}

/// The recovered incremental state must keep *working*: post-recovery
/// mutations yield the same graph a never-crashed service reaches.
#[test]
fn recovered_service_continues_identically() {
    let dir = TempDir::new("rec-continue");
    {
        let service =
            GraphService::create(dir.path(), seed_db(), ServiceConfig::default()).unwrap();
        service.extract("coauthors", Q_COAUTHORS).unwrap();
        churn(&service, 99, 5);
    }
    let recovered = GraphService::open(dir.path()).unwrap();
    // A parallel, never-persisted service fed the identical full stream.
    let reference = GraphService::in_memory(seed_db());
    reference.extract("coauthors", Q_COAUTHORS).unwrap();
    churn(&reference, 99, 5);
    churn(&recovered, 123, 5);
    churn(&reference, 123, 5);
    assert_eq!(
        recovered.snapshot("coauthors").unwrap().canonical_bytes(),
        reference.snapshot("coauthors").unwrap().canonical_bytes(),
        "recovered service diverged from the uninterrupted reference"
    );
}
