//! `graphgen-check` — static analyzer for extraction DSL files.
//!
//! Validates `.ggd` query files against an optional `.ggs` schema
//! description, printing rustc-style caret diagnostics with stable codes.
//!
//! ```text
//! graphgen-check --schema dblp.ggs --deny-warnings queries/*.ggd
//! graphgen-check --schema dblp.ggs --explain queries/*.ggd
//! graphgen-check --schema dblp.ggs --format=json queries/*.ggd
//! ```
//!
//! Exit codes: `0` all files clean, `1` diagnostics reported (errors, or
//! warnings under `--deny-warnings`), `2` usage or I/O failure.

use graphgen_dsl::{
    check_source, cost, render_all, CheckCatalog, CheckOptions, Diagnostic, Severity,
};
use std::process::ExitCode;

const USAGE: &str = "usage: graphgen-check [options] <file.ggd>...

options:
  --schema <file.ggs>   check against a schema description (enables
                        unknown-relation/arity/type/statistics checks)
  --lint <groups>       enable opt-in lint groups, comma separated:
                        conversion (W103), plan (W105), all
  --factor <f>          large-output factor for plan lints (default 2.0)
  --explain             render each chain's cost-engine plan tree
                        (estimated vs. catalog row counts; needs a
                        --schema with rows=/distinct= statistics)
  --format <text|json>  output format; json emits one machine-readable
                        array of per-file diagnostic reports on stdout
  --deny-warnings       exit 1 on warnings, not just errors
  -q, --quiet           suppress per-file OK lines
  -h, --help            show this help

exit codes: 0 = clean, 1 = diagnostics reported, 2 = usage/io error";

#[derive(PartialEq)]
enum Format {
    Text,
    Json,
}

struct Args {
    schema: Option<String>,
    opts: CheckOptions,
    deny_warnings: bool,
    quiet: bool,
    explain: bool,
    format: Format,
    files: Vec<String>,
}

fn parse_format(value: &str) -> Result<Format, String> {
    match value {
        "text" => Ok(Format::Text),
        "json" => Ok(Format::Json),
        other => Err(format!("unknown format `{other}` (expected text|json)")),
    }
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        schema: None,
        opts: CheckOptions::default(),
        deny_warnings: false,
        quiet: false,
        explain: false,
        format: Format::Text,
        files: Vec::new(),
    };
    let mut it = argv.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--schema" => {
                args.schema = Some(
                    it.next()
                        .ok_or("--schema needs a file argument")?
                        .to_string(),
                );
            }
            "--lint" => {
                let groups = it.next().ok_or("--lint needs a group list")?;
                for g in groups.split(',') {
                    args.opts.enable_lint(g.trim())?;
                }
            }
            "--factor" => {
                let f = it.next().ok_or("--factor needs a number")?;
                args.opts.large_output_factor =
                    f.parse().map_err(|e| format!("bad --factor `{f}`: {e}"))?;
            }
            "--explain" => args.explain = true,
            "--format" => {
                let v = it.next().ok_or("--format needs text|json")?;
                args.format = parse_format(v)?;
            }
            "--deny-warnings" => args.deny_warnings = true,
            "-q" | "--quiet" => args.quiet = true,
            "-h" | "--help" => return Err(String::new()),
            other if other.starts_with("--format=") => {
                args.format = parse_format(&other["--format=".len()..])?;
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            file => args.files.push(file.to_string()),
        }
    }
    if args.files.is_empty() {
        return Err("no input files".into());
    }
    if args.explain && args.format == Format::Json {
        return Err("--explain and --format=json cannot be combined".into());
    }
    Ok(args)
}

/// Minimal JSON string escaping (std-only): quotes, backslashes, and
/// control characters.
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// One diagnostic as a JSON object. The key set and order are a stable
/// machine interface (locked by the CLI schema-stability test): code,
/// name, severity, line, col, len, message, help, rendered.
fn diagnostic_json(d: &Diagnostic, source: &str, origin: &str) -> String {
    format!(
        "{{\"code\":{},\"name\":{},\"severity\":{},\"line\":{},\"col\":{},\"len\":{},\
         \"message\":{},\"help\":{},\"rendered\":{}}}",
        json_str(d.code.code()),
        json_str(d.code.name()),
        json_str(&d.severity.to_string()),
        d.span.line,
        d.span.col,
        d.span.len,
        json_str(&d.message),
        d.help.as_deref().map_or("null".to_string(), json_str),
        json_str(&d.render(source, origin)),
    )
}

/// Render the cost-engine plan trees for every `Edges` chain of a
/// checked file (the spec is only present when the file has no errors).
fn explain_file(report: &graphgen_dsl::CheckReport, catalog: Option<&CheckCatalog>, factor: f64) {
    let Some(spec) = &report.spec else { return };
    for (i, chain) in spec.edges.iter().enumerate() {
        let label = format!("chain {}", i + 1);
        let rendered = catalog
            .and_then(|cat| cost::estimate_chain(cat, &chain.steps, factor))
            .map(|cc| cost::render_explain(&label, &cc))
            .unwrap_or_else(|| cost::render_unknown(&label, &chain.steps));
        print!("{rendered}");
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(a) => a,
        Err(msg) => {
            if msg.is_empty() {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("error: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    let catalog = match &args.schema {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(text) => match CheckCatalog::parse(&text) {
                Ok(cat) => Some(cat),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("error: cannot read schema `{path}`: {e}");
                return ExitCode::from(2);
            }
        },
        None => None,
    };
    let mut failed = false;
    let mut json_files = Vec::new();
    for path in &args.files {
        let source = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("error: cannot read `{path}`: {e}");
                return ExitCode::from(2);
            }
        };
        let report = check_source(&source, catalog.as_ref(), &args.opts);
        failed |= report.has_errors() || (args.deny_warnings && report.has_warnings());
        match args.format {
            Format::Json => {
                let diags: Vec<String> = report
                    .diagnostics
                    .iter()
                    .map(|d| diagnostic_json(d, &source, path))
                    .collect();
                let warnings = report
                    .diagnostics
                    .iter()
                    .filter(|d| d.severity == Severity::Warning)
                    .count();
                let errors = report.diagnostics.len() - warnings;
                json_files.push(format!(
                    "{{\"file\":{},\"errors\":{},\"warnings\":{},\"diagnostics\":[{}]}}",
                    json_str(path),
                    errors,
                    warnings,
                    diags.join(",")
                ));
            }
            Format::Text => {
                match render_all(&report.diagnostics, &source, path) {
                    Some(rendered) => print!("{rendered}"),
                    None => {
                        if !args.quiet {
                            println!("{path}: OK");
                        }
                    }
                }
                if args.explain {
                    explain_file(&report, catalog.as_ref(), args.opts.large_output_factor);
                }
            }
        }
    }
    if args.format == Format::Json {
        println!("[{}]", json_files.join(","));
    }
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
