//! Table 3: large datasets — Degree/PageRank/BFS runtimes and memory for
//! C-DUP vs BITMAP(-2) vs EXP, plus the one-time BITMAP dedup cost.
//!
//! Scaled down (pass `--scale <f>` via env `SCALE` to adjust; default keeps
//! each dataset to a few million condensed edges so the harness finishes in
//! minutes). DNF semantics: representations whose construction would exceed
//! the configured budget are reported as `DNF`, mirroring the paper.

use graphgen_algo::{bfs, degrees, pagerank, PageRankConfig};
use graphgen_bench::{extract_cdup, ms, row, time};
use graphgen_datagen::{
    layered_database, single_layer_database, tpch_like, LayeredConfig, SingleLayerConfig,
    TpchConfig,
};
use graphgen_graph::{ExpandedGraph, GraphRep, RealId};

fn scale() -> f64 {
    std::env::var("SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

fn kernels<G: GraphRep + Sync>(g: &G) -> (String, String, String) {
    let (_, td) = time(|| degrees(g, 4));
    let (_, tp) = time(|| {
        pagerank(
            g,
            PageRankConfig {
                damping: 0.85,
                iterations: 5,
                threads: 4,
            },
        )
    });
    let src = RealId(g.vertices().next().map_or(0, |r| r.0));
    let (_, tb) = time(|| bfs(g, src));
    (ms(td), ms(tp), ms(tb))
}

fn main() {
    let s = scale();
    println!("Table 3: large datasets (scale factor {s}; SCALE env to change)\n");
    let widths = [12, 8, 12, 12, 12, 14, 14];
    row(
        &[
            "dataset",
            "rep",
            "degree(ms)",
            "pr(ms)",
            "bfs(ms)",
            "mem(bytes)",
            "dedup(ms)",
        ]
        .map(String::from),
        &widths,
    );
    let datasets: Vec<(&str, graphgen_reldb::Database, String)> = vec![
        {
            let (db, q) = layered_database(LayeredConfig::layered_1(s));
            ("Layered_1", db, q)
        },
        {
            let (db, q) = layered_database(LayeredConfig::layered_2(s));
            ("Layered_2", db, q)
        },
        {
            let (db, q) = single_layer_database(SingleLayerConfig::single_1(s));
            ("Single_1", db, q)
        },
        {
            let (db, q) = single_layer_database(SingleLayerConfig::single_2(s));
            ("Single_2", db, q)
        },
        {
            let db = tpch_like(TpchConfig::default());
            (
                "TPCH",
                db,
                graphgen_datagen::relational::TPCH_COPURCHASE.to_string(),
            )
        },
    ];
    // DNF guard: skip EXP when the expansion would exceed this many edges.
    let exp_budget: u64 = 30_000_000;
    for (name, db, query) in datasets {
        let cdup = extract_cdup(&db, &query);
        // C-DUP row.
        let (d, p, b) = kernels(&cdup);
        row(
            &[
                name.to_string(),
                "C-DUP".into(),
                d,
                p,
                b,
                cdup.heap_bytes().to_string(),
                "-".into(),
            ],
            &widths,
        );
        // BITMAP row (BITMAP-2; flatten first if multi-layer for dedup time
        // fairness — bitmap2 itself handles multi-layer).
        let ((bmp, _), t_dedup) = time(|| graphgen_dedup::bitmap2(cdup.clone(), 4));
        let (d, p, b) = kernels(&bmp);
        row(
            &[
                name.to_string(),
                "BMP".into(),
                d,
                p,
                b,
                bmp.heap_bytes().to_string(),
                ms(t_dedup),
            ],
            &widths,
        );
        // EXP row (with DNF guard).
        let expanded_edges = cdup.expanded_edge_count();
        if expanded_edges > exp_budget {
            row(
                &[
                    name.to_string(),
                    "EXP".into(),
                    "DNF".into(),
                    "DNF".into(),
                    "DNF".into(),
                    format!(">{exp_budget} edges"),
                    "-".into(),
                ],
                &widths,
            );
        } else {
            let exp = ExpandedGraph::from_rep(&cdup);
            let (d, p, b) = kernels(&exp);
            row(
                &[
                    name.to_string(),
                    "EXP".into(),
                    d,
                    p,
                    b,
                    exp.heap_bytes().to_string(),
                    "-".into(),
                ],
                &widths,
            );
        }
    }
    println!("\npaper shape: EXP fastest when it fits but 1-2 orders of magnitude more memory");
    println!("(DNF on the densest datasets); BITMAP sits between C-DUP and EXP.");
}
