//! Breadth-first search (Fig. 11's single-threaded Graph-API kernel).
//!
//! BFS is *duplicate-insensitive*: it only cares about reachability, so it
//! can run directly on C-DUP — and it touches a small fraction of the graph
//! from one source, which is why the paper calls C-DUP "a good option" for
//! it (§6.5).

use graphgen_graph::{GraphRep, RealId};
use std::collections::VecDeque;

/// Distances (in hops) from `src`; `u32::MAX` marks unreachable or dead
/// vertices. Runs on the logical (deduplicated) neighbor relation.
pub fn bfs<G: GraphRep + ?Sized>(g: &G, src: RealId) -> Vec<u32> {
    let n = g.num_real_slots();
    let mut dist = vec![u32::MAX; n];
    if src.0 as usize >= n || !g.is_alive(src) {
        return dist;
    }
    dist[src.0 as usize] = 0;
    let mut queue = VecDeque::new();
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        let du = dist[u.0 as usize];
        g.for_each_neighbor(u, &mut |v| {
            if dist[v.0 as usize] == u32::MAX {
                dist[v.0 as usize] = du + 1;
                queue.push_back(v);
            }
        });
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{CondensedBuilder, ExpandedGraph};

    #[test]
    fn distances_on_a_path() {
        let edges = (0..4u32).flat_map(|i| [(i, i + 1), (i + 1, i)]);
        let g = ExpandedGraph::from_edges(5, edges);
        assert_eq!(bfs(&g, RealId(0)), vec![0, 1, 2, 3, 4]);
        assert_eq!(bfs(&g, RealId(2)), vec![2, 1, 0, 1, 2]);
    }

    #[test]
    fn unreachable_marked_max() {
        let g = ExpandedGraph::from_edges(4, [(0, 1), (1, 0)]);
        let d = bfs(&g, RealId(0));
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], u32::MAX);
        assert_eq!(d[3], u32::MAX);
    }

    #[test]
    fn works_on_condensed_with_duplicates() {
        let mut b = CondensedBuilder::new(5);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        b.clique(&[RealId(0), RealId(2)]); // duplicate path 0-2
        b.clique(&[RealId(2), RealId(3), RealId(4)]);
        let g = b.build();
        assert_eq!(bfs(&g, RealId(0)), vec![0, 1, 1, 2, 2]);
    }

    #[test]
    fn dead_source_returns_all_unreachable() {
        let mut g = ExpandedGraph::from_edges(3, [(0, 1), (1, 2)]);
        g.delete_vertex(RealId(0));
        let d = bfs(&g, RealId(0));
        assert!(d.iter().all(|&x| x == u32::MAX));
    }

    #[test]
    fn directed_distances() {
        // 0 -> 1 -> 2 but no way back.
        let g = ExpandedGraph::from_edges(3, [(0, 1), (1, 2)]);
        assert_eq!(bfs(&g, RealId(0)), vec![0, 1, 2]);
        assert_eq!(bfs(&g, RealId(2)), vec![u32::MAX, u32::MAX, 0]);
    }
}
