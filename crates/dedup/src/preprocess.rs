//! §4.2 Step 6 preprocessing: expand "cheap" virtual nodes.
//!
//! A virtual node with `in` incoming and `out` outgoing edges stores
//! `in + out` edges plus the node itself; replacing it with direct edges
//! costs `in * out`. If `in * out <= in + out + 1`, expansion does not grow
//! the graph, so the system inlines the node (this removes most degenerate
//! 1- and 2-member virtual nodes extraction produces). The paper implements
//! a multi-threaded version; here the *decision* phase runs in parallel
//! (std scoped threads) and the structural edits are applied serially,
//! which avoids the paper's "non-trivial concurrency issues" while keeping
//! the scan parallel.

use graphgen_common::parallel::{effective_threads, map_morsels};
use graphgen_graph::{CondensedGraph, GraphRep, VirtId};

/// Statistics of a preprocessing run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PreprocessStats {
    /// Virtual nodes examined.
    pub examined: usize,
    /// Virtual nodes expanded (inlined into direct edges).
    pub expanded: usize,
}

/// Expand every virtual node whose expansion does not increase the edge
/// count. Only single-layer virtual nodes (no virtual in- or out-edges) are
/// candidates — inlining an interior node of a multi-layer chain would
/// require virtual→virtual rewiring that never pays off under the formula.
///
/// `threads` controls the parallel decision scan (1 = serial).
pub fn expand_cheap_virtuals(g: &mut CondensedGraph, threads: usize) -> PreprocessStats {
    let n_virt = g.num_virtual();
    let in_index = g.real_in_index();
    // A virtual node is a candidate only if all its out-edges target reals
    // and no virtual node points at it.
    let mut has_virtual_parent = vec![false; n_virt];
    for v in 0..n_virt {
        for a in g.virt_out(VirtId(v as u32)) {
            if let Some(w) = a.as_virtual() {
                has_virtual_parent[w.0 as usize] = true;
            }
        }
    }
    let decide = |v: usize| -> bool {
        if has_virtual_parent[v] {
            return false;
        }
        let out_list = g.virt_out(VirtId(v as u32));
        if out_list.iter().any(|a| a.is_virtual()) {
            return false;
        }
        let inn = in_index[v].len();
        let out = out_list.len();
        inn * out <= inn + out + 1
    };

    let decisions: Vec<bool> = map_morsels(n_virt, effective_threads(threads, n_virt), |range| {
        range.map(&decide).collect::<Vec<_>>()
    })
    .concat();

    let mut expanded = 0;
    for (v, &doit) in decisions.iter().enumerate() {
        if doit {
            g.expand_virtual(VirtId(v as u32), &in_index[v]);
            expanded += 1;
        }
    }
    PreprocessStats {
        examined: n_virt,
        expanded,
    }
}

/// Decide whether to hand the user the expanded graph instead of a condensed
/// one (§6.5): expansion is advised when the expanded size is within
/// `threshold` (e.g. 1.2 = +20%) of the condensed stored size.
pub fn should_expand(g: &CondensedGraph, threshold: f64) -> bool {
    let condensed = g.stored_edge_count() as f64;
    let expanded = g.expanded_edge_count() as f64;
    condensed == 0.0 || expanded <= condensed * threshold
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{expand_to_edge_list, CondensedBuilder, RealId};

    #[test]
    fn two_member_virtuals_are_expanded() {
        // |I|=|O|=2: 2*2=4 <= 2+2+1=5 -> expand.
        let mut b = CondensedBuilder::new(4);
        b.clique(&[RealId(0), RealId(1)]);
        b.clique(&[RealId(2), RealId(3)]);
        let mut g = b.build();
        let before = expand_to_edge_list(&g);
        let stats = expand_cheap_virtuals(&mut g, 1);
        assert_eq!(stats.examined, 2);
        assert_eq!(stats.expanded, 2);
        assert_eq!(expand_to_edge_list(&g), before);
        assert_eq!(g.stored_virtual_count(), 0);
    }

    #[test]
    fn large_virtuals_are_kept() {
        // |I|=|O|=4: 16 > 9 -> keep.
        let mut b = CondensedBuilder::new(4);
        b.clique(&[RealId(0), RealId(1), RealId(2), RealId(3)]);
        let mut g = b.build();
        let stats = expand_cheap_virtuals(&mut g, 1);
        assert_eq!(stats.expanded, 0);
        assert_eq!(g.stored_virtual_count(), 1);
    }

    #[test]
    fn three_member_boundary_case() {
        // |I|=|O|=3: 9 > 7 -> keep.
        let mut b = CondensedBuilder::new(3);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let mut g = b.build();
        assert_eq!(expand_cheap_virtuals(&mut g, 1).expanded, 0);
    }

    #[test]
    fn asymmetric_fanout_expands() {
        // 1 source, 5 targets: 5 <= 7 -> expand.
        let mut b = CondensedBuilder::new(6);
        let v = b.add_virtual();
        b.real_to_virtual(RealId(0), v);
        for t in 1..6 {
            b.virtual_to_real(v, RealId(t));
        }
        let mut g = b.build();
        let before = expand_to_edge_list(&g);
        assert_eq!(expand_cheap_virtuals(&mut g, 1).expanded, 1);
        assert_eq!(expand_to_edge_list(&g), before);
    }

    #[test]
    fn multilayer_nodes_untouched() {
        let mut b = CondensedBuilder::new(2);
        let v1 = b.add_virtual();
        let v2 = b.add_virtual();
        b.real_to_virtual(RealId(0), v1);
        b.virtual_to_virtual(v1, v2);
        b.virtual_to_real(v2, RealId(1));
        let mut g = b.build();
        let before = expand_to_edge_list(&g);
        let stats = expand_cheap_virtuals(&mut g, 1);
        assert_eq!(stats.expanded, 0);
        assert_eq!(expand_to_edge_list(&g), before);
    }

    #[test]
    fn parallel_scan_matches_serial() {
        let mut b1 = CondensedBuilder::new(3000);
        for i in 0..1000u32 {
            b1.clique(&[RealId(3 * i), RealId(3 * i + 1)]);
            b1.clique(&[RealId(3 * i), RealId(3 * i + 1), RealId(3 * i + 2)]);
        }
        let mut g1 = b1.build();
        let mut g2 = g1.clone();
        let s1 = expand_cheap_virtuals(&mut g1, 1);
        let s2 = expand_cheap_virtuals(&mut g2, 4);
        assert_eq!(s1, s2);
        assert_eq!(expand_to_edge_list(&g1), expand_to_edge_list(&g2));
    }

    #[test]
    fn should_expand_thresholds() {
        let mut b = CondensedBuilder::new(3);
        b.clique(&[RealId(0), RealId(1), RealId(2)]);
        let g = b.build();
        // stored = 6, expanded = 6: equal -> expand at any threshold >= 1.
        assert!(should_expand(&g, 1.0));
        let mut b2 = CondensedBuilder::new(10);
        b2.clique(&[
            RealId(0),
            RealId(1),
            RealId(2),
            RealId(3),
            RealId(4),
            RealId(5),
            RealId(6),
            RealId(7),
            RealId(8),
            RealId(9),
        ]);
        let g2 = b2.build();
        // stored = 20, expanded = 90: don't expand at +20%.
        assert!(!should_expand(&g2, 1.2));
    }
}
