//! The incremental-maintenance oracle (the correctness contract of the
//! delta subsystem): for seeded random insert/delete batches on the
//! Appendix C.2 workloads, `GraphHandle::apply_delta` must yield a graph
//! whose canonical serialization is **byte-identical** to a from-scratch
//! extraction on the mutated database — at every tested thread count
//! (1/2/8), and also after the handle was converted to another
//! representation.

use graphgen::core::{ConvertOptions, GraphGen, GraphGenConfig, GraphHandle};
use graphgen::datagen::{
    layered_database, random_mutation, single_layer_database, LayeredConfig, MutationConfig,
    SingleLayerConfig,
};
use graphgen::graph::RepKind;
use graphgen::reldb::{Column, Database, Delta, Schema, Table, Value};

const THREADS: [usize; 3] = [1, 2, 8];

/// Condensed-path configuration: factor 0.0 pins the segmentation so the
/// re-extraction oracle plans identically however the statistics move.
fn cfg(threads: usize, incremental: bool) -> GraphGenConfig {
    GraphGenConfig::builder()
        .large_output_factor(0.0)
        .preprocess(false)
        .auto_expand_threshold(None)
        .threads(threads)
        .incremental(incremental)
        .build()
}

fn reextract(db: &Database, query: &str) -> Vec<u8> {
    GraphGen::with_config(db, cfg(1, false))
        .extract(query)
        .expect("oracle re-extraction")
        .canonical_bytes()
}

/// Drive `rounds` seeded mutation batches over `tables`, applying every
/// delta to one maintained handle per thread count (plus any converted
/// handles), asserting byte-identity against full re-extraction after each
/// round.
fn drive(
    db: &mut Database,
    query: &str,
    tables: &[(&str, usize, usize)], // (table, inserts, deletes) per round
    rounds: u64,
    converted: &[RepKind],
) {
    let mut handles: Vec<GraphHandle> = THREADS
        .iter()
        .map(|&t| {
            GraphGen::with_config(db, cfg(t, true))
                .extract(query)
                .expect("incremental extraction")
        })
        .collect();
    let opts = ConvertOptions::default();
    let mut converted: Vec<GraphHandle> = converted
        .iter()
        .map(|&k| handles[1].convert(k, &opts).expect("conversion"))
        .collect();
    // Initial state must already match.
    let fresh = reextract(db, query);
    for h in handles.iter().chain(converted.iter()) {
        assert_eq!(h.canonical_bytes(), fresh, "initial state diverges");
    }
    for round in 0..rounds {
        let mut deltas: Vec<Delta> = Vec::new();
        for (i, &(table, inserts, deletes)) in tables.iter().enumerate() {
            deltas.extend(
                random_mutation(
                    db,
                    table,
                    MutationConfig {
                        inserts,
                        deletes,
                        seed: 0xC0FFEE + round * 31 + i as u64,
                    },
                )
                .expect("mutation"),
            );
        }
        for delta in &deltas {
            // Clone-vs-scratch (the copy-on-write contract): apply the
            // delta to a *clone* first and assert the original handle is
            // bit-for-bit unmodified — chunk CoW must copy what it
            // touches, never write through a shared chunk — then apply to
            // the original and assert both evolved identically.
            for h in handles.iter_mut() {
                let before = h.canonical_bytes();
                let mut patched_clone = h.clone();
                patched_clone.apply_delta(delta).expect("apply to clone");
                assert_eq!(
                    h.canonical_bytes(),
                    before,
                    "round {round}: patching a clone mutated the original"
                );
                h.apply_delta(delta).expect("apply_delta");
                assert_eq!(
                    patched_clone.canonical_bytes(),
                    h.canonical_bytes(),
                    "round {round}: clone-then-patch diverged from patch-in-place"
                );
            }
            for h in converted.iter_mut() {
                h.apply_delta(delta).expect("apply_delta");
            }
        }
        let fresh = reextract(db, query);
        for (h, &t) in handles.iter().zip(THREADS.iter()) {
            assert_eq!(
                String::from_utf8(h.canonical_bytes()).unwrap(),
                String::from_utf8(fresh.clone()).unwrap(),
                "round {round}, {t} threads: patched graph diverges from re-extraction"
            );
        }
        for h in &converted {
            assert_eq!(
                String::from_utf8(h.canonical_bytes()).unwrap(),
                String::from_utf8(fresh.clone()).unwrap(),
                "round {round}, {} handle diverges from re-extraction",
                h.kind()
            );
        }
    }
}

#[test]
fn single_layer_random_batches() {
    let (mut db, query) = single_layer_database(SingleLayerConfig {
        rows: 2_000,
        selectivity: 0.15,
        seed: 41,
    });
    drive(
        &mut db,
        &query,
        &[("A", 40, 25), ("Entity", 5, 3)],
        4,
        &[RepKind::Dedup1, RepKind::Bitmap],
    );
}

#[test]
fn layered_multilayer_random_batches() {
    let (mut db, query) = layered_database(LayeredConfig {
        rows_a: 500,
        rows_b: 500,
        outer_selectivity: 0.12,
        inner_selectivity: 0.2,
        seed: 42,
    });
    drive(
        &mut db,
        &query,
        &[("A", 25, 15), ("B", 25, 15), ("Entity", 4, 2)],
        3,
        &[RepKind::Bitmap],
    );
}

#[test]
fn null_heavy_memberships() {
    // NULL join values must follow the condensed path's semantics (they
    // intern as a boundary value like any other) identically in the
    // incremental and from-scratch paths.
    let mut entity = Table::new(Schema::new(vec![Column::int("id")]));
    for e in 0..30 {
        entity.push_row(vec![Value::int(e)]).unwrap();
    }
    let mut a = Table::new(Schema::new(vec![Column::int("x"), Column::int("g")]));
    for i in 0..200i64 {
        let x = if i % 17 == 0 {
            Value::Null
        } else {
            Value::int(i % 30)
        };
        let g = if i % 11 == 0 {
            Value::Null
        } else {
            Value::int(i % 9)
        };
        a.push_row(vec![x, g]).unwrap();
    }
    let mut db = Database::new();
    db.register("Entity", entity).unwrap();
    db.register("A", a).unwrap();
    let query = "Nodes(ID) :- Entity(ID).\nEdges(ID1, ID2) :- A(ID1, G), A(ID2, G).";
    let mut handle = GraphGen::with_config(&db, cfg(2, true))
        .extract(query)
        .unwrap();
    assert_eq!(handle.canonical_bytes(), reextract(&db, query));
    // Mutate with NULL-bearing rows in both directions.
    let d1 = db
        .insert_rows(
            "A",
            vec![
                vec![Value::Null, Value::int(3)],
                vec![Value::int(7), Value::Null],
                vec![Value::int(8), Value::int(100)],
            ],
        )
        .unwrap();
    handle.apply_delta(&d1).unwrap();
    assert_eq!(handle.canonical_bytes(), reextract(&db, query));
    let d2 = db
        .delete_rows(
            "A",
            &[
                vec![Value::Null, Value::Null],
                vec![Value::int(7), Value::Null],
                vec![Value::Null, Value::int(3)],
            ],
        )
        .unwrap();
    handle.apply_delta(&d2).unwrap();
    assert_eq!(handle.canonical_bytes(), reextract(&db, query));
}

#[test]
fn default_planner_small_output_chain() {
    // A sparse co-occurrence under the *default* large-output factor plans
    // as a single small-output segment (direct edges, no virtual nodes);
    // deltas must maintain that shape too. The default factor is safe here
    // because the oracle re-extraction pins the same factor and the data
    // stays sparse throughout the run.
    let (mut db, query) = single_layer_database(SingleLayerConfig {
        rows: 1_500,
        selectivity: 0.9,
        seed: 43,
    });
    let mk = |db: &Database, incr: bool| {
        GraphGen::with_config(
            db,
            GraphGenConfig::builder()
                .preprocess(false)
                .auto_expand_threshold(None)
                .threads(2)
                .incremental(incr)
                .build(),
        )
        .extract(&query)
        .unwrap()
    };
    let mut handle = mk(&db, true);
    assert_eq!(
        handle.report().plans[0].segments.len(),
        1,
        "workload should plan as a single segment"
    );
    for round in 0..3u64 {
        let deltas = random_mutation(
            &mut db,
            "A",
            MutationConfig {
                inserts: 30,
                deletes: 30,
                seed: 7 + round,
            },
        )
        .unwrap();
        for d in &deltas {
            handle.apply_delta(d).unwrap();
        }
        let fresh = mk(&db, false);
        assert_eq!(
            handle.canonical_bytes(),
            fresh.canonical_bytes(),
            "round {round}"
        );
    }
}

/// Deeper clone-isolation property suite: arbitrary-seeded mutation
/// streams with a growing chain of pinned clones, every pin checked for
/// bit-stability after every batch. Requires the external `proptest` crate
/// — enable the `proptest-tests` feature in an environment with a
/// reachable registry (see Cargo.toml).
#[cfg(feature = "proptest-tests")]
mod deep {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]
        #[test]
        fn clone_chains_stay_isolated(seed in any::<u64>(), rounds in 1usize..5) {
            let (mut db, query) = single_layer_database(SingleLayerConfig {
                rows: 600,
                selectivity: 0.2,
                seed,
            });
            let mut handle = GraphGen::with_config(&db, cfg(2, true))
                .extract(&query)
                .unwrap();
            // (pinned clone, bytes at pin time) — one pin per round, all
            // re-checked after every later batch.
            let mut pins: Vec<(GraphHandle, Vec<u8>)> = Vec::new();
            for round in 0..rounds as u64 {
                let bytes = handle.canonical_bytes();
                pins.push((handle.clone(), bytes));
                let deltas = random_mutation(
                    &mut db,
                    "A",
                    MutationConfig { inserts: 20, deletes: 12, seed: seed ^ round },
                )
                .unwrap();
                for d in &deltas {
                    handle.apply_delta(d).unwrap();
                }
                for (pin, at_pin) in &pins {
                    prop_assert_eq!(
                        &pin.canonical_bytes(),
                        at_pin,
                        "pinned clone mutated by a later patch"
                    );
                }
            }
            prop_assert_eq!(handle.canonical_bytes(), reextract(&db, &query));
        }
    }
}
