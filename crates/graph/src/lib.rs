//! `graphgen-graph` — the in-memory graph representations of the GraphGen
//! paper (§4).
//!
//! The extraction layer produces a **condensed** graph: real nodes plus
//! *virtual nodes* standing for join-attribute values, such that a logical
//! edge `u → v` exists iff there is a directed path from `u` (as a source)
//! to `v` (as a target) through virtual nodes. This crate implements the
//! five ways the paper stores and operates on that graph:
//!
//! | Representation | Module | Duplication handling |
//! |---|---|---|
//! | C-DUP | [`cdup`] | on-the-fly hashset during iteration |
//! | EXP | [`exp`] | expanded, no virtual nodes |
//! | DEDUP-1 | [`dedup1`] | structurally at most one path per pair |
//! | DEDUP-2 | [`dedup2`] | single-layer symmetric w/ virtual-virtual edges |
//! | BITMAP | [`bitmap_rep`] | per-(source, virtual node) bitmaps mask edges |
//!
//! All of them implement [`GraphRep`], the Rust rendering of the paper's
//! 7-operation Java graph API, with lazy vertex deletion (plus
//! `revive_vertex`, the undo incremental maintenance uses when a node key
//! reappears). Logical edges are **directed** and never include self-loops
//! (co-occurrence extraction produces trivial self-paths `u → V → u`; all
//! representations and the equivalence tests uniformly exclude them).

#![warn(missing_docs)]

pub mod api;
pub mod bitmap_rep;
pub mod builder;
pub mod cdup;
pub mod chunk;
pub mod dedup1;
pub mod dedup2;
pub mod exp;
pub mod ids;
pub mod properties;
pub mod snapshot;
pub mod validate;

pub use api::{GraphRep, RepKind};
pub use bitmap_rep::BitmapGraph;
pub use builder::CondensedBuilder;
pub use cdup::CondensedGraph;
pub use chunk::{AdjChunk, ChunkedAdj, CHUNK_LEN};
pub use dedup1::Dedup1Graph;
pub use dedup2::Dedup2Graph;
pub use exp::ExpandedGraph;
pub use ids::{Adj, RealId, VirtId};
pub use properties::{PropValue, Properties};

/// Collect the full expanded (deduplicated, self-loop-free) directed edge
/// set of any representation, sorted. This is the semantic ground truth the
/// property tests compare across representations.
pub fn expand_to_edge_list<G: GraphRep + ?Sized>(g: &G) -> Vec<(u32, u32)> {
    let mut edges = Vec::new();
    for u in g.vertices() {
        g.for_each_neighbor(u, &mut |v| edges.push((u.0, v.0)));
    }
    edges.sort_unstable();
    edges.dedup(); // representations should not emit duplicates; be safe
    edges
}
