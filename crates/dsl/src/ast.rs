//! Abstract syntax tree of the extraction DSL.

use std::fmt;

/// A term in a head or body atom.
#[derive(Debug, Clone, PartialEq)]
pub enum Term {
    /// A variable (joins on repeated occurrence).
    Var(String),
    /// An integer constant (selection predicate).
    Int(i64),
    /// A string constant (selection predicate).
    Str(String),
    /// `_`: ignore this attribute.
    Wildcard,
}

impl Term {
    /// The variable name, if this is a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(name) => Some(name),
            _ => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(name) => write!(f, "{name}"),
            Term::Int(v) => write!(f, "{v}"),
            Term::Str(s) => write!(f, "'{s}'"),
            Term::Wildcard => write!(f, "_"),
        }
    }
}

/// Which special head a rule defines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeadKind {
    /// `Nodes(ID, props...)`
    Nodes,
    /// `Edges(ID1, ID2, props...)`
    Edges,
}

/// A body atom: `Relation(t1, ..., tk)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Relation (base table) name.
    pub relation: String,
    /// Argument terms, positional.
    pub args: Vec<Term>,
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}(", self.relation)?;
        for (i, t) in self.args.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

/// One rule: `Head(args) :- body.`
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// `Nodes` or `Edges`.
    pub head: HeadKind,
    /// Head argument terms.
    pub head_args: Vec<Term>,
    /// Conjunctive body.
    pub body: Vec<Atom>,
}

/// A whole extraction program.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Program {
    /// Rules in source order.
    pub rules: Vec<Rule>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip_shape() {
        let atom = Atom {
            relation: "AuthorPub".into(),
            args: vec![Term::Var("ID1".into()), Term::Int(3), Term::Wildcard],
        };
        assert_eq!(atom.to_string(), "AuthorPub(ID1, 3, _)");
    }

    #[test]
    fn as_var() {
        assert_eq!(Term::Var("X".into()).as_var(), Some("X"));
        assert_eq!(Term::Int(1).as_var(), None);
        assert_eq!(Term::Wildcard.as_var(), None);
    }
}
