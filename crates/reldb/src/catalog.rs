//! The database catalog: named tables plus the per-column statistics that
//! drive the extraction planner's large-output-join test (§4.2 Step 2).
//!
//! PostgreSQL exposes `n_distinct` in `pg_stats`; we keep **exact** distinct
//! counts by maintaining, per column, a value → occurrence-count map. The
//! map is built once at registration time (the ANALYZE step) and then
//! updated *incrementally* by every mutation batch
//! ([`Database::insert_rows`] / [`Database::delete_rows`]): an insert bumps
//! the counts of its cell values, a delete decrements them, and a value
//! leaves the distinct set when its count returns to zero. The DB-side cost
//! of a mutation batch is therefore proportional to the batch — never
//! `O(table)` — matching the delta-bound contract of the graph-side
//! incremental maintenance. Mutations are logged as typed [`Delta`]s for
//! that maintenance layer.

use crate::delta::{Delta, DeltaOp};
use crate::error::{DbError, DbResult};
use crate::intern::{Interner, Vid};
use crate::table::Table;
use crate::value::Value;
use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_common::{ByteSize, FxHashMap, FxHasher};
use std::hash::Hasher;

/// Hash a row of interned ids (the whole-row index key). Hashing dense
/// `u32`s instead of owned values keeps the delete path off the heap.
fn hash_vids(vids: &[Vid]) -> u64 {
    let mut h = FxHasher::default();
    for &v in vids {
        h.write_u32(v);
    }
    h.finish()
}

/// Statistics for one column, analogous to a `pg_stats` row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ColumnStats {
    /// Total rows in the table.
    pub row_count: usize,
    /// Exact number of distinct values in the column.
    pub n_distinct: usize,
}

impl ColumnStats {
    /// Average number of rows per distinct value of this column.
    pub fn avg_fanout(&self) -> f64 {
        if self.n_distinct == 0 {
            0.0
        } else {
            self.row_count as f64 / self.n_distinct as f64
        }
    }
}

/// Maintained statistics state of one table: a [`Vid`] → occurrence-count
/// map per column (the exact-`n_distinct` index the planner reads through
/// [`ColumnStats`]), plus a whole-row hash → occurrence-count map that
/// lets [`Database::delete_rows`] reject absent rows without scanning
/// (hash collisions only make the map over-report, so it is advisory —
/// presence is always confirmed cell-wise by the scan).
///
/// Keying by interned id instead of owned [`Value`] means the statistics
/// never clone a string: their footprint is a few machine words per
/// distinct value, however large the payloads are (the payload lives once,
/// in the database dictionary).
#[derive(Debug, Clone, Default)]
struct TableCounts {
    columns: Vec<FxHashMap<Vid, u64>>,
    row_hashes: FxHashMap<u64, u64>,
}

impl TableCounts {
    /// Full scan of `table` (registration-time ANALYZE), acquiring one
    /// dictionary reference per live cell occurrence.
    fn analyze(table: &Table, dict: &mut Interner) -> Self {
        let arity = table.schema().arity();
        let mut counts = Self {
            columns: vec![FxHashMap::default(); arity],
            row_hashes: FxHashMap::default(),
        };
        let mut vids = vec![0 as Vid; arity];
        for r in 0..table.physical_rows() {
            if !table.is_live(r) {
                continue;
            }
            for (c, vid) in vids.iter_mut().enumerate() {
                *vid = dict.acquire(table.cell(r, c));
            }
            counts.insert(&vids);
        }
        counts
    }

    /// Bump counts for one inserted row (already interned).
    fn insert(&mut self, vids: &[Vid]) {
        for (col, &v) in self.columns.iter_mut().zip(vids) {
            *col.entry(v).or_insert(0) += 1;
        }
        *self.row_hashes.entry(hash_vids(vids)).or_insert(0) += 1;
    }

    /// Decrement counts for one deleted row, dropping exhausted values.
    fn delete(&mut self, vids: &[Vid]) {
        for (col, v) in self.columns.iter_mut().zip(vids) {
            if let Some(n) = col.get_mut(v) {
                *n -= 1;
                if *n == 0 {
                    col.remove(v);
                }
            }
        }
        let h = hash_vids(vids);
        if let Some(n) = self.row_hashes.get_mut(&h) {
            *n -= 1;
            if *n == 0 {
                self.row_hashes.remove(&h);
            }
        }
    }

    /// Rows currently sharing this whole-row hash (0 = definitely absent).
    fn rows_with_hash(&self, h: u64) -> u64 {
        self.row_hashes.get(&h).copied().unwrap_or(0)
    }

    fn n_distinct(&self, idx: usize) -> usize {
        self.columns.get(idx).map_or(0, FxHashMap::len)
    }
}

/// A named collection of tables with statistics and a shared value
/// dictionary.
#[derive(Debug, Default)]
pub struct Database {
    tables: FxHashMap<String, Table>,
    counts: FxHashMap<String, TableCounts>,
    /// The database-wide value dictionary: every live cell occurrence holds
    /// one reference, so the dictionary's live set is exactly the distinct
    /// values currently stored in some table.
    dict: Interner,
}

impl Database {
    /// New empty database.
    pub fn new() -> Self {
        Self {
            tables: FxHashMap::default(),
            counts: FxHashMap::default(),
            dict: Interner::new(),
        }
    }

    /// The database's value dictionary (read-only).
    pub fn dict(&self) -> &Interner {
        &self.dict
    }

    /// Heap bytes held by the maintained statistics maps alone — excludes
    /// table storage and the dictionary. These are `Vid`-keyed, so the
    /// number must not scale with value payload size (asserted by the
    /// `catalog_bytes` test against the counting allocator).
    pub fn stats_heap_bytes(&self) -> usize {
        self.counts
            .values()
            .map(|t| {
                t.columns
                    .iter()
                    .map(|col| col.capacity() * std::mem::size_of::<(Vid, u64)>())
                    .sum::<usize>()
                    + t.row_hashes.capacity() * std::mem::size_of::<(u64, u64)>()
            })
            .sum()
    }

    /// Register `table` under `name`, computing statistics for every column
    /// (the one-time ANALYZE step; mutations afterwards maintain the
    /// statistics incrementally).
    pub fn register(&mut self, name: impl Into<String>, table: Table) -> DbResult<()> {
        let name = name.into();
        if self.tables.contains_key(&name) {
            return Err(DbError::DuplicateTable(name));
        }
        self.counts
            .insert(name.clone(), TableCounts::analyze(&table, &mut self.dict));
        self.tables.insert(name, table);
        Ok(())
    }

    /// Append `rows` to table `name`, returning the [`Delta`] log of the
    /// mutation. Every row is validated against the schema **before** any is
    /// applied, so a failed call leaves the table untouched. Column
    /// statistics are recomputed afterwards.
    pub fn insert_rows(&mut self, name: &str, rows: Vec<Vec<Value>>) -> DbResult<Delta> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        for row in &rows {
            table.schema().check_row(row)?;
        }
        let counts = self
            .counts
            .get_mut(name)
            .expect("registered table has counts");
        let mut delta = Delta::new(name);
        table.reserve(rows.len());
        let mut vids = Vec::new();
        for row in rows {
            vids.clear();
            vids.extend(row.iter().map(|v| self.dict.acquire(v)));
            counts.insert(&vids);
            table.push_row(row.clone()).expect("row pre-validated");
            delta.push(row, DeltaOp::Insert);
        }
        Ok(delta)
    }

    /// Delete one occurrence of each of `rows` from table `name` (bag
    /// semantics: a row requested twice removes two occurrences), preserving
    /// the order of surviving rows. Requested rows that are not present are
    /// ignored — the returned [`Delta`] only logs rows actually removed, so
    /// deleting a never-inserted row yields an empty delta. Column
    /// statistics are recomputed afterwards.
    ///
    /// Requested rows are first checked against the maintained whole-row
    /// hash index: a batch of absent rows (common under random churn) is a
    /// true `O(batch)` no-op with **no scan at all**. When present rows
    /// remain, the scan probes a hash of each table row computed cell-wise
    /// (no row materialization) and stops as soon as every *satisfiable*
    /// occurrence has been found (the hash index bounds how many can
    /// match, so over-requested counts don't force a full pass).
    /// Statistics are decremented per removed row, so the statistics cost
    /// tracks the delta.
    pub fn delete_rows(&mut self, name: &str, rows: &[Vec<Value>]) -> DbResult<Delta> {
        let table = self
            .tables
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))?;
        for row in rows {
            table.schema().check_row(row)?;
        }
        let counts = self.counts.get(name).expect("registered table has counts");
        // Resolve each requested row to interned ids and group by hash,
        // keeping a remaining count per distinct row (bag semantics). A row
        // with any cell absent from the dictionary is stored nowhere and is
        // dropped with no scan; so are hashes the whole-row index provably
        // holds no row for. For the rest, the table can match at most
        // `rows_with_hash` occurrences, whatever was requested.
        let mut by_hash: FxHashMap<u64, Vec<(Vec<Vid>, u32)>> = FxHashMap::default();
        for row in rows {
            let Some(vids) = row
                .iter()
                .map(|v| self.dict.lookup(v))
                .collect::<Option<Vec<Vid>>>()
            else {
                continue;
            };
            let h = hash_vids(&vids);
            if counts.rows_with_hash(h) == 0 {
                continue;
            }
            let candidates = by_hash.entry(h).or_default();
            match candidates.iter_mut().find(|(want, _)| *want == vids) {
                Some((_, count)) => *count += 1,
                None => candidates.push((vids, 1)),
            }
        }
        let mut remaining = 0u64;
        for (h, candidates) in &by_hash {
            let requested: u64 = candidates.iter().map(|(_, c)| u64::from(*c)).sum();
            remaining += requested.min(counts.rows_with_hash(*h));
        }
        let mut delta = Delta::new(name);
        if remaining == 0 {
            return Ok(delta);
        }
        let arity = table.schema().arity();
        let mut matched: Vec<u32> = Vec::new();
        let mut row_vids = vec![0 as Vid; arity];
        for r in 0..table.physical_rows() {
            if remaining == 0 {
                break;
            }
            if !table.is_live(r) {
                continue;
            }
            for (c, vid) in row_vids.iter_mut().enumerate() {
                *vid = self
                    .dict
                    .lookup(table.cell(r, c))
                    .expect("live cell is interned");
            }
            let h = hash_vids(&row_vids);
            let Some(candidates) = by_hash.get_mut(&h) else {
                continue;
            };
            for (want, count) in candidates.iter_mut() {
                if *count > 0 && *want == row_vids {
                    *count -= 1;
                    remaining -= 1;
                    matched.push(r as u32);
                    delta.push(table.row(r), DeltaOp::Delete);
                    break;
                }
            }
        }
        if !delta.is_empty() {
            // O(batch): tombstone the matched slots (compaction is
            // amortized), then decrement statistics and drop dictionary
            // references per removed occurrence.
            table.delete_physical_rows(&matched);
            let counts = self
                .counts
                .get_mut(name)
                .expect("registered table has counts");
            for row in delta.rows() {
                let vids: Vec<Vid> = row
                    .values
                    .iter()
                    .map(|v| self.dict.lookup(v).expect("deleted cell was interned"))
                    .collect();
                counts.delete(&vids);
                for &vid in &vids {
                    self.dict.release(vid);
                }
            }
        }
        Ok(delta)
    }

    /// Look up a table by name.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.tables
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_string()))
    }

    /// True if a table with this name exists.
    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    /// Statistics for the `col`-th column of `table` (the `pg_stats`
    /// lookup), read from the incrementally maintained value-count maps.
    pub fn column_stats(&self, table: &str, col: usize) -> DbResult<ColumnStats> {
        let counts = self
            .counts
            .get(table)
            .ok_or_else(|| DbError::UnknownTable(table.to_string()))?;
        if col >= counts.columns.len() {
            return Err(DbError::UnknownColumn {
                table: table.to_string(),
                column: format!("#{col}"),
            });
        }
        Ok(ColumnStats {
            row_count: self.tables[table].num_rows(),
            n_distinct: counts.n_distinct(col),
        })
    }

    /// Statistics by column name.
    pub fn column_stats_by_name(&self, table: &str, column: &str) -> DbResult<ColumnStats> {
        let t = self.table(table)?;
        let idx = t
            .schema()
            .index_of(column)
            .ok_or_else(|| DbError::UnknownColumn {
                table: table.to_string(),
                column: column.to_string(),
            })?;
        self.column_stats(table, idx)
    }

    /// Names of all registered tables (unordered).
    pub fn table_names(&self) -> impl Iterator<Item = &str> {
        self.tables.keys().map(String::as_str)
    }

    /// Total rows across all tables.
    pub fn total_rows(&self) -> usize {
        self.tables.values().map(Table::num_rows).sum()
    }

    /// Append the binary encoding of the whole database: the value
    /// dictionary first (slots, refcounts, free list — so a decoded
    /// database continues allocating identical `Vid`s), then table count,
    /// then each table (sorted by name for deterministic bytes) as name +
    /// [`Table::encode_into`]. Statistics are **not** stored — they are
    /// rebuilt on decode by resolving each cell against the decoded
    /// dictionary (lookup-only, never re-acquiring: the persisted
    /// refcounts already account for every live occurrence).
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        self.dict.encode_into(out);
        let mut names: Vec<&String> = self.tables.keys().collect();
        names.sort();
        codec::put_len(out, names.len());
        for name in names {
            codec::put_str(out, name);
            self.tables[name.as_str()].encode_into(out);
        }
    }

    /// Decode a database (inverse of [`Database::encode_into`]),
    /// rebuilding per-table statistics against the decoded dictionary. A
    /// cell value missing from the dictionary is a hard codec error — it
    /// means the snapshot's dictionary and tables disagree.
    pub fn decode(r: &mut Reader<'_>) -> Result<Database, CodecError> {
        let dict = Interner::decode(r)?;
        let n = r.len()?;
        let mut db = Database {
            tables: FxHashMap::default(),
            counts: FxHashMap::default(),
            dict,
        };
        for _ in 0..n {
            let at = r.pos();
            let name = r.str()?.to_string();
            if db.tables.contains_key(&name) {
                return Err(CodecError::invalid(at, format!("duplicate table `{name}`")));
            }
            let table = Table::decode(r)?;
            let arity = table.schema().arity();
            let mut counts = TableCounts {
                columns: vec![FxHashMap::default(); arity],
                row_hashes: FxHashMap::default(),
            };
            let mut vids = vec![0 as Vid; arity];
            for row in 0..table.num_rows() {
                for (c, vid) in vids.iter_mut().enumerate() {
                    *vid = db.dict.lookup(table.cell(row, c)).ok_or_else(|| {
                        CodecError::invalid(at, "table cell missing from dictionary")
                    })?;
                }
                counts.insert(&vids);
            }
            db.counts.insert(name.clone(), counts);
            db.tables.insert(name, table);
        }
        Ok(db)
    }
}

impl ByteSize for Database {
    fn heap_bytes(&self) -> usize {
        let count_bytes: usize = self
            .counts
            .values()
            .flat_map(|t| t.columns.iter())
            .map(|col| col.capacity() * std::mem::size_of::<(Vid, u64)>())
            .sum();
        self.tables.values().map(Table::heap_bytes).sum::<usize>()
            + count_bytes
            + self.dict.heap_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};
    use crate::value::Value;

    fn sample_db() -> Database {
        let mut t = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        for (a, p) in [(1, 10), (2, 10), (3, 11), (1, 11), (2, 12)] {
            t.push_row(vec![Value::int(a), Value::int(p)]).unwrap();
        }
        let mut db = Database::new();
        db.register("AuthorPub", t).unwrap();
        db
    }

    #[test]
    fn register_and_lookup() {
        let db = sample_db();
        assert!(db.has_table("AuthorPub"));
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 5);
        assert!(db.table("Missing").is_err());
        assert_eq!(db.total_rows(), 5);
    }

    #[test]
    fn duplicate_registration_rejected() {
        let mut db = sample_db();
        let t = Table::new(Schema::new(vec![Column::int("x")]));
        assert!(matches!(
            db.register("AuthorPub", t),
            Err(DbError::DuplicateTable(_))
        ));
    }

    #[test]
    fn stats_are_exact() {
        let db = sample_db();
        let aid = db.column_stats_by_name("AuthorPub", "aid").unwrap();
        assert_eq!(aid.row_count, 5);
        assert_eq!(aid.n_distinct, 3);
        let pid = db.column_stats_by_name("AuthorPub", "pid").unwrap();
        assert_eq!(pid.n_distinct, 3);
        assert!((pid.avg_fanout() - 5.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn unknown_column_stats() {
        let db = sample_db();
        assert!(matches!(
            db.column_stats_by_name("AuthorPub", "nope"),
            Err(DbError::UnknownColumn { .. })
        ));
    }

    #[test]
    fn insert_rows_logs_and_refreshes_stats() {
        let mut db = sample_db();
        let delta = db
            .insert_rows(
                "AuthorPub",
                vec![
                    vec![Value::int(7), Value::int(10)],
                    vec![Value::int(8), Value::int(13)],
                ],
            )
            .unwrap();
        assert_eq!(delta.len(), 2);
        assert!(delta.rows().iter().all(|r| r.op == DeltaOp::Insert));
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 7);
        let aid = db.column_stats_by_name("AuthorPub", "aid").unwrap();
        assert_eq!(aid.row_count, 7);
        assert_eq!(aid.n_distinct, 5); // 1,2,3 + 7,8
    }

    #[test]
    fn insert_rows_is_atomic_on_bad_row() {
        let mut db = sample_db();
        let err = db
            .insert_rows(
                "AuthorPub",
                vec![
                    vec![Value::int(7), Value::int(10)],
                    vec![Value::str("oops"), Value::int(10)],
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        // Nothing was applied.
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 5);
    }

    #[test]
    fn delete_rows_removes_first_occurrence_and_skips_absent() {
        let mut db = sample_db();
        let delta = db
            .delete_rows(
                "AuthorPub",
                &[
                    vec![Value::int(1), Value::int(10)],
                    vec![Value::int(99), Value::int(99)], // never inserted
                ],
            )
            .unwrap();
        // Only the present row is logged; the absent one is a no-op.
        assert_eq!(delta.len(), 1);
        assert_eq!(delta.rows()[0].op, DeltaOp::Delete);
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 4);
        let aid = db.column_stats_by_name("AuthorPub", "aid").unwrap();
        assert_eq!(aid.row_count, 4);
        // Deleting a fully absent batch yields an empty delta.
        let noop = db
            .delete_rows("AuthorPub", &[vec![Value::int(99), Value::int(99)]])
            .unwrap();
        assert!(noop.is_empty());
    }

    #[test]
    fn delete_rows_bag_semantics() {
        let mut db = Database::new();
        let mut t = Table::new(Schema::new(vec![Column::int("x")]));
        for v in [5, 5, 5] {
            t.push_row(vec![Value::int(v)]).unwrap();
        }
        db.register("T", t).unwrap();
        // Requesting the same row twice removes exactly two occurrences.
        let delta = db
            .delete_rows("T", &[vec![Value::int(5)], vec![Value::int(5)]])
            .unwrap();
        assert_eq!(delta.len(), 2);
        assert_eq!(db.table("T").unwrap().num_rows(), 1);
    }

    #[test]
    fn delete_rows_validates_schema() {
        let mut db = sample_db();
        // Wrong arity is a typed error, matching insert_rows, not a silent
        // no-op.
        let err = db
            .delete_rows("AuthorPub", &[vec![Value::int(1)]])
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        let err = db
            .delete_rows("AuthorPub", &[vec![Value::str("x"), Value::int(10)]])
            .unwrap_err();
        assert!(matches!(err, DbError::SchemaMismatch(_)));
        assert_eq!(db.table("AuthorPub").unwrap().num_rows(), 5);
    }

    #[test]
    fn mutations_on_unknown_table_error() {
        let mut db = sample_db();
        assert!(db.insert_rows("Nope", vec![]).is_err());
        assert!(db.delete_rows("Nope", &[]).is_err());
    }

    /// The incrementally maintained `n_distinct` must match a from-scratch
    /// recount after any interleaving of inserts and deletes, including
    /// values whose occurrence count returns to zero and comes back.
    #[test]
    fn incremental_stats_match_full_recount() {
        let mut db = sample_db();
        let mut rng = graphgen_common::SplitMix64::new(0xC0DE);
        for _ in 0..40 {
            if rng.next_below(2) == 0 {
                let rows: Vec<Vec<Value>> = (0..rng.next_below(4) + 1)
                    .map(|_| {
                        vec![
                            Value::int(rng.next_below(6) as i64),
                            Value::int(rng.next_below(4) as i64 + 10),
                        ]
                    })
                    .collect();
                db.insert_rows("AuthorPub", rows).unwrap();
            } else {
                let requests: Vec<Vec<Value>> = (0..rng.next_below(3) + 1)
                    .map(|_| {
                        vec![
                            Value::int(rng.next_below(6) as i64),
                            Value::int(rng.next_below(4) as i64 + 10),
                        ]
                    })
                    .collect();
                db.delete_rows("AuthorPub", &requests).unwrap();
            }
            let table = db.table("AuthorPub").unwrap();
            for idx in 0..table.schema().arity() {
                let stats = db.column_stats("AuthorPub", idx).unwrap();
                assert_eq!(stats.row_count, table.num_rows());
                assert_eq!(
                    stats.n_distinct,
                    table.distinct_count(idx),
                    "column {idx} diverged from exact recount"
                );
            }
        }
    }

    #[test]
    fn stats_survive_distinct_exhaustion() {
        let mut db = Database::new();
        let mut t = Table::new(Schema::new(vec![Column::int("x")]));
        t.push_row(vec![Value::int(1)]).unwrap();
        db.register("T", t).unwrap();
        db.delete_rows("T", &[vec![Value::int(1)]]).unwrap();
        assert_eq!(db.column_stats_by_name("T", "x").unwrap().n_distinct, 0);
        db.insert_rows("T", vec![vec![Value::int(1)], vec![Value::int(1)]])
            .unwrap();
        assert_eq!(db.column_stats_by_name("T", "x").unwrap().n_distinct, 1);
        assert_eq!(db.column_stats_by_name("T", "x").unwrap().row_count, 2);
    }

    #[test]
    fn database_codec_roundtrip() {
        let mut db = sample_db();
        let mut names = Table::new(Schema::new(vec![Column::int("id"), Column::str("s")]));
        names
            .push_row(vec![Value::int(1), Value::str("a\tb")])
            .unwrap();
        names.push_row(vec![Value::Null, Value::Null]).unwrap();
        db.register("Names", names).unwrap();
        let mut bytes = Vec::new();
        db.encode_into(&mut bytes);
        let mut r = graphgen_common::Reader::new(&bytes);
        let back = Database::decode(&mut r).unwrap();
        assert!(r.is_empty());
        let mut names: Vec<&str> = back.table_names().collect();
        names.sort_unstable();
        assert_eq!(names, vec!["AuthorPub", "Names"]);
        for name in names {
            let a = db.table(name).unwrap();
            let b = back.table(name).unwrap();
            assert_eq!(a.schema(), b.schema());
            assert_eq!(a.num_rows(), b.num_rows());
            for row in 0..a.num_rows() {
                assert_eq!(a.row(row), b.row(row));
            }
            for idx in 0..a.schema().arity() {
                assert_eq!(
                    db.column_stats(name, idx).unwrap(),
                    back.column_stats(name, idx).unwrap()
                );
            }
        }
        // Encoding is deterministic (sorted table order).
        let mut again = Vec::new();
        db.encode_into(&mut again);
        assert_eq!(bytes, again);
    }
}
