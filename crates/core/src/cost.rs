//! Database-bound facade over the unified statistics-driven cost model.
//!
//! The engine itself lives in [`graphgen_dsl::cost`] (one implementation
//! of the §4.2 `|L|·|R|/d` test, full-plan enumeration, fingerprints) so
//! the `W103`/`W105` lints — which cannot depend on this crate — run the
//! exact same arithmetic as the planner. This module binds it to a live
//! [`Database`]: statistics come from [`crate::catalog_view`], and a whole
//! extraction spec is costed at once into an [`Explanation`] — the
//! payload behind `GraphGen::explain`, the `graphgen-check --explain`
//! plan trees, and the serve layer's `EXPLAIN` verb / drift detector.

pub use graphgen_dsl::cost::{
    cost_with_cuts, estimate_chain, join_output, plan_fingerprint, render_explain, render_unknown,
    segments_of, AtomEstimate, ChainCost, JoinEstimate, PlanFingerprint,
};

use graphgen_dsl::GraphSpec;
use graphgen_reldb::{Database, DbResult};
use std::fmt;

/// The cost analysis of every `Edges` chain in a spec against one
/// statistics snapshot. `Display` renders the golden-locked plan trees.
#[derive(Debug, Clone)]
pub struct Explanation {
    /// One analysis per `Edges` chain, in rule order.
    pub chains: Vec<ChainCost>,
}

impl Explanation {
    /// Total estimated cost of the chosen plans across all chains.
    pub fn total_cost(&self) -> f64 {
        self.chains.iter().map(|c| c.cost).sum()
    }

    /// Total virtual-node layers across all chains.
    pub fn virtual_layers(&self) -> usize {
        self.chains.iter().map(|c| c.virtual_layers()).sum()
    }
}

impl fmt::Display for Explanation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, chain) in self.chains.iter().enumerate() {
            f.write_str(&render_explain(&format!("chain {}", i + 1), chain))?;
        }
        Ok(())
    }
}

/// Cost every `Edges` chain of `spec` against `db`'s live statistics —
/// pure catalog arithmetic, no table is scanned.
pub fn explain_spec(db: &Database, spec: &GraphSpec, factor: f64) -> DbResult<Explanation> {
    let mut chains = Vec::with_capacity(spec.edges.len());
    for chain in &spec.edges {
        chains.push(crate::planner::cost_chain(db, chain, factor)?);
    }
    Ok(Explanation { chains })
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_dsl::compile;
    use graphgen_reldb::{Column, Schema, Table, Value};

    fn db() -> Database {
        let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
        let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
        for a in 0..50i64 {
            author
                .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
                .unwrap();
        }
        for i in 0..1000i64 {
            ap.push_row(vec![Value::int(i % 50), Value::int(i % 100)])
                .unwrap();
        }
        let mut db = Database::new();
        db.register("Author", author).unwrap();
        db.register("AuthorPub", ap).unwrap();
        db
    }

    #[test]
    fn explain_spec_costs_every_chain_without_scanning() {
        let spec = compile(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).",
        )
        .unwrap();
        let ex = explain_spec(&db(), &spec, 2.0).unwrap();
        assert_eq!(ex.chains.len(), 1);
        // 1000·1000/100 = 10000 > 2·2000 -> one virtual layer.
        assert_eq!(ex.virtual_layers(), 1);
        assert!(ex.total_cost() > 0.0);
        let rendered = ex.to_string();
        assert!(
            rendered.contains("chain 1: AuthorPub ⋈ AuthorPub"),
            "{rendered}"
        );
        assert!(rendered.contains("fingerprint="), "{rendered}");
    }

    #[test]
    fn explain_spec_surfaces_unknown_tables_as_db_errors() {
        let spec = compile(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(A, B) :- Missing(A, P), Missing(B, P).",
        )
        .unwrap();
        assert!(explain_spec(&db(), &spec, 2.0).is_err());
    }
}
