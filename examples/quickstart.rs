//! Quickstart: extract a hidden co-author graph from relational tables and
//! run an algorithm on it — the paper's Fig. 1 flow.
//!
//! Run with: `cargo run --example quickstart`
//!
//! The region between the `[readme-quickstart:*]` markers is embedded
//! verbatim in the README's quickstart section; `tests/readme_sync.rs`
//! fails if the two ever diverge.

use graphgen::core::{serialize, AdvisorPolicy, ConvertOptions, GraphGen};
use graphgen::graph::GraphRep;
use graphgen::reldb::{Column, Database, Schema, Table, Value};

/// An in-memory database: authors and an author↔publication table
/// (the Fig. 1 toy DBLP instance).
fn sample_db() -> Database {
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for (id, name) in [
        (1, "Ada"),
        (2, "Barbara"),
        (3, "Grace"),
        (4, "Hedy"),
        (5, "Mary"),
    ] {
        author
            .push_row(vec![Value::int(id), Value::str(name)])
            .unwrap();
    }
    let mut author_pub = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for (aid, pid) in [
        (1, 1),
        (2, 1),
        (4, 1),
        (1, 2),
        (4, 2),
        (3, 3),
        (4, 3),
        (5, 3),
    ] {
        author_pub
            .push_row(vec![Value::int(aid), Value::int(pid)])
            .unwrap();
    }
    let mut db = Database::new();
    db.register("Author", author).unwrap();
    db.register("AuthorPub", author_pub).unwrap();
    db
}

fn main() {
    // [readme-quickstart:begin]
    // 1. A relational database (in-memory engine; authors ↔ publications).
    let db = sample_db();

    // 2. Declare the hidden graph in the Datalog DSL ([Q1] from the paper).
    let query = "
        Nodes(ID, Name) :- Author(ID, Name).
        Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).
    ";

    // 3. Extract. The result is a GraphHandle: the graph in whatever
    //    representation GraphGen chose, plus ids, properties, and the plan
    //    report. The handle itself implements the 7-operation graph API.
    let gg = GraphGen::new(&db);
    let graph = gg.extract(query).expect("extraction");
    println!(
        "extracted {} vertices, {} logical edges as {}",
        graph.num_vertices(),
        graph.expanded_edge_count(),
        graph.kind(),
    );

    // 4. Stay in your own key space — no raw internal ids needed.
    let coauthors = graph.neighbors_by_key(&Value::int(4)).unwrap();
    let name = graph.vertex_property(&Value::int(4), "Name").unwrap();
    println!("{name:?} -> {coauthors:?}");

    // 5. Convert between representations through one typed entry point; an
    //    infeasible request explains why instead of handing back None.
    let opts = ConvertOptions::default();
    let best = graph
        .convert_to_advised(&AdvisorPolicy::default(), &opts)
        .expect("advised conversions are always feasible");
    println!("advisor picked {}", best.kind());

    // 6. Algorithms take the handle directly, whatever it holds.
    let ranks = graphgen::algo::pagerank(&best, Default::default());
    println!(
        "max pagerank {:.4}",
        ranks.iter().cloned().fold(0.0, f64::max)
    );
    // [readme-quickstart:end]

    for sql in &graph.report().sql {
        println!("generated SQL: {sql}");
    }

    // Serialize for external tools (NetworkX-style edge list).
    let mut out = Vec::new();
    serialize::write_edge_list(&best, &mut out).unwrap();
    println!("\nedge list:\n{}", String::from_utf8(out).unwrap());
}
