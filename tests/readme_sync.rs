//! README ↔ quickstart lockstep: the README's quickstart code block must
//! be the verbatim (dedented) `[readme-quickstart:*]` region of
//! `examples/quickstart.rs`. Editing one without the other fails here.

use std::path::Path;

fn repo_file(rel: &str) -> String {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(root.join(rel)).unwrap_or_else(|e| panic!("read {rel}: {e}"))
}

/// The marked region of the example, with the common 4-space indentation
/// of `fn main`'s body stripped.
fn example_snippet() -> String {
    let src = repo_file("examples/quickstart.rs");
    let begin = src
        .find("// [readme-quickstart:begin]\n")
        .expect("begin marker in examples/quickstart.rs");
    let after_begin = begin + "// [readme-quickstart:begin]\n".len();
    let end = src
        .find("    // [readme-quickstart:end]")
        .expect("end marker in examples/quickstart.rs");
    let region = &src[after_begin..end];
    region
        .lines()
        .map(|l| l.strip_prefix("    ").unwrap_or(l))
        .collect::<Vec<_>>()
        .join("\n")
}

/// The fenced ```rust block right after the `<!-- quickstart:verbatim -->`
/// marker in the README.
fn readme_snippet() -> String {
    let readme = repo_file("README.md");
    let marker = readme
        .find("<!-- quickstart:verbatim -->")
        .expect("quickstart:verbatim marker in README.md");
    let rest = &readme[marker..];
    let open = rest.find("```rust\n").expect("```rust fence after marker");
    let body = &rest[open + "```rust\n".len()..];
    let close = body.find("\n```").expect("closing fence");
    body[..close].to_string()
}

#[test]
fn readme_quickstart_matches_example() {
    let example = example_snippet();
    let readme = readme_snippet();
    assert_eq!(
        readme.trim_end(),
        example.trim_end(),
        "README quickstart block and examples/quickstart.rs have diverged; \
         update both (the README embeds the marked region verbatim)"
    );
}

#[test]
fn readme_documents_the_threads_knob() {
    let readme = repo_file("README.md");
    assert!(
        readme.contains("GRAPHGEN_THREADS"),
        "README must document the GRAPHGEN_THREADS environment variable"
    );
}

#[test]
fn readme_links_the_docs() {
    let readme = repo_file("README.md");
    for doc in ["docs/ARCHITECTURE.md", "docs/DSL.md", "docs/GLOSSARY.md"] {
        assert!(readme.contains(doc), "README must link {doc}");
        assert!(
            Path::new(env!("CARGO_MANIFEST_DIR")).join(doc).exists(),
            "{doc} missing"
        );
    }
}
