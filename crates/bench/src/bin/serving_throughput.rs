//! Serving-layer throughput: N reader threads × 1 writer thread.
//!
//! Readers loop over random `neighbors_by_key` lookups against the current
//! published snapshot of a `GraphService` graph; the writer continuously
//! applies delta batches of a fixed size and publishes new versions. The
//! bench reports reads/sec at 1/2/8 reader threads (with and without the
//! writer), the writer's publish latency as a function of delta size, and
//! — the delta-bound-publish guard — publish latency at a **fixed 64-row
//! delta** across graphs growing 16× (10k/40k/160k base rows). With
//! `Arc`-chunked copy-on-write adjacency, that last curve must stay flat;
//! in `--quick` (CI) mode the bench **fails** if it grows superlinearly
//! with graph size (the scale-sweep methodology of
//! `incremental_extraction`, applied to the serving layer).
//!
//! Flags: `--quick` shrinks the dataset and measurement windows (CI smoke)
//! and turns the scale sweep into a hard regression gate: publish latency
//! must grow ≤ 2x across the 16x graph-size sweep, or — on runners whose
//! cache the large sweep overflows, where the ratio measures DRAM latency
//! rather than algorithm — the largest sweep's median must stay under an
//! absolute 750µs budget. An O(graph)-cost publish fails both arms.
//!
//! Every run also writes `BENCH_serving.json` to the working directory —
//! one record per measured op (`op`, `threads`, `p50_ns`, `p99_ns`,
//! `throughput`; the scale-sweep records additionally carry `peak_bytes`
//! and `live_bytes` from the counting allocator, charting publish memory
//! against graph size) — which CI uploads as an artifact; see
//! [`graphgen_bench::report`].

use graphgen_bench::report::BenchReport;
use graphgen_bench::{has_flag, row};
use graphgen_common::metrics::Histogram;
use graphgen_common::SplitMix64;
use graphgen_reldb::{Column, Database, Schema, Table, Value};
use graphgen_serve::{GraphService, TableMutation};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const Q: &str = "Nodes(ID, Name) :- Author(ID, Name). \
                 Edges(ID1, ID2) :- AuthorPub(ID1, P), AuthorPub(ID2, P).";

struct Workload {
    authors: i64,
    pubs: i64,
    memberships: usize,
    window: Duration,
}

fn build_service(w: &Workload, seed: u64) -> GraphService {
    let mut rng = SplitMix64::new(seed);
    let mut author = Table::new(Schema::new(vec![Column::int("id"), Column::str("name")]));
    for a in 1..=w.authors {
        author
            .push_row(vec![Value::int(a), Value::str(format!("a{a}"))])
            .expect("author row");
    }
    let mut ap = Table::new(Schema::new(vec![Column::int("aid"), Column::int("pid")]));
    for _ in 0..w.memberships {
        ap.push_row(vec![
            Value::int(rng.next_below(w.authors as u64) as i64 + 1),
            Value::int(rng.next_below(w.pubs as u64) as i64 + 1),
        ])
        .expect("membership row");
    }
    let mut db = Database::new();
    db.register("Author", author).expect("register");
    db.register("AuthorPub", ap).expect("register");
    let service = GraphService::in_memory(db);
    service.extract("g", Q).expect("extract");
    service
}

fn mutation(rng: &mut SplitMix64, w: &Workload, rows: usize) -> TableMutation {
    let mut inserts = Vec::with_capacity(rows);
    let mut deletes = Vec::new();
    for _ in 0..rows {
        let r = vec![
            Value::int(rng.next_below(w.authors as u64) as i64 + 1),
            Value::int(rng.next_below(w.pubs as u64) as i64 + 1),
        ];
        if rng.next_below(4) == 0 {
            deletes.push(r);
        } else {
            inserts.push(r);
        }
    }
    TableMutation::new("AuthorPub", inserts, deletes)
}

/// Run `readers` reader threads (and optionally the writer) for `window`;
/// returns (total reads, publishes, mean publish latency, and the
/// publish-latency histogram for quantile reporting). Per-read
/// latencies land in `read_hist` — a [`Histogram`] from the same metrics
/// module the serving stack exposes over `METRICS` — via one chained
/// `Instant::now()` per iteration, so the timing overhead in the read loop
/// is a single clock read.
fn run(
    service: &Arc<GraphService>,
    w: &Workload,
    readers: usize,
    writer_rows: Option<usize>,
    seed: u64,
    read_hist: &Histogram,
) -> (u64, u64, Duration, Histogram) {
    let done = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let mut handles = Vec::new();
        for t in 0..readers {
            let service = Arc::clone(service);
            let done = Arc::clone(&done);
            let authors = w.authors;
            let read_hist = read_hist.clone();
            handles.push(s.spawn(move || {
                let mut rng = SplitMix64::new(seed ^ (t as u64 + 1));
                let mut local = 0u64;
                let mut last = Instant::now();
                while !done.load(Ordering::Relaxed) {
                    let snap = service.snapshot("g").expect("snapshot");
                    let key = Value::int(rng.next_below(authors as u64) as i64 + 1);
                    std::hint::black_box(snap.handle().neighbors_by_key(&key));
                    local += 1;
                    let now = Instant::now();
                    read_hist.record(u64::try_from((now - last).as_nanos()).unwrap_or(u64::MAX));
                    last = now;
                }
                local
            }));
        }
        let mut publishes = 0u64;
        let mut publish_time = Duration::ZERO;
        let publish_hist = Histogram::new();
        let start = Instant::now();
        match writer_rows {
            Some(rows) => {
                let mut rng = SplitMix64::new(seed ^ 0xFEED);
                while start.elapsed() < w.window {
                    let m = mutation(&mut rng, w, rows);
                    let t0 = Instant::now();
                    let outcome = service.apply(&[m]).expect("apply");
                    // Only publishing applies count toward publish latency
                    // (a batch of absent deletes is a cheap no-op and would
                    // skew the mean).
                    if !outcome.graphs.is_empty() {
                        publish_time += t0.elapsed();
                        publish_hist.record_since(t0);
                        publishes += 1;
                    }
                }
            }
            None => std::thread::sleep(w.window),
        }
        done.store(true, Ordering::Relaxed);
        let reads: u64 = handles.into_iter().map(|h| h.join().expect("reader")).sum();
        let mean = if publishes > 0 {
            publish_time / publishes as u32
        } else {
            Duration::ZERO
        };
        (reads, publishes, mean, publish_hist)
    })
}

/// Latencies of `publishes` publishing applies at a fixed delta size
/// (no-op batches — all-absent deletes — are retried, not counted; a few
/// warmup publishes prime allocator and caches before measuring). Callers
/// summarize with the median — it shrugs off the scheduler hiccups a
/// shared runner injects — and report p50/p99 via [`quantile_ns`].
fn publish_samples(
    service: &GraphService,
    w: &Workload,
    rows: usize,
    publishes: usize,
    seed: u64,
) -> Vec<Duration> {
    let mut rng = SplitMix64::new(seed);
    let warmup = 3usize;
    let mut samples: Vec<Duration> = Vec::with_capacity(warmup + publishes);
    while samples.len() < warmup + publishes {
        let m = mutation(&mut rng, w, rows);
        let t0 = Instant::now();
        let outcome = service.apply(&[m]).expect("apply");
        if !outcome.graphs.is_empty() {
            samples.push(t0.elapsed());
        }
    }
    samples.split_off(warmup)
}

/// Quantile over a slice of durations, in nanoseconds (nearest-rank).
fn quantile_ns(sorted: &[Duration], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    u64::try_from(sorted[idx.min(sorted.len() - 1)].as_nanos()).unwrap_or(u64::MAX)
}

/// The delta-bound-publish sweep: fixed 64-row delta, graph size growing
/// 16×. Per size the statistic is the best (minimum) of three trials'
/// medians — noise on a shared runner only ever inflates a trial, so the
/// best-of-trials median is the most stable estimate of true publish
/// cost. Returns the (smallest, largest) measured values.
fn scale_sweep(quick: bool, report: &mut BenchReport) -> (Duration, Duration) {
    const DELTA_ROWS: usize = 64;
    let sizes: &[usize] = &[10_000, 40_000, 160_000];
    let publishes = if quick { 15 } else { 31 };
    println!(
        "\npublish latency vs graph size (fixed {DELTA_ROWS}-row delta, \
         {publishes} publishes each):\n"
    );
    let widths = [12, 10, 12, 18, 12, 14];
    row(
        &[
            "base.rows",
            "authors",
            "extract",
            "publish.median",
            "mem.peak",
            "vs.smallest",
        ]
        .map(String::from),
        &widths,
    );
    let mut best_medians: Vec<Duration> = Vec::new();
    for &memberships in sizes {
        // Co-authorship shape: ~3 memberships per author, ~8 per
        // publication, constant across sizes — so a fixed 64-row delta
        // does the same join fan-out at every scale and the sweep isolates
        // how publish cost responds to *graph size* alone.
        let w = Workload {
            authors: (memberships / 3) as i64,
            pubs: (memberships / 8) as i64,
            memberships,
            window: Duration::ZERO,
        };
        let t0 = Instant::now();
        let service = build_service(&w, 42);
        let extract = t0.elapsed();
        // Allocation accounting wraps the whole trial loop: peak is the
        // high-water mark of live bytes any single publish run reached above
        // the idle service, live is what the publishes left resident. Both
        // land in the JSON record so the artifact charts memory-vs-graph-size
        // alongside latency-vs-graph-size.
        let (best_trial, mem) = graphgen_bench::alloc::measure(|| {
            (0..3)
                .map(|trial| {
                    let mut samples = publish_samples(
                        &service,
                        &w,
                        DELTA_ROWS,
                        publishes,
                        0xF1A7 + memberships as u64 + trial,
                    );
                    samples.sort();
                    samples
                })
                .min_by_key(|samples| samples[samples.len() / 2])
                .expect("three trials")
        });
        let best_median = best_trial[best_trial.len() / 2];
        report.push_mem(
            format!("publish_scale_{memberships}"),
            1,
            quantile_ns(&best_trial, 0.5),
            quantile_ns(&best_trial, 0.99),
            1.0 / best_median.as_secs_f64().max(1e-9),
            mem.peak as u64,
            mem.live as u64,
        );
        let ratio = best_medians
            .first()
            .map_or(1.0, |first| best_median.as_secs_f64() / first.as_secs_f64());
        row(
            &[
                memberships.to_string(),
                w.authors.to_string(),
                format!("{:.0}ms", extract.as_secs_f64() * 1e3),
                format!("{:.3}ms", best_median.as_secs_f64() * 1e3),
                graphgen_bench::alloc::human_bytes(mem.peak),
                format!("{ratio:.2}x"),
            ],
            &widths,
        );
        best_medians.push(best_median);
    }
    (best_medians[0], best_medians[best_medians.len() - 1])
}

fn main() {
    let quick = has_flag("--quick");
    let w = if quick {
        Workload {
            authors: 200,
            pubs: 80,
            memberships: 600,
            window: Duration::from_millis(150),
        }
    } else {
        Workload {
            authors: 2_000,
            pubs: 800,
            memberships: 6_000,
            window: Duration::from_millis(750),
        }
    };
    println!(
        "serving_throughput: {} authors, {} memberships, {:?} window{}\n",
        w.authors,
        w.memberships,
        w.window,
        if quick { " (--quick)" } else { "" }
    );

    println!("reads/sec vs reader threads (writer applying 64-row deltas concurrently):\n");
    let widths = [9, 12, 14, 12, 18];
    row(
        &[
            "readers",
            "writer",
            "reads/sec",
            "publishes",
            "publish.mean",
        ]
        .map(String::from),
        &widths,
    );
    let mut report = BenchReport::new("serving");
    for &readers in &[1usize, 2, 8] {
        for writer in [false, true] {
            let service = Arc::new(build_service(&w, 42));
            let read_hist = Histogram::new();
            let (reads, publishes, mean, _) = run(
                &service,
                &w,
                readers,
                writer.then_some(64),
                0xBEEF + readers as u64,
                &read_hist,
            );
            row(
                &[
                    readers.to_string(),
                    if writer { "64-row" } else { "idle" }.to_string(),
                    format!("{:.0}", reads as f64 / w.window.as_secs_f64()),
                    publishes.to_string(),
                    format!("{:.3}ms", mean.as_secs_f64() * 1e3),
                ],
                &widths,
            );
            let snap = read_hist.snapshot();
            report.push(
                if writer { "read_busy" } else { "read_idle" },
                readers,
                snap.quantile(0.5),
                snap.quantile(0.99),
                reads as f64 / w.window.as_secs_f64(),
            );
        }
    }

    println!("\nwriter publish latency vs delta size (1 reader):\n");
    let lwidths = [11, 12, 18, 16];
    row(
        &["delta.rows", "publishes", "publish.mean", "rows/sec"].map(String::from),
        &lwidths,
    );
    for &rows in &[1usize, 16, 64, 256] {
        let service = Arc::new(build_service(&w, 42));
        let (_, publishes, mean, publish_hist) = run(
            &service,
            &w,
            1,
            Some(rows),
            0xD1CE + rows as u64,
            &Histogram::new(),
        );
        let rows_per_sec = if mean.is_zero() {
            0.0
        } else {
            rows as f64 / mean.as_secs_f64()
        };
        row(
            &[
                rows.to_string(),
                publishes.to_string(),
                format!("{:.3}ms", mean.as_secs_f64() * 1e3),
                format!("{rows_per_sec:.0}"),
            ],
            &lwidths,
        );
        let snap = publish_hist.snapshot();
        report.push(
            format!("publish_rows_{rows}"),
            1,
            snap.quantile(0.5),
            snap.quantile(0.99),
            publishes as f64 / w.window.as_secs_f64(),
        );
    }
    let (smallest, largest) = scale_sweep(quick, &mut report);
    let growth = largest.as_secs_f64() / smallest.as_secs_f64().max(1e-9);
    println!(
        "\npublish latency grew {growth:.2}x across a 16x graph-size growth \
         (delta-bound target: flat, within 2x or under the absolute budget)."
    );
    // Written before the gate so CI uploads the artifact even on failure.
    report.write("BENCH_serving.json");
    // CI gate: a return to clone-dominated publishing tracks graph size
    // (~16x here). With the dense-id interned hot paths the gate is 2x —
    // half the old 4x bound — so a size-proportional term that previously
    // hid under the slack now fails. The ratio alone flakes on runners
    // whose last-level cache the 160k working set overflows (the same
    // publish pays DRAM latency the 10k baseline never sees, inflating
    // the ratio with memory-hierarchy cost, not algorithmic cost), so an
    // absolute budget on the large end backs it up: either the curve is
    // flat, or the largest sweep's median publish stays under 750µs. A
    // genuinely O(graph) publish — the regression this gate exists to
    // catch — lands in milliseconds at 160k rows and fails both arms.
    const LARGEST_BUDGET: Duration = Duration::from_micros(750);
    if quick && growth > 2.0 && largest > LARGEST_BUDGET {
        eprintln!(
            "FAIL: publish latency grew {growth:.2}x while the graph grew 16x \
             and the largest median ({largest:?}) exceeds the {LARGEST_BUDGET:?} \
             budget — publish cost is no longer delta-bound"
        );
        std::process::exit(1);
    }
    println!("\npublish latency = in-place patch + WAL + O(#chunks) reader clone + publish;");
    println!("readers never block on it (they hold version-pinned Arc snapshots).");
}
