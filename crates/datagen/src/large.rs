//! Appendix C.2 generators: databases with controlled join selectivities
//! (Tables 3 and 6).
//!
//! Selectivity of a join attribute `a` of table `A` is defined as
//! `distinct(a) / |A|`; the generators draw attribute values uniformly from
//! a domain sized to hit the requested selectivity.

use graphgen_common::SplitMix64;
use graphgen_reldb::{Column, Database, Schema, Table, Value};

/// Single-layer dataset: one membership table `A(x, a)`; the co-occurrence
/// query on `a` yields a single-layer condensed graph.
#[derive(Debug, Clone, Copy)]
pub struct SingleLayerConfig {
    /// Rows of the membership table.
    pub rows: usize,
    /// Join selectivity: `distinct(a) = selectivity * rows`.
    pub selectivity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SingleLayerConfig {
    /// Scaled Single_1 (paper: 2M rows, selectivity 0.25).
    pub fn single_1(scale: f64) -> Self {
        Self {
            rows: (2_000_000.0 * scale) as usize,
            selectivity: 0.25,
            seed: 201,
        }
    }

    /// Scaled Single_2 (paper: 20M rows, selectivity 0.01 — very dense).
    pub fn single_2(scale: f64) -> Self {
        Self {
            rows: (20_000_000.0 * scale) as usize,
            selectivity: 0.01,
            seed: 202,
        }
    }
}

/// Generate `Entity(id)` + `A(x, a)` and the matching extraction query.
pub fn single_layer_database(cfg: SingleLayerConfig) -> (Database, String) {
    let mut rng = SplitMix64::new(cfg.seed);
    let distinct = ((cfg.rows as f64 * cfg.selectivity) as usize).max(1);
    // Entities: roughly rows/2 distinct x values keeps membership ~2 per
    // entity per group on average.
    let entities = (cfg.rows / 2).max(2);
    let mut entity = Table::new(Schema::new(vec![Column::int("id")]));
    for e in 0..entities {
        entity.push_row(vec![Value::int(e as i64)]).expect("schema");
    }
    let mut a = Table::new(Schema::new(vec![Column::int("x"), Column::int("a")]));
    a.reserve(cfg.rows);
    for _ in 0..cfg.rows {
        let x = rng.next_below(entities as u64) as i64;
        let v = rng.next_below(distinct as u64) as i64;
        a.push_row(vec![Value::int(x), Value::int(v)])
            .expect("schema");
    }
    let mut db = Database::new();
    db.register("Entity", entity).expect("fresh db");
    db.register("A", a).expect("fresh db");
    let query = "Nodes(ID) :- Entity(ID).\n\
                 Edges(ID1, ID2) :- A(ID1, V), A(ID2, V)."
        .to_string();
    (db, query)
}

/// Layered (multi-layer) dataset: tables `A(x, a1)` and `B(b1, b2)`, with
/// the TPCH-shaped chain `A ⋈ B ⋈ B ⋈ A` whose three joins have the given
/// selectivities.
#[derive(Debug, Clone, Copy)]
pub struct LayeredConfig {
    /// Rows of `A`.
    pub rows_a: usize,
    /// Rows of `B`.
    pub rows_b: usize,
    /// Selectivity of the outer joins (A.a1 = B.b1).
    pub outer_selectivity: f64,
    /// Selectivity of the inner self-join (B.b2 = B.b2).
    pub inner_selectivity: f64,
    /// RNG seed.
    pub seed: u64,
}

impl LayeredConfig {
    /// Scaled Layered_1 (paper selectivities 0.05 → 0.1 → 0.05).
    pub fn layered_1(scale: f64) -> Self {
        Self {
            rows_a: (2_000_000.0 * scale) as usize,
            rows_b: (2_000_000.0 * scale) as usize,
            outer_selectivity: 0.05,
            inner_selectivity: 0.1,
            seed: 301,
        }
    }

    /// Scaled Layered_2 (paper selectivities 0.2 → 0.1 → 0.2).
    pub fn layered_2(scale: f64) -> Self {
        Self {
            rows_a: (2_000_000.0 * scale) as usize,
            rows_b: (2_000_000.0 * scale) as usize,
            outer_selectivity: 0.2,
            inner_selectivity: 0.1,
            seed: 302,
        }
    }
}

/// Generate the layered database and its extraction query.
pub fn layered_database(cfg: LayeredConfig) -> (Database, String) {
    let mut rng = SplitMix64::new(cfg.seed);
    let d_outer = ((cfg.rows_a as f64 * cfg.outer_selectivity) as usize).max(1);
    let d_inner = ((cfg.rows_b as f64 * cfg.inner_selectivity) as usize).max(1);
    let entities = (cfg.rows_a / 2).max(2);
    let mut entity = Table::new(Schema::new(vec![Column::int("id")]));
    for e in 0..entities {
        entity.push_row(vec![Value::int(e as i64)]).expect("schema");
    }
    let mut a = Table::new(Schema::new(vec![Column::int("x"), Column::int("a1")]));
    for _ in 0..cfg.rows_a {
        let x = rng.next_below(entities as u64) as i64;
        let v = rng.next_below(d_outer as u64) as i64;
        a.push_row(vec![Value::int(x), Value::int(v)])
            .expect("schema");
    }
    let mut b = Table::new(Schema::new(vec![Column::int("b1"), Column::int("b2")]));
    for _ in 0..cfg.rows_b {
        let v1 = rng.next_below(d_outer as u64) as i64;
        let v2 = rng.next_below(d_inner as u64) as i64;
        b.push_row(vec![Value::int(v1), Value::int(v2)])
            .expect("schema");
    }
    let mut db = Database::new();
    db.register("Entity", entity).expect("fresh db");
    db.register("A", a).expect("fresh db");
    db.register("B", b).expect("fresh db");
    let query = "Nodes(ID) :- Entity(ID).\n\
                 Edges(ID1, ID2) :- A(ID1, J1), B(J1, J2), B(J3, J2), A(ID2, J3)."
        .to_string();
    (db, query)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_layer_selectivity_hits_target() {
        let (db, q) = single_layer_database(SingleLayerConfig {
            rows: 10_000,
            selectivity: 0.1,
            seed: 1,
        });
        let a = db.table("A").unwrap();
        let sel = a.distinct_count(1) as f64 / a.num_rows() as f64;
        assert!((0.08..0.12).contains(&sel), "selectivity {sel}");
        graphgen_dsl::compile(&q).unwrap();
    }

    #[test]
    fn layered_has_three_joins_and_compiles() {
        let (db, q) = layered_database(LayeredConfig {
            rows_a: 2_000,
            rows_b: 2_000,
            outer_selectivity: 0.05,
            inner_selectivity: 0.1,
            seed: 2,
        });
        let spec = graphgen_dsl::compile(&q).unwrap();
        assert_eq!(spec.edges[0].steps.len(), 4);
        let b = db.table("B").unwrap();
        let sel2 = b.distinct_count(1) as f64 / b.num_rows() as f64;
        assert!((0.07..0.13).contains(&sel2), "inner selectivity {sel2}");
    }

    #[test]
    fn presets_scale_down() {
        let s = SingleLayerConfig::single_1(0.001);
        assert_eq!(s.rows, 2_000);
        let l = LayeredConfig::layered_2(0.001);
        assert_eq!(l.rows_a, 2_000);
        assert!((l.outer_selectivity - 0.2).abs() < 1e-12);
    }
}
