//! Semantic analysis: validation and chain normalization (§3.3, §4.2).
//!
//! `Edges` bodies are checked for acyclicity (GYO reduction) and normalized
//! into the chain form `R1(ID1,a1), R2(a1,a2), …, Rn(a_{n-1},ID2)` the
//! extraction algorithm consumes (§4.2 Step 2: "Without loss of generality,
//! we can represent the statement as …"). Constants become per-atom
//! selection predicates; wildcards are ignored. Acyclic bodies that cannot
//! be ordered into a chain (e.g. star joins with three endpoints) are
//! rejected with a clear message — they fall under the paper's Case 2,
//! which materializes the expanded graph via one big SQL query and is out
//! of scope for the condensed path.

use crate::ast::{Atom, Program, Term};
use graphgen_common::FxHashSet;

/// A selection constant on one column of an atom.
#[derive(Debug, Clone, PartialEq)]
pub enum ConstFilter {
    /// Column must equal this integer.
    Int(usize, i64),
    /// Column must equal this string.
    Str(usize, String),
}

/// One normalized chain atom.
#[derive(Debug, Clone, PartialEq)]
pub struct ChainAtom {
    /// Base relation name.
    pub relation: String,
    /// Column joined with the previous atom (or the ID1 column for the
    /// first atom).
    pub in_col: usize,
    /// Column carried to the next atom (or the ID2 column for the last).
    pub out_col: usize,
    /// Constant selections.
    pub filters: Vec<ConstFilter>,
}

/// A normalized `Edges` rule.
#[derive(Debug, Clone, PartialEq)]
pub struct EdgeChain {
    /// The join chain, left (ID1) to right (ID2).
    pub steps: Vec<ChainAtom>,
}

/// A normalized `Nodes` rule: a single-relation view.
#[derive(Debug, Clone, PartialEq)]
pub struct NodesView {
    /// Base relation.
    pub relation: String,
    /// Column holding the node id.
    pub id_col: usize,
    /// `(property name, column)` pairs for the remaining head attributes.
    pub prop_cols: Vec<(String, usize)>,
    /// Constant selections.
    pub filters: Vec<ConstFilter>,
}

/// A fully validated extraction specification.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphSpec {
    /// Node views (≥ 1).
    pub nodes: Vec<NodesView>,
    /// Edge chains (≥ 1).
    pub edges: Vec<EdgeChain>,
}

/// GYO (Graham/Yu–Özsoyoğlu) test for α-acyclicity of a conjunctive body.
pub fn is_acyclic(atoms: &[Atom]) -> bool {
    // Hyperedges = variable sets of each atom.
    let mut edges: Vec<FxHashSet<String>> = atoms
        .iter()
        .map(|a| {
            a.args
                .iter()
                .filter_map(|t| t.as_var().map(str::to_string))
                .collect()
        })
        .collect();
    loop {
        let mut changed = false;
        // Rule 1: drop variables occurring in at most one hyperedge.
        let mut counts: graphgen_common::FxHashMap<&str, usize> = Default::default();
        for e in &edges {
            for v in e {
                *counts.entry(v.as_str()).or_insert(0) += 1;
            }
        }
        let lonely: FxHashSet<String> = counts
            .iter()
            .filter(|(_, &c)| c <= 1)
            .map(|(v, _)| v.to_string())
            .collect();
        if !lonely.is_empty() {
            for e in &mut edges {
                let before = e.len();
                e.retain(|v| !lonely.contains(v));
                changed |= e.len() != before;
            }
        }
        // Rule 2: drop hyperedges contained in another (or empty).
        let mut keep = vec![true; edges.len()];
        for i in 0..edges.len() {
            if edges[i].is_empty() {
                keep[i] = false;
                continue;
            }
            for j in 0..edges.len() {
                if i != j
                    && keep[j]
                    && edges[i].is_subset(&edges[j])
                    && (edges[i].len() < edges[j].len() || i > j)
                {
                    keep[i] = false;
                    break;
                }
            }
        }
        if keep.iter().any(|&k| !k) {
            let mut idx = 0;
            edges.retain(|_| {
                let k = keep[idx];
                idx += 1;
                k
            });
            changed = true;
        }
        if edges.len() <= 1 {
            return true;
        }
        if !changed {
            return false;
        }
    }
}

pub(crate) fn filters_of(atom: &Atom) -> Vec<ConstFilter> {
    atom.args
        .iter()
        .enumerate()
        .filter_map(|(i, t)| match t {
            Term::Int(v) => Some(ConstFilter::Int(i, *v)),
            Term::Str(s) => Some(ConstFilter::Str(i, s.clone())),
            _ => None,
        })
        .collect()
}

pub(crate) fn var_col(atom: &Atom, var: &str) -> Option<usize> {
    atom.args.iter().position(|t| t.as_var() == Some(var))
}

fn shared_vars(a: &Atom, b: &Atom) -> Vec<String> {
    let vars_a: FxHashSet<&str> = a.args.iter().filter_map(Term::as_var).collect();
    b.args
        .iter()
        .filter_map(Term::as_var)
        .filter(|v| vars_a.contains(v))
        .map(str::to_string)
        .collect()
}

/// Try to order the body atoms into a chain from `id1` to `id2`. Brute
/// force over permutations — extraction bodies have a handful of atoms.
pub(crate) fn find_chain(body: &[Atom], id1: &str, id2: &str) -> Option<Vec<ChainAtom>> {
    let n = body.len();
    if n == 0 || n > 8 {
        return None;
    }
    let mut order: Vec<usize> = (0..n).collect();
    let mut result = None;
    permute(&mut order, 0, &mut |perm| {
        if result.is_some() {
            return;
        }
        if let Some(chain) = chain_from_order(body, perm, id1, id2) {
            result = Some(chain);
        }
    });
    result
}

fn permute(items: &mut Vec<usize>, k: usize, visit: &mut impl FnMut(&[usize])) {
    if k == items.len() {
        visit(items);
        return;
    }
    for i in k..items.len() {
        items.swap(k, i);
        permute(items, k + 1, visit);
        items.swap(k, i);
    }
}

fn chain_from_order(body: &[Atom], perm: &[usize], id1: &str, id2: &str) -> Option<Vec<ChainAtom>> {
    let first = &body[perm[0]];
    let last = &body[*perm.last().expect("non-empty")];
    var_col(first, id1)?;
    var_col(last, id2)?;
    let mut steps = Vec::with_capacity(perm.len());
    let mut in_var = id1.to_string();
    for (i, &ai) in perm.iter().enumerate() {
        let atom = &body[ai];
        let in_col = var_col(atom, &in_var)?;
        let out_var = if i + 1 == perm.len() {
            id2.to_string()
        } else {
            let next = &body[perm[i + 1]];
            let mut shared = shared_vars(atom, next);
            // Don't route back through the variable we came in on, unless
            // it is the only connection.
            shared.sort();
            let pick = shared
                .iter()
                .find(|v| **v != in_var)
                .or_else(|| shared.first())?;
            pick.clone()
        };
        let out_col = var_col(atom, &out_var)?;
        steps.push(ChainAtom {
            relation: atom.relation.clone(),
            in_col,
            out_col,
            filters: filters_of(atom),
        });
        in_var = out_var;
    }
    Some(steps)
}

/// Validate a parsed program and produce the extraction spec.
///
/// This is a thin compatibility wrapper over the full static analyzer
/// ([`crate::check::check_program`]) — the checker *is* the semantic
/// engine, so validation and extraction can never drift apart. On failure
/// the first error's message is returned; callers who want all
/// diagnostics (with codes and spans) should use the checker directly.
pub fn analyze(program: &Program) -> Result<GraphSpec, String> {
    let report = crate::check::check_program(program, None, &crate::check::CheckOptions::default());
    match report.first_error() {
        Some(d) => Err(d.message.clone()),
        None => Ok(report
            .spec
            .expect("check_program returns a spec when there are no errors")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn spec(text: &str) -> Result<GraphSpec, String> {
        analyze(&parse(text).unwrap())
    }

    #[test]
    fn q1_normalizes_to_two_step_chain() {
        let s = spec(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(ID1, ID2) :- AuthorPub(ID1, PubID), AuthorPub(ID2, PubID).",
        )
        .unwrap();
        let chain = &s.edges[0];
        assert_eq!(chain.steps.len(), 2);
        assert_eq!(chain.steps[0].relation, "AuthorPub");
        assert_eq!(chain.steps[0].in_col, 0); // ID1
        assert_eq!(chain.steps[0].out_col, 1); // PubID
        assert_eq!(chain.steps[1].in_col, 1); // PubID
        assert_eq!(chain.steps[1].out_col, 0); // ID2
    }

    #[test]
    fn q2_four_atom_chain() {
        let s = spec(
            "Nodes(ID, Name) :- Customer(ID, Name).\n\
             Edges(ID1, ID2) :- Orders(OK1, ID1), LineItem(OK1, PK), \
                                Orders(OK2, ID2), LineItem(OK2, PK).",
        )
        .unwrap();
        let chain = &s.edges[0];
        assert_eq!(chain.steps.len(), 4);
        // Orders -> LineItem -> LineItem -> Orders
        assert_eq!(chain.steps[0].relation, "Orders");
        assert_eq!(chain.steps[1].relation, "LineItem");
        assert_eq!(chain.steps[2].relation, "LineItem");
        assert_eq!(chain.steps[3].relation, "Orders");
    }

    #[test]
    fn q3_bipartite_chain() {
        let s = spec(
            "Nodes(ID, Name) :- Instructor(ID, Name).\n\
             Nodes(ID, Name) :- Student(ID, Name).\n\
             Edges(ID1, ID2) :- TaughtCourse(ID1, C), TookCourse(ID2, C).",
        )
        .unwrap();
        assert_eq!(s.nodes.len(), 2);
        assert_eq!(s.edges[0].steps.len(), 2);
        assert_eq!(s.edges[0].steps[0].relation, "TaughtCourse");
        assert_eq!(s.edges[0].steps[1].relation, "TookCourse");
    }

    #[test]
    fn constants_become_filters() {
        let s = spec(
            "Nodes(ID) :- Person(ID, _).\n\
             Edges(A, B) :- Cast(A, M, 'actor'), Cast(B, M, 'actor').",
        )
        .unwrap();
        assert_eq!(
            s.edges[0].steps[0].filters,
            vec![ConstFilter::Str(2, "actor".into())]
        );
    }

    #[test]
    fn properties_resolved() {
        let s = spec(
            "Nodes(ID, Name) :- Author(ID, Name).\n\
             Edges(A, B) :- AP(A, P), AP(B, P).",
        )
        .unwrap();
        assert_eq!(s.nodes[0].prop_cols, vec![("Name".to_string(), 1)]);
    }

    #[test]
    fn cyclic_body_rejected() {
        // Triangle query: cyclic.
        let e = spec(
            "Nodes(X) :- R(X, _).\n\
             Edges(A, B) :- R(A, B), R(B, C), R(C, A).",
        )
        .unwrap_err();
        assert!(e.contains("cyclic"), "{e}");
    }

    #[test]
    fn acyclicity_of_chains_and_stars() {
        let chain = parse("Edges(A, D) :- R(A, B), S(B, C), T(C, D).").unwrap();
        assert!(is_acyclic(&chain.rules[0].body));
        let star = parse("Edges(A, B) :- R(X, A), S(X, B), T(X, Y).").unwrap();
        assert!(is_acyclic(&star.rules[0].body));
        let cyc = parse("Edges(A, B) :- R(A, B), S(B, C), T(C, A).").unwrap();
        assert!(!is_acyclic(&cyc.rules[0].body));
    }

    #[test]
    fn missing_nodes_or_edges_rejected() {
        assert!(spec("Nodes(X) :- R(X).").is_err());
        assert!(spec("Edges(A, B) :- R(A, B).").is_err());
    }

    #[test]
    fn recursion_rejected() {
        let e = spec(
            "Nodes(X) :- R(X).\n\
             Edges(A, B) :- Edges(A, C), R(C, B).",
        )
        .unwrap_err();
        assert!(e.contains("recursive"));
    }

    #[test]
    fn unbound_head_var_rejected() {
        let e = spec(
            "Nodes(X, Y) :- R(X).\n\
             Edges(A, B) :- R(A), R(B).",
        )
        .unwrap_err();
        assert!(e.contains("not bound"));
    }

    #[test]
    fn single_atom_edge_rule() {
        let s = spec(
            "Nodes(X) :- Follows(X, _).\n\
             Edges(A, B) :- Follows(A, B).",
        )
        .unwrap();
        assert_eq!(s.edges[0].steps.len(), 1);
        assert_eq!(s.edges[0].steps[0].in_col, 0);
        assert_eq!(s.edges[0].steps[0].out_col, 1);
    }
}
