//! Triangle counting — a Graph-API workload beyond the paper's three
//! kernels, exercising `exists_edge` heavily (the operation Fig. 13
//! microbenchmarks). Used by the community-analysis example.

use graphgen_graph::{GraphRep, RealId};

/// Count undirected triangles: unordered vertex triples `{a, b, c}` with all
/// three symmetric edges present. Requires a symmetric graph (which all
/// co-occurrence extractions produce); directed one-way edges are ignored
/// unless reciprocated.
pub fn triangles<G: GraphRep + ?Sized>(g: &G) -> u64 {
    let mut count = 0u64;
    for u in g.vertices() {
        // neighbors with id greater than u, to count each triangle once
        let nbrs: Vec<RealId> = g
            .neighbors(u)
            .into_iter()
            .filter(|&v| v.0 > u.0 && g.exists_edge(v, u))
            .collect();
        for i in 0..nbrs.len() {
            for j in (i + 1)..nbrs.len() {
                let (a, b) = (nbrs[i], nbrs[j]);
                if g.exists_edge(a, b) && g.exists_edge(b, a) {
                    count += 1;
                }
            }
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::{CondensedBuilder, ExpandedGraph};

    fn undirected(n: usize, pairs: &[(u32, u32)]) -> ExpandedGraph {
        ExpandedGraph::from_edges(n, pairs.iter().flat_map(|&(a, b)| [(a, b), (b, a)]))
    }

    #[test]
    fn single_triangle() {
        let g = undirected(3, &[(0, 1), (1, 2), (0, 2)]);
        assert_eq!(triangles(&g), 1);
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = undirected(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]);
        assert_eq!(triangles(&g), 4);
    }

    #[test]
    fn path_has_none() {
        let g = undirected(4, &[(0, 1), (1, 2), (2, 3)]);
        assert_eq!(triangles(&g), 0);
    }

    #[test]
    fn clique_virtual_node_counts() {
        // A 4-clique through one virtual node: C(4,3) = 4 triangles.
        let mut b = CondensedBuilder::new(4);
        b.clique(&[RealId(0), RealId(1), RealId(2), RealId(3)]);
        let g = b.build();
        assert_eq!(triangles(&g), 4);
    }

    #[test]
    fn one_way_edges_ignored() {
        let g = ExpandedGraph::from_edges(3, [(0, 1), (1, 0), (1, 2), (2, 1), (0, 2)]);
        // edge 0->2 lacks 2->0: not a triangle
        assert_eq!(triangles(&g), 0);
    }
}
