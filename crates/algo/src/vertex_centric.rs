//! The multithreaded vertex-centric framework (§3.4).
//!
//! Users implement [`VertexProgram::compute`], which produces a vertex's
//! next state from its current state and read-only access to all previous
//! states (the gather-apply-scatter style of GraphLab: no explicit message
//! buffers — "nodes communicate by directly accessing their neighbors'
//! data"). The coordinator splits the vertices into per-core chunks, runs
//! one `compute` per live vertex per superstep, and terminates when every
//! vertex votes to halt.

use graphgen_graph::{GraphRep, RealId};

/// A vertex-centric program over graph `G`.
pub trait VertexProgram<G: GraphRep + Sync>: Sync {
    /// Per-vertex state.
    type State: Clone + Send + Sync;

    /// Initial state of vertex `u`.
    fn init(&self, g: &G, u: RealId) -> Self::State;

    /// Compute the next state of `u`. `prev` holds every vertex's state
    /// from the previous superstep (index by `RealId.0`). Return the new
    /// state and `true` to vote to halt. A vertex that halted is still
    /// re-run next superstep if any vertex is active (matching the
    /// shared-memory GAS model, where there is no message-based wakeup).
    fn compute(
        &self,
        g: &G,
        u: RealId,
        prev: &[Self::State],
        superstep: usize,
    ) -> (Self::State, bool);
}

/// Coordinator configuration.
#[derive(Debug, Clone, Copy)]
pub struct VertexCentricConfig {
    /// Worker threads (the paper distributes chunks over all cores).
    pub threads: usize,
    /// Hard superstep cap (safety net for non-converging programs).
    pub max_supersteps: usize,
}

impl Default for VertexCentricConfig {
    fn default() -> Self {
        Self {
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            max_supersteps: 10_000,
        }
    }
}

/// Run `program` to convergence. Returns the final states (indexed by real
/// id; dead vertices keep their initial state) and the number of supersteps
/// executed.
pub fn run_vertex_centric<G, P>(
    g: &G,
    program: &P,
    cfg: VertexCentricConfig,
) -> (Vec<P::State>, usize)
where
    G: GraphRep + Sync,
    P: VertexProgram<G>,
{
    let n = g.num_real_slots();
    let mut cur: Vec<P::State> = (0..n).map(|i| program.init(g, RealId(i as u32))).collect();
    if n == 0 {
        return (cur, 0);
    }
    let mut next = cur.clone();
    let threads = cfg.threads.max(1);
    for step in 0..cfg.max_supersteps {
        let all_halted = std::sync::atomic::AtomicBool::new(true);
        let chunk = n.div_ceil(threads);
        let cur_ref = &cur;
        let all_halted_ref = &all_halted;
        std::thread::scope(|scope| {
            for (ci, slot) in next.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let base = ci * chunk;
                    let mut local_all_halted = true;
                    for (j, s) in slot.iter_mut().enumerate() {
                        let u = RealId((base + j) as u32);
                        if !g.is_alive(u) {
                            continue;
                        }
                        let (state, halt) = program.compute(g, u, cur_ref, step);
                        *s = state;
                        local_all_halted &= halt;
                    }
                    if !local_all_halted {
                        all_halted_ref.store(false, std::sync::atomic::Ordering::Relaxed);
                    }
                });
            }
        });
        std::mem::swap(&mut cur, &mut next);
        if all_halted.load(std::sync::atomic::Ordering::Relaxed) {
            return (cur, step + 1);
        }
    }
    (cur, cfg.max_supersteps)
}

#[cfg(test)]
mod tests {
    use super::*;
    use graphgen_graph::ExpandedGraph;

    /// Max-value propagation: each vertex adopts the max id among itself
    /// and its neighbors; halts when unchanged.
    struct MaxProp;

    impl<G: GraphRep + Sync> VertexProgram<G> for MaxProp {
        type State = u32;

        fn init(&self, _g: &G, u: RealId) -> u32 {
            u.0
        }

        fn compute(&self, g: &G, u: RealId, prev: &[u32], _step: usize) -> (u32, bool) {
            let mut best = prev[u.0 as usize];
            g.for_each_neighbor(u, &mut |v| best = best.max(prev[v.0 as usize]));
            (best, best == prev[u.0 as usize])
        }
    }

    #[test]
    fn max_propagation_on_a_path() {
        // path 0-1-2-3-4 (undirected)
        let edges = (0..4u32).flat_map(|i| [(i, i + 1), (i + 1, i)]);
        let g = ExpandedGraph::from_edges(5, edges);
        let (states, steps) = run_vertex_centric(&g, &MaxProp, VertexCentricConfig::default());
        assert_eq!(states, vec![4, 4, 4, 4, 4]);
        // 4 hops to reach vertex 0, plus one all-halt superstep.
        assert!(steps >= 5);
    }

    #[test]
    fn single_thread_matches_many_threads() {
        let edges: Vec<(u32, u32)> = (0..100u32)
            .flat_map(|i| [(i, (i * 7 + 1) % 100), ((i * 7 + 1) % 100, i)])
            .collect();
        let g = ExpandedGraph::from_edges(100, edges);
        let (s1, _) = run_vertex_centric(
            &g,
            &MaxProp,
            VertexCentricConfig {
                threads: 1,
                max_supersteps: 1000,
            },
        );
        let (s8, _) = run_vertex_centric(
            &g,
            &MaxProp,
            VertexCentricConfig {
                threads: 8,
                max_supersteps: 1000,
            },
        );
        assert_eq!(s1, s8);
    }

    #[test]
    fn empty_graph_terminates() {
        let g = ExpandedGraph::new(0);
        let (states, steps) = run_vertex_centric(&g, &MaxProp, VertexCentricConfig::default());
        assert!(states.is_empty());
        assert_eq!(steps, 0);
    }

    #[test]
    fn superstep_cap_respected() {
        /// Never halts.
        struct Restless;
        impl<G: GraphRep + Sync> VertexProgram<G> for Restless {
            type State = u64;
            fn init(&self, _: &G, _: RealId) -> u64 {
                0
            }
            fn compute(&self, _: &G, u: RealId, prev: &[u64], _: usize) -> (u64, bool) {
                (prev[u.0 as usize] + 1, false)
            }
        }
        let g = ExpandedGraph::from_edges(2, [(0, 1)]);
        let (states, steps) = run_vertex_centric(
            &g,
            &Restless,
            VertexCentricConfig {
                threads: 2,
                max_supersteps: 7,
            },
        );
        assert_eq!(steps, 7);
        assert_eq!(states, vec![7, 7]);
    }
}
