//! Golden-file diagnostics suite: one fixture per stable error/warning
//! code. Each fixture must produce *exactly* its code, with the expected
//! span, and render byte-for-byte to the committed `.expected` file.
//!
//! To regenerate the `.expected` files after an intentional change to
//! messages or rendering, run:
//!
//! ```text
//! GOLDEN_UPDATE=1 cargo test -p graphgen-dsl --test golden_diagnostics
//! ```

use graphgen_dsl::{check_source, render_all, CheckCatalog, CheckOptions, Severity};
use std::fs;
use std::path::PathBuf;

struct Case {
    /// Fixture file name under `tests/fixtures/`.
    file: &'static str,
    /// The one code the fixture must produce.
    code: &'static str,
    /// Opt-in lint group to enable, if any.
    lint: Option<&'static str>,
    /// Expected `line:col` of the diagnostic (None = synthetic span).
    at: Option<(u32, u32)>,
}

const CASES: &[Case] = &[
    Case {
        file: "e000_syntax.ggd",
        code: "E000",
        lint: None,
        at: Some((2, 32)),
    },
    Case {
        file: "e001_unknown_relation.ggd",
        code: "E001",
        lint: None,
        at: Some((2, 20)),
    },
    Case {
        file: "e002_type_mismatch.ggd",
        code: "E002",
        lint: None,
        at: Some((1, 25)),
    },
    Case {
        file: "e003_arity_mismatch.ggd",
        code: "E003",
        lint: None,
        at: Some((2, 16)),
    },
    Case {
        file: "e004_unbound_head_variable.ggd",
        code: "E004",
        lint: None,
        at: Some((1, 11)),
    },
    Case {
        file: "e005_invalid_head.ggd",
        code: "E005",
        lint: None,
        at: Some((2, 1)),
    },
    Case {
        file: "e006_cyclic_body.ggd",
        code: "E006",
        lint: None,
        at: Some((2, 1)),
    },
    Case {
        file: "e007_non_chain_body.ggd",
        code: "E007",
        lint: None,
        at: Some((2, 1)),
    },
    Case {
        file: "e008_recursive_rule.ggd",
        code: "E008",
        lint: None,
        at: Some((2, 16)),
    },
    Case {
        file: "e009_incomplete_program.ggd",
        code: "E009",
        lint: None,
        at: None,
    },
    Case {
        file: "e010_duplicate_property.ggd",
        code: "E010",
        lint: None,
        at: Some((1, 17)),
    },
    Case {
        file: "e011_duplicate_rule.ggd",
        code: "E011",
        lint: None,
        at: Some((3, 1)),
    },
    Case {
        file: "w101_unsatisfiable_filter.ggd",
        code: "W101",
        lint: None,
        at: Some((2, 43)),
    },
    Case {
        file: "w102_singleton_variable.ggd",
        code: "W102",
        lint: None,
        at: Some((1, 25)),
    },
    Case {
        file: "w103_dedup2_infeasible.ggd",
        code: "W103",
        lint: Some("conversion"),
        at: Some((2, 1)),
    },
    Case {
        file: "w105_large_output_segment.ggd",
        code: "W105",
        lint: Some("plan"),
        at: Some((2, 1)),
    },
];

fn fixture_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures")
}

fn catalog() -> CheckCatalog {
    let text = fs::read_to_string(fixture_dir().join("schema.ggs")).expect("schema fixture");
    CheckCatalog::parse(&text).expect("schema fixture parses")
}

#[test]
fn every_code_has_a_fixture_and_renders_exactly() {
    let catalog = catalog();
    let update = std::env::var("GOLDEN_UPDATE").is_ok();
    let mut failures = Vec::new();
    for case in CASES {
        let path = fixture_dir().join(case.file);
        let source = fs::read_to_string(&path).expect(case.file);
        let mut opts = CheckOptions::default();
        if let Some(group) = case.lint {
            opts.enable_lint(group).expect("known lint group");
        }
        let report = check_source(&source, Some(&catalog), &opts);

        let codes: Vec<&str> = report.diagnostics.iter().map(|d| d.code.code()).collect();
        assert_eq!(codes, vec![case.code], "{}: wrong code set", case.file);
        let d = &report.diagnostics[0];
        assert_eq!(
            d.severity,
            if case.code.starts_with('E') {
                Severity::Error
            } else {
                Severity::Warning
            },
            "{}: severity drifted from code prefix",
            case.file
        );
        match case.at {
            Some((line, col)) => assert_eq!(
                (d.span.line, d.span.col),
                (line, col),
                "{}: span moved",
                case.file
            ),
            None => assert!(
                d.span.is_synthetic(),
                "{}: expected synthetic span",
                case.file
            ),
        }
        // Errors must block the spec; warnings must not.
        assert_eq!(
            report.spec.is_none(),
            case.code.starts_with('E'),
            "{}",
            case.file
        );

        let rendered = render_all(&report.diagnostics, &source, case.file).expect("non-empty");
        let expected_path = fixture_dir().join(format!("{}.expected", case.file));
        if update {
            fs::write(&expected_path, &rendered).expect("write golden");
            continue;
        }
        let expected = fs::read_to_string(&expected_path).unwrap_or_default();
        if rendered != expected {
            failures.push(format!(
                "{}: rendered output drifted from {}.expected \
                 (GOLDEN_UPDATE=1 regenerates)\n--- rendered ---\n{rendered}",
                case.file, case.file
            ));
        }
    }
    assert!(failures.is_empty(), "{}", failures.join("\n"));
}

#[test]
fn fixture_set_covers_every_code() {
    let mut covered: Vec<&str> = CASES.iter().map(|c| c.code).collect();
    covered.sort_unstable();
    covered.dedup();
    let mut all: Vec<&str> = graphgen_dsl::Code::all().iter().map(|c| c.code()).collect();
    all.sort_unstable();
    assert_eq!(covered, all, "every stable code needs a golden fixture");
}

#[test]
fn fixtures_check_clean_without_their_lint_group() {
    // The W103/W105 fixtures are *valid* programs; their diagnostics are
    // opt-in lints, so default options must accept them (this is what
    // keeps `--deny-warnings` green over shipped examples).
    let catalog = catalog();
    for file in [
        "w103_dedup2_infeasible.ggd",
        "w105_large_output_segment.ggd",
    ] {
        let source = fs::read_to_string(fixture_dir().join(file)).unwrap();
        let report = check_source(&source, Some(&catalog), &CheckOptions::default());
        assert!(
            report.diagnostics.is_empty(),
            "{file}: {:?}",
            report.diagnostics
        );
        assert!(report.spec.is_some());
    }
}
