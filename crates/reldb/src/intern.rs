//! Dense-id value interning — the dictionary behind every hot key path.
//!
//! The publish-vs-graph-size gate showed fixed-delta publish latency growing
//! ~2x as the database grew 10k→160k rows, purely from DRAM/TLB misses on
//! maintenance maps keyed by owned [`Value`]s. This module is the fix: a
//! per-database dictionary that maps each distinct `Value` to a dense `u32`
//! [`Vid`], so joins, DISTINCT, catalog statistics, and the incremental
//! engine's support/bag structures can key by a machine word (often a flat
//! `Vec` index) instead of hashing and chasing heap-allocated values.
//!
//! Two usage modes share one structure:
//!
//! * **Refcounted** ([`Interner::acquire`] / [`Interner::release`]) — the
//!   catalog acquires once per cell occurrence and releases on delete. When
//!   the last reference drops, the slot goes on a free list and the next
//!   *new* value reuses it, so the dictionary's footprint tracks the live
//!   value set, not the insert history.
//! * **Grow-only** ([`Interner::intern`]) — the incremental engine interns
//!   keys it has *ever* seen (its bags hold historical multiplicities);
//!   those slots pin a reference and are never recycled.
//!
//! Slot reuse is safe because a `Vid` is only ever held by structures that
//! are maintained in lockstep with the refcounts: when a slot is freed, no
//! live row, count, or support entry still names it. The codec persists
//! slots, refcounts, *and* the free list verbatim so a decoded dictionary
//! continues allocating exactly like the one that was snapshotted —
//! byte-identity across recovery depends on it.

use crate::value::Value;
use graphgen_common::codec::{self, CodecError, Reader};
use graphgen_common::{ByteSize, FxHashMap};

/// Dense id for an interned [`Value`] — index into the dictionary's slot
/// table. `u32` keeps keys register-wide and flat tables compact.
pub type Vid = u32;

/// The [`Vid`] every interner hands out for [`Value::Null`]: NULL is
/// interned first, permanently, so engines can test "is NULL" with an
/// integer compare.
pub const NULL_VID: Vid = 0;

/// A `Value` → dense [`Vid`] dictionary with refcounted slot reuse.
#[derive(Debug, Clone, Default)]
pub struct Interner {
    /// Forward map: value → slot index. Entries exist only for occupied
    /// slots.
    map: FxHashMap<Value, Vid>,
    /// Reverse table: slot → value. `None` marks a freed slot awaiting
    /// reuse.
    slots: Vec<Option<Value>>,
    /// Per-slot reference counts. A grow-only [`Interner::intern`] pins the
    /// slot by bumping this once and never releasing.
    refs: Vec<u64>,
    /// Freed slot indexes, reused LIFO by the next new value.
    free: Vec<Vid>,
}

impl Interner {
    /// An interner with [`Value::Null`] pre-interned at [`NULL_VID`].
    pub fn new() -> Self {
        let mut it = Interner::default();
        let vid = it.intern(&Value::Null);
        debug_assert_eq!(vid, NULL_VID);
        it
    }

    fn alloc(&mut self, value: &Value) -> Vid {
        if let Some(vid) = self.free.pop() {
            self.slots[vid as usize] = Some(value.clone());
            self.refs[vid as usize] = 0;
            self.map.insert(value.clone(), vid);
            vid
        } else {
            let vid = self.slots.len() as Vid;
            self.slots.push(Some(value.clone()));
            self.refs.push(0);
            self.map.insert(value.clone(), vid);
            vid
        }
    }

    /// Intern `value` without tracking the reference: the slot is pinned
    /// for the interner's lifetime. Used by grow-only consumers (the
    /// incremental engine's historical key space).
    pub fn intern(&mut self, value: &Value) -> Vid {
        if let Some(&vid) = self.map.get(value) {
            self.refs[vid as usize] = self.refs[vid as usize].saturating_add(1).max(u64::MAX / 2);
            return vid;
        }
        let vid = self.alloc(value);
        // Pin: a count this large can never be released back to zero by
        // well-formed acquire/release pairs.
        self.refs[vid as usize] = u64::MAX / 2;
        vid
    }

    /// Intern `value` and count one reference (one cell occurrence).
    /// Release with [`Interner::release`] when the occurrence is deleted.
    pub fn acquire(&mut self, value: &Value) -> Vid {
        let vid = match self.map.get(value) {
            Some(&vid) => vid,
            None => self.alloc(value),
        };
        self.refs[vid as usize] += 1;
        vid
    }

    /// Drop one reference to `vid`. When the count reaches zero the slot is
    /// freed and becomes reusable — callers must not hold the `Vid` past
    /// this point.
    pub fn release(&mut self, vid: Vid) {
        let i = vid as usize;
        debug_assert!(self.refs[i] > 0, "release of dead vid {vid}");
        self.refs[i] -= 1;
        if self.refs[i] == 0 {
            if let Some(value) = self.slots[i].take() {
                self.map.remove(&value);
            }
            self.free.push(vid);
        }
    }

    /// The `Vid` for `value` if it is currently interned.
    pub fn lookup(&self, value: &Value) -> Option<Vid> {
        self.map.get(value).copied()
    }

    /// The value stored in slot `vid`, if the slot is live.
    pub fn resolve(&self, vid: Vid) -> Option<&Value> {
        self.slots.get(vid as usize).and_then(|s| s.as_ref())
    }

    /// Number of live (occupied) slots.
    pub fn live(&self) -> usize {
        self.slots.len() - self.free.len()
    }

    /// Total slot-table length (live + freed). Every live `Vid` is
    /// strictly below this.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Append the dictionary's binary encoding: slot table in slot order
    /// (occupancy flag, value, refcount), then the free list. Persisting
    /// the free list verbatim means a decoded interner allocates the same
    /// `Vid`s the live one would have.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        codec::put_len(out, self.slots.len());
        for (slot, &refs) in self.slots.iter().zip(&self.refs) {
            match slot {
                Some(value) => {
                    codec::put_u8(out, 1);
                    value.encode_into(out);
                    codec::put_u64(out, refs);
                }
                None => codec::put_u8(out, 0),
            }
        }
        codec::put_len(out, self.free.len());
        for &vid in &self.free {
            codec::put_u32(out, vid);
        }
    }

    /// Decode a dictionary (inverse of [`Interner::encode_into`]).
    pub fn decode(r: &mut Reader<'_>) -> Result<Interner, CodecError> {
        let n = r.len_of(1)?;
        let mut it = Interner::default();
        it.slots.reserve(n);
        it.refs.reserve(n);
        for i in 0..n {
            let at = r.pos();
            match r.u8()? {
                0 => {
                    it.slots.push(None);
                    it.refs.push(0);
                }
                1 => {
                    let value = Value::decode(r)?;
                    let refs = r.u64()?;
                    if refs == 0 {
                        return Err(CodecError::invalid(at, "live dictionary slot with 0 refs"));
                    }
                    it.map.insert(value.clone(), i as Vid);
                    it.slots.push(Some(value));
                    it.refs.push(refs);
                }
                tag => return Err(CodecError::invalid(at, format!("bad slot tag {tag}"))),
            }
        }
        let nfree = r.len_of(4)?;
        for _ in 0..nfree {
            let at = r.pos();
            let vid = r.u32()?;
            if vid as usize >= n || it.slots[vid as usize].is_some() {
                return Err(CodecError::invalid(at, format!("bad free-list vid {vid}")));
            }
            it.free.push(vid);
        }
        if it.free.len() != n - it.map.len() {
            return Err(CodecError::invalid(
                r.pos(),
                "free list does not cover all empty slots",
            ));
        }
        Ok(it)
    }
}

impl ByteSize for Interner {
    fn heap_bytes(&self) -> usize {
        let map = self
            .map
            .keys()
            .map(|v| v.heap_bytes() + std::mem::size_of::<(Value, Vid)>())
            .sum::<usize>();
        let slots = self
            .slots
            .iter()
            .map(|s| {
                s.as_ref().map_or(0, ByteSize::heap_bytes) + std::mem::size_of::<Option<Value>>()
            })
            .sum::<usize>();
        map + slots + self.refs.len() * 8 + self.free.len() * 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_resolve_round_trip() {
        let mut it = Interner::new();
        assert_eq!(it.lookup(&Value::Null), Some(NULL_VID));
        let a = it.intern(&Value::str("alpha"));
        let b = it.intern(&Value::int(7));
        assert_ne!(a, b);
        assert_eq!(it.intern(&Value::str("alpha")), a);
        assert_eq!(it.resolve(a), Some(&Value::str("alpha")));
        assert_eq!(it.resolve(b), Some(&Value::int(7)));
        assert_eq!(it.lookup(&Value::int(7)), Some(b));
        assert_eq!(it.lookup(&Value::int(8)), None);
        assert_eq!(it.live(), 3);
    }

    #[test]
    fn free_list_reuse_without_aliasing() {
        let mut it = Interner::new();
        let a = it.acquire(&Value::str("a"));
        let keep = it.acquire(&Value::str("keep"));
        it.release(a);
        assert_eq!(it.lookup(&Value::str("a")), None);
        // New value reuses the freed slot; the live one keeps its id.
        let b = it.acquire(&Value::str("b"));
        assert_eq!(b, a);
        assert_eq!(it.resolve(b), Some(&Value::str("b")));
        assert_eq!(it.resolve(keep), Some(&Value::str("keep")));
        // Reviving "a" now gets a fresh slot — no alias with live "b".
        let a2 = it.acquire(&Value::str("a"));
        assert_ne!(a2, b);
        assert_ne!(a2, keep);
        assert_eq!(it.resolve(a2), Some(&Value::str("a")));
        assert_eq!(it.live(), 4); // NULL, keep, b, a
    }

    #[test]
    fn refcounts_hold_slots_until_last_release() {
        let mut it = Interner::new();
        let a = it.acquire(&Value::int(1));
        let a2 = it.acquire(&Value::int(1));
        assert_eq!(a, a2);
        it.release(a);
        assert_eq!(it.lookup(&Value::int(1)), Some(a));
        it.release(a);
        assert_eq!(it.lookup(&Value::int(1)), None);
    }

    #[test]
    fn grow_only_slots_survive_release_pairs() {
        let mut it = Interner::new();
        let pinned = it.intern(&Value::str("pinned"));
        let v = it.acquire(&Value::str("pinned"));
        assert_eq!(pinned, v);
        it.release(v);
        assert_eq!(it.lookup(&Value::str("pinned")), Some(pinned));
    }

    #[test]
    fn codec_round_trip_continues_allocation_identically() {
        let mut it = Interner::new();
        let _a = it.acquire(&Value::str("a"));
        let b = it.acquire(&Value::str("b"));
        let c = it.acquire(&Value::int(42));
        it.release(b); // slot on the free list at snapshot time
        let mut bytes = Vec::new();
        it.encode_into(&mut bytes);
        let mut back = Interner::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.live(), it.live());
        assert_eq!(back.capacity(), it.capacity());
        assert_eq!(back.lookup(&Value::int(42)), Some(c));
        // Both the original and the decoded copy must hand the freed slot
        // to the next new value.
        let fresh_live = it.acquire(&Value::str("z"));
        let fresh_back = back.acquire(&Value::str("z"));
        assert_eq!(fresh_live, fresh_back);
        assert_eq!(fresh_back, b);
    }

    #[test]
    fn decode_rejects_corrupt_free_list() {
        let mut it = Interner::new();
        let a = it.acquire(&Value::str("a"));
        it.release(a);
        let mut bytes = Vec::new();
        it.encode_into(&mut bytes);
        // Drop the free-list entry and rewrite its count (a trailing
        // little-endian u64) from 1 to 0: the empty slot is then covered by
        // no free-list entry, which decode must reject.
        let mut clipped = bytes.clone();
        let len = clipped.len();
        clipped.truncate(len - 4);
        let count_at = clipped.len() - 8;
        clipped[count_at] = 0;
        assert!(Interner::decode(&mut Reader::new(&clipped)).is_err());
    }
}
