//! Chunked, structurally shared adjacency storage.
//!
//! The serving layer publishes an immutable snapshot of every graph
//! version; with plain `Vec<Vec<Adj>>` adjacency, producing a version means
//! deep-cloning every list — publish cost tracks *graph* size, not *delta*
//! size. [`ChunkedAdj`] fixes that representation-side cost: adjacency
//! lists are grouped into fixed-size [`AdjChunk`] blocks of
//! [`CHUNK_LEN`] lists each, and the blocks are held behind [`Arc`]s.
//!
//! * **Clone** is `O(#chunks)` pointer bumps — all list payloads are
//!   shared between the clone and the original.
//! * **Mutation** goes through the sorted-edit surface
//!   ([`ChunkedAdj::insert_sorted`] / [`ChunkedAdj::remove_sorted`] / …),
//!   which [`Arc::make_mut`]s the covering chunk: the first write after a
//!   clone copies that one chunk and leaves every other chunk shared. A
//!   delta that lands in `k` chunks therefore costs `O(k × chunk bytes)`
//!   copies, never `O(graph)`.
//! * Readers holding an older clone are **immune** to later writes: their
//!   `Arc`s keep pointing at the pre-write chunks (the copy-on-write
//!   discipline the sharing-oracle suite in `graphgen-serve` asserts
//!   byte-for-byte).
//!
//! A chunk stores its lists **flat** — one concatenated [`Adj`] buffer plus
//! per-slot end offsets — so the copy-on-first-write is two allocations and
//! a straight `memcpy` (not a pointer chase through per-list allocations),
//! and iteration over a chunk's lists is sequential in memory.
//!
//! The snapshot codec (`crate::snapshot`) understands chunks natively and
//! deduplicates identical ones on disk.

use crate::ids::Adj;
use std::sync::Arc;

/// Adjacency lists per [`AdjChunk`]. 16 lists keeps the copy-on-first-write
/// unit small (a delta touching k nodes copies ≤ 16k lists) while a
/// 160k-node graph still needs only ~10k pointer bumps per clone — tens of
/// microseconds against the multi-millisecond deep clone this replaces.
pub const CHUNK_LEN: usize = 16;
const CHUNK_SHIFT: u32 = CHUNK_LEN.trailing_zeros();
const CHUNK_MASK: usize = CHUNK_LEN - 1;

/// One fixed-size block of adjacency lists (at most [`CHUNK_LEN`]; only the
/// trailing chunk of a [`ChunkedAdj`] may hold fewer). List `i` occupies
/// `data[ends[i-1]..ends[i]]`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdjChunk {
    data: Vec<Adj>,
    ends: Vec<u32>,
}

impl AdjChunk {
    /// Number of lists stored.
    pub fn n_lists(&self) -> usize {
        self.ends.len()
    }

    #[inline]
    fn start(&self, slot: usize) -> usize {
        if slot == 0 {
            0
        } else {
            self.ends[slot - 1] as usize
        }
    }

    /// The list in `slot`.
    #[inline]
    pub fn list(&self, slot: usize) -> &[Adj] {
        &self.data[self.start(slot)..self.ends[slot] as usize]
    }

    /// Iterate the chunk's lists in slot order.
    pub fn lists(&self) -> impl Iterator<Item = &[Adj]> {
        (0..self.ends.len()).map(|s| self.list(s))
    }

    /// Append a list as the next slot.
    pub(crate) fn push_list(&mut self, list: &[Adj]) {
        debug_assert!(self.ends.len() < CHUNK_LEN);
        self.data.extend_from_slice(list);
        self.ends.push(self.data.len() as u32);
    }

    /// Insert `a` into the sorted list in `slot`; false if already present.
    fn insert_sorted(&mut self, slot: usize, a: Adj) -> bool {
        let s = self.start(slot);
        let e = self.ends[slot] as usize;
        match self.data[s..e].binary_search(&a) {
            Ok(_) => false,
            Err(pos) => {
                self.data.insert(s + pos, a);
                for end in &mut self.ends[slot..] {
                    *end += 1;
                }
                true
            }
        }
    }

    /// Remove `a` from the sorted list in `slot`; false if absent.
    fn remove_sorted(&mut self, slot: usize, a: Adj) -> bool {
        let s = self.start(slot);
        let e = self.ends[slot] as usize;
        match self.data[s..e].binary_search(&a) {
            Ok(pos) => {
                self.data.remove(s + pos);
                for end in &mut self.ends[slot..] {
                    *end -= 1;
                }
                true
            }
            Err(_) => false,
        }
    }

    /// Empty the list in `slot`.
    fn clear_list(&mut self, slot: usize) {
        let s = self.start(slot);
        let e = self.ends[slot] as usize;
        self.data.drain(s..e);
        let removed = (e - s) as u32;
        for end in &mut self.ends[slot..] {
            *end -= removed;
        }
    }

    /// Keep only entries `f(slot, adj)` approves, compacting in place.
    fn retain(&mut self, base_slot: usize, mut f: impl FnMut(usize, Adj) -> bool) {
        let mut write = 0usize;
        let mut read = 0usize;
        for slot in 0..self.ends.len() {
            let end = self.ends[slot] as usize;
            while read < end {
                let a = self.data[read];
                if f(base_slot + slot, a) {
                    self.data[write] = a;
                    write += 1;
                }
                read += 1;
            }
            self.ends[slot] = write as u32;
        }
        self.data.truncate(write);
    }

    fn heap_bytes(&self) -> usize {
        self.data.capacity() * std::mem::size_of::<Adj>()
            + self.ends.capacity() * std::mem::size_of::<u32>()
    }
}

/// A growable sequence of adjacency lists stored as `Arc`-shared chunks.
/// See the module docs for the sharing/copy-on-write contract.
#[derive(Debug, Clone, Default)]
pub struct ChunkedAdj {
    chunks: Vec<Arc<AdjChunk>>,
    len: usize,
}

impl ChunkedAdj {
    /// An empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take ownership of flat lists, grouping them into chunks.
    pub fn from_lists(lists: Vec<Vec<Adj>>) -> Self {
        let len = lists.len();
        let mut chunks = Vec::with_capacity(len.div_ceil(CHUNK_LEN));
        for group in lists.chunks(CHUNK_LEN) {
            let mut chunk = AdjChunk::default();
            for list in group {
                chunk.push_list(list);
            }
            chunks.push(Arc::new(chunk));
        }
        Self { chunks, len }
    }

    /// Rebuild from decoded chunks (the snapshot codec's inverse). The
    /// caller guarantees the shape invariant: every chunk but the last
    /// holds exactly [`CHUNK_LEN`] lists, and the lengths sum to `len`.
    pub(crate) fn from_chunks(chunks: Vec<Arc<AdjChunk>>, len: usize) -> Self {
        debug_assert_eq!(
            chunks.iter().map(|c| c.n_lists()).sum::<usize>(),
            len,
            "chunk shape does not cover len"
        );
        Self { chunks, len }
    }

    /// Number of lists.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no lists are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The backing chunks (snapshot codec and sharing tests).
    pub fn chunks(&self) -> &[Arc<AdjChunk>] {
        &self.chunks
    }

    /// Read the list at `index`.
    #[inline]
    pub fn list(&self, index: usize) -> &[Adj] {
        self.chunks[index >> CHUNK_SHIFT].list(index & CHUNK_MASK)
    }

    /// Insert `a` into the sorted list at `index` (no-op if present),
    /// copying the covering chunk first if it is shared. Returns whether
    /// the entry was inserted.
    #[inline]
    pub fn insert_sorted(&mut self, index: usize, a: Adj) -> bool {
        Arc::make_mut(&mut self.chunks[index >> CHUNK_SHIFT]).insert_sorted(index & CHUNK_MASK, a)
    }

    /// Remove `a` from the sorted list at `index` (no-op if absent),
    /// copying the covering chunk first if it is shared. Returns whether
    /// the entry was removed.
    #[inline]
    pub fn remove_sorted(&mut self, index: usize, a: Adj) -> bool {
        Arc::make_mut(&mut self.chunks[index >> CHUNK_SHIFT]).remove_sorted(index & CHUNK_MASK, a)
    }

    /// Empty the list at `index` (copy-on-write like the edits above).
    pub fn clear(&mut self, index: usize) {
        Arc::make_mut(&mut self.chunks[index >> CHUNK_SHIFT]).clear_list(index & CHUNK_MASK);
    }

    /// Append a fresh list, growing the trailing chunk (or opening a new
    /// one when it is full).
    pub fn push(&mut self, list: &[Adj]) {
        if self.len & CHUNK_MASK == 0 {
            self.chunks.push(Arc::new(AdjChunk::default()));
        }
        Arc::make_mut(self.chunks.last_mut().expect("chunk pushed above")).push_list(list);
        self.len += 1;
    }

    /// Iterate all lists in slot order.
    pub fn iter(&self) -> impl Iterator<Item = &[Adj]> {
        self.chunks.iter().flat_map(|c| c.lists())
    }

    /// Keep only entries `f(slot, adj)` approves. Unshares **every** chunk
    /// — meant for whole-graph rewrites (`compact`), not the delta path.
    pub fn retain(&mut self, mut f: impl FnMut(usize, Adj) -> bool) {
        for (ci, chunk) in self.chunks.iter_mut().enumerate() {
            Arc::make_mut(chunk).retain(ci << CHUNK_SHIFT, &mut f);
        }
    }

    /// Number of chunks currently shared with `other` (both stores point at
    /// the same `Arc`). Test/diagnostic surface for the CoW contract.
    pub fn shared_chunks_with(&self, other: &ChunkedAdj) -> usize {
        self.chunks
            .iter()
            .zip(other.chunks.iter())
            .filter(|(a, b)| Arc::ptr_eq(a, b))
            .count()
    }

    /// Heap bytes reachable from this store. Shared chunks are counted in
    /// full (each clone reports the whole structure, as `heap_bytes` always
    /// has).
    pub fn heap_bytes(&self) -> usize {
        self.chunks.capacity() * std::mem::size_of::<Arc<AdjChunk>>()
            + self.chunks.iter().map(|c| c.heap_bytes()).sum::<usize>()
    }
}

impl PartialEq for ChunkedAdj {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}
impl Eq for ChunkedAdj {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::RealId;

    fn adj(i: u32) -> Adj {
        Adj::real(RealId(i))
    }

    #[test]
    fn push_and_index_across_chunk_boundaries() {
        let mut c = ChunkedAdj::new();
        for i in 0..(CHUNK_LEN as u32 * 2 + 5) {
            c.push(&[adj(i)]);
        }
        assert_eq!(c.len(), CHUNK_LEN * 2 + 5);
        assert_eq!(c.chunks().len(), 3);
        for i in 0..c.len() {
            assert_eq!(c.list(i), &[adj(i as u32)]);
        }
        assert_eq!(c.iter().count(), c.len());
    }

    #[test]
    fn sorted_edits_keep_lists_sorted_and_report_change() {
        let mut c = ChunkedAdj::from_lists(vec![Vec::new(); CHUNK_LEN + 3]);
        let i = CHUNK_LEN + 1;
        assert!(c.insert_sorted(i, adj(5)));
        assert!(c.insert_sorted(i, adj(1)));
        assert!(c.insert_sorted(i, adj(9)));
        assert!(!c.insert_sorted(i, adj(5)), "duplicate insert must no-op");
        assert_eq!(c.list(i), &[adj(1), adj(5), adj(9)]);
        // Neighbor slots in the same chunk are unaffected.
        assert!(c.list(i - 1).is_empty());
        assert!(c.list(i + 1).is_empty());
        assert!(c.remove_sorted(i, adj(5)));
        assert!(!c.remove_sorted(i, adj(5)), "absent remove must no-op");
        assert_eq!(c.list(i), &[adj(1), adj(9)]);
        c.clear(i);
        assert!(c.list(i).is_empty());
    }

    #[test]
    fn clone_shares_every_chunk_and_writes_unshare_one() {
        let lists: Vec<Vec<Adj>> = (0..CHUNK_LEN as u32 * 3).map(|i| vec![adj(i)]).collect();
        let mut a = ChunkedAdj::from_lists(lists);
        let b = a.clone();
        assert_eq!(a.shared_chunks_with(&b), 3);
        a.insert_sorted(CHUNK_LEN + 1, adj(999));
        // Only the middle chunk was copied.
        assert_eq!(a.shared_chunks_with(&b), 2);
        // The clone is immune to the write.
        assert_eq!(b.list(CHUNK_LEN + 1), &[adj(CHUNK_LEN as u32 + 1)]);
        assert_eq!(
            a.list(CHUNK_LEN + 1),
            &[adj(CHUNK_LEN as u32 + 1), adj(999)]
        );
        // Untouched slots of the copied chunk carried over.
        assert_eq!(a.list(CHUNK_LEN + 2), b.list(CHUNK_LEN + 2));
    }

    #[test]
    fn push_after_clone_does_not_disturb_the_clone() {
        let mut a = ChunkedAdj::from_lists(vec![vec![adj(1)]; 10]);
        let b = a.clone();
        a.push(&[adj(7)]);
        assert_eq!(a.len(), 11);
        assert_eq!(b.len(), 10);
        assert_eq!(b.iter().count(), 10);
        assert_eq!(a.list(10), &[adj(7)]);
    }

    #[test]
    fn from_lists_equals_pushed() {
        let lists: Vec<Vec<Adj>> = (0..150u32).map(|i| vec![adj(i), adj(i + 1)]).collect();
        let a = ChunkedAdj::from_lists(lists.clone());
        let mut b = ChunkedAdj::new();
        for l in &lists {
            b.push(l);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn retain_filters_by_slot_and_unshares() {
        let lists: Vec<Vec<Adj>> = (0..(CHUNK_LEN as u32 * 2))
            .map(|i| vec![adj(1), adj(i + 10)])
            .collect();
        let mut a = ChunkedAdj::from_lists(lists);
        let b = a.clone();
        // Drop adj(1) everywhere and empty even slots entirely.
        a.retain(|slot, x| slot % 2 == 1 && x != adj(1));
        assert_eq!(a.shared_chunks_with(&b), 0);
        for i in 0..a.len() {
            if i % 2 == 1 {
                assert_eq!(a.list(i), &[adj(i as u32 + 10)]);
            } else {
                assert!(a.list(i).is_empty());
            }
            // The clone is untouched.
            assert_eq!(b.list(i), &[adj(1), adj(i as u32 + 10)]);
        }
    }
}
