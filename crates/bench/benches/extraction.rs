//! Criterion benches for the extraction pipeline (Table 1): condensed vs
//! full extraction of the co-authors graph from a DBLP-shaped database.

use criterion::{criterion_group, criterion_main, Criterion};
use graphgen_core::{GraphGen, GraphGenConfig};
use graphgen_datagen::{dblp_like, relational::DBLP_COAUTHORS, DblpConfig};

fn bench_extraction(c: &mut Criterion) {
    let db = dblp_like(DblpConfig {
        authors: 2_000,
        publications: 4_000,
        avg_authors_per_pub: 2.5,
        seed: 1,
    });
    let cfg = GraphGenConfig::builder()
        .large_output_factor(0.0)
        .preprocess(false)
        .auto_expand_threshold(None)
        .threads(1)
        .build();
    let gg = GraphGen::with_config(&db, cfg);
    let mut group = c.benchmark_group("extraction");
    group.sample_size(10);
    group.bench_function("condensed", |b| {
        b.iter(|| gg.extract(DBLP_COAUTHORS).expect("extract"))
    });
    group.bench_function("full", |b| {
        b.iter(|| gg.extract_full(DBLP_COAUTHORS).expect("extract full"))
    });
    group.bench_function("condensed_with_preprocess", |b| {
        let gg2 = GraphGen::with_config(
            &db,
            cfg.to_builder().preprocess(true).build(),
        );
        b.iter(|| gg2.extract(DBLP_COAUTHORS).expect("extract"))
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
