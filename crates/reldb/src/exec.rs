//! Physical operators.
//!
//! The extraction layer composes three operators: filtered scans with
//! projection, hash equi-joins, and duplicate elimination. A nested-loop
//! join is provided as the test oracle.

use crate::expr::Predicate;
use crate::table::Table;
use crate::value::Value;
use graphgen_common::{FxHashMap, FxHashSet};

/// Scan `table`, keep rows satisfying `pred`, and project the columns in
/// `cols` (by index, in output order).
pub fn scan_project(table: &Table, pred: &Predicate, cols: &[usize]) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    let mut row_buf: Vec<Value> = Vec::with_capacity(table.schema().arity());
    for r in 0..table.num_rows() {
        row_buf.clear();
        for c in 0..table.schema().arity() {
            row_buf.push(table.cell(r, c).clone());
        }
        if pred.eval(&row_buf) {
            out.push(cols.iter().map(|&c| row_buf[c].clone()).collect());
        }
    }
    out
}

/// Hash equi-join: join `left` and `right` row sets on
/// `left[lkey] == right[rkey]`, emitting `left ++ right` rows.
///
/// Rows with NULL join keys never match (SQL semantics).
pub fn hash_join(
    left: &[Vec<Value>],
    lkey: usize,
    right: &[Vec<Value>],
    rkey: usize,
) -> Vec<Vec<Value>> {
    // Build on the smaller side for memory, but keep output order stable by
    // always probing with `left` outer; build on `right`.
    let mut index: FxHashMap<&Value, Vec<usize>> = FxHashMap::default();
    for (i, row) in right.iter().enumerate() {
        let key = &row[rkey];
        if !key.is_null() {
            index.entry(key).or_default().push(i);
        }
    }
    let mut out = Vec::new();
    for lrow in left {
        let key = &lrow[lkey];
        if key.is_null() {
            continue;
        }
        if let Some(matches) = index.get(key) {
            for &ri in matches {
                let mut row = Vec::with_capacity(lrow.len() + right[ri].len());
                row.extend_from_slice(lrow);
                row.extend_from_slice(&right[ri]);
                out.push(row);
            }
        }
    }
    out
}

/// Reference nested-loop join with identical semantics to [`hash_join`];
/// used as the correctness oracle in tests.
pub fn nested_loop_join(
    left: &[Vec<Value>],
    lkey: usize,
    right: &[Vec<Value>],
    rkey: usize,
) -> Vec<Vec<Value>> {
    let mut out = Vec::new();
    for lrow in left {
        if lrow[lkey].is_null() {
            continue;
        }
        for rrow in right {
            if !rrow[rkey].is_null() && lrow[lkey] == rrow[rkey] {
                let mut row = Vec::with_capacity(lrow.len() + rrow.len());
                row.extend_from_slice(lrow);
                row.extend_from_slice(rrow);
                out.push(row);
            }
        }
    }
    out
}

/// Remove duplicate rows, preserving first-occurrence order (`DISTINCT`).
pub fn distinct_rows(rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    let mut seen: FxHashSet<Vec<Value>> = FxHashSet::default();
    let mut out = Vec::with_capacity(rows.len().min(1 << 16));
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    out
}

/// Project a row set to the given column indices.
pub fn project(rows: &[Vec<Value>], cols: &[usize]) -> Vec<Vec<Value>> {
    rows.iter()
        .map(|row| cols.iter().map(|&c| row[c].clone()).collect())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{Column, Schema};

    fn table(rows: &[(i64, i64)]) -> Table {
        let mut t = Table::new(Schema::new(vec![Column::int("a"), Column::int("b")]));
        for &(a, b) in rows {
            t.push_row(vec![Value::int(a), Value::int(b)]).unwrap();
        }
        t
    }

    fn rows(pairs: &[(i64, i64)]) -> Vec<Vec<Value>> {
        pairs
            .iter()
            .map(|&(a, b)| vec![Value::int(a), Value::int(b)])
            .collect()
    }

    #[test]
    fn scan_project_filters_and_projects() {
        let t = table(&[(1, 10), (2, 20), (3, 30)]);
        let out = scan_project(&t, &Predicate::Gt(0, Value::int(1)), &[1]);
        assert_eq!(out, vec![vec![Value::int(20)], vec![Value::int(30)]]);
    }

    #[test]
    fn hash_join_basic() {
        let l = rows(&[(1, 100), (2, 200), (3, 100)]);
        let r = rows(&[(100, 7), (100, 8), (300, 9)]);
        let out = hash_join(&l, 1, &r, 0);
        // rows with b=100 match both r-rows with key 100
        assert_eq!(out.len(), 4);
        assert_eq!(
            out[0],
            vec![
                Value::int(1),
                Value::int(100),
                Value::int(100),
                Value::int(7)
            ]
        );
    }

    #[test]
    fn hash_join_matches_nested_loop() {
        let l = rows(&[(1, 1), (2, 2), (3, 1), (4, 4), (5, 2)]);
        let r = rows(&[(1, 10), (2, 20), (1, 11), (9, 90)]);
        let mut h = hash_join(&l, 1, &r, 0);
        let mut n = nested_loop_join(&l, 1, &r, 0);
        h.sort();
        n.sort();
        assert_eq!(h, n);
    }

    #[test]
    fn nulls_never_join() {
        let l = vec![vec![Value::int(1), Value::Null]];
        let r = vec![vec![Value::Null, Value::int(2)]];
        assert!(hash_join(&l, 1, &r, 0).is_empty());
        assert!(nested_loop_join(&l, 1, &r, 0).is_empty());
    }

    #[test]
    fn distinct_preserves_order() {
        let input = rows(&[(1, 1), (2, 2), (1, 1), (3, 3), (2, 2)]);
        let out = distinct_rows(input);
        assert_eq!(out, rows(&[(1, 1), (2, 2), (3, 3)]));
    }

    #[test]
    fn project_reorders() {
        let input = rows(&[(1, 2)]);
        let out = project(&input, &[1, 0]);
        assert_eq!(out, rows(&[(2, 1)]));
    }
}
