//! The single statistics-driven cost engine (§4.2, generalized).
//!
//! Every component that reasons about plan shape — the extraction planner
//! in `graphgen-core`, the `W103`/`W105` lints in [`crate::check`], the
//! `--explain` mode of `graphgen-check`, and the drift detector in
//! `graphgen-serve` — delegates to this module, so the checker and the
//! extractor can never disagree about what the plan looks like.
//!
//! # The model
//!
//! All estimates rest on the paper's **uniform assumption**: a join
//! attribute with `d` distinct values distributes its rows evenly over
//! those values, so joining `L` and `R` on it produces
//!
//! ```text
//! |L| · |R| / d        (d = max of the two sides' n_distinct)
//! ```
//!
//! rows ([`join_output`] is the one place this formula lives). Constant
//! filters scale a scan's cardinality by `1/n_distinct(column)` — the same
//! uniformity assumption applied to selection.
//!
//! A plan for an `n`-atom chain is a set of *cuts*: each of the `n-1`
//! joins is either executed inside a relational segment query or postponed
//! into a layer of virtual nodes. The cost of a plan is
//!
//! * every atom scan (its filtered cardinality), plus
//! * every intermediate join output produced *inside* a segment
//!   (estimates compound left-to-right through the segment), plus
//! * for every cut, `factor · (|left boundary| + |right boundary|)` —
//!   the cost of materializing the condensed representation, with the
//!   paper's `factor` (default 2.0) pricing a boundary row against a
//!   joined row.
//!
//! For a two-atom chain this reduces exactly to the paper's greedy test —
//! cut if and only if `|L|·|R|/d > factor·(|L|+|R|)` — but unlike the
//! greedy left-to-right classification, [`estimate_chain`] enumerates
//! **all `2^(n-1)` cut subsets** and returns the cheapest, which can
//! postpone a per-join-"small" join whose output would compound
//! downstream (and vice versa).

use crate::analyze::{ChainAtom, ConstFilter};
use crate::check::CheckCatalog;
use graphgen_common::FxHasher;
use std::fmt;
use std::hash::Hasher;

/// Chains longer than this fall back to the greedy per-join
/// classification instead of full enumeration (2^(n-1) plans). No real
/// query comes close; this only bounds adversarial input.
const MAX_ENUMERATED_JOINS: usize = 16;

/// The §4.2 uniform-assumption join estimate: `|L| · |R| / d`.
///
/// This is the **only** implementation of the formula in the codebase;
/// planner, lints, EXPLAIN and drift detection all route through it.
pub fn join_output(left_rows: f64, right_rows: f64, distinct: u64) -> f64 {
    left_rows * right_rows / distinct.max(1) as f64
}

/// A stable identity for a plan's *shape*: which joins are cut (and over
/// which atoms). Two plans with the same fingerprint segment the chain
/// identically; the serving layer compares fingerprints across statistics
/// snapshots to detect drift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlanFingerprint(pub u64);

impl fmt::Display for PlanFingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// Fingerprint of the plan that cuts `cuts[i]`-marked joins of `atoms`.
/// Deterministic across processes (FxHasher with a fixed seed, fed a
/// canonical byte encoding of the chain shape and the cut set).
pub fn plan_fingerprint(atoms: &[ChainAtom], cuts: &[bool]) -> PlanFingerprint {
    let mut h = FxHasher::default();
    h.write_usize(atoms.len());
    for a in atoms {
        h.write(a.relation.as_bytes());
        h.write_u8(0xfe);
        h.write_usize(a.in_col);
        h.write_usize(a.out_col);
        h.write_usize(a.filters.len());
        for f in &a.filters {
            match f {
                ConstFilter::Int(col, v) => {
                    h.write_u8(0);
                    h.write_usize(*col);
                    h.write_i64(*v);
                }
                ConstFilter::Str(col, s) => {
                    h.write_u8(1);
                    h.write_usize(*col);
                    h.write(s.as_bytes());
                    h.write_u8(0xfe);
                }
            }
        }
    }
    for &c in cuts {
        h.write_u8(c as u8);
    }
    PlanFingerprint(h.finish())
}

/// Cardinality estimate for one chain atom's scan.
#[derive(Debug, Clone, PartialEq)]
pub struct AtomEstimate {
    /// Relation name (for rendering).
    pub relation: String,
    /// Raw catalog row count.
    pub catalog_rows: u64,
    /// Combined selectivity of the atom's constant filters (1.0 if none).
    pub selectivity: f64,
    /// Estimated rows the scan produces: `catalog_rows · selectivity`.
    pub est_rows: f64,
}

/// Statistics-driven estimate for one join of the chain.
#[derive(Debug, Clone, PartialEq)]
pub struct JoinEstimate {
    /// Left/right relation names (for rendering and messages).
    pub left: String,
    /// Right relation name.
    pub right: String,
    /// Join column names as `left_col ⋈ right_col` (for rendering).
    pub left_col: String,
    /// Right join column name.
    pub right_col: String,
    /// Estimated rows on each side (after filters).
    pub left_rows: f64,
    /// Right-side estimated rows.
    pub right_rows: f64,
    /// Distinct values of the join attribute (max of the two sides).
    pub distinct: u64,
    /// `|L|·|R|/d` over the two adjacent atoms.
    pub estimated_output: f64,
    /// The greedy test's threshold, `factor · (|L| + |R|)`.
    pub threshold: f64,
    /// True when the **chosen min-cost plan** postpones this join into a
    /// virtual-node layer. Usually `estimated_output > threshold`, but
    /// full-chain enumeration may disagree with the greedy per-join test
    /// when intermediate estimates compound.
    pub cut: bool,
}

/// The full cost analysis of one `Edges` chain against one statistics
/// snapshot: per-atom and per-join estimates plus the chosen min-cost
/// plan (its cuts, total cost and fingerprint).
#[derive(Debug, Clone, PartialEq)]
pub struct ChainCost {
    /// Per-atom scan estimates (length = #atoms).
    pub atoms: Vec<AtomEstimate>,
    /// Per-join estimates with the chosen plan's cut decisions
    /// (length = #atoms - 1).
    pub joins: Vec<JoinEstimate>,
    /// Total estimated cost of the chosen plan.
    pub cost: f64,
    /// How many cut subsets the enumeration evaluated.
    pub plans_considered: usize,
    /// Fingerprint of the chosen plan's shape.
    pub fingerprint: PlanFingerprint,
    /// The factor the analysis ran with (the paper's 2.0 by default).
    pub factor: f64,
}

impl ChainCost {
    /// The chosen plan's cut set, one flag per join.
    pub fn cuts(&self) -> Vec<bool> {
        self.joins.iter().map(|j| j.cut).collect()
    }

    /// Number of virtual-node layers the chosen plan creates (= #cuts).
    pub fn virtual_layers(&self) -> usize {
        self.joins.iter().filter(|j| j.cut).count()
    }

    /// Segment boundaries `[start, end]` (inclusive atom indices) implied
    /// by the chosen cuts.
    pub fn segments(&self) -> Vec<(usize, usize)> {
        segments_of(&self.cuts(), self.atoms.len())
    }
}

/// Segment boundaries implied by a cut set over `n_atoms` atoms.
pub fn segments_of(cuts: &[bool], n_atoms: usize) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    let mut start = 0usize;
    for i in 0..=cuts.len() {
        if i == cuts.len() || cuts[i] {
            out.push((start, i.min(n_atoms.saturating_sub(1))));
            start = i + 1;
        }
    }
    out
}

/// Per-atom effective cardinalities and per-join distinct counts — the
/// numbers every plan of the chain is costed from. `None` when the
/// catalog lacks a row count for an atom or a distinct count for a join
/// column (then no plan can be costed and the lints stay silent).
struct ChainStats {
    atoms: Vec<AtomEstimate>,
    distinct: Vec<u64>,
}

fn chain_stats(catalog: &CheckCatalog, atoms: &[ChainAtom]) -> Option<ChainStats> {
    let mut out = Vec::with_capacity(atoms.len());
    for atom in atoms {
        let info = catalog.relation(&atom.relation)?;
        let rows = info.row_count?;
        let mut selectivity = 1.0f64;
        for f in &atom.filters {
            let col = match f {
                ConstFilter::Int(c, _) | ConstFilter::Str(c, _) => *c,
            };
            // Unknown n_distinct for a filtered column: assume the filter
            // keeps everything (selectivity 1) rather than guessing.
            if let Some(Some(d)) = info.n_distinct.get(col).copied() {
                if d > 0 {
                    selectivity /= d as f64;
                }
            }
        }
        out.push(AtomEstimate {
            relation: atom.relation.clone(),
            catalog_rows: rows,
            selectivity,
            est_rows: rows as f64 * selectivity,
        });
    }
    let mut distinct = Vec::with_capacity(atoms.len().saturating_sub(1));
    for i in 0..atoms.len().saturating_sub(1) {
        let (left, right) = (&atoms[i], &atoms[i + 1]);
        let ld = catalog
            .relation(&left.relation)?
            .n_distinct
            .get(left.out_col)
            .copied()
            .flatten()?;
        let rd = catalog
            .relation(&right.relation)?
            .n_distinct
            .get(right.in_col)
            .copied()
            .flatten()?;
        // Both columns range over the same attribute domain; take the
        // larger side's count as the domain estimate.
        distinct.push(ld.max(rd).max(1));
    }
    Some(ChainStats {
        atoms: out,
        distinct,
    })
}

/// Cost of the plan that applies the given cut set, under the model in
/// the module docs. Estimates compound through each segment.
fn plan_cost(stats: &ChainStats, cuts: &[bool], factor: f64) -> f64 {
    let mut cost = stats.atoms[0].est_rows;
    let mut running = stats.atoms[0].est_rows;
    for (i, &cut) in cuts.iter().enumerate() {
        let next = stats.atoms[i + 1].est_rows;
        cost += next; // every atom is scanned exactly once
        if cut {
            // Materialize the boundary: the left segment's result rows
            // and the right segment's opening scan, priced at `factor`.
            cost += factor * (running + next);
            running = next;
        } else {
            running = join_output(running, next, stats.distinct[i]);
            cost += running;
        }
    }
    cost
}

/// Analyze `atoms` against `catalog` statistics: enumerate every cut
/// subset, pick the min-cost plan (ties prefer fewer cuts, then the
/// lexicographically first cut set), and report per-atom / per-join
/// estimates alongside it.
///
/// Returns `None` when the catalog lacks the statistics the model needs
/// (a row count for every atom and an n_distinct for every join column).
pub fn estimate_chain(
    catalog: &CheckCatalog,
    atoms: &[ChainAtom],
    factor: f64,
) -> Option<ChainCost> {
    if atoms.is_empty() {
        return None;
    }
    let stats = chain_stats(catalog, atoms)?;
    let n_joins = atoms.len() - 1;
    let (cuts, cost, plans_considered) = if n_joins <= MAX_ENUMERATED_JOINS {
        let mut best: Option<(f64, u32, u64)> = None;
        for mask in 0u64..(1u64 << n_joins) {
            let cuts: Vec<bool> = (0..n_joins).map(|i| mask >> i & 1 == 1).collect();
            let cost = plan_cost(&stats, &cuts, factor);
            let key = (cost, mask.count_ones(), mask);
            let better = match best {
                None => true,
                Some((bc, bp, bm)) => {
                    cost < bc || (cost == bc && (mask.count_ones(), mask) < (bp, bm))
                }
            };
            if better {
                best = Some(key);
            }
        }
        let (cost, _, mask) = best.expect("at least one plan");
        let cuts: Vec<bool> = (0..n_joins).map(|i| mask >> i & 1 == 1).collect();
        (cuts, cost, 1usize << n_joins)
    } else {
        // Fallback: greedy per-join classification (the paper's test).
        let cuts: Vec<bool> = (0..n_joins)
            .map(|i| {
                let (l, r) = (stats.atoms[i].est_rows, stats.atoms[i + 1].est_rows);
                join_output(l, r, stats.distinct[i]) > factor * (l + r)
            })
            .collect();
        let cost = plan_cost(&stats, &cuts, factor);
        (cuts, cost, 1)
    };
    let joins = (0..n_joins)
        .map(|i| {
            let (la, ra) = (&stats.atoms[i], &stats.atoms[i + 1]);
            JoinEstimate {
                left: la.relation.clone(),
                right: ra.relation.clone(),
                left_col: column_name(catalog, &atoms[i].relation, atoms[i].out_col),
                right_col: column_name(catalog, &atoms[i + 1].relation, atoms[i + 1].in_col),
                left_rows: la.est_rows,
                right_rows: ra.est_rows,
                distinct: stats.distinct[i],
                estimated_output: join_output(la.est_rows, ra.est_rows, stats.distinct[i]),
                threshold: factor * (la.est_rows + ra.est_rows),
                cut: cuts[i],
            }
        })
        .collect();
    let fingerprint = plan_fingerprint(atoms, &cuts);
    Some(ChainCost {
        atoms: stats.atoms,
        joins,
        cost,
        plans_considered,
        fingerprint,
        factor,
    })
}

/// Cost the *specific* plan `cuts` (e.g. a frozen plan from an earlier
/// extraction) under the current `catalog` statistics — pure arithmetic,
/// no scans. `None` under the same missing-statistics conditions as
/// [`estimate_chain`].
pub fn cost_with_cuts(
    catalog: &CheckCatalog,
    atoms: &[ChainAtom],
    factor: f64,
    cuts: &[bool],
) -> Option<f64> {
    if atoms.is_empty() || cuts.len() != atoms.len() - 1 {
        return None;
    }
    let stats = chain_stats(catalog, atoms)?;
    Some(plan_cost(&stats, cuts, factor))
}

fn column_name(catalog: &CheckCatalog, relation: &str, col: usize) -> String {
    catalog
        .relation(relation)
        .and_then(|info| info.columns.get(col))
        .map(|(name, _)| name.clone())
        .unwrap_or_else(|| format!("col{col}"))
}

/// Format an estimate for rendering: integers up to 2^53 print exactly,
/// larger values keep `{:.0}`'s behavior.
fn fmt_rows(v: f64) -> String {
    format!("{v:.0}")
}

/// Render one chain's analysis as the plan tree EXPLAIN shows — estimated
/// vs. catalog row counts per scan, the join estimates, and the chosen
/// plan's cost, layers and fingerprint. `label` prefixes the header line
/// (e.g. `chain 1`). The output is golden-locked; change with care.
pub fn render_explain(label: &str, cc: &ChainCost) -> String {
    let mut out = String::new();
    let head: Vec<&str> = cc.atoms.iter().map(|a| a.relation.as_str()).collect();
    out.push_str(&format!("{label}: {}\n", head.join(" ⋈ ")));
    out.push_str(&format!(
        "  plan: cost={} segments={} virtual_layers={} plans_considered={} fingerprint={}\n",
        fmt_rows(cc.cost),
        cc.segments().len(),
        cc.virtual_layers(),
        cc.plans_considered,
        cc.fingerprint,
    ));
    for (i, a) in cc.atoms.iter().enumerate() {
        let sel = if a.selectivity < 1.0 {
            format!(" (selectivity {:.4})", a.selectivity)
        } else {
            String::new()
        };
        out.push_str(&format!(
            "  scan {}: catalog rows={} est rows={}{}\n",
            a.relation,
            a.catalog_rows,
            fmt_rows(a.est_rows),
            sel,
        ));
        if let Some(j) = cc.joins.get(i) {
            let verdict = if j.cut {
                "cut -> virtual-node layer"
            } else {
                "keep -> in segment"
            };
            out.push_str(&format!(
                "  join {}.{} ⋈ {}.{}: d={} |L|·|R|/d={} threshold={} [{}]\n",
                j.left,
                j.left_col,
                j.right,
                j.right_col,
                j.distinct,
                fmt_rows(j.estimated_output),
                fmt_rows(j.threshold),
                verdict,
            ));
        }
    }
    out
}

/// Render the "no statistics" EXPLAIN stub for a chain the catalog cannot
/// cost (missing `rows=` / `distinct=`).
pub fn render_unknown(label: &str, atoms: &[ChainAtom]) -> String {
    let head: Vec<&str> = atoms.iter().map(|a| a.relation.as_str()).collect();
    format!(
        "{label}: {}\n  plan: statistics unavailable (catalog lacks rows=/distinct=); \
         single-segment plan assumed\n",
        head.join(" ⋈ ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::check::CheckCatalog;
    use crate::compile;

    fn catalog(src: &str) -> CheckCatalog {
        CheckCatalog::parse(src).expect("catalog parses")
    }

    fn chain(src: &str) -> Vec<ChainAtom> {
        compile(src).expect("compiles").edges.remove(0).steps
    }

    const COAUTHORS: &str = "Nodes(ID, N) :- Author(ID, N).\n\
                             Edges(A, B) :- AuthorPub(A, P), AuthorPub(B, P).";

    #[test]
    fn two_atom_chain_reduces_to_the_greedy_test() {
        // est = 1000·1000/10 = 100000 > 2·2000 -> cut.
        let cat = catalog(
            "table Author(id: int, n: str) rows=100 distinct=(100,100)\n\
             table AuthorPub(aid: int, pid: int) rows=1000 distinct=(100, 10)\n",
        );
        let cc = estimate_chain(&cat, &chain(COAUTHORS), 2.0).expect("stats present");
        assert_eq!(cc.plans_considered, 2);
        assert_eq!(cc.joins.len(), 1);
        assert!(cc.joins[0].cut);
        assert_eq!(cc.joins[0].estimated_output, 100_000.0);
        assert_eq!(cc.joins[0].threshold, 4_000.0);
        assert_eq!(cc.virtual_layers(), 1);
        assert_eq!(cc.segments(), vec![(0, 0), (1, 1)]);
        // cut plan: scans 2000 + 2·(1000+1000) = 6000.
        assert_eq!(cc.cost, 6_000.0);
    }

    #[test]
    fn sparse_join_stays_in_one_segment() {
        let cat = catalog(
            "table Author(id: int, n: str) rows=100 distinct=(100,100)\n\
             table AuthorPub(aid: int, pid: int) rows=100 distinct=(100, 100)\n",
        );
        let cc = estimate_chain(&cat, &chain(COAUTHORS), 2.0).expect("stats present");
        assert!(!cc.joins[0].cut);
        assert_eq!(cc.segments(), vec![(0, 1)]);
        // keep plan: scans 200 + output 100 = 300.
        assert_eq!(cc.cost, 300.0);
    }

    #[test]
    fn filters_scale_estimates_by_selectivity() {
        let cat = catalog(
            "table Author(id: int, n: str) rows=100 distinct=(100,100)\n\
             table AuthorPub(aid: int, pid: int, year: int) rows=1000 distinct=(100, 10, 5)\n",
        );
        let atoms = chain(
            "Nodes(ID, N) :- Author(ID, N).\n\
             Edges(A, B) :- AuthorPub(A, P, 2001), AuthorPub(B, P, 2001).",
        );
        let cc = estimate_chain(&cat, &atoms, 2.0).expect("stats present");
        assert_eq!(cc.atoms[0].est_rows, 200.0); // 1000 / 5
        assert_eq!(cc.atoms[0].selectivity, 0.2);
        // est = 200·200/10 = 4000 > 2·400 -> still cut.
        assert_eq!(cc.joins[0].estimated_output, 4_000.0);
        assert!(cc.joins[0].cut);
    }

    #[test]
    fn enumeration_beats_greedy_on_compounding_chains() {
        // Greedy per-join: every est (100·100/50=200) <= 2·200=400 ->
        // no cuts. But keeping both joins compounds: 200 then
        // 200·100/50=400, total 300+200+400=900. Cutting the second join
        // costs 300 + 200 + 2·(200+100)=... -> enumeration must pick the
        // overall cheapest, which here is still the greedy plan; verify
        // the enumeration agrees where compounding is mild...
        let cat = catalog(
            "table N(id: int, n: str) rows=10 distinct=(10,10)\n\
             table R(a: int, k: int) rows=100 distinct=(100, 50)\n\
             table S(k: int, l: int) rows=100 distinct=(50, 50)\n\
             table T(l: int, b: int) rows=100 distinct=(50, 100)\n",
        );
        let atoms = chain(
            "Nodes(ID, X) :- N(ID, X).\n\
             Edges(A, B) :- R(A, K), S(K, L), T(L, B).",
        );
        let cc = estimate_chain(&cat, &atoms, 2.0).expect("stats present");
        assert_eq!(cc.plans_considered, 4);
        assert_eq!(cc.cuts(), vec![false, false]);
        assert_eq!(cc.cost, 900.0);

        // ...and diverges where it is not: make the middle table huge so
        // the first join's intermediate explodes through the second.
        let cat = catalog(
            "table N(id: int, n: str) rows=10 distinct=(10,10)\n\
             table R(a: int, k: int) rows=1000 distinct=(1000, 5)\n\
             table S(k: int, l: int) rows=1000 distinct=(5, 5)\n\
             table T(l: int, b: int) rows=1000 distinct=(5, 1000)\n",
        );
        let cc = estimate_chain(&cat, &atoms, 2.0).expect("stats present");
        // Both joins are large-output by the per-join test and the
        // min-cost plan cuts both.
        assert_eq!(cc.cuts(), vec![true, true]);
        assert_eq!(cc.virtual_layers(), 2);
    }

    #[test]
    fn missing_stats_yield_none_but_cuts_api_matches() {
        let cat = catalog("table Author(id: int, n: str)\ntable AuthorPub(aid: int, pid: int)\n");
        let atoms = chain(COAUTHORS);
        assert!(estimate_chain(&cat, &atoms, 2.0).is_none());
        assert!(cost_with_cuts(&cat, &atoms, 2.0, &[true]).is_none());
    }

    #[test]
    fn fingerprint_is_stable_and_shape_sensitive() {
        let atoms = chain(COAUTHORS);
        let a = plan_fingerprint(&atoms, &[true]);
        let b = plan_fingerprint(&atoms, &[true]);
        let c = plan_fingerprint(&atoms, &[false]);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(a.to_string().len(), 16);
    }

    #[test]
    fn cost_with_cuts_matches_the_enumerated_plan() {
        let cat = catalog(
            "table Author(id: int, n: str) rows=100 distinct=(100,100)\n\
             table AuthorPub(aid: int, pid: int) rows=1000 distinct=(100, 10)\n",
        );
        let atoms = chain(COAUTHORS);
        let cc = estimate_chain(&cat, &atoms, 2.0).unwrap();
        assert_eq!(cost_with_cuts(&cat, &atoms, 2.0, &cc.cuts()), Some(cc.cost));
        // The rejected plan costs more.
        assert_eq!(cost_with_cuts(&cat, &atoms, 2.0, &[false]), Some(102_000.0));
    }

    #[test]
    fn factor_zero_cuts_everything_with_rows() {
        let cat = catalog(
            "table Author(id: int, n: str) rows=100 distinct=(100,100)\n\
             table AuthorPub(aid: int, pid: int) rows=100 distinct=(100, 100)\n",
        );
        let cc = estimate_chain(&cat, &chain(COAUTHORS), 0.0).unwrap();
        assert!(cc.joins[0].cut, "factor 0 postpones every non-empty join");
    }

    #[test]
    fn render_is_deterministic() {
        let cat = catalog(
            "table Author(id: int, n: str) rows=100 distinct=(100,100)\n\
             table AuthorPub(aid: int, pid: int) rows=1000 distinct=(100, 10)\n",
        );
        let atoms = chain(COAUTHORS);
        let cc = estimate_chain(&cat, &atoms, 2.0).unwrap();
        let r = render_explain("chain 1", &cc);
        assert!(r.starts_with("chain 1: AuthorPub ⋈ AuthorPub\n"), "{r}");
        assert!(r.contains("cost=6000"), "{r}");
        assert!(
            r.contains("join AuthorPub.pid ⋈ AuthorPub.pid: d=10"),
            "{r}"
        );
        assert!(r.contains("[cut -> virtual-node layer]"), "{r}");
        assert_eq!(r, render_explain("chain 1", &cc));
        let unknown = render_unknown("chain 2", &atoms);
        assert!(unknown.contains("statistics unavailable"), "{unknown}");
    }
}
