//! Machine-readable bench artifacts (`BENCH_*.json`).
//!
//! CI runs the quick bench bins and uploads the JSON files they emit, so
//! regressions can be charted across commits without scraping stdout. The
//! format is deliberately tiny — one object per measured operation, all
//! latencies in nanoseconds — and hand-rolled so the bench crate stays
//! std-only:
//!
//! ```json
//! {
//!   "bench": "serving",
//!   "records": [
//!     {"op": "read_idle", "threads": 1, "p50_ns": 1290,
//!      "p99_ns": 3580, "throughput": 740807.0}
//!   ]
//! }
//! ```
//!
//! Latency quantiles come from [`graphgen_common::metrics::Histogram`]
//! (the same log-scale instrument the serving stack exposes over
//! `METRICS`), so bench numbers and production numbers share bucket
//! resolution.

use std::io::Write;
use std::path::Path;

/// One measured operation: an op label, the thread count it ran at, its
/// latency quantiles in nanoseconds, and a throughput in ops/sec.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// What was measured, e.g. `read_idle` or `publish_rows_64`.
    pub op: String,
    /// Worker threads driving the operation.
    pub threads: usize,
    /// Median latency, nanoseconds.
    pub p50_ns: u64,
    /// 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Operations per second over the measurement window.
    pub throughput: f64,
    /// Peak live bytes above the entry baseline during the measurement
    /// window (counting allocator; 0 when not measured — omitted from the
    /// JSON so memory-less records keep their original shape).
    pub peak_bytes: u64,
    /// Net live-byte growth across the measurement window (0 when not
    /// measured).
    pub live_bytes: u64,
}

/// A named collection of [`BenchRecord`]s that serializes to one JSON file.
#[derive(Debug, Default)]
pub struct BenchReport {
    /// Bench family name (`serving`, `incremental`, ...).
    pub bench: String,
    /// The measurements, in emission order.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Start an empty report for the named bench family.
    pub fn new(bench: &str) -> Self {
        Self {
            bench: bench.to_string(),
            records: Vec::new(),
        }
    }

    /// Append one measurement.
    pub fn push(
        &mut self,
        op: impl Into<String>,
        threads: usize,
        p50_ns: u64,
        p99_ns: u64,
        throughput: f64,
    ) {
        self.records.push(BenchRecord {
            op: op.into(),
            threads,
            p50_ns,
            p99_ns,
            throughput,
            peak_bytes: 0,
            live_bytes: 0,
        });
    }

    /// Append one measurement with allocation accounting: `peak_bytes` is
    /// the high-water mark of live bytes above the window's entry baseline
    /// and `live_bytes` the net live growth across it (both from the
    /// counting allocator's [`crate::alloc::measure`]).
    #[allow(clippy::too_many_arguments)]
    pub fn push_mem(
        &mut self,
        op: impl Into<String>,
        threads: usize,
        p50_ns: u64,
        p99_ns: u64,
        throughput: f64,
        peak_bytes: u64,
        live_bytes: u64,
    ) {
        self.records.push(BenchRecord {
            op: op.into(),
            threads,
            p50_ns,
            p99_ns,
            throughput,
            peak_bytes,
            live_bytes,
        });
    }

    /// Render the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"bench\": {},\n", json_string(&self.bench)));
        out.push_str("  \"records\": [");
        for (i, r) in self.records.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"op\": {}, \"threads\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"throughput\": {}",
                json_string(&r.op),
                r.threads,
                r.p50_ns,
                r.p99_ns,
                json_number(r.throughput),
            ));
            if r.peak_bytes != 0 || r.live_bytes != 0 {
                out.push_str(&format!(
                    ", \"peak_bytes\": {}, \"live_bytes\": {}",
                    r.peak_bytes, r.live_bytes
                ));
            }
            out.push('}');
        }
        if !self.records.is_empty() {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Write the report to `path`, replacing any previous run's file.
    /// Prints the destination so CI logs show where the artifact landed.
    pub fn write(&self, path: impl AsRef<Path>) {
        let path = path.as_ref();
        let mut f = std::fs::File::create(path)
            .unwrap_or_else(|e| panic!("create {}: {e}", path.display()));
        f.write_all(self.to_json().as_bytes())
            .unwrap_or_else(|e| panic!("write {}: {e}", path.display()));
        println!(
            "\nwrote {} ({} records)",
            path.display(),
            self.records.len()
        );
    }
}

/// Escape a string for JSON (quotes, backslashes, control chars).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Format an f64 as a JSON number (finite; NaN/inf degrade to 0).
fn json_number(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.3}")
    } else {
        "0.000".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_serializes_records_in_order() {
        let mut r = BenchReport::new("serving");
        r.push("read_idle", 1, 1290, 3580, 740807.0);
        r.push("publish_rows_64", 1, 500_000, 2_000_000, 287.5);
        let json = r.to_json();
        assert!(json.starts_with("{\n  \"bench\": \"serving\""));
        assert!(json.contains("\"op\": \"read_idle\", \"threads\": 1, \"p50_ns\": 1290, \"p99_ns\": 3580, \"throughput\": 740807.000"));
        assert!(json.contains("\"op\": \"publish_rows_64\""));
        let idle = json.find("read_idle").unwrap();
        let publish = json.find("publish_rows_64").unwrap();
        assert!(idle < publish, "records must keep emission order");
        assert!(json.ends_with("]\n}\n"));
    }

    #[test]
    fn memory_fields_are_emitted_only_when_measured() {
        let mut r = BenchReport::new("serving");
        r.push("plain", 1, 1, 2, 3.0);
        r.push_mem("measured", 1, 1, 2, 3.0, 4096, 1024);
        let json = r.to_json();
        let plain_line = json.lines().find(|l| l.contains("\"plain\"")).unwrap();
        assert!(
            !plain_line.contains("peak_bytes"),
            "records without measurement must keep the original shape: {plain_line}"
        );
        assert!(json.contains("\"op\": \"measured\", \"threads\": 1, \"p50_ns\": 1, \"p99_ns\": 2, \"throughput\": 3.000, \"peak_bytes\": 4096, \"live_bytes\": 1024"));
    }

    #[test]
    fn empty_report_is_valid_json() {
        let json = BenchReport::new("x").to_json();
        assert!(json.contains("\"records\": []"));
    }

    #[test]
    fn strings_are_escaped() {
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn non_finite_throughput_degrades_to_zero() {
        assert_eq!(json_number(f64::NAN), "0.000");
        assert_eq!(json_number(f64::INFINITY), "0.000");
        assert_eq!(json_number(1.5), "1.500");
    }

    #[test]
    fn write_round_trips_through_the_filesystem() {
        let dir = std::env::temp_dir().join(format!("gg-bench-report-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("BENCH_test.json");
        let mut r = BenchReport::new("test");
        r.push("op", 2, 10, 20, 30.0);
        r.write(&path);
        let back = std::fs::read_to_string(&path).unwrap();
        assert_eq!(back, r.to_json());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
