//! Multi-layer extraction: the TPCH co-purchase graph (\[Q2\]).
//!
//! Connecting customers who bought the same part needs a 4-atom chain
//! (`Orders ⋈ LineItem ⋈ LineItem ⋈ Orders`). The planner hands the
//! key–foreign-key joins to the relational engine and postpones the
//! large-output ones, producing the multi-layered condensed representation
//! of the paper's Fig. 5a. This example shows the plan, the layer
//! structure, the typed conversion errors multi-layer shapes produce, and
//! why expanding would be catastrophic.
//!
//! Run with: `cargo run --release --example customer_copurchase`

use graphgen::core::{AnyGraph, ConvertOptions, GraphGen, GraphGenConfig};
use graphgen::datagen::{relational::TPCH_COPURCHASE, tpch_like, TpchConfig};
use graphgen::graph::{GraphRep, RepKind};

fn main() {
    let db = tpch_like(TpchConfig {
        customers: 2_000,
        orders: 6_000,
        parts: 150,
        avg_lineitems: 3.0,
        seed: 3,
    });
    let gg = GraphGen::with_config(
        &db,
        GraphGenConfig::builder()
            .auto_expand_threshold(None)
            .build(),
    );
    let handle = gg.extract(TPCH_COPURCHASE).expect("extraction");

    println!("plan:");
    for (i, join) in handle.report().plans[0].joins.iter().enumerate() {
        println!(
            "  join {}: {} ⋈ {} — |L|={}, |R|={}, d={}, est. output {:.0} -> {}",
            i,
            join.left_table,
            join.right_table,
            join.left_rows,
            join.right_rows,
            join.distinct,
            join.estimated_output,
            if join.large_output {
                "POSTPONED (virtual nodes)"
            } else {
                "database"
            }
        );
    }
    for sql in &handle.report().sql {
        println!("  SQL: {sql}");
    }

    let AnyGraph::CDup(g) = handle.graph() else {
        println!("graph was auto-expanded (tiny input)");
        return;
    };
    println!(
        "\ncondensed: {} real + {} virtual nodes, {} stored edges, {} layers",
        g.num_vertices(),
        g.num_virtual(),
        g.stored_edge_count(),
        g.layer_count()
    );
    let expanded = g.expanded_edge_count();
    println!(
        "expanded would be {} edges — {:.1}x the condensed size",
        expanded,
        expanded as f64 / g.stored_edge_count() as f64
    );

    // Multi-layer shapes can't run the DEDUP constructions directly — the
    // typed error says exactly why — but ConvertOptions::flatten unlocks
    // them, and BITMAP handles layered graphs natively.
    let opts = ConvertOptions::default();
    if !g.is_single_layer() {
        let err = handle.convert(RepKind::Dedup1, &opts).unwrap_err();
        println!("\nDEDUP-1 directly: {err}");
        let flat = handle
            .convert(
                RepKind::Dedup1,
                &ConvertOptions {
                    flatten: true,
                    ..opts
                },
            )
            .expect("flattened conversion");
        println!(
            "DEDUP-1 after flattening: {} stored edges",
            flat.stored_edge_count()
        );
    }
    let bmp = handle
        .convert(RepKind::Bitmap, &opts)
        .expect("condensed source");
    println!(
        "BITMAP-2: {} stored edges ({} bytes)",
        bmp.stored_edge_count(),
        bmp.heap_bytes()
    );
    // Top co-purchasers.
    let degs = graphgen::algo::degrees(&bmp, 4);
    let max = degs.iter().max().copied().unwrap_or(0);
    println!("max distinct co-purchasers for one customer: {max}");
}
